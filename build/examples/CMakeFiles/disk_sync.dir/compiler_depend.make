# Empty compiler generated dependencies file for disk_sync.
# This may be replaced when dependencies are built.
