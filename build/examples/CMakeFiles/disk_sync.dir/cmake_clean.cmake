file(REMOVE_RECURSE
  "CMakeFiles/disk_sync.dir/disk_sync.cc.o"
  "CMakeFiles/disk_sync.dir/disk_sync.cc.o.d"
  "disk_sync"
  "disk_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
