file(REMOVE_RECURSE
  "CMakeFiles/multi_device_sync.dir/multi_device_sync.cc.o"
  "CMakeFiles/multi_device_sync.dir/multi_device_sync.cc.o.d"
  "multi_device_sync"
  "multi_device_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_device_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
