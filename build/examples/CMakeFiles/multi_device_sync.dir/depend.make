# Empty dependencies file for multi_device_sync.
# This may be replaced when dependencies are built.
