file(REMOVE_RECURSE
  "CMakeFiles/cloud_outage.dir/cloud_outage.cc.o"
  "CMakeFiles/cloud_outage.dir/cloud_outage.cc.o.d"
  "cloud_outage"
  "cloud_outage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_outage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
