# Empty dependencies file for cloud_outage.
# This may be replaced when dependencies are built.
