# Empty compiler generated dependencies file for unidrive_cli.
# This may be replaced when dependencies are built.
