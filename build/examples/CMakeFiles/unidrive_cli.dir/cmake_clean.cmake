file(REMOVE_RECURSE
  "CMakeFiles/unidrive_cli.dir/unidrive_cli.cc.o"
  "CMakeFiles/unidrive_cli.dir/unidrive_cli.cc.o.d"
  "unidrive_cli"
  "unidrive_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unidrive_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
