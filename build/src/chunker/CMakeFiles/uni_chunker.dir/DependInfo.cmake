
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chunker/cdc.cc" "src/chunker/CMakeFiles/uni_chunker.dir/cdc.cc.o" "gcc" "src/chunker/CMakeFiles/uni_chunker.dir/cdc.cc.o.d"
  "/root/repo/src/chunker/segmenter.cc" "src/chunker/CMakeFiles/uni_chunker.dir/segmenter.cc.o" "gcc" "src/chunker/CMakeFiles/uni_chunker.dir/segmenter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/uni_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/uni_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
