file(REMOVE_RECURSE
  "libuni_chunker.a"
)
