file(REMOVE_RECURSE
  "CMakeFiles/uni_chunker.dir/cdc.cc.o"
  "CMakeFiles/uni_chunker.dir/cdc.cc.o.d"
  "CMakeFiles/uni_chunker.dir/segmenter.cc.o"
  "CMakeFiles/uni_chunker.dir/segmenter.cc.o.d"
  "libuni_chunker.a"
  "libuni_chunker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uni_chunker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
