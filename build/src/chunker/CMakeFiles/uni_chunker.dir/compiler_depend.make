# Empty compiler generated dependencies file for uni_chunker.
# This may be replaced when dependencies are built.
