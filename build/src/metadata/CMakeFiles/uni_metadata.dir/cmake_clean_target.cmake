file(REMOVE_RECURSE
  "libuni_metadata.a"
)
