
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metadata/changelist.cc" "src/metadata/CMakeFiles/uni_metadata.dir/changelist.cc.o" "gcc" "src/metadata/CMakeFiles/uni_metadata.dir/changelist.cc.o.d"
  "/root/repo/src/metadata/codec.cc" "src/metadata/CMakeFiles/uni_metadata.dir/codec.cc.o" "gcc" "src/metadata/CMakeFiles/uni_metadata.dir/codec.cc.o.d"
  "/root/repo/src/metadata/delta.cc" "src/metadata/CMakeFiles/uni_metadata.dir/delta.cc.o" "gcc" "src/metadata/CMakeFiles/uni_metadata.dir/delta.cc.o.d"
  "/root/repo/src/metadata/diff.cc" "src/metadata/CMakeFiles/uni_metadata.dir/diff.cc.o" "gcc" "src/metadata/CMakeFiles/uni_metadata.dir/diff.cc.o.d"
  "/root/repo/src/metadata/image.cc" "src/metadata/CMakeFiles/uni_metadata.dir/image.cc.o" "gcc" "src/metadata/CMakeFiles/uni_metadata.dir/image.cc.o.d"
  "/root/repo/src/metadata/store.cc" "src/metadata/CMakeFiles/uni_metadata.dir/store.cc.o" "gcc" "src/metadata/CMakeFiles/uni_metadata.dir/store.cc.o.d"
  "/root/repo/src/metadata/version_file.cc" "src/metadata/CMakeFiles/uni_metadata.dir/version_file.cc.o" "gcc" "src/metadata/CMakeFiles/uni_metadata.dir/version_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/uni_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/uni_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/uni_cloud.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
