file(REMOVE_RECURSE
  "CMakeFiles/uni_metadata.dir/changelist.cc.o"
  "CMakeFiles/uni_metadata.dir/changelist.cc.o.d"
  "CMakeFiles/uni_metadata.dir/codec.cc.o"
  "CMakeFiles/uni_metadata.dir/codec.cc.o.d"
  "CMakeFiles/uni_metadata.dir/delta.cc.o"
  "CMakeFiles/uni_metadata.dir/delta.cc.o.d"
  "CMakeFiles/uni_metadata.dir/diff.cc.o"
  "CMakeFiles/uni_metadata.dir/diff.cc.o.d"
  "CMakeFiles/uni_metadata.dir/image.cc.o"
  "CMakeFiles/uni_metadata.dir/image.cc.o.d"
  "CMakeFiles/uni_metadata.dir/store.cc.o"
  "CMakeFiles/uni_metadata.dir/store.cc.o.d"
  "CMakeFiles/uni_metadata.dir/version_file.cc.o"
  "CMakeFiles/uni_metadata.dir/version_file.cc.o.d"
  "libuni_metadata.a"
  "libuni_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uni_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
