# Empty compiler generated dependencies file for uni_metadata.
# This may be replaced when dependencies are built.
