# Empty dependencies file for uni_common.
# This may be replaced when dependencies are built.
