file(REMOVE_RECURSE
  "CMakeFiles/uni_common.dir/bytes.cc.o"
  "CMakeFiles/uni_common.dir/bytes.cc.o.d"
  "CMakeFiles/uni_common.dir/logging.cc.o"
  "CMakeFiles/uni_common.dir/logging.cc.o.d"
  "CMakeFiles/uni_common.dir/rng.cc.o"
  "CMakeFiles/uni_common.dir/rng.cc.o.d"
  "CMakeFiles/uni_common.dir/serial.cc.o"
  "CMakeFiles/uni_common.dir/serial.cc.o.d"
  "CMakeFiles/uni_common.dir/status.cc.o"
  "CMakeFiles/uni_common.dir/status.cc.o.d"
  "libuni_common.a"
  "libuni_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uni_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
