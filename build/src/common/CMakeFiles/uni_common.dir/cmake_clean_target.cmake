file(REMOVE_RECURSE
  "libuni_common.a"
)
