file(REMOVE_RECURSE
  "libuni_core.a"
)
