# Empty dependencies file for uni_core.
# This may be replaced when dependencies are built.
