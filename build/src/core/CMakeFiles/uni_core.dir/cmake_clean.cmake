file(REMOVE_RECURSE
  "CMakeFiles/uni_core.dir/change_scanner.cc.o"
  "CMakeFiles/uni_core.dir/change_scanner.cc.o.d"
  "CMakeFiles/uni_core.dir/client.cc.o"
  "CMakeFiles/uni_core.dir/client.cc.o.d"
  "CMakeFiles/uni_core.dir/local_fs.cc.o"
  "CMakeFiles/uni_core.dir/local_fs.cc.o.d"
  "CMakeFiles/uni_core.dir/sync_daemon.cc.o"
  "CMakeFiles/uni_core.dir/sync_daemon.cc.o.d"
  "libuni_core.a"
  "libuni_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uni_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
