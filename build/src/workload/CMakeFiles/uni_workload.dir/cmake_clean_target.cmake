file(REMOVE_RECURSE
  "libuni_workload.a"
)
