# Empty compiler generated dependencies file for uni_workload.
# This may be replaced when dependencies are built.
