file(REMOVE_RECURSE
  "CMakeFiles/uni_workload.dir/files.cc.o"
  "CMakeFiles/uni_workload.dir/files.cc.o.d"
  "CMakeFiles/uni_workload.dir/trial.cc.o"
  "CMakeFiles/uni_workload.dir/trial.cc.o.d"
  "libuni_workload.a"
  "libuni_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uni_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
