
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/download_scheduler.cc" "src/sched/CMakeFiles/uni_sched.dir/download_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/uni_sched.dir/download_scheduler.cc.o.d"
  "/root/repo/src/sched/monitor.cc" "src/sched/CMakeFiles/uni_sched.dir/monitor.cc.o" "gcc" "src/sched/CMakeFiles/uni_sched.dir/monitor.cc.o.d"
  "/root/repo/src/sched/plan.cc" "src/sched/CMakeFiles/uni_sched.dir/plan.cc.o" "gcc" "src/sched/CMakeFiles/uni_sched.dir/plan.cc.o.d"
  "/root/repo/src/sched/rebalance.cc" "src/sched/CMakeFiles/uni_sched.dir/rebalance.cc.o" "gcc" "src/sched/CMakeFiles/uni_sched.dir/rebalance.cc.o.d"
  "/root/repo/src/sched/threaded_driver.cc" "src/sched/CMakeFiles/uni_sched.dir/threaded_driver.cc.o" "gcc" "src/sched/CMakeFiles/uni_sched.dir/threaded_driver.cc.o.d"
  "/root/repo/src/sched/upload_scheduler.cc" "src/sched/CMakeFiles/uni_sched.dir/upload_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/uni_sched.dir/upload_scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/uni_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/uni_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/metadata/CMakeFiles/uni_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/uni_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
