# Empty compiler generated dependencies file for uni_sched.
# This may be replaced when dependencies are built.
