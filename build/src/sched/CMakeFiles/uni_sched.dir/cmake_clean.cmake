file(REMOVE_RECURSE
  "CMakeFiles/uni_sched.dir/download_scheduler.cc.o"
  "CMakeFiles/uni_sched.dir/download_scheduler.cc.o.d"
  "CMakeFiles/uni_sched.dir/monitor.cc.o"
  "CMakeFiles/uni_sched.dir/monitor.cc.o.d"
  "CMakeFiles/uni_sched.dir/plan.cc.o"
  "CMakeFiles/uni_sched.dir/plan.cc.o.d"
  "CMakeFiles/uni_sched.dir/rebalance.cc.o"
  "CMakeFiles/uni_sched.dir/rebalance.cc.o.d"
  "CMakeFiles/uni_sched.dir/threaded_driver.cc.o"
  "CMakeFiles/uni_sched.dir/threaded_driver.cc.o.d"
  "CMakeFiles/uni_sched.dir/upload_scheduler.cc.o"
  "CMakeFiles/uni_sched.dir/upload_scheduler.cc.o.d"
  "libuni_sched.a"
  "libuni_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uni_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
