file(REMOVE_RECURSE
  "libuni_sched.a"
)
