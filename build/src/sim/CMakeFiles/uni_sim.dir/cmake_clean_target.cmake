file(REMOVE_RECURSE
  "libuni_sim.a"
)
