
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/bandwidth.cc" "src/sim/CMakeFiles/uni_sim.dir/bandwidth.cc.o" "gcc" "src/sim/CMakeFiles/uni_sim.dir/bandwidth.cc.o.d"
  "/root/repo/src/sim/e2e.cc" "src/sim/CMakeFiles/uni_sim.dir/e2e.cc.o" "gcc" "src/sim/CMakeFiles/uni_sim.dir/e2e.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/sim/CMakeFiles/uni_sim.dir/event_queue.cc.o" "gcc" "src/sim/CMakeFiles/uni_sim.dir/event_queue.cc.o.d"
  "/root/repo/src/sim/failure.cc" "src/sim/CMakeFiles/uni_sim.dir/failure.cc.o" "gcc" "src/sim/CMakeFiles/uni_sim.dir/failure.cc.o.d"
  "/root/repo/src/sim/fluid.cc" "src/sim/CMakeFiles/uni_sim.dir/fluid.cc.o" "gcc" "src/sim/CMakeFiles/uni_sim.dir/fluid.cc.o.d"
  "/root/repo/src/sim/profiles.cc" "src/sim/CMakeFiles/uni_sim.dir/profiles.cc.o" "gcc" "src/sim/CMakeFiles/uni_sim.dir/profiles.cc.o.d"
  "/root/repo/src/sim/sim_cloud.cc" "src/sim/CMakeFiles/uni_sim.dir/sim_cloud.cc.o" "gcc" "src/sim/CMakeFiles/uni_sim.dir/sim_cloud.cc.o.d"
  "/root/repo/src/sim/transfer_run.cc" "src/sim/CMakeFiles/uni_sim.dir/transfer_run.cc.o" "gcc" "src/sim/CMakeFiles/uni_sim.dir/transfer_run.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/uni_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/uni_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/uni_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/metadata/CMakeFiles/uni_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/uni_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
