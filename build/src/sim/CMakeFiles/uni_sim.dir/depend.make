# Empty dependencies file for uni_sim.
# This may be replaced when dependencies are built.
