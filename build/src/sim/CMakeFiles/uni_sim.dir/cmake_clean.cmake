file(REMOVE_RECURSE
  "CMakeFiles/uni_sim.dir/bandwidth.cc.o"
  "CMakeFiles/uni_sim.dir/bandwidth.cc.o.d"
  "CMakeFiles/uni_sim.dir/e2e.cc.o"
  "CMakeFiles/uni_sim.dir/e2e.cc.o.d"
  "CMakeFiles/uni_sim.dir/event_queue.cc.o"
  "CMakeFiles/uni_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/uni_sim.dir/failure.cc.o"
  "CMakeFiles/uni_sim.dir/failure.cc.o.d"
  "CMakeFiles/uni_sim.dir/fluid.cc.o"
  "CMakeFiles/uni_sim.dir/fluid.cc.o.d"
  "CMakeFiles/uni_sim.dir/profiles.cc.o"
  "CMakeFiles/uni_sim.dir/profiles.cc.o.d"
  "CMakeFiles/uni_sim.dir/sim_cloud.cc.o"
  "CMakeFiles/uni_sim.dir/sim_cloud.cc.o.d"
  "CMakeFiles/uni_sim.dir/transfer_run.cc.o"
  "CMakeFiles/uni_sim.dir/transfer_run.cc.o.d"
  "libuni_sim.a"
  "libuni_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uni_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
