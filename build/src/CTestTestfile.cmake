# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("crypto")
subdirs("erasure")
subdirs("chunker")
subdirs("cloud")
subdirs("metadata")
subdirs("lock")
subdirs("sched")
subdirs("core")
subdirs("sim")
subdirs("baselines")
subdirs("workload")
