file(REMOVE_RECURSE
  "CMakeFiles/uni_baselines.dir/chunk_pipeline.cc.o"
  "CMakeFiles/uni_baselines.dir/chunk_pipeline.cc.o.d"
  "CMakeFiles/uni_baselines.dir/e2e_baselines.cc.o"
  "CMakeFiles/uni_baselines.dir/e2e_baselines.cc.o.d"
  "CMakeFiles/uni_baselines.dir/intuitive.cc.o"
  "CMakeFiles/uni_baselines.dir/intuitive.cc.o.d"
  "CMakeFiles/uni_baselines.dir/native_app.cc.o"
  "CMakeFiles/uni_baselines.dir/native_app.cc.o.d"
  "libuni_baselines.a"
  "libuni_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uni_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
