file(REMOVE_RECURSE
  "libuni_baselines.a"
)
