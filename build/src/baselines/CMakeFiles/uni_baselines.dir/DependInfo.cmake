
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/chunk_pipeline.cc" "src/baselines/CMakeFiles/uni_baselines.dir/chunk_pipeline.cc.o" "gcc" "src/baselines/CMakeFiles/uni_baselines.dir/chunk_pipeline.cc.o.d"
  "/root/repo/src/baselines/e2e_baselines.cc" "src/baselines/CMakeFiles/uni_baselines.dir/e2e_baselines.cc.o" "gcc" "src/baselines/CMakeFiles/uni_baselines.dir/e2e_baselines.cc.o.d"
  "/root/repo/src/baselines/intuitive.cc" "src/baselines/CMakeFiles/uni_baselines.dir/intuitive.cc.o" "gcc" "src/baselines/CMakeFiles/uni_baselines.dir/intuitive.cc.o.d"
  "/root/repo/src/baselines/native_app.cc" "src/baselines/CMakeFiles/uni_baselines.dir/native_app.cc.o" "gcc" "src/baselines/CMakeFiles/uni_baselines.dir/native_app.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/uni_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/uni_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/metadata/CMakeFiles/uni_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/uni_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/uni_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uni_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
