# Empty compiler generated dependencies file for uni_baselines.
# This may be replaced when dependencies are built.
