file(REMOVE_RECURSE
  "libuni_erasure.a"
)
