# Empty compiler generated dependencies file for uni_erasure.
# This may be replaced when dependencies are built.
