file(REMOVE_RECURSE
  "CMakeFiles/uni_erasure.dir/gf256.cc.o"
  "CMakeFiles/uni_erasure.dir/gf256.cc.o.d"
  "CMakeFiles/uni_erasure.dir/matrix.cc.o"
  "CMakeFiles/uni_erasure.dir/matrix.cc.o.d"
  "CMakeFiles/uni_erasure.dir/rs.cc.o"
  "CMakeFiles/uni_erasure.dir/rs.cc.o.d"
  "libuni_erasure.a"
  "libuni_erasure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uni_erasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
