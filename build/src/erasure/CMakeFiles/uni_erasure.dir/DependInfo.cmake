
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/erasure/gf256.cc" "src/erasure/CMakeFiles/uni_erasure.dir/gf256.cc.o" "gcc" "src/erasure/CMakeFiles/uni_erasure.dir/gf256.cc.o.d"
  "/root/repo/src/erasure/matrix.cc" "src/erasure/CMakeFiles/uni_erasure.dir/matrix.cc.o" "gcc" "src/erasure/CMakeFiles/uni_erasure.dir/matrix.cc.o.d"
  "/root/repo/src/erasure/rs.cc" "src/erasure/CMakeFiles/uni_erasure.dir/rs.cc.o" "gcc" "src/erasure/CMakeFiles/uni_erasure.dir/rs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/uni_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
