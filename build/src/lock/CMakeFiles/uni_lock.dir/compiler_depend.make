# Empty compiler generated dependencies file for uni_lock.
# This may be replaced when dependencies are built.
