file(REMOVE_RECURSE
  "CMakeFiles/uni_lock.dir/quorum_lock.cc.o"
  "CMakeFiles/uni_lock.dir/quorum_lock.cc.o.d"
  "libuni_lock.a"
  "libuni_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uni_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
