
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lock/quorum_lock.cc" "src/lock/CMakeFiles/uni_lock.dir/quorum_lock.cc.o" "gcc" "src/lock/CMakeFiles/uni_lock.dir/quorum_lock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/uni_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/uni_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/metadata/CMakeFiles/uni_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/uni_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
