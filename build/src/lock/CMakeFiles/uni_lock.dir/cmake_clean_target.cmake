file(REMOVE_RECURSE
  "libuni_lock.a"
)
