file(REMOVE_RECURSE
  "CMakeFiles/uni_cloud.dir/directory_cloud.cc.o"
  "CMakeFiles/uni_cloud.dir/directory_cloud.cc.o.d"
  "CMakeFiles/uni_cloud.dir/faulty_cloud.cc.o"
  "CMakeFiles/uni_cloud.dir/faulty_cloud.cc.o.d"
  "CMakeFiles/uni_cloud.dir/latent_cloud.cc.o"
  "CMakeFiles/uni_cloud.dir/latent_cloud.cc.o.d"
  "CMakeFiles/uni_cloud.dir/memory_cloud.cc.o"
  "CMakeFiles/uni_cloud.dir/memory_cloud.cc.o.d"
  "CMakeFiles/uni_cloud.dir/path.cc.o"
  "CMakeFiles/uni_cloud.dir/path.cc.o.d"
  "CMakeFiles/uni_cloud.dir/quota_cloud.cc.o"
  "CMakeFiles/uni_cloud.dir/quota_cloud.cc.o.d"
  "CMakeFiles/uni_cloud.dir/stats_cloud.cc.o"
  "CMakeFiles/uni_cloud.dir/stats_cloud.cc.o.d"
  "libuni_cloud.a"
  "libuni_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uni_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
