# Empty compiler generated dependencies file for uni_cloud.
# This may be replaced when dependencies are built.
