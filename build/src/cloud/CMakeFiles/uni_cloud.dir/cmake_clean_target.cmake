file(REMOVE_RECURSE
  "libuni_cloud.a"
)
