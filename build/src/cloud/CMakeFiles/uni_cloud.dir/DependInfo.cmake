
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/directory_cloud.cc" "src/cloud/CMakeFiles/uni_cloud.dir/directory_cloud.cc.o" "gcc" "src/cloud/CMakeFiles/uni_cloud.dir/directory_cloud.cc.o.d"
  "/root/repo/src/cloud/faulty_cloud.cc" "src/cloud/CMakeFiles/uni_cloud.dir/faulty_cloud.cc.o" "gcc" "src/cloud/CMakeFiles/uni_cloud.dir/faulty_cloud.cc.o.d"
  "/root/repo/src/cloud/latent_cloud.cc" "src/cloud/CMakeFiles/uni_cloud.dir/latent_cloud.cc.o" "gcc" "src/cloud/CMakeFiles/uni_cloud.dir/latent_cloud.cc.o.d"
  "/root/repo/src/cloud/memory_cloud.cc" "src/cloud/CMakeFiles/uni_cloud.dir/memory_cloud.cc.o" "gcc" "src/cloud/CMakeFiles/uni_cloud.dir/memory_cloud.cc.o.d"
  "/root/repo/src/cloud/path.cc" "src/cloud/CMakeFiles/uni_cloud.dir/path.cc.o" "gcc" "src/cloud/CMakeFiles/uni_cloud.dir/path.cc.o.d"
  "/root/repo/src/cloud/quota_cloud.cc" "src/cloud/CMakeFiles/uni_cloud.dir/quota_cloud.cc.o" "gcc" "src/cloud/CMakeFiles/uni_cloud.dir/quota_cloud.cc.o.d"
  "/root/repo/src/cloud/stats_cloud.cc" "src/cloud/CMakeFiles/uni_cloud.dir/stats_cloud.cc.o" "gcc" "src/cloud/CMakeFiles/uni_cloud.dir/stats_cloud.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/uni_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
