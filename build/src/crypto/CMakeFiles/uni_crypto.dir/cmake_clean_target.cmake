file(REMOVE_RECURSE
  "libuni_crypto.a"
)
