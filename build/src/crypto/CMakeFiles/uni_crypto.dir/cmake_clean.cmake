file(REMOVE_RECURSE
  "CMakeFiles/uni_crypto.dir/crc32.cc.o"
  "CMakeFiles/uni_crypto.dir/crc32.cc.o.d"
  "CMakeFiles/uni_crypto.dir/des.cc.o"
  "CMakeFiles/uni_crypto.dir/des.cc.o.d"
  "CMakeFiles/uni_crypto.dir/sha1.cc.o"
  "CMakeFiles/uni_crypto.dir/sha1.cc.o.d"
  "CMakeFiles/uni_crypto.dir/sha256.cc.o"
  "CMakeFiles/uni_crypto.dir/sha256.cc.o.d"
  "libuni_crypto.a"
  "libuni_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uni_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
