# Empty compiler generated dependencies file for uni_crypto.
# This may be replaced when dependencies are built.
