# Empty compiler generated dependencies file for bench_fig13_deltasync.
# This may be replaced when dependencies are built.
