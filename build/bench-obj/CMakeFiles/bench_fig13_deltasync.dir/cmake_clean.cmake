file(REMOVE_RECURSE
  "../bench/bench_fig13_deltasync"
  "../bench/bench_fig13_deltasync.pdb"
  "CMakeFiles/bench_fig13_deltasync.dir/bench_fig13_deltasync.cc.o"
  "CMakeFiles/bench_fig13_deltasync.dir/bench_fig13_deltasync.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_deltasync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
