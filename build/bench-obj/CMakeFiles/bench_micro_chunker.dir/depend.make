# Empty dependencies file for bench_micro_chunker.
# This may be replaced when dependencies are built.
