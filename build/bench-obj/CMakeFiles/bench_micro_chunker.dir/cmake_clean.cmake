file(REMOVE_RECURSE
  "../bench/bench_micro_chunker"
  "../bench/bench_micro_chunker.pdb"
  "CMakeFiles/bench_micro_chunker.dir/bench_micro_chunker.cc.o"
  "CMakeFiles/bench_micro_chunker.dir/bench_micro_chunker.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_chunker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
