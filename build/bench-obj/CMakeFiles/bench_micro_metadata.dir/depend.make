# Empty dependencies file for bench_micro_metadata.
# This may be replaced when dependencies are built.
