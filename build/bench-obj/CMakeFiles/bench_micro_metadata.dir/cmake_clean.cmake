file(REMOVE_RECURSE
  "../bench/bench_micro_metadata"
  "../bench/bench_micro_metadata.pdb"
  "CMakeFiles/bench_micro_metadata.dir/bench_micro_metadata.cc.o"
  "CMakeFiles/bench_micro_metadata.dir/bench_micro_metadata.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
