# Empty dependencies file for bench_fig09_sizesweep.
# This may be replaced when dependencies are built.
