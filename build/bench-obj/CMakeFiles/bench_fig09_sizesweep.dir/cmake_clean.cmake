file(REMOVE_RECURSE
  "../bench/bench_fig09_sizesweep"
  "../bench/bench_fig09_sizesweep.pdb"
  "CMakeFiles/bench_fig09_sizesweep.dir/bench_fig09_sizesweep.cc.o"
  "CMakeFiles/bench_fig09_sizesweep.dir/bench_fig09_sizesweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_sizesweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
