file(REMOVE_RECURSE
  "../bench/bench_fig02_filesize"
  "../bench/bench_fig02_filesize.pdb"
  "CMakeFiles/bench_fig02_filesize.dir/bench_fig02_filesize.cc.o"
  "CMakeFiles/bench_fig02_filesize.dir/bench_fig02_filesize.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_filesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
