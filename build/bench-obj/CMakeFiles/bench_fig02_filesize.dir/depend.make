# Empty dependencies file for bench_fig02_filesize.
# This may be replaced when dependencies are built.
