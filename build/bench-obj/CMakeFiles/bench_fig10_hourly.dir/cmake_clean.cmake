file(REMOVE_RECURSE
  "../bench/bench_fig10_hourly"
  "../bench/bench_fig10_hourly.pdb"
  "CMakeFiles/bench_fig10_hourly.dir/bench_fig10_hourly.cc.o"
  "CMakeFiles/bench_fig10_hourly.dir/bench_fig10_hourly.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_hourly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
