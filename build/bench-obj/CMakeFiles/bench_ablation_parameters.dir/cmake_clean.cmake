file(REMOVE_RECURSE
  "../bench/bench_ablation_parameters"
  "../bench/bench_ablation_parameters.pdb"
  "CMakeFiles/bench_ablation_parameters.dir/bench_ablation_parameters.cc.o"
  "CMakeFiles/bench_ablation_parameters.dir/bench_ablation_parameters.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
