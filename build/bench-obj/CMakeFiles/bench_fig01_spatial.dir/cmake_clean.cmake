file(REMOVE_RECURSE
  "../bench/bench_fig01_spatial"
  "../bench/bench_fig01_spatial.pdb"
  "CMakeFiles/bench_fig01_spatial.dir/bench_fig01_spatial.cc.o"
  "CMakeFiles/bench_fig01_spatial.dir/bench_fig01_spatial.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
