# Empty compiler generated dependencies file for bench_fig01_spatial.
# This may be replaced when dependencies are built.
