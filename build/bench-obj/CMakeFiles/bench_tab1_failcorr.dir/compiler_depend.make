# Empty compiler generated dependencies file for bench_tab1_failcorr.
# This may be replaced when dependencies are built.
