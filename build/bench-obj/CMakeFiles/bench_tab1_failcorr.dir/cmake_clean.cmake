file(REMOVE_RECURSE
  "../bench/bench_tab1_failcorr"
  "../bench/bench_tab1_failcorr.pdb"
  "CMakeFiles/bench_tab1_failcorr.dir/bench_tab1_failcorr.cc.o"
  "CMakeFiles/bench_tab1_failcorr.dir/bench_tab1_failcorr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_failcorr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
