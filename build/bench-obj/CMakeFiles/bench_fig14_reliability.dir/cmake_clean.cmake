file(REMOVE_RECURSE
  "../bench/bench_fig14_reliability"
  "../bench/bench_fig14_reliability.pdb"
  "CMakeFiles/bench_fig14_reliability.dir/bench_fig14_reliability.cc.o"
  "CMakeFiles/bench_fig14_reliability.dir/bench_fig14_reliability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
