# Empty dependencies file for bench_fig14_reliability.
# This may be replaced when dependencies are built.
