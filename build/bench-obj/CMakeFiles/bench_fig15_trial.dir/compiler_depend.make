# Empty compiler generated dependencies file for bench_fig15_trial.
# This may be replaced when dependencies are built.
