file(REMOVE_RECURSE
  "../bench/bench_fig15_trial"
  "../bench/bench_fig15_trial.pdb"
  "CMakeFiles/bench_fig15_trial.dir/bench_fig15_trial.cc.o"
  "CMakeFiles/bench_fig15_trial.dir/bench_fig15_trial.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_trial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
