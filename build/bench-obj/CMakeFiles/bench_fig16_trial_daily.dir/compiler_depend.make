# Empty compiler generated dependencies file for bench_fig16_trial_daily.
# This may be replaced when dependencies are built.
