file(REMOVE_RECURSE
  "../bench/bench_fig12_cumulative"
  "../bench/bench_fig12_cumulative.pdb"
  "CMakeFiles/bench_fig12_cumulative.dir/bench_fig12_cumulative.cc.o"
  "CMakeFiles/bench_fig12_cumulative.dir/bench_fig12_cumulative.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_cumulative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
