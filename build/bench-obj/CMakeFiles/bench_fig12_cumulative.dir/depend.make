# Empty dependencies file for bench_fig12_cumulative.
# This may be replaced when dependencies are built.
