# Empty compiler generated dependencies file for bench_micro_lock.
# This may be replaced when dependencies are built.
