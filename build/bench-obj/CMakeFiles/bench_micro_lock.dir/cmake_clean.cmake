file(REMOVE_RECURSE
  "../bench/bench_micro_lock"
  "../bench/bench_micro_lock.pdb"
  "CMakeFiles/bench_micro_lock.dir/bench_micro_lock.cc.o"
  "CMakeFiles/bench_micro_lock.dir/bench_micro_lock.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
