file(REMOVE_RECURSE
  "../bench/bench_tab3_overhead"
  "../bench/bench_tab3_overhead.pdb"
  "CMakeFiles/bench_tab3_overhead.dir/bench_tab3_overhead.cc.o"
  "CMakeFiles/bench_tab3_overhead.dir/bench_tab3_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
