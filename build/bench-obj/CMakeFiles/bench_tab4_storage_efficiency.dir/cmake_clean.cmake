file(REMOVE_RECURSE
  "../bench/bench_tab4_storage_efficiency"
  "../bench/bench_tab4_storage_efficiency.pdb"
  "CMakeFiles/bench_tab4_storage_efficiency.dir/bench_tab4_storage_efficiency.cc.o"
  "CMakeFiles/bench_tab4_storage_efficiency.dir/bench_tab4_storage_efficiency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab4_storage_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
