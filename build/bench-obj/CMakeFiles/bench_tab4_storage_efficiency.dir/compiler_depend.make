# Empty compiler generated dependencies file for bench_tab4_storage_efficiency.
# This may be replaced when dependencies are built.
