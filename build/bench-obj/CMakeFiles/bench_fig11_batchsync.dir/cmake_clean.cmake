file(REMOVE_RECURSE
  "../bench/bench_fig11_batchsync"
  "../bench/bench_fig11_batchsync.pdb"
  "CMakeFiles/bench_fig11_batchsync.dir/bench_fig11_batchsync.cc.o"
  "CMakeFiles/bench_fig11_batchsync.dir/bench_fig11_batchsync.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_batchsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
