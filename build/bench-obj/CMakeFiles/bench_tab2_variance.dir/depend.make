# Empty dependencies file for bench_tab2_variance.
# This may be replaced when dependencies are built.
