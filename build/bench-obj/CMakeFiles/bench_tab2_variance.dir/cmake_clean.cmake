file(REMOVE_RECURSE
  "../bench/bench_tab2_variance"
  "../bench/bench_tab2_variance.pdb"
  "CMakeFiles/bench_tab2_variance.dir/bench_tab2_variance.cc.o"
  "CMakeFiles/bench_tab2_variance.dir/bench_tab2_variance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
