# Empty compiler generated dependencies file for bench_ablation_deltasync.
# This may be replaced when dependencies are built.
