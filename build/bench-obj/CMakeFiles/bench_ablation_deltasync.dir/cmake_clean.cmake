file(REMOVE_RECURSE
  "../bench/bench_ablation_deltasync"
  "../bench/bench_ablation_deltasync.pdb"
  "CMakeFiles/bench_ablation_deltasync.dir/bench_ablation_deltasync.cc.o"
  "CMakeFiles/bench_ablation_deltasync.dir/bench_ablation_deltasync.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_deltasync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
