# Empty dependencies file for bench_fig03_temporal.
# This may be replaced when dependencies are built.
