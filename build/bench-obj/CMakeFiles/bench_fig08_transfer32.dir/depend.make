# Empty dependencies file for bench_fig08_transfer32.
# This may be replaced when dependencies are built.
