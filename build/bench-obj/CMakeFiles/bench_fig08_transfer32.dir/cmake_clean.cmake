file(REMOVE_RECURSE
  "../bench/bench_fig08_transfer32"
  "../bench/bench_fig08_transfer32.pdb"
  "CMakeFiles/bench_fig08_transfer32.dir/bench_fig08_transfer32.cc.o"
  "CMakeFiles/bench_fig08_transfer32.dir/bench_fig08_transfer32.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_transfer32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
