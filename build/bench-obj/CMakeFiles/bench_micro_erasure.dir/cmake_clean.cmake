file(REMOVE_RECURSE
  "../bench/bench_micro_erasure"
  "../bench/bench_micro_erasure.pdb"
  "CMakeFiles/bench_micro_erasure.dir/bench_micro_erasure.cc.o"
  "CMakeFiles/bench_micro_erasure.dir/bench_micro_erasure.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_erasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
