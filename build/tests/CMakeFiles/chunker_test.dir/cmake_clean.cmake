file(REMOVE_RECURSE
  "CMakeFiles/chunker_test.dir/chunker_test.cc.o"
  "CMakeFiles/chunker_test.dir/chunker_test.cc.o.d"
  "chunker_test"
  "chunker_test.pdb"
  "chunker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chunker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
