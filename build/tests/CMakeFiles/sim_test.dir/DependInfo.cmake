
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/sim_test.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/uni_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/uni_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/erasure/CMakeFiles/uni_erasure.dir/DependInfo.cmake"
  "/root/repo/build/src/chunker/CMakeFiles/uni_chunker.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/uni_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/metadata/CMakeFiles/uni_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/lock/CMakeFiles/uni_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/uni_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/uni_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uni_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/uni_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/uni_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
