# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/erasure_test[1]_include.cmake")
include("/root/repo/build/tests/chunker_test[1]_include.cmake")
include("/root/repo/build/tests/cloud_test[1]_include.cmake")
include("/root/repo/build/tests/metadata_test[1]_include.cmake")
include("/root/repo/build/tests/lock_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/sched_property_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
