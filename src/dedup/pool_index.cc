#include "dedup/pool_index.h"

#include <algorithm>
#include <chrono>

namespace unidrive::dedup {

namespace {
// Backstop so a leaked tombstone (a GC'ing client that died between
// try_begin_gc and finish_gc) degrades to the pre-tombstone behavior
// (probe misses, re-upload may race a dead client's deletes) instead of
// wedging every prober of that id forever.
constexpr std::chrono::seconds kTombstoneWait{5};
}  // namespace

std::size_t SegmentPoolIndex::distinct_block_indices(const Entry& e) {
  std::set<std::uint32_t> idx;
  for (const metadata::BlockLocation& b : e.blocks) idx.insert(b.block_index);
  return idx.size();
}

SegmentPoolIndex::ProbeResult SegmentPoolIndex::probe_and_retain(
    const std::string& folder, const std::string& id,
    std::uint64_t expected_size, std::size_t min_distinct_blocks) {
  std::unique_lock<std::mutex> lock(mu_);
  // A tombstoned id has block deletes in flight. Answering now would be
  // wrong either way: a hit hands out dying locations, a miss triggers a
  // re-upload to the very paths still being removed (paths are
  // deterministic in the content). Wait for finish_gc, then answer.
  tombstone_cv_.wait_for(lock, kTombstoneWait,
                         [&] { return tombstones_.count(id) == 0; });
  ++probes_;
  ProbeResult r;
  auto it = entries_.find(id);
  if (it == entries_.end()) return r;
  Entry& e = it->second;
  // Sanity screen: a size mismatch means a hash collision or index
  // corruption; too few distinct indices means the pooled copy cannot be
  // decoded on its own. Either way a fresh upload is the safe answer.
  if (e.size != expected_size ||
      distinct_block_indices(e) < min_distinct_blocks) {
    return r;
  }
  ++hits_;
  r.hit = true;
  r.size = e.size;
  r.blocks = e.blocks;
  if (e.folders.count(folder) == 0 && e.pinned.insert(folder).second) {
    r.newly_retained = true;
  }
  return r;
}

void SegmentPoolIndex::release(const std::string& folder,
                               const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  it->second.pinned.erase(folder);
  if (it->second.folders.empty() && it->second.pinned.empty()) {
    entries_.erase(it);
  }
}

void SegmentPoolIndex::absorb_image(const std::string& folder,
                                    const metadata::SyncFolderImage& image) {
  std::lock_guard<std::mutex> lock(mu_);
  // Upsert everything the committed image carries (stubs excluded: a
  // blockless record is bookkeeping, not a decodable pooled segment).
  for (const auto& [id, info] : image.segments()) {
    if (info.blocks.empty()) continue;
    Entry& e = entries_[id];
    e.size = info.size;
    e.blocks = info.blocks;
    e.folders.insert(folder);
    e.pinned.erase(folder);  // commit supersedes the probe pin
  }
  // Release ids this folder referenced before but no longer carries.
  for (auto it = entries_.begin(); it != entries_.end();) {
    Entry& e = it->second;
    const bool held = e.folders.count(folder) != 0 ||
                      e.pinned.count(folder) != 0;
    const auto* info = image.find_segment(it->first);
    if (held && (info == nullptr || info->blocks.empty())) {
      e.folders.erase(folder);
      e.pinned.erase(folder);
    }
    if (e.folders.empty() && e.pinned.empty()) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

bool SegmentPoolIndex::referenced_elsewhere(const std::string& folder,
                                            const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  const Entry& e = it->second;
  auto other = [&](const std::set<std::string>& s) {
    return std::any_of(s.begin(), s.end(),
                       [&](const std::string& f) { return f != folder; });
  };
  return other(e.folders) || other(e.pinned);
}

bool SegmentPoolIndex::try_begin_gc(const std::string& folder,
                                    const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    const Entry& e = it->second;
    for (const std::string& f : e.folders) {
      if (f != folder) return false;
    }
    for (const std::string& f : e.pinned) {
      if (f != folder) return false;
    }
    entries_.erase(it);
  }
  ++tombstones_[id];
  return true;
}

void SegmentPoolIndex::finish_gc(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tombstones_.find(id);
  if (it == tombstones_.end()) return;
  if (--it->second == 0) tombstones_.erase(it);
  tombstone_cv_.notify_all();
}

PoolStats SegmentPoolIndex::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return PoolStats{entries_.size(), probes_, hits_};
}

std::size_t SegmentPoolIndex::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::size_t SegmentPoolIndex::reference_count(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return 0;
  std::set<std::string> all = it->second.folders;
  all.insert(it->second.pinned.begin(), it->second.pinned.end());
  return all.size();
}

}  // namespace unidrive::dedup
