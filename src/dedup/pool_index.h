// In-process fingerprint index over the content-addressed segment pool
// (DESIGN.md §13). Block objects live at the folder-less path
// `/data/<addr>_<idx>` — `addr` a one-way fingerprint of the segment id
// (crypto::storage_address), deterministic in the content — so every folder
// synced over the same cloud set shares one physical pool; this index is
// the shared view of it. The upload
// pipeline probes it before encode/transfer (a hit skips both and commits
// only a file→segment reference), and per-folder GC consults it so a block
// still referenced by another folder is never deleted.
//
// The index is advisory for dedup (a miss merely costs a re-upload of bytes
// the cloud already had) but load-bearing for cross-folder GC, so its two
// safety-critical transitions are atomic under one mutex:
//   - probe_and_retain: hit + refcount pin in one step, so a concurrent GC
//     cannot free the blocks between the probe and the pin;
//   - try_begin_gc: the reverse — if no other folder holds the segment the
//     entry is removed *before* the caller deletes blocks, so a concurrent
//     probe can no longer hand out soon-to-be-deleted locations. A granted
//     GC additionally leaves a tombstone until finish_gc(): block paths
//     are deterministic, so without it a prober that misses could re-upload
//     the same content to the exact paths the in-flight deletes are about
//     to remove. Probes for a tombstoned id wait (bounded) for the clear.
//
// Entries enter only via absorb_image (committed folder images) and
// probe_and_retain, so a probe never returns blocks that were not durably
// placed. References are keyed per folder (all devices of one folder share
// the key: within-folder liveness is already tracked by the image's own
// refcounts; this index only answers "does anyone ELSE still need it?").
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "metadata/image.h"
#include "metadata/types.h"

namespace unidrive::dedup {

struct PoolStats {
  std::uint64_t entries = 0;
  std::uint64_t probes = 0;
  std::uint64_t hits = 0;
};

class SegmentPoolIndex {
 public:
  struct ProbeResult {
    bool hit = false;
    // True when this probe added `folder` to the segment's reference set
    // (the caller must release() if its commit is abandoned).
    bool newly_retained = false;
    std::uint64_t size = 0;
    std::vector<metadata::BlockLocation> blocks;
  };

  // Dedup probe: on a hit for a segment of the expected size with at least
  // `min_distinct_blocks` distinct block indices placed, pins `folder` into
  // the reference set and returns the known locations. Misses (or entries
  // that fail the sanity checks) leave the index unchanged.
  ProbeResult probe_and_retain(const std::string& folder,
                               const std::string& id,
                               std::uint64_t expected_size,
                               std::size_t min_distinct_blocks);

  // Undo a probe_and_retain whose commit was abandoned. Only drops the
  // reference if it is not also backed by the folder's committed image.
  void release(const std::string& folder, const std::string& id);

  // Reconcile `folder`'s reference set with a committed image: segments in
  // the image are retained (and their sizes/locations refreshed), segments
  // the folder no longer carries are released. Call after every image
  // adoption so the index tracks the folder's durable state.
  void absorb_image(const std::string& folder,
                    const metadata::SyncFolderImage& image);

  // True when a folder other than `folder` currently references `id`.
  [[nodiscard]] bool referenced_elsewhere(const std::string& folder,
                                          const std::string& id) const;

  // GC guard: if another folder references `id`, returns false (the caller
  // must keep the physical blocks). Otherwise removes the entry — so no
  // concurrent probe can hand it out again — tombstones the id, and
  // returns true (the caller may delete the blocks, then MUST finish_gc).
  // Unknown ids return true: nothing to protect, but the tombstone is
  // still taken (their blocks may exist and be mid-delete).
  bool try_begin_gc(const std::string& folder, const std::string& id);

  // Clears the tombstone taken by a granted try_begin_gc once the caller's
  // block deletes completed; wakes probes waiting on it. One clear per
  // grant (concurrent GCs of one id hold the tombstone until the last).
  void finish_gc(const std::string& id);

  [[nodiscard]] PoolStats stats() const;
  [[nodiscard]] std::size_t entry_count() const;
  // Number of folders currently referencing `id` (0 if unknown). Test hook.
  [[nodiscard]] std::size_t reference_count(const std::string& id) const;

 private:
  struct Entry {
    std::uint64_t size = 0;
    std::vector<metadata::BlockLocation> blocks;
    std::set<std::string> folders;           // committed references
    std::set<std::string> pinned;            // probe pins awaiting commit
  };

  static std::size_t distinct_block_indices(const Entry& e);

  mutable std::mutex mu_;
  std::condition_variable tombstone_cv_;
  std::map<std::string, Entry> entries_;
  // id -> outstanding try_begin_gc grants whose deletes are in flight.
  std::map<std::string, std::size_t> tombstones_;
  std::uint64_t probes_ = 0;
  std::uint64_t hits_ = 0;
};

using PoolIndexPtr = std::shared_ptr<SegmentPoolIndex>;

}  // namespace unidrive::dedup
