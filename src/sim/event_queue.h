// Discrete-event simulation core: a virtual clock and an event queue.
//
// All performance experiments (Figures 1-16) run in virtual time so a month
// of half-hourly measurements or a 7-node batch-sync takes milliseconds of
// wall clock, fully deterministic under a seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"

namespace unidrive::sim {

using SimTime = double;  // seconds of virtual time

class SimEnv {
 public:
  explicit SimEnv(std::uint64_t seed = 1) : rng_(seed) {}

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  Rng& rng() noexcept { return rng_; }

  // Schedules `fn` to run `delay` seconds from now (>= 0).
  void schedule(SimTime delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }
  void schedule_at(SimTime when, std::function<void()> fn);

  // Runs events until the queue drains. Returns the final time.
  SimTime run();
  // Runs events with time <= until (the clock ends at `until` if it was
  // reached, or at the last event otherwise).
  SimTime run_until(SimTime until);
  // Executes the single next event; false when the queue is empty.
  bool step();

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // FIFO tiebreak for simultaneous events
    std::function<void()> fn;

    bool operator>(const Event& other) const noexcept {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Rng rng_;
};

// Clock adapter over virtual time, so components built on the Clock
// abstraction (circuit breakers, retry deadlines) run unmodified inside the
// simulator: breaker probe timers elapse in simulated seconds.
class SimEnvClock final : public Clock {
 public:
  explicit SimEnvClock(const SimEnv& env) noexcept : env_(env) {}
  [[nodiscard]] TimePoint now() const override { return env_.now(); }

 private:
  const SimEnv& env_;
};

}  // namespace unidrive::sim
