#include "sim/bandwidth.h"

#include <cmath>
#include <cstdlib>

namespace unidrive::sim {

namespace {

constexpr double kSecondsPerDay = 86400.0;

// splitmix64: cheap stateless hash for per-slot noise.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double uniform01(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Approximate inverse-normal via Box-Muller on two hash-derived uniforms.
double hashed_normal(std::uint64_t seed, std::uint64_t slot) noexcept {
  const double u1 = uniform01(mix(seed ^ slot * 0x9E3779B97F4A7C15ULL));
  const double u2 = uniform01(mix(seed + slot * 0xD1B54A32D192ED03ULL + 1));
  const double r = std::sqrt(-2.0 * std::log(std::max(u1, 0x1.0p-53)));
  return r * std::cos(2.0 * M_PI * u2);
}

class ConstantBw final : public BandwidthModel {
 public:
  explicit ConstantBw(double rate) : rate_(rate) {}
  [[nodiscard]] double at(SimTime) const override { return rate_; }

 private:
  double rate_;
};

class FluctuatingBw final : public BandwidthModel {
 public:
  FluctuatingBw(double base, FluctuationParams params, std::uint64_t seed)
      : base_(base), params_(params), seed_(seed) {}

  [[nodiscard]] double at(SimTime t) const override {
    const double diurnal =
        1.0 + params_.diurnal_amplitude *
                  std::sin(2.0 * M_PI * (t + params_.diurnal_phase_sec) /
                           kSecondsPerDay);
    const auto slot = static_cast<std::uint64_t>(t / params_.slot_seconds);
    // Smooth between slot draws (linear interpolation) so rates do not jump
    // discontinuously mid-transfer.
    const double n0 = hashed_normal(seed_, slot);
    const double n1 = hashed_normal(seed_, slot + 1);
    const double frac =
        t / params_.slot_seconds - static_cast<double>(slot);
    const double noise =
        std::exp(params_.noise_sigma * (n0 * (1 - frac) + n1 * frac));
    const double rate = base_ * diurnal * noise;
    return std::max(rate, base_ * params_.floor_fraction);
  }

 private:
  double base_;
  FluctuationParams params_;
  std::uint64_t seed_;
};

class ScaledBw final : public BandwidthModel {
 public:
  ScaledBw(BandwidthPtr inner, double factor)
      : inner_(std::move(inner)), factor_(factor) {}
  [[nodiscard]] double at(SimTime t) const override {
    return inner_->at(t) * factor_;
  }

 private:
  BandwidthPtr inner_;
  double factor_;
};

}  // namespace

BandwidthPtr constant_bw(double bytes_per_sec) {
  return std::make_shared<ConstantBw>(bytes_per_sec);
}

BandwidthPtr fluctuating_bw(double base_bytes_per_sec,
                            const FluctuationParams& params,
                            std::uint64_t seed) {
  return std::make_shared<FluctuatingBw>(base_bytes_per_sec, params, seed);
}

BandwidthPtr scaled_bw(BandwidthPtr inner, double factor) {
  return std::make_shared<ScaledBw>(std::move(inner), factor);
}

namespace {

class TraceBw final : public BandwidthModel {
 public:
  explicit TraceBw(std::vector<TraceSample> samples)
      : samples_(std::move(samples)) {}

  [[nodiscard]] double at(SimTime t) const override {
    if (t <= samples_.front().time) return samples_.front().bytes_per_sec;
    if (t >= samples_.back().time) return samples_.back().bytes_per_sec;
    // Binary search for the surrounding pair, then interpolate.
    std::size_t lo = 0, hi = samples_.size() - 1;
    while (hi - lo > 1) {
      const std::size_t mid = (lo + hi) / 2;
      (samples_[mid].time <= t ? lo : hi) = mid;
    }
    const TraceSample& a = samples_[lo];
    const TraceSample& b = samples_[hi];
    const double frac = (t - a.time) / std::max(1e-12, b.time - a.time);
    return a.bytes_per_sec + frac * (b.bytes_per_sec - a.bytes_per_sec);
  }

 private:
  std::vector<TraceSample> samples_;
};

}  // namespace

BandwidthPtr trace_bw(std::vector<TraceSample> samples) {
  return std::make_shared<TraceBw>(std::move(samples));
}

Result<BandwidthPtr> trace_bw_from_csv(std::string_view csv) {
  std::vector<TraceSample> samples;
  std::size_t start = 0;
  while (start < csv.size()) {
    std::size_t end = csv.find('\n', start);
    if (end == std::string_view::npos) end = csv.size();
    std::string_view line = csv.substr(start, end - start);
    start = end + 1;
    // Trim and skip comments/blank lines.
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    if (line.empty() || line.front() == '#') continue;
    const std::size_t comma = line.find(',');
    if (comma == std::string_view::npos) {
      return make_error(ErrorCode::kInvalidArgument,
                        "trace line missing comma: " + std::string(line));
    }
    char* endptr = nullptr;
    const std::string ts(line.substr(0, comma));
    const std::string rs(line.substr(comma + 1));
    const double t = std::strtod(ts.c_str(), &endptr);
    const double rate = std::strtod(rs.c_str(), nullptr);
    if (rate <= 0) {
      return make_error(ErrorCode::kInvalidArgument,
                        "non-positive rate in trace: " + rs);
    }
    if (!samples.empty() && t < samples.back().time) {
      return make_error(ErrorCode::kInvalidArgument,
                        "trace samples out of order");
    }
    samples.push_back({t, rate});
  }
  if (samples.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "empty trace");
  }
  return trace_bw(std::move(samples));
}

}  // namespace unidrive::sim
