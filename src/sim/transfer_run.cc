#include "sim/transfer_run.h"

#include <algorithm>
#include <memory>

#include "sim/job_runner.h"

namespace unidrive::sim {

namespace {

// Non-owning shared_ptr adapter: the synchronous entry points borrow the
// caller's scheduler, which outlives the run.
template <typename T>
std::shared_ptr<T> borrow(T& object) {
  return std::shared_ptr<T>(&object, [](T*) {});
}

}  // namespace

UploadRunResult run_upload_job(SimEnv& env,
                               const std::vector<SimCloud*>& clouds,
                               sched::UploadScheduler& scheduler,
                               sched::ThroughputMonitor& monitor,
                               const RunConfig& config) {
  UploadRunResult result;
  result.file_available_time.assign(scheduler.file_count(), -1.0);

  auto runner = std::make_shared<JobRunner<sched::UploadScheduler>>(
      env, clouds, borrow(scheduler), monitor, config,
      sched::Direction::kUpload);
  bool done_flag = false;
  runner->on_progress = [&] {
    for (std::size_t i = 0; i < result.file_available_time.size(); ++i) {
      if (result.file_available_time[i] < 0 && scheduler.file_available(i)) {
        result.file_available_time[i] = env.now();
      }
    }
  };

  result.start_time = env.now();
  runner->start([&] { done_flag = true; });
  while (!done_flag && env.step()) {
  }

  result.finish_time = runner->finish_time();
  result.all_available = scheduler.all_available();
  result.all_reliable = scheduler.all_reliable();
  result.available_time = result.start_time;
  for (const double t : result.file_available_time) {
    result.available_time = std::max(result.available_time, t);
  }
  if (!result.all_available) result.available_time = result.finish_time;
  result.block_transfers = runner->transfers();
  result.failed_transfers = runner->failures();
  return result;
}

DownloadRunResult run_download_job(SimEnv& env,
                                   const std::vector<SimCloud*>& clouds,
                                   sched::DownloadScheduler& scheduler,
                                   sched::ThroughputMonitor& monitor,
                                   const RunConfig& config) {
  DownloadRunResult result;
  result.file_complete_time.assign(scheduler.file_count(), -1.0);

  auto runner = std::make_shared<JobRunner<sched::DownloadScheduler>>(
      env, clouds, borrow(scheduler), monitor, config,
      sched::Direction::kDownload);
  bool done_flag = false;
  runner->on_progress = [&] {
    for (std::size_t i = 0; i < result.file_complete_time.size(); ++i) {
      if (result.file_complete_time[i] < 0 && scheduler.file_complete(i)) {
        result.file_complete_time[i] = env.now();
      }
    }
  };

  result.start_time = env.now();
  runner->start([&] { done_flag = true; });
  while (!done_flag && env.step()) {
  }

  result.finish_time = runner->finish_time();
  result.all_complete = scheduler.all_complete();
  result.block_transfers = runner->transfers();
  result.failed_transfers = runner->failures();
  return result;
}

}  // namespace unidrive::sim
