#include "sim/failure.h"

#include <algorithm>

namespace unidrive::sim {

namespace {
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
double uniform01(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}
}  // namespace

int FailureModel::troubled_cloud(SimTime t) const {
  const auto slot =
      static_cast<std::uint64_t>(t / params_.trouble_slot_seconds);
  const double u = uniform01(mix(seed_ ^ (slot * 0x2545F4914F6CDD1DULL)));
  if (u >= params_.trouble_probability) return -1;
  // Pick the troubled cloud from a second hash so the choice is independent
  // of whether trouble occurs.
  const std::uint64_t pick = mix(seed_ + slot * 0x9E3779B97F4A7C15ULL + 7);
  return static_cast<int>(pick % num_clouds_);
}

double FailureModel::failure_prob(std::size_t cloud, SimTime t,
                                  std::uint64_t bytes) const {
  double base = params_.base_rate;
  if (cloud < base_override_.size() && base_override_[cloud] >= 0) {
    base = base_override_[cloud];
  }
  const double size_term =
      params_.per_mb_rate * static_cast<double>(bytes) / (1 << 20);
  double p = base + size_term;
  if (troubled_cloud(t) == static_cast<int>(cloud)) {
    p = std::max(p, params_.troubled_rate + size_term);
  }
  return std::min(p, 0.95);
}

void FailureModel::set_base_rate(std::size_t cloud, double rate) {
  if (base_override_.size() < num_clouds_) {
    base_override_.assign(num_clouds_, -1.0);
  }
  if (cloud < base_override_.size()) base_override_[cloud] = rate;
}

}  // namespace unidrive::sim
