#include "sim/sim_cloud.h"

namespace unidrive::sim {

SimCloud::SimCloud(SimEnv& env, FluidNet& net, SimCloudConfig config)
    : env_(env), net_(net), config_(std::move(config)) {
  net_.set_link({config_.id, /*download=*/false}, config_.up,
                config_.per_connection_cap);
  net_.set_link({config_.id, /*download=*/true}, config_.down,
                config_.per_connection_cap);
}

void SimCloud::transfer(double bytes, bool is_download,
                        std::function<void(bool)> done) {
  ++stats_.requests;
  if (outage_) {
    ++stats_.failures;
    // Outage manifests quickly: connection refused after ~latency.
    env_.schedule(config_.request_latency,
                  [done = std::move(done)] { done(false); });
    return;
  }

  double fail_prob = 0;
  if (config_.failure != nullptr) {
    fail_prob = config_.failure->failure_prob(
        config_.failure_index, env_.now(),
        static_cast<std::uint64_t>(bytes));
  }
  const bool fails = env_.rng().bernoulli(fail_prob);
  // A failed transfer aborts partway: it consumes time and bandwidth for a
  // random fraction of the payload (Section 3.2: large files fail more and
  // waste more).
  const double effective_bytes =
      fails ? bytes * env_.rng().uniform(0.05, 0.9) : bytes;

  if (fails) ++stats_.failures;
  if (is_download) {
    stats_.bytes_down += effective_bytes;
  } else {
    stats_.bytes_up += effective_bytes;
  }

  const LinkId link{config_.id, is_download};
  env_.schedule(config_.request_latency, [this, link, effective_bytes, fails,
                                          done = std::move(done)]() mutable {
    net_.start_transfer(link, effective_bytes,
                        [fails, done = std::move(done)](SimTime) {
                          done(!fails);
                        });
  });
}

void SimCloud::upload(double bytes, std::function<void(bool)> done) {
  transfer(bytes, /*is_download=*/false, std::move(done));
}

void SimCloud::download(double bytes, std::function<void(bool)> done) {
  transfer(bytes, /*is_download=*/true, std::move(done));
}

void SimCloud::small_op(std::function<void(bool)> done) {
  ++stats_.requests;
  if (outage_) {
    ++stats_.failures;
    env_.schedule(config_.request_latency,
                  [done = std::move(done)] { done(false); });
    return;
  }
  double fail_prob = 0;
  if (config_.failure != nullptr) {
    fail_prob =
        config_.failure->failure_prob(config_.failure_index, env_.now(), 0);
  }
  const bool fails = env_.rng().bernoulli(fail_prob);
  if (fails) ++stats_.failures;
  env_.schedule(config_.request_latency,
                [fails, done = std::move(done)] { done(!fails); });
}

}  // namespace unidrive::sim
