#include "sim/fluid.h"

#include <algorithm>
#include <cassert>

namespace unidrive::sim {

void FluidNet::set_link(LinkId link, BandwidthPtr bandwidth,
                        double per_connection_cap) {
  Link& l = links_[link];
  l.bandwidth = std::move(bandwidth);
  l.per_conn_cap = per_connection_cap;
}

void FluidNet::set_access_capacity(bool download, double bytes_per_sec) {
  access_capacity_[download ? 1 : 0] = bytes_per_sec;
}

void FluidNet::allocate_rates(SimTime now) {
  if (transfers_.empty()) return;
  // Progressive filling (max-min fairness): every unfrozen transfer's rate
  // grows at the same pace; when a resource saturates, its transfers freeze.
  // Resources: each link's B(t), each direction's access capacity, and each
  // transfer's own per-connection cap.
  struct Resource {
    double remaining = 0;
    std::size_t unfrozen = 0;
  };
  std::map<LinkId, Resource> link_res;
  Resource access_res[2];
  const bool access_limited[2] = {access_capacity_[0] > 0,
                                  access_capacity_[1] > 0};
  access_res[0].remaining = access_capacity_[0];
  access_res[1].remaining = access_capacity_[1];

  std::vector<Transfer*> unfrozen;
  for (Transfer& t : transfers_) {
    t.rate = 0;
    Resource& r = link_res[t.link];
    if (r.unfrozen == 0) {
      r.remaining = std::max(links_[t.link].bandwidth->at(now), 1e-9);
    }
    ++r.unfrozen;
    ++access_res[t.link.download ? 1 : 0].unfrozen;
    unfrozen.push_back(&t);
  }

  while (!unfrozen.empty()) {
    // Smallest uniform increment until some constraint binds.
    double delta = 1e18;
    for (const auto& [link, r] : link_res) {
      if (r.unfrozen > 0) {
        delta = std::min(delta, r.remaining / static_cast<double>(r.unfrozen));
      }
    }
    for (int d = 0; d < 2; ++d) {
      if (access_limited[d] && access_res[d].unfrozen > 0) {
        delta = std::min(delta, access_res[d].remaining /
                                    static_cast<double>(access_res[d].unfrozen));
      }
    }
    // Per-connection caps bind individually.
    for (Transfer* t : unfrozen) {
      const double cap = links_[t->link].per_conn_cap;
      if (cap > 0) delta = std::min(delta, cap - t->rate);
    }
    delta = std::max(delta, 0.0);

    for (Transfer* t : unfrozen) t->rate += delta;
    for (auto& [link, r] : link_res) {
      r.remaining -= delta * static_cast<double>(r.unfrozen);
    }
    for (int d = 0; d < 2; ++d) {
      access_res[d].remaining -=
          delta * static_cast<double>(access_res[d].unfrozen);
    }

    // Freeze transfers whose constraints saturated.
    std::vector<Transfer*> still;
    for (Transfer* t : unfrozen) {
      const Resource& lr = link_res[t->link];
      const int d = t->link.download ? 1 : 0;
      const double cap = links_[t->link].per_conn_cap;
      const bool frozen = lr.remaining <= 1e-9 ||
                          (access_limited[d] &&
                           access_res[d].remaining <= 1e-9) ||
                          (cap > 0 && t->rate >= cap - 1e-12);
      if (frozen) {
        // Remove from resource unfrozen counts.
        --link_res[t->link].unfrozen;
        --access_res[d].unfrozen;
      } else {
        still.push_back(t);
      }
    }
    if (still.size() == unfrozen.size()) break;  // numerical safety
    unfrozen = std::move(still);
  }
  for (Transfer& t : transfers_) t.rate = std::max(t.rate, 1e-9);
}

void FluidNet::advance_to(SimTime t) {
  const double dt = t - last_advance_;
  if (dt <= 0) {
    last_advance_ = t;
    return;
  }
  // Integrate with the allocation at the interval midpoint (B(t) is smooth).
  allocate_rates(last_advance_ + dt / 2);
  std::vector<TransferHandle> finished;
  for (auto it = transfers_.begin(); it != transfers_.end(); ++it) {
    it->remaining -= it->rate * dt;
    if (it->remaining <= 1e-6) finished.push_back(it);
  }
  last_advance_ = t;
  for (const TransferHandle handle : finished) {
    auto done = std::move(handle->done);
    --links_[handle->link].active;
    transfers_.erase(handle);
    if (done) done(t);
  }
}

void FluidNet::reschedule() {
  const std::uint64_t gen = ++generation_;
  if (transfers_.empty()) return;

  const SimTime now = env_.now();
  allocate_rates(now);
  // Earliest completion assuming current rates hold.
  double next_event = quantum_;
  for (const Transfer& t : transfers_) {
    next_event = std::min(next_event, t.remaining / t.rate);
  }
  next_event = std::max(next_event, 1e-6);

  env_.schedule(next_event, [this, gen] {
    if (gen != generation_) return;  // superseded by a newer state change
    advance_to(env_.now());
    reschedule();
  });
}

void FluidNet::start_transfer(LinkId link, double bytes,
                              std::function<void(SimTime)> done) {
  assert(links_.count(link) != 0 && "link not configured");
  if (bytes <= 0) {
    env_.schedule(0, [done = std::move(done), this] {
      if (done) done(env_.now());
    });
    return;
  }
  // Bring all flows up to date before the membership change alters rates.
  advance_to(env_.now());
  transfers_.push_back(Transfer{link, bytes, 0, std::move(done)});
  ++links_[link].active;
  reschedule();
}

}  // namespace unidrive::sim
