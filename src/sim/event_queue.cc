#include "sim/event_queue.h"

#include <cassert>

namespace unidrive::sim {

void SimEnv::schedule_at(SimTime when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule into the past");
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

bool SimEnv::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the event is copied out, then popped.
  Event event = queue_.top();
  queue_.pop();
  now_ = event.when;
  event.fn();
  return true;
}

SimTime SimEnv::run() {
  while (step()) {
  }
  return now_;
}

SimTime SimEnv::run_until(SimTime until) {
  while (!queue_.empty() && queue_.top().when <= until) {
    step();
  }
  if (now_ < until) now_ = until;
  return now_;
}

}  // namespace unidrive::sim
