#include "sim/population/population.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "cloud/split_cloud.h"
#include "metadata/types.h"
#include "repair/service.h"

namespace unidrive::sim::population {

namespace {

constexpr std::size_t kNoClient = static_cast<std::size_t>(-1);

// Propagation latencies stretch from sub-second (a live folder-mate pulls on
// its next step) to a full poll interval plus a degraded sync; the default
// request-latency bounds top out at 2 minutes and would flatten the tail.
std::vector<double> propagation_bounds() {
  return {0.1,  0.25, 0.5,  1,    2,    5,    10,   20,   40,   60,  90,
          120,  180,  240,  300,  420,  600,  900,  1200, 1800, 2700, 3600};
}

std::uint64_t sum_cloud_counters(const obs::MetricsSnapshot& snap,
                                 const std::string& suffix) {
  std::uint64_t total = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("cloud.", 0) != 0) continue;
    if (name.size() < suffix.size()) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    total += value;
  }
  return total;
}

std::uint64_t folder_seed(std::uint64_t base, std::size_t folder) {
  // splitmix64 step over (base, folder) so folders get decorrelated streams.
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (folder + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

PopulationHarness::PopulationHarness(FleetConfig config)
    : config_(config), env_(config.seed), world_(0.0), rng_(config.seed) {
  virtual_sleep_ = [this](Duration d) { world_.advance(d); };
  obs_ = std::make_shared<obs::Observability>(world_);
  // Pre-create the tail histogram with propagation-scale bounds (the first
  // histogram() call pins the bounds for the name).
  obs_->metrics.histogram("fleet.sync_latency", propagation_bounds());

  if (config_.shared_block_pool) {
    fleet_pool_ = std::make_shared<dedup::SegmentPoolIndex>();
    for (std::size_t i = 0; i < config_.num_clouds; ++i) {
      shared_data_.push_back(std::make_shared<cloud::MemoryCloud>(
          static_cast<cloud::CloudId>(i), "shared-c" + std::to_string(i)));
    }
  }

  config_.hot_folder_members =
      std::max<std::size_t>(1, std::min(config_.hot_folder_members,
                                        config_.num_clients));
  config_.clients_per_folder = std::max<std::size_t>(1, config_.clients_per_folder);
  const std::size_t rest = config_.num_clients - config_.hot_folder_members;
  num_folders_ =
      1 + (rest + config_.clients_per_folder - 1) / config_.clients_per_folder;

  clients_.resize(config_.num_clients);
  for (std::size_t c = 0; c < config_.num_clients; ++c) {
    const std::size_t f = folder_of(c);
    clients_[c].folder = static_cast<std::uint32_t>(f);
    const auto [begin, end] = folder_members(f);
    (void)end;
    clients_[c].device = static_cast<std::uint16_t>(c - begin);
  }
  folders_.resize(num_folders_);

  // Fleet arrival process: expected sessions/sec across the whole fleet,
  // shaped by the same fluctuation model the cloud links use (diurnal swing
  // + slot noise) and sampled by Lewis thinning against a fixed cap.
  const double base_rate = static_cast<double>(config_.num_clients) *
                           config_.sessions_per_client_per_day / 86400.0;
  arrival_rate_ = fluctuating_bw(std::max(base_rate, 1e-9),
                                 config_.arrival_shape, config_.seed ^ 0xa11);
  arrival_rate_cap_ =
      std::max(base_rate, 1e-9) * (1.0 + config_.arrival_shape.diurnal_amplitude) *
      std::exp(3.0 * config_.arrival_shape.noise_sigma);
}

PopulationHarness::~PopulationHarness() = default;

std::size_t PopulationHarness::folder_of(std::size_t client) const {
  if (client < config_.hot_folder_members) return 0;
  return 1 + (client - config_.hot_folder_members) / config_.clients_per_folder;
}

std::pair<std::size_t, std::size_t> PopulationHarness::folder_members(
    std::size_t folder) const {
  if (folder == 0) return {0, config_.hot_folder_members};
  const std::size_t begin =
      config_.hot_folder_members + (folder - 1) * config_.clients_per_folder;
  return {begin, std::min(begin + config_.clients_per_folder,
                          config_.num_clients)};
}

std::size_t PopulationHarness::idle_state_bytes() const {
  // Only fleet-proportional bookkeeping counts: the per-client records and
  // the (mostly null) folder pointer table. Materialized folder/session
  // state is activity-proportional by design and excluded.
  const std::size_t total = clients_.capacity() * sizeof(LightClient) +
                            folders_.capacity() * sizeof(folders_[0]);
  return total / std::max<std::size_t>(1, config_.num_clients);
}

PopulationHarness::FolderState& PopulationHarness::materialize_folder(
    std::size_t folder) {
  assert(folder < num_folders_);
  if (folders_[folder]) return *folders_[folder];

  auto state = std::make_unique<FolderState>();
  state->rng_seed = folder_seed(config_.seed, folder);
  state->pool = config_.shared_block_pool
                    ? fleet_pool_
                    : std::make_shared<dedup::SegmentPoolIndex>();
  for (std::size_t i = 0; i < config_.num_clouds; ++i) {
    const auto id = static_cast<cloud::CloudId>(i);
    auto memory =
        std::make_shared<cloud::MemoryCloud>(id, "c" + std::to_string(i));
    cloud::CloudPtr inner = memory;
    if (config_.shared_block_pool) {
      // Blocks land on the fleet-shared /data plane; metadata, locks and
      // changelists stay on this folder's private store.
      inner = std::make_shared<cloud::SplitNamespaceCloud>(shared_data_[i],
                                                           memory);
    }
    std::shared_ptr<cloud::QuotaCloud> quota;
    for (const QuotaBand& band : quota_bands_) {
      if (band.stride != 0 && folder % band.stride == band.phase &&
          band.cloud_index == i) {
        quota = std::make_shared<cloud::QuotaCloud>(inner, band.bytes);
        inner = quota;
      }
    }
    auto faulty = std::make_shared<cloud::FaultyCloud>(
        inner, cloud::FaultProfile{}, state->rng_seed + i, virtual_sleep_);
    state->raw.push_back(memory);
    state->quota.push_back(quota);
    state->faulty.push_back(faulty);
    state->enrolled.push_back(faulty);
    // Ground-truth block reads (audits, defect injection) must hit wherever
    // the blocks physically live.
    state->raw_by_id[id] = config_.shared_block_pool ? shared_data_[i].get()
                                                     : memory.get();
  }
  state->next_cloud_id = static_cast<cloud::CloudId>(config_.num_clouds);
  state->up_bw = fluctuating_bw(config_.base_up_bw, config_.link_shape,
                                state->rng_seed ^ 0x55);
  state->down_bw = fluctuating_bw(config_.base_down_bw, config_.link_shape,
                                  state->rng_seed ^ 0xaa);
  folders_[folder] = std::move(state);
  touched_.push_back(folder);
  return *folders_[folder];
}

std::unique_ptr<PopulationHarness::Session> PopulationHarness::make_session(
    std::size_t folder, std::size_t client_id, const std::string& name) {
  FolderState& state = materialize_folder(folder);
  auto session = std::make_unique<Session>();
  session->client_id = client_id;
  session->folder = folder;
  session->fs = std::make_shared<core::MemoryLocalFs>();

  core::ClientConfig cfg;
  cfg.device = name;
  cfg.theta = config_.theta;
  cfg.driver.connections_per_cloud = config_.connections_per_cloud;
  cfg.pipeline.threads = std::max<std::size_t>(1, config_.client_threads);
  cfg.lock.retry.backoff_base = 0.001;
  cfg.lock.retry.backoff_cap = 0.01;
  cfg.retry.max_attempts = 3;
  cfg.retry.backoff_base = 0.001;
  cfg.retry.backoff_cap = 0.01;
  cfg.breaker.consecutive_failures_to_open = 3;
  cfg.breaker.open_duration = config_.breaker_open_duration;
  cfg.redundancy_floor = config_.redundancy_floor;
  cfg.sleep = virtual_sleep_;
  cfg.pool = state.pool;
  cfg.folder_id = "f" + std::to_string(folder);

  session->client = std::make_unique<core::UniDriveClient>(
      state.enrolled, session->fs, cfg, world_, rng_.fork());
  return session;
}

void PopulationHarness::sync_world_clock() {
  if (world_.now() < env_.now()) world_.set(env_.now());
}

double PopulationHarness::think_delay() {
  return rng_.exponential(std::max(config_.mean_think, 1e-3));
}

// --- arrival process --------------------------------------------------------

void PopulationHarness::schedule_next_arrival() {
  if (draining_) return;
  const double dt = rng_.exponential(1.0 / arrival_rate_cap_);
  if (env_.now() + dt > config_.horizon) return;
  env_.schedule(dt, [this] {
    const double lambda =
        std::min(arrival_rate_->at(env_.now()), arrival_rate_cap_);
    if (rng_.next_double() * arrival_rate_cap_ < lambda) {
      const std::size_t client = rng_.next_below(config_.num_clients);
      try_activate(client, config_.ops_per_session, config_.activation_retries);
    }
    schedule_next_arrival();
  });
}

void PopulationHarness::try_activate(std::size_t client_id, std::size_t ops,
                                     std::size_t retries_left,
                                     std::optional<PendingObservation> watch) {
  sync_world_clock();
  LightClient& lc = clients_[client_id];
  if (lc.active) {
    // Already materialized: hand any watch to the live session so the
    // propagation of the triggering commit is still observed.
    if (watch) {
      auto it = live_.find(client_id);
      if (it != live_.end()) it->second->pending.push_back(*watch);
    }
    return;
  }
  if (live_.size() >= config_.max_live_sessions) {
    if (retries_left > 0) {
      env_.schedule(think_delay(), [this, client_id, ops, retries_left, watch] {
        try_activate(client_id, ops, retries_left - 1, watch);
      });
    } else {
      ++result_.deferred;
      obs::add_counter(obs_.get(), "fleet.deferred_activations");
    }
    return;
  }

  auto session = make_session(lc.folder, client_id,
                              "d" + std::to_string(client_id));
  session->ops_left = ops;
  if (watch) session->pending.push_back(*watch);
  lc.active = true;
  std::shared_ptr<Session> shared = std::move(session);
  live_[client_id] = shared;
  ++result_.sessions;
  result_.peak_live_sessions =
      std::max(result_.peak_live_sessions, live_.size());
  obs::set_gauge(obs_.get(), "fleet.live_sessions",
                 static_cast<double>(live_.size()));
  env_.schedule(0, [this, shared] { session_step(shared); });
}

// --- the session state machine ----------------------------------------------

PopulationHarness::SyncOutcome PopulationHarness::run_sync(Session& session,
                                                           int tries) {
  sync_world_clock();
  const double t0 = world_.now();
  const obs::MetricsSnapshot before =
      session.client->observability()->metrics.snapshot();

  SyncOutcome out;
  for (int attempt = 0; attempt < tries; ++attempt) {
    auto r = session.client->sync();
    if (r.is_ok()) {
      out.ok = true;
      out.report = std::move(r).take();
      break;
    }
    ++result_.sync_errors;
    obs::add_counter(obs_.get(), "fleet.sync_errors");
  }
  ++result_.syncs;
  obs::add_counter(obs_.get(), "fleet.syncs");

  // Virtual cost of the round: injected stalls already advanced the world
  // clock; payload bytes ride the folder's fluctuating links and every cloud
  // request pays its share of RPC latency (requests fan out across clouds).
  const obs::MetricsSnapshot after =
      session.client->observability()->metrics.snapshot();
  const double up = static_cast<double>(sum_cloud_counters(after, ".bytes_up") -
                                        sum_cloud_counters(before, ".bytes_up"));
  const double down =
      static_cast<double>(sum_cloud_counters(after, ".bytes_down") -
                          sum_cloud_counters(before, ".bytes_down"));
  const std::uint64_t ops_after = sum_cloud_counters(after, ".ok") +
                                  sum_cloud_counters(after, ".err");
  const std::uint64_t ops_before = sum_cloud_counters(before, ".ok") +
                                   sum_cloud_counters(before, ".err");
  const FolderState& folder = *folders_[session.folder];
  const double fanout =
      static_cast<double>(std::max<std::size_t>(1, folder.enrolled.size()));
  const double stall = world_.now() - t0;
  double cost = stall;
  cost += up / std::max(1.0, folder.up_bw->at(env_.now()));
  cost += down / std::max(1.0, folder.down_bw->at(env_.now()));
  cost += static_cast<double>(ops_after - ops_before) * config_.request_latency /
          fanout;
  out.virt_cost = cost;
  obs::observe(obs_.get(), "fleet.sync_cost", cost);

  if (out.ok) {
    note_applied(session);
    if (out.report.committed) {
      ++result_.commits;
      result_.conflicts += out.report.conflicts.size();
      result_.segments_deduped += out.report.segments_deduped;
      result_.dedup_bytes_saved += out.report.dedup_bytes_saved;
      obs::add_counter(obs_.get(), "fleet.commits");
      obs::add_counter(obs_.get(), "fleet.conflicts",
                       out.report.conflicts.size());
      FolderState& mut = *folders_[session.folder];
      const std::uint64_t counter = out.report.version.counter;
      mut.latest_counter = std::max(mut.latest_counter, counter);
      // Conflicted edits: the cloud's version won the original path and OUR
      // content was kept at the conflict-copy path. Record the token where
      // the content actually lives — otherwise a later (legitimate) delete
      // of the conflict copy would read as a lost update.
      std::map<std::string, std::string> conflicted;
      for (const metadata::ConflictRecord& c : out.report.conflicts) {
        if (!c.conflict_copy.empty()) conflicted[c.path] = c.conflict_copy;
      }
      for (const PendingEdit& edit : session.uncommitted) {
        if (edit.is_delete) {
          if (conflicted.count(edit.path) == 0) {
            mut.oracle.record_delete(edit.path, counter);
          }
        } else {
          const auto moved = conflicted.find(edit.path);
          const std::string& where =
              moved == conflicted.end() ? edit.path : moved->second;
          mut.oracle.record_commit(where, edit.token, counter);
        }
      }
      session.uncommitted.clear();
      after_commit(session.folder, out.report, &session);
    }
  }
  return out;
}

const Bytes& PopulationHarness::popular_payload(std::size_t index) {
  const std::size_t bytes = config_.duplicate_payload_bytes != 0
                                ? config_.duplicate_payload_bytes
                                : 3 * config_.theta;
  while (popular_payloads_.size() <= index) {
    // Seeded off the harness seed only — independent of call order, so two
    // runs (or two folders within one run) agree on every library entry.
    Rng gen(config_.seed ^ (0x9e3779b97f4a7c15ULL + popular_payloads_.size()));
    popular_payloads_.push_back(gen.bytes(bytes));
  }
  return popular_payloads_[index];
}

void PopulationHarness::note_applied(Session& session) {
  const std::uint64_t applied =
      session.client->image().version().counter;
  if (session.client_id != kNoClient) {
    clients_[session.client_id].last_applied = applied;
  }
  auto& pending = session.pending;
  auto it = pending.begin();
  while (it != pending.end()) {
    if (it->counter <= applied) {
      obs::observe(obs_.get(), "fleet.sync_latency",
                   world_.now() - it->committed_at);
      it = pending.erase(it);
    } else {
      ++it;
    }
  }
}

void PopulationHarness::after_commit(std::size_t folder,
                                     const core::SyncReport& report,
                                     Session* committer) {
  const PendingObservation watch{report.version.counter, world_.now()};

  // Live folder-mates observe the propagation on their next pull.
  for (auto& [id, session] : live_) {
    if (session.get() == committer || session->folder != folder) continue;
    session->pending.push_back(watch);
  }

  // Idle mates poll at period tau; rather than simulate every idle device's
  // timer, wake a sample of them at a uniform offset within the interval —
  // the latency distribution the fleet would see, at O(commits) cost.
  const auto [begin, end] = folder_members(folder);
  if (end <= begin) return;
  const std::size_t span = end - begin;
  for (std::size_t i = 0; i < config_.wake_fanout; ++i) {
    const std::size_t member = begin + rng_.next_below(span);
    LightClient& lc = clients_[member];
    if (lc.active || lc.wake_pending) continue;
    if (live_.count(member) != 0) continue;
    lc.wake_pending = true;
    const double delay = rng_.uniform(0.0, config_.poll_interval);
    env_.schedule(delay, [this, member, watch] {
      clients_[member].wake_pending = false;
      try_activate(member, 0, 0, watch);
    });
  }
}

void PopulationHarness::session_step(const std::shared_ptr<Session>& session) {
  sync_world_clock();
  const SyncOutcome outcome = run_sync(*session, 4);

  if (session->ops_left == 0) {
    finish_session(session);
    return;
  }
  --session->ops_left;

  if (rng_.bernoulli(config_.edit_probability)) {
    const std::vector<std::string> local = session->fs->list_files();
    const bool do_delete =
        !local.empty() && rng_.bernoulli(config_.delete_probability);
    if (do_delete) {
      const std::string path = local[rng_.next_below(local.size())];
      if (session->fs->remove(path).is_ok()) {
        session->uncommitted.push_back(PendingEdit{path, 0, true});
      }
    } else {
      const std::size_t slot = rng_.next_below(config_.max_files_per_folder);
      const std::string path = "/doc" + std::to_string(slot);
      const std::uint64_t token = ++token_counter_;
      const std::size_t range =
          config_.max_file_bytes > config_.min_file_bytes
              ? config_.max_file_bytes - config_.min_file_bytes + 1
              : 1;
      const std::size_t filler =
          config_.min_file_bytes + rng_.next_below(range);
      Bytes content = rng_.bytes(filler);
      const std::string marker = token_marker(token);
      const std::size_t offset = rng_.next_below(content.size() + 1);
      content.insert(content.begin() + static_cast<std::ptrdiff_t>(offset),
                     marker.begin(), marker.end());
      if (config_.duplicate_ratio > 0 &&
          rng_.bernoulli(config_.duplicate_ratio)) {
        // Append a fleet-wide popular payload after the unique head. The
        // CDC cut points resynchronize within the tail, so its interior
        // segments are byte-identical across files/devices and the pool
        // dedups them even though every file keeps its unique marker.
        const Bytes& tail = popular_payload(
            rng_.next_below(std::max<std::size_t>(1, config_.duplicate_library)));
        content.insert(content.end(), tail.begin(), tail.end());
      }
      if (session->fs->write(path, ByteSpan(content)).is_ok()) {
        // A same-step overwrite of a still-uncommitted edit supersedes it.
        auto& uc = session->uncommitted;
        uc.erase(std::remove_if(uc.begin(), uc.end(),
                                [&](const PendingEdit& e) {
                                  return e.path == path;
                                }),
                 uc.end());
        session->uncommitted.push_back(PendingEdit{path, token, false});
      }
    }
  }

  env_.schedule(outcome.virt_cost + think_delay(),
                [this, session] { session_step(session); });
}

void PopulationHarness::finish_session(const std::shared_ptr<Session>& session) {
  if (session->client_id != kNoClient) {
    clients_[session->client_id].active = false;
    live_.erase(session->client_id);
  }
  obs::set_gauge(obs_.get(), "fleet.live_sessions",
                 static_cast<double>(live_.size()));
}

// --- scenario surface -------------------------------------------------------

void PopulationHarness::set_fault_profile(std::size_t folder,
                                          std::size_t cloud_index,
                                          const cloud::FaultProfile& profile) {
  FolderState& state = materialize_folder(folder);
  if (cloud_index < state.faulty.size()) {
    state.faulty[cloud_index]->set_profile(profile);
  }
}

void PopulationHarness::quiesce_faults() {
  for (auto& state : folders_) {
    if (!state) continue;
    for (auto& faulty : state->faulty) {
      faulty->set_profile(cloud::FaultProfile{});
      faulty->set_outage(false);
    }
  }
}

void PopulationHarness::set_quota_band(std::size_t stride, std::size_t phase,
                                       std::size_t cloud_index,
                                       std::uint64_t quota_bytes) {
  quota_bands_.push_back(QuotaBand{stride, phase, cloud_index, quota_bytes});
}

void PopulationHarness::enable_repair_anchor(std::size_t folder) {
  // An anchor's orphan sweep lists the whole /data plane; on the fleet-
  // shared plane every other folder's blocks would look like orphans and be
  // quarantine-collected. Scenario authoring error — refuse loudly.
  assert(!config_.shared_block_pool &&
         "repair anchors are incompatible with shared_block_pool");
  if (config_.shared_block_pool) return;
  FolderState& state = materialize_folder(folder);
  if (state.anchor) return;
  state.chaos = true;
  chaos_folders_.push_back(folder);
  auto anchor = make_session(folder, kNoClient, "anchor" + std::to_string(folder));
  anchor->is_anchor = true;
  state.anchor = std::move(anchor);

  repair::RepairServiceConfig repair_cfg;
  repair_cfg.scrub.deep_verify_segments = 32;
  // Outages in these scenarios are transient flaps: never escalate a dark
  // cloud to "lost" and re-home its whole block population.
  repair_cfg.scrub.cloud_lost_after_passes = 1000000;
  state.repair =
      std::make_shared<repair::RepairService>(*state.anchor->client, repair_cfg);

  env_.schedule(config_.anchor_tick, [this, folder] { anchor_tick(folder); });
}

void PopulationHarness::anchor_tick(std::size_t folder) {
  sync_world_clock();
  FolderState& state = *folders_[folder];
  if (!state.anchor) return;
  run_sync(*state.anchor, 4);
  (void)state.repair->run_slice(
      core::MaintenanceBudget{config_.anchor_repair_blocks});
  if (!draining_ && env_.now() < config_.horizon) {
    env_.schedule(config_.anchor_tick, [this, folder] { anchor_tick(folder); });
  }
}

void PopulationHarness::flash_crowd(std::size_t sessions, double window) {
  const auto [begin, end] = folder_members(0);
  const std::size_t span = std::max<std::size_t>(1, end - begin);
  for (std::size_t i = 0; i < sessions; ++i) {
    const std::size_t member = begin + rng_.next_below(span);
    env_.schedule(rng_.uniform(0.0, std::max(window, 1e-3)),
                  [this, member] {
                    try_activate(member, config_.ops_per_session,
                                 config_.activation_retries);
                  });
  }
  obs::add_counter(obs_.get(), "fleet.flash_crowd_activations", sessions);
}

Status PopulationHarness::churn_cycle(std::size_t folder) {
  if (config_.shared_block_pool) {
    return Status(ErrorCode::kInvalidArgument,
                  "membership churn is incompatible with shared_block_pool: "
                  "a churned-in cloud id exists on one folder only");
  }
  sync_world_clock();
  FolderState& state = materialize_folder(folder);

  // A temporary member device executes the membership change through the
  // real re-plan/rebalance path (anchors do it for chaos folders).
  Session* actor = state.anchor.get();
  std::unique_ptr<Session> temp;
  if (actor == nullptr) {
    temp = make_session(folder, kNoClient, "churn" + std::to_string(folder));
    actor = temp.get();
  }
  const SyncOutcome pull = run_sync(*actor, 4);
  if (!pull.ok) return make_error(ErrorCode::kUnavailable, "churn pull failed");

  Status status;
  if (state.enrolled.size() > config_.num_clouds) {
    // Shed the most recently added provider; its blocks re-home first.
    const cloud::CloudId victim = state.enrolled.back()->id();
    status = actor->client->remove_cloud(victim);
    if (status.is_ok()) {
      state.enrolled.pop_back();
      state.faulty.pop_back();
      state.quota.pop_back();
      // The raw store stays in raw_by_id: audits must keep resolving any
      // placement metadata still (transiently) pointing at the old cloud.
      obs::add_counter(obs_.get(), "fleet.churn_removes");
    }
  } else {
    const cloud::CloudId id = state.next_cloud_id++;
    auto memory =
        std::make_shared<cloud::MemoryCloud>(id, "c" + std::to_string(id));
    auto faulty = std::make_shared<cloud::FaultyCloud>(
        memory, cloud::FaultProfile{}, state.rng_seed + id, virtual_sleep_);
    status = actor->client->add_cloud(faulty);
    if (status.is_ok()) {
      state.raw.push_back(memory);
      state.quota.push_back(nullptr);
      state.faulty.push_back(faulty);
      state.enrolled.push_back(faulty);
      state.raw_by_id[id] = memory.get();
      obs::add_counter(obs_.get(), "fleet.churn_adds");
    }
  }
  if (status.is_ok()) {
    state.latest_counter = std::max(
        state.latest_counter, actor->client->image().version().counter);
  }
  return status;
}

std::size_t PopulationHarness::inject_silent_defects(std::size_t folder,
                                                     std::size_t blocks,
                                                     bool rot) {
  FolderState& state = materialize_folder(folder);

  // Need a committed image to aim at; the anchor's view serves (silent
  // defects target chaos folders, which always run an anchor).
  const metadata::SyncFolderImage* image = nullptr;
  std::unique_ptr<Session> temp;
  if (state.anchor) {
    run_sync(*state.anchor, 4);
    image = &state.anchor->client->image();
  } else {
    temp = make_session(folder, kNoClient, "inject" + std::to_string(folder));
    if (!run_sync(*temp, 4).ok) return 0;
    image = &temp->client->image();
  }

  // At most ONE placement per segment, and only into segments that are
  // fully healthy right now (every placement present on the ground-truth
  // stores, no open ledger entry). That keeps every segment decodable at
  // every instant — so any unrecoverable segment an audit later reports is
  // a real durability bug, not the injector outpacing the repair loop.
  const repair::DurabilityTracker* ledger =
      state.repair ? state.repair->tracker().get() : nullptr;
  std::size_t hit = 0;
  for (const auto& [segment_id, segment] : image->segments()) {
    if (hit >= blocks) break;
    if (segment.refcount == 0 || segment.blocks.size() < 4) continue;
    bool healthy = true;
    for (const metadata::BlockLocation& loc : segment.blocks) {
      const auto raw = state.raw_by_id.find(loc.cloud);
      if (raw == state.raw_by_id.end() ||
          !raw->second
               ->download(metadata::block_path(segment_id, loc.block_index))
               .is_ok() ||
          (ledger != nullptr &&
           ledger->is_defective(segment_id, loc.block_index, loc.cloud))) {
        healthy = false;
        break;
      }
    }
    if (!healthy) continue;
    const metadata::BlockLocation& loc =
        segment.blocks[rng_.next_below(segment.blocks.size())];
    for (auto& faulty : state.faulty) {
      if (faulty->id() != loc.cloud) continue;
      const std::string path =
          metadata::block_path(segment_id, loc.block_index);
      const Status status =
          rot ? faulty->rot_stored(path) : faulty->drop_stored(path);
      if (status.is_ok()) ++hit;
      break;
    }
  }
  obs::add_counter(obs_.get(), "fleet.injected_defects", hit);
  return hit;
}

// --- audits ------------------------------------------------------------------

void PopulationHarness::schedule_audit_tick() {
  if (draining_) return;
  if (env_.now() + config_.audit_interval > config_.horizon) return;
  env_.schedule(config_.audit_interval, [this] {
    audit_tick();
    schedule_audit_tick();
  });
}

void PopulationHarness::audit_tick() {
  sync_world_clock();
  if (touched_.empty()) return;
  for (std::size_t i = 0;
       i < std::min(config_.audit_folders_per_tick, touched_.size()); ++i) {
    audit_folder_by_index(touched_[audit_cursor_ % touched_.size()], false);
    ++audit_cursor_;
  }
}

void PopulationHarness::audit_folder_by_index(std::size_t folder, bool strict) {
  FolderState& state = *folders_[folder];
  auto auditor = make_session(folder, kNoClient, "audit");
  const SyncOutcome pull = run_sync(*auditor, strict ? 10 : 3);
  const bool restored = pull.ok && pull.report.materialize.is_ok();

  ++result_.audits;
  obs::add_counter(obs_.get(), "fleet.audits");

  AuditContext ctx;
  ctx.image = &auditor->client->image();
  ctx.fs = auditor->fs.get();
  ctx.oracle = &state.oracle;
  for (const auto& [id, raw] : state.raw_by_id) ctx.raw[id] = raw;
  ctx.ledger = state.repair ? state.repair->tracker().get() : nullptr;
  ctx.k = auditor->client->config().k;
  ctx.redundancy_floor = config_.redundancy_floor;
  const AuditOutcome out = audit_folder(ctx);

  if (restored) {
    result_.lost_updates += out.missing_tokens;
    obs::add_counter(obs_.get(), "fleet.lost_updates", out.missing_tokens);
  } else {
    ++result_.restore_failures;
    obs::add_counter(obs_.get(), "fleet.restore_failures");
    if (strict) {
      // Faults are quiet and breakers expired: a strict audit that cannot
      // restore the folder IS data loss, not bad weather.
      result_.lost_updates += std::max<std::size_t>(out.expected_tokens, 1);
      obs::add_counter(obs_.get(), "fleet.lost_updates",
                       std::max<std::size_t>(out.expected_tokens, 1));
    }
  }
  result_.unrecoverable_segments += out.unrecoverable;
  obs::add_counter(obs_.get(), "fleet.unrecoverable_segments",
                   out.unrecoverable);
  if (strict && state.repair) {
    result_.underrep_unledgered += out.underrep_unledgered;
    obs::add_counter(obs_.get(), "fleet.underrep_unledgered",
                     out.underrep_unledgered);
  }
}

// --- run + drain -------------------------------------------------------------

FleetResult PopulationHarness::run(const Scenario& scenario) {
  for (const ScenarioAction& action : scenario.actions) {
    const double at =
        std::max(0.0, std::min(action.at_frac, 1.0)) * config_.horizon;
    env_.schedule_at(at, [this, &action] {
      sync_world_clock();
      action.run(*this);
    });
  }
  schedule_next_arrival();
  schedule_audit_tick();
  env_.run();
  drain_and_finalize();

  result_.clients = config_.num_clients;
  result_.folders = num_folders_;
  result_.folders_touched = touched_.size();
  for (const auto& state : folders_) {
    if (!state) continue;
    for (const auto& raw : state->raw) {
      result_.cloud_stored_bytes += raw->stored_bytes();
    }
  }
  // Under shared_block_pool the block bytes live on the fleet-wide /data
  // plane, outside every folder's private stores: count them once.
  for (const auto& shared : shared_data_) {
    result_.cloud_stored_bytes += shared->stored_bytes();
  }
  obs::set_gauge(obs_.get(), "fleet.folders_touched",
                 static_cast<double>(touched_.size()));
  obs::set_gauge(obs_.get(), "fleet.idle_state_bytes_per_client",
                 static_cast<double>(idle_state_bytes()));
  result_.metrics = obs_->metrics.snapshot();
  return result_;
}

void PopulationHarness::drain_and_finalize() {
  draining_ = true;
  // 1. The weather clears and every breaker's probe timer expires.
  quiesce_faults();
  world_.advance(config_.breaker_open_duration + 1.0);

  // 2. Repair anchors work off the defect ledger until it drains.
  for (const std::size_t folder : chaos_folders_) {
    FolderState& state = *folders_[folder];
    if (!state.anchor) continue;
    // Enough slices that the rotating deep-verify cursor crosses the whole
    // pool at least once — latent bit-rot must be FOUND before "backlog
    // empty" means "healed".
    run_sync(*state.anchor, 8);
    const std::size_t pool = state.anchor->client->image().segments().size();
    const int min_slices =
        static_cast<int>(pool / std::max<std::size_t>(1, 32) + 2);
    for (int i = 0; i < 200; ++i) {
      run_sync(*state.anchor, 8);
      (void)state.repair->run_slice(
          core::MaintenanceBudget{config_.anchor_repair_blocks});
      if (i + 1 >= min_slices &&
          state.anchor->client->durability()->backlog() == 0)
        break;
    }
    // 3. Final pull: the anchor (the folder's one persistent device) must
    //    end up current with the last committed version.
    run_sync(*state.anchor, 8);
    if (state.anchor->client->image().version().counter < state.latest_counter) {
      ++result_.stale_devices;
      obs::add_counter(obs_.get(), "fleet.stale_devices");
    }
  }

  // 4. Strict audits: every chaos folder, then sampled other touched
  //    folders up to the configured cap. Coverage is reported, not silent.
  std::vector<std::size_t> targets = chaos_folders_;
  for (const std::size_t folder : touched_) {
    if (targets.size() >= std::max<std::size_t>(config_.strict_audit_folders,
                                                chaos_folders_.size()))
      break;
    if (std::find(targets.begin(), targets.end(), folder) == targets.end()) {
      targets.push_back(folder);
    }
  }
  for (const std::size_t folder : targets) {
    audit_folder_by_index(folder, true);
  }
  result_.strict_audited = targets.size();
  obs::set_gauge(obs_.get(), "fleet.strict_audit_coverage",
                 touched_.empty()
                     ? 1.0
                     : static_cast<double>(targets.size()) /
                           static_cast<double>(touched_.size()));
}

}  // namespace unidrive::sim::population
