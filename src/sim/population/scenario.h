// Scenario programs for the population harness: named compositions of load
// shape, fault schedules and membership churn. A Scenario first tweaks the
// FleetConfig (arrival shape, quotas), then contributes timed actions that
// run against the live harness at virtual times — so "add a cloud under
// live traffic at t=900s" is one line of a program, not a bespoke bench.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

namespace unidrive::sim::population {

class PopulationHarness;
struct FleetConfig;
struct FleetResult;

struct ScenarioAction {
  // When to run, as a FRACTION of the configured horizon in [0, 1) — so one
  // scenario program scales from a CI smoke (minutes) to a nightly soak
  // (days) without editing its schedule.
  double at_frac = 0;
  std::string label;
  std::function<void(PopulationHarness&)> run;
};

struct Scenario {
  std::string name;
  std::string description;
  // Applied to the FleetConfig before the harness is built (may be null).
  std::function<void(FleetConfig&)> configure;
  std::vector<ScenarioAction> actions;
};

// Registered scenario programs:
//   steady           homogeneous Poisson arrivals, no faults
//   diurnal          strong day/night arrival swing (bandwidth-model shaped)
//   flash_crowd      bursts of activations on the hot shared folder
//   quota_exhaustion tight per-cloud quotas on a band of folders
//   cloud_churn      add/remove a provider with rebalancing, under traffic
//   chaos_soak       every fault injector incl. silent bit-rot/block-loss,
//                    scrub-and-repair anchors expected to hold durability
//   dedup_mix        half the edits append a fleet-popular payload over a
//                    fleet-shared /data plane; the content-addressed pool
//                    suppresses their cross-folder re-encode/upload
//   soak             composition of all of the above (the CI-gated mix)
std::vector<std::string> scenario_names();
Result<Scenario> make_scenario(const std::string& name);

// Applies scenario.configure to `base`, builds a PopulationHarness and runs
// it to completion. Declared here (implemented next to the scenarios) so
// benches and tests need only this header for the common path.
FleetResult run_scenario(FleetConfig base, const Scenario& scenario);

}  // namespace unidrive::sim::population
