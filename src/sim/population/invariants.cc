#include "sim/population/invariants.h"

#include <algorithm>
#include <set>

#include "metadata/types.h"

namespace unidrive::sim::population {

std::string token_marker(std::uint64_t token) {
  return "[T" + std::to_string(token) + "]";
}

void FolderOracle::record_commit(const std::string& path, std::uint64_t token,
                                 std::uint64_t version) {
  ++commits_;
  const auto deleted = deleted_at_.find(path);
  if (deleted != deleted_at_.end() && deleted->second >= version) return;
  auto it = expected_.find(path);
  if (it != expected_.end() && it->second.version >= version) return;
  expected_[path] = ExpectedEdit{token, version};
}

void FolderOracle::record_delete(const std::string& path,
                                 std::uint64_t version) {
  ++commits_;
  auto it = expected_.find(path);
  if (it != expected_.end() && it->second.version <= version) {
    expected_.erase(it);
  }
  std::uint64_t& mark = deleted_at_[path];
  mark = std::max(mark, version);
}

namespace {

bool contains(const Bytes& haystack, const std::string& needle) {
  if (needle.empty() || haystack.size() < needle.size()) return false;
  const auto* begin = reinterpret_cast<const char*>(haystack.data());
  return std::search(begin, begin + haystack.size(), needle.begin(),
                     needle.end()) != begin + haystack.size();
}

}  // namespace

AuditOutcome audit_folder(const AuditContext& ctx) {
  AuditOutcome out;

  // --- 1. lost updates: every expected token findable in some file -------
  std::vector<Bytes> contents;
  for (const std::string& path : ctx.fs->list_files()) {
    auto data = ctx.fs->read(path);
    if (data.is_ok()) contents.push_back(std::move(data).take());
  }
  for (const auto& [path, edit] : ctx.oracle->expected()) {
    ++out.expected_tokens;
    const std::string marker = token_marker(edit.token);
    const bool found =
        std::any_of(contents.begin(), contents.end(),
                    [&](const Bytes& c) { return contains(c, marker); });
    if (!found) ++out.missing_tokens;
  }

  // --- 2. durability: survivors per committed segment --------------------
  // One list per ground-truth store, then set membership per placement.
  std::map<cloud::CloudId, std::set<std::string>> present;
  for (const auto& [id, store] : ctx.raw) {
    auto listing = store->list(metadata::kDataDir);
    auto& names = present[id];
    if (listing.is_ok()) {
      for (const auto& info : listing.value()) names.insert(info.name);
    }
  }
  // Referenced = reachable from a current file snapshot. Refcounts are NOT
  // trusted: a pure reader's image arrives through changelist decode, which
  // leaves every refcount at zero until the next local merge rebuilds them.
  std::set<std::string> referenced;
  for (const auto& [path, snapshot] : ctx.image->files()) {
    for (const std::string& id : snapshot.segment_ids) referenced.insert(id);
  }
  for (const auto& [segment_id, segment] : ctx.image->segments()) {
    if (referenced.count(segment_id) == 0) continue;
    ++out.segments;
    std::size_t survivors = 0;
    bool missing_ledgered = false;
    bool any_missing = false;
    for (const metadata::BlockLocation& loc : segment.blocks) {
      const auto it = present.find(loc.cloud);
      const bool exists =
          it != present.end() &&
          it->second.count(
              metadata::block_name(segment_id, loc.block_index)) > 0;
      if (exists) {
        ++survivors;
      } else {
        any_missing = true;
        if (ctx.ledger != nullptr &&
            ctx.ledger->is_defective(segment_id, loc.block_index, loc.cloud)) {
          missing_ledgered = true;
        }
      }
    }
    out.min_survivors = std::min(out.min_survivors, survivors);
    if (survivors < ctx.k) {
      ++out.unrecoverable;
    } else if (survivors < ctx.k + ctx.redundancy_floor) {
      ++out.under_replicated;
      if (ctx.ledger != nullptr && any_missing && !missing_ledgered) {
        ++out.underrep_unledgered;
      }
    }
  }
  return out;
}

}  // namespace unidrive::sim::population
