#include "sim/population/scenario.h"

#include <algorithm>

#include "sim/population/population.h"

namespace unidrive::sim::population {

namespace {

// Chaos folders: the hot shared folder plus the first few cold ones, capped
// by what actually exists at the configured scale.
std::vector<std::size_t> chaos_targets(const PopulationHarness& h) {
  const std::size_t n = std::min<std::size_t>(4, h.num_folders());
  std::vector<std::size_t> out;
  for (std::size_t f = 0; f < n; ++f) out.push_back(f);
  return out;
}

void start_chaos(PopulationHarness& h) {
  for (const std::size_t f : chaos_targets(h)) {
    h.enable_repair_anchor(f);
    cloud::FaultProfile flappy;  // honest transient failures
    flappy.base_failure_rate = 0.05;
    flappy.per_mb_failure_rate = 0.05;
    h.set_fault_profile(f, 0, flappy);
    cloud::FaultProfile leaky;  // uploads report OK, store nothing
    leaky.block_loss_rate = 0.08;
    h.set_fault_profile(f, 1, leaky);
    cloud::FaultProfile hangy;  // stalls that blow attempt deadlines
    hangy.hang_rate = 0.01;
    hangy.hang_seconds = 20.0;
    h.set_fault_profile(f, 2, hangy);
    cloud::FaultProfile rotten;  // silent same-size corruption
    rotten.bitrot_rate = 0.08;
    h.set_fault_profile(f, 3, rotten);
    cloud::FaultProfile torn;  // half-written uploads reported as failed
    torn.torn_upload_rate = 0.05;
    h.set_fault_profile(f, 4, torn);
  }
}

void inject_round(PopulationHarness& h, bool rot) {
  for (const std::size_t f : chaos_targets(h)) {
    h.inject_silent_defects(f, 3, rot);
  }
}

void churn_round(PopulationHarness& h) {
  const std::size_t n = std::min<std::size_t>(3, h.num_folders());
  for (std::size_t f = 0; f < n; ++f) {
    (void)h.churn_cycle(f);  // degraded weather may defer a cycle; fine
  }
}

Scenario steady() {
  Scenario s;
  s.name = "steady";
  s.description = "homogeneous Poisson arrivals, no faults";
  s.configure = [](FleetConfig& c) {
    c.arrival_shape.diurnal_amplitude = 0.0;
    c.arrival_shape.noise_sigma = 0.2;
  };
  return s;
}

Scenario diurnal() {
  Scenario s;
  s.name = "diurnal";
  s.description = "strong day/night arrival swing shaped by the bandwidth "
                  "fluctuation model";
  s.configure = [](FleetConfig& c) {
    c.arrival_shape.diurnal_amplitude = 0.8;
    c.arrival_shape.noise_sigma = 0.5;
  };
  return s;
}

Scenario flash_crowd() {
  Scenario s;
  s.name = "flash_crowd";
  s.description = "bursts of activations on the hot shared folder";
  s.actions.push_back({0.3, "flash crowd 1", [](PopulationHarness& h) {
                         h.flash_crowd(2 * h.config().max_live_sessions, 120.0);
                       }});
  s.actions.push_back({0.65, "flash crowd 2", [](PopulationHarness& h) {
                         h.flash_crowd(2 * h.config().max_live_sessions, 60.0);
                       }});
  return s;
}

Scenario quota_exhaustion() {
  Scenario s;
  s.name = "quota_exhaustion";
  s.description = "a band of folders exhausts one cloud's quota; placement "
                  "degrades, commits keep working on the majority";
  s.actions.push_back({0.0, "arm quotas", [](PopulationHarness& h) {
                         h.set_quota_band(/*stride=*/3, /*phase=*/0,
                                          /*cloud_index=*/0,
                                          /*quota_bytes=*/32u << 10);
                       }});
  return s;
}

Scenario cloud_churn() {
  Scenario s;
  s.name = "cloud_churn";
  s.description = "add/remove a provider with rebalancing, under live traffic";
  for (const double at : {0.2, 0.45, 0.7, 0.9}) {
    s.actions.push_back({at, "churn cycle", churn_round});
  }
  return s;
}

Scenario chaos_soak() {
  Scenario s;
  s.name = "chaos_soak";
  s.description = "every fault injector incl. silent bit-rot/block-loss; "
                  "scrub-and-repair anchors keep fleet durability flat";
  s.actions.push_back({0.0, "start chaos", start_chaos});
  s.actions.push_back({0.35, "inject block loss", [](PopulationHarness& h) {
                         inject_round(h, /*rot=*/false);
                       }});
  s.actions.push_back({0.6, "inject bit-rot", [](PopulationHarness& h) {
                         inject_round(h, /*rot=*/true);
                       }});
  return s;
}

Scenario dedup_mix() {
  Scenario s;
  s.name = "dedup_mix";
  s.description = "half the edits append a fleet-popular payload; the "
                  "content-addressed pool suppresses their re-encode/upload";
  s.configure = [](FleetConfig& c) {
    c.arrival_shape.diurnal_amplitude = 0.0;
    c.arrival_shape.noise_sigma = 0.2;
    c.duplicate_ratio = 0.5;
    // Cross-folder hits require the fleet-shared /data plane: with per-
    // folder stacks the pool mirrors the folder image and never hits.
    c.shared_block_pool = true;
  };
  return s;
}

Scenario soak() {
  Scenario s;
  s.name = "soak";
  s.description = "the CI-gated composite: diurnal load + quotas + churn + "
                  "flash crowds + full chaos with repair";
  s.configure = [](FleetConfig& c) {
    c.arrival_shape.diurnal_amplitude = 0.6;
    c.arrival_shape.noise_sigma = 0.4;
  };
  s.actions.push_back({0.0, "arm quotas", [](PopulationHarness& h) {
                         h.set_quota_band(/*stride=*/5, /*phase=*/2,
                                          /*cloud_index=*/0,
                                          /*quota_bytes=*/32u << 10);
                       }});
  s.actions.push_back({0.0, "start chaos", start_chaos});
  s.actions.push_back({0.3, "inject block loss", [](PopulationHarness& h) {
                         inject_round(h, /*rot=*/false);
                       }});
  s.actions.push_back({0.45, "churn cycle", churn_round});
  s.actions.push_back({0.55, "flash crowd", [](PopulationHarness& h) {
                         h.flash_crowd(2 * h.config().max_live_sessions, 120.0);
                       }});
  s.actions.push_back({0.65, "inject bit-rot", [](PopulationHarness& h) {
                         inject_round(h, /*rot=*/true);
                       }});
  s.actions.push_back({0.85, "churn cycle", churn_round});
  return s;
}

}  // namespace

std::vector<std::string> scenario_names() {
  return {"steady",           "diurnal",     "flash_crowd",
          "quota_exhaustion", "cloud_churn", "chaos_soak",
          "dedup_mix",        "soak"};
}

Result<Scenario> make_scenario(const std::string& name) {
  if (name == "steady") return steady();
  if (name == "diurnal") return diurnal();
  if (name == "flash_crowd") return flash_crowd();
  if (name == "quota_exhaustion") return quota_exhaustion();
  if (name == "cloud_churn") return cloud_churn();
  if (name == "chaos_soak") return chaos_soak();
  if (name == "dedup_mix") return dedup_mix();
  if (name == "soak") return soak();
  return make_error(ErrorCode::kInvalidArgument,
                    "unknown scenario: " + name);
}

FleetResult run_scenario(FleetConfig base, const Scenario& scenario) {
  if (scenario.configure) scenario.configure(base);
  PopulationHarness harness(std::move(base));
  return harness.run(scenario);
}

}  // namespace unidrive::sim::population
