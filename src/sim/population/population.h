// Population-scale scenario harness (DESIGN.md §11).
//
// The paper's trial stops at 272 users; the north star is millions. This
// harness simulates a fleet of clients as *light state*: an idle client is
// ~16 bytes (folder, device slot, last-applied version) plus its share of a
// folder pointer — nothing else exists until an arrival event materializes
// a session. A session is a REAL core::UniDriveClient (full stack: CDC,
// encrypt, RS encode, quorum lock, staged pipelines, breakers) over the
// folder's shared in-memory cloud backends (MemoryCloud, optionally under
// QuotaCloud, always under FaultyCloud), so fleet-scale correctness is
// exercised through the genuine sync protocol, not a model of it.
//
// Time is virtual (sim::SimEnv). Real sync rounds execute at a virtual
// instant; their *virtual* cost is derived from what the round actually
// moved — bytes up/down through the folder's fluctuating bandwidth models
// (sim/bandwidth.h) plus per-request latency and any injected stalls — and
// subsequent session events are scheduled after that cost. Idle clients do
// not poll eagerly; instead every commit lazily materializes the next poll
// of a sampled set of idle folder-mates within the poll interval, which is
// observationally equivalent to the whole fleet polling at tau but costs
// O(commits), not O(clients).
//
// Fleet-level results flow through the obs layer: fleet.sync_latency is the
// commit-to-applied propagation latency across live devices (p50/p95/p99
// hard-gated in bench_population), fleet.lost_updates and
// fleet.unrecoverable_segments are the invariant-checker counters
// (hard-gated at zero).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cloud/faulty_cloud.h"
#include "cloud/memory_cloud.h"
#include "cloud/quota_cloud.h"
#include "core/client.h"
#include "core/local_fs.h"
#include "dedup/pool_index.h"
#include "obs/obs.h"
#include "repair/service.h"
#include "sim/bandwidth.h"
#include "sim/event_queue.h"
#include "sim/population/invariants.h"
#include "sim/population/scenario.h"

namespace unidrive::sim::population {

struct FleetConfig {
  std::uint64_t seed = 1;

  // --- fleet shape --------------------------------------------------------
  std::size_t num_clients = 10'000;
  std::size_t clients_per_folder = 4;  // devices sharing one sync folder
  // Folder 0 is the "hot" shared folder (flash crowds) with more members.
  std::size_t hot_folder_members = 64;
  std::size_t num_clouds = 5;

  // --- load ---------------------------------------------------------------
  double horizon = 2 * 3600.0;  // virtual seconds of arrivals
  // Expected sessions per client per virtual day; the instantaneous rate is
  // shaped by a sim/bandwidth.h fluctuation model (diurnal swing + noise).
  double sessions_per_client_per_day = 2.0;
  FluctuationParams arrival_shape{};  // amplitude raised by `diurnal`
  double mean_think = 30.0;           // virtual pause between session steps
  std::size_t ops_per_session = 2;    // edit/delete attempts per session
  double edit_probability = 0.9;      // else the step is a pull only
  double delete_probability = 0.05;   // an edit step deletes instead
  double poll_interval = 300.0;       // tau for lazily-materialized polls
  std::size_t wake_fanout = 4;        // idle mates woken per commit

  // --- content model (tiny files keep 100k-client fleets in memory) -------
  std::size_t min_file_bytes = 128;
  std::size_t max_file_bytes = 1024;
  std::size_t max_files_per_folder = 8;
  // Probability that an edit appends a "popular payload": a multi-segment
  // tail drawn from a small fleet-wide library (byte-identical wherever it
  // appears), so the content-addressed segment pool dedups it even though
  // every file still carries its unique token marker up front. 0 (default)
  // keeps the content model fully random — dedup-proof, tiny files.
  double duplicate_ratio = 0.0;
  // Popular-payload size; 0 = 3 * theta (several whole CDC segments, so
  // boundary resync after the unique head still yields shared segments).
  std::size_t duplicate_payload_bytes = 0;
  std::size_t duplicate_library = 4;  // distinct popular payloads
  // Fleet-shared /data plane + fleet-wide segment-pool index: every folder's
  // cloud stack routes block objects (paths under /data) to one shared
  // MemoryCloud per cloud slot while metadata/locks stay folder-private —
  // the deployment shape cross-USER dedup assumes (DESIGN.md §13). Off, the
  // pool is per-folder and structurally hit-free in this harness: the pool
  // then mirrors the folder image exactly, and the change scanner already
  // skips in-image segments before the probe. Incompatible with membership
  // churn, repair anchors, and silent-defect injection (a churned-in cloud
  // id is not shared, and an anchor's orphan collection would delete other
  // folders' blocks); those scenario actions refuse when this is set.
  bool shared_block_pool = false;

  // --- materialization bounds --------------------------------------------
  std::size_t max_live_sessions = 48;
  std::size_t activation_retries = 3;  // re-queue when the cap is hit

  // --- virtual cost model -------------------------------------------------
  double request_latency = 0.15;      // per cloud API call, seconds
  double base_up_bw = 1.0e6;          // bytes/sec before fluctuation
  double base_down_bw = 2.5e6;
  FluctuationParams link_shape{};

  // --- audits (continuous invariant checking) -----------------------------
  double audit_interval = 600.0;
  std::size_t audit_folders_per_tick = 4;
  // Strict end-of-run audit covers every chaos folder plus up to this many
  // sampled other touched folders (coverage is reported, never silent).
  std::size_t strict_audit_folders = 512;

  // --- repair anchors (chaos folders) -------------------------------------
  double anchor_tick = 120.0;          // anchor pull + maintenance period
  std::size_t anchor_repair_blocks = 16;  // per maintenance slice

  // --- client knobs -------------------------------------------------------
  std::size_t theta = 64 << 10;
  std::size_t client_threads = 2;
  std::size_t connections_per_cloud = 2;
  std::size_t redundancy_floor = 1;
  double breaker_open_duration = 300.0;
};

struct FleetResult {
  std::size_t clients = 0;
  std::size_t folders = 0;
  std::size_t folders_touched = 0;
  std::size_t sessions = 0;
  std::size_t syncs = 0;
  std::size_t sync_errors = 0;
  std::size_t commits = 0;
  std::size_t conflicts = 0;
  std::size_t deferred = 0;       // activations dropped at the session cap
  std::size_t peak_live_sessions = 0;

  // Invariant-checker verdicts (cumulative across audits; the strict final
  // audit re-counts every covered folder after faults quiesce).
  std::size_t audits = 0;
  std::size_t strict_audited = 0;  // folders covered by the final audit
  std::size_t lost_updates = 0;
  std::size_t unrecoverable_segments = 0;
  std::size_t underrep_unledgered = 0;
  std::size_t restore_failures = 0;  // non-strict audit restores that failed
  std::size_t stale_devices = 0;     // live devices behind at drain

  std::uint64_t cloud_stored_bytes = 0;  // ground-truth bytes at the end
  // Segment-pool dedup across the fleet (sums of per-round SyncReport
  // figures; nonzero only when duplicate_ratio > 0 wires popular payloads).
  std::size_t segments_deduped = 0;
  std::uint64_t dedup_bytes_saved = 0;
  obs::MetricsSnapshot metrics;          // the fleet.* registry
};

class PopulationHarness {
 public:
  explicit PopulationHarness(FleetConfig config);
  ~PopulationHarness();

  PopulationHarness(const PopulationHarness&) = delete;
  PopulationHarness& operator=(const PopulationHarness&) = delete;

  // Runs the scenario's actions + the arrival process to the horizon, then
  // drains: faults quiesce, repair anchors work off their backlog, every
  // live device takes a final pull, and the strict audit runs.
  FleetResult run(const Scenario& scenario);

  // --- scenario surface ---------------------------------------------------
  // Fault profile of one cloud of one folder (materializes the folder).
  void set_fault_profile(std::size_t folder, std::size_t cloud_index,
                         const cloud::FaultProfile& profile);
  // Clears every fault profile and outage on every materialized folder.
  void quiesce_faults();
  // Folders with folder % stride == phase get `quota_bytes` on cloud
  // `cloud_index` when they materialize (no effect on already-materialized
  // folders).
  void set_quota_band(std::size_t stride, std::size_t phase,
                      std::size_t cloud_index, std::uint64_t quota_bytes);
  // Marks `folder` as a chaos folder: materializes a persistent anchor
  // device running scrub-and-repair maintenance on every anchor tick.
  void enable_repair_anchor(std::size_t folder);
  // Schedules `sessions` activations of hot-folder members inside
  // [now, now + window).
  void flash_crowd(std::size_t sessions, double window);
  // Membership churn under live traffic: adds a fresh provider to the
  // folder (re-plan + rebalance through the real client), or removes the
  // most recently added one when the folder is above its base size.
  // Refuses (kInvalidArgument) under shared_block_pool: a churned-in cloud
  // id exists on one folder only, so a cross-folder dedup hit against it
  // would reference a cloud the deduping folder never enrolled.
  Status churn_cycle(std::size_t folder);
  // Deterministically drops (or bit-rots) up to `blocks` committed
  // placements of the folder, behind every injector's back. Returns how
  // many were hit.
  std::size_t inject_silent_defects(std::size_t folder, std::size_t blocks,
                                    bool rot);

  // --- introspection ------------------------------------------------------
  [[nodiscard]] std::size_t num_clients() const noexcept {
    return config_.num_clients;
  }
  [[nodiscard]] std::size_t num_folders() const noexcept {
    return num_folders_;
  }
  [[nodiscard]] std::size_t folder_of(std::size_t client) const;
  // Bytes of harness bookkeeping per idle client (the O(bytes) claim):
  // light-state records plus the folder pointer table, excluding anything
  // materialized by activity.
  [[nodiscard]] std::size_t idle_state_bytes() const;
  [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }
  [[nodiscard]] obs::Observability& fleet_obs() noexcept { return *obs_; }

 private:
  struct LightClient {  // the idle-client state: O(bytes)
    std::uint32_t folder = 0;
    std::uint16_t device = 0;
    bool active = false;
    bool wake_pending = false;
    std::uint64_t last_applied = 0;
  };

  struct PendingObservation {
    std::uint64_t counter = 0;
    double committed_at = 0;  // world-clock seconds
  };

  struct PendingEdit {
    std::string path;
    std::uint64_t token = 0;
    bool is_delete = false;
  };

  struct Session {
    std::size_t client_id = 0;
    std::size_t folder = 0;
    std::shared_ptr<core::MemoryLocalFs> fs;
    std::unique_ptr<core::UniDriveClient> client;
    std::vector<PendingObservation> pending;
    // Local edits written but not yet seen in a committed SyncReport; their
    // tokens enter the folder oracle only once the commit really happened.
    std::vector<PendingEdit> uncommitted;
    std::size_t ops_left = 0;
    bool is_anchor = false;
  };

  struct FolderState {
    std::vector<std::shared_ptr<cloud::MemoryCloud>> raw;
    std::vector<std::shared_ptr<cloud::QuotaCloud>> quota;  // slots may be null
    std::vector<std::shared_ptr<cloud::FaultyCloud>> faulty;
    cloud::MultiCloud enrolled;  // the FaultyCloud tops, what clients get
    std::map<cloud::CloudId, cloud::MemoryCloud*> raw_by_id;
    cloud::CloudId next_cloud_id = 0;
    FolderOracle oracle;
    std::uint64_t latest_counter = 0;
    BandwidthPtr up_bw;
    BandwidthPtr down_bw;
    std::unique_ptr<Session> anchor;
    std::shared_ptr<repair::RepairService> repair;
    // Content-addressed pool index. With shared_block_pool this aliases the
    // fleet-wide index over the shared /data plane (cross-folder dedup and
    // GC protection); otherwise it is private to this folder's cloud stack.
    dedup::PoolIndexPtr pool;
    std::uint64_t rng_seed = 0;
    bool chaos = false;
  };

  struct SyncOutcome {
    bool ok = false;
    double virt_cost = 0;
    core::SyncReport report;
  };

  // --- topology -----------------------------------------------------------
  [[nodiscard]] std::pair<std::size_t, std::size_t> folder_members(
      std::size_t folder) const;  // [begin, end) client ids
  FolderState& materialize_folder(std::size_t folder);
  // client_id is SIZE_MAX for non-member devices (auditors, anchors).
  [[nodiscard]] std::unique_ptr<Session> make_session(std::size_t folder,
                                                      std::size_t client_id,
                                                      const std::string& name);

  // --- session lifecycle (SimEnv event handlers) --------------------------
  void schedule_next_arrival();
  void schedule_audit_tick();
  void try_activate(std::size_t client_id, std::size_t ops,
                    std::size_t retries_left,
                    std::optional<PendingObservation> watch = {});
  void session_step(const std::shared_ptr<Session>& session);
  void finish_session(const std::shared_ptr<Session>& session);
  void anchor_tick(std::size_t folder);

  // The fleet-wide popular-payload library for duplicate_ratio > 0: entry
  // `index` is derived solely from the harness seed, so every folder and
  // device appends byte-identical tails. Built lazily, cached for the run.
  [[nodiscard]] const Bytes& popular_payload(std::size_t index);

  SyncOutcome run_sync(Session& session, int tries);
  void after_commit(std::size_t folder, const core::SyncReport& report,
                    Session* committer);
  void note_applied(Session& session);
  [[nodiscard]] double think_delay();

  // --- audits -------------------------------------------------------------
  void audit_tick();
  // Returns the outcome; also bumps the fleet counters. `strict` is the
  // end-of-run pass (faults quiet, repair drained).
  void audit_folder_by_index(std::size_t folder, bool strict);
  void drain_and_finalize();

  void sync_world_clock();  // world := max(world, env.now())

  FleetConfig config_;
  SimEnv env_;
  ManualClock world_;  // shared by every client/injector; sleeps advance it
  SleepFn virtual_sleep_;
  obs::ObsPtr obs_;  // fleet.* registry, on the world clock
  Rng rng_;

  std::size_t num_folders_ = 0;
  std::vector<LightClient> clients_;
  std::vector<std::unique_ptr<FolderState>> folders_;
  std::vector<std::size_t> touched_;  // materialization order
  std::vector<std::size_t> chaos_folders_;

  std::map<std::size_t, std::shared_ptr<Session>> live_;  // client id -> session
  struct QuotaBand {
    std::size_t stride = 0, phase = 0, cloud_index = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<QuotaBand> quota_bands_;

  BandwidthPtr arrival_rate_;  // sessions/sec across the fleet
  double arrival_rate_cap_ = 0;
  std::uint64_t token_counter_ = 0;
  std::vector<Bytes> popular_payloads_;  // lazily filled library
  // shared_block_pool backing: one /data store per cloud slot plus the
  // fleet-wide pool index; empty/null when the knob is off.
  std::vector<std::shared_ptr<cloud::MemoryCloud>> shared_data_;
  dedup::PoolIndexPtr fleet_pool_;
  std::size_t audit_cursor_ = 0;
  bool draining_ = false;
  FleetResult result_;
};

}  // namespace unidrive::sim::population
