// Continuous invariant checking for the population harness.
//
// Two fleet-level correctness properties are enforced while the simulation
// runs (not just at the end):
//
//   1. No lost updates. Every edit a simulated client commits embeds a
//      unique token in the file content; the per-folder FolderOracle keeps
//      the latest committed token per path (ordered by the commit's version
//      counter, i.e. the quorum-lock serialization order). An audit
//      materializes a fresh reader device, restores the folder through the
//      real download path, and requires every expected token to appear in
//      some file's content — keep-both conflict copies count, so a token
//      surviving only under a conflict name is not a loss.
//
//   2. No silent durability collapse. The audit counts, for every committed
//      segment, how many of its placements actually exist on the raw
//      ground-truth stores (beneath all fault injectors). A segment with
//      fewer than k survivors is unrecoverable — the hard-gated fleet
//      counter. A segment that lost redundancy (fewer than k + floor
//      survivors) while NO defect ledger entry covers any missing placement
//      is "under-replicated and unledgered": the scrub-and-repair loop has
//      not noticed yet. The strict (end-of-soak) audit requires that count
//      to be zero for folders running a scrub anchor.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cloud/memory_cloud.h"
#include "core/local_fs.h"
#include "metadata/image.h"
#include "repair/durability.h"

namespace unidrive::sim::population {

// Content marker for edit token `t`: "[T<t>]". The filler around it is
// random bytes, so a committed marker appearing by chance is ~2^-80.
std::string token_marker(std::uint64_t token);

struct ExpectedEdit {
  std::uint64_t token = 0;
  std::uint64_t version = 0;  // commit's version counter (serialization order)
};

// Ground-truth model of one shared folder: what the fleet committed, in
// quorum-lock order. O(paths) per folder, maintained only for folders that
// were ever materialized.
class FolderOracle {
 public:
  // A sync round committed `token` as the content of `path` at version
  // `version`. Later versions win; an out-of-order record is ignored.
  void record_commit(const std::string& path, std::uint64_t token,
                     std::uint64_t version);
  // A sync round committed the deletion of `path`.
  void record_delete(const std::string& path, std::uint64_t version);

  [[nodiscard]] const std::map<std::string, ExpectedEdit>& expected()
      const noexcept {
    return expected_;
  }
  [[nodiscard]] std::uint64_t commits() const noexcept { return commits_; }

 private:
  std::map<std::string, ExpectedEdit> expected_;
  // Deletions must outrank stale re-records: a delete at v7 followed by a
  // late record_commit(v6) must not resurrect the expectation.
  std::map<std::string, std::uint64_t> deleted_at_;
  std::uint64_t commits_ = 0;
};

// Everything one audit needs to judge one folder. The auditor client has
// already synced (its image/local folder are the restored view).
struct AuditContext {
  const metadata::SyncFolderImage* image = nullptr;  // auditor's view
  const core::LocalFs* fs = nullptr;                 // auditor's folder
  const FolderOracle* oracle = nullptr;
  // Ground-truth stores, keyed by the cloud id they were enrolled under
  // (survives add/remove-cloud churn: a removed cloud's store stays here).
  std::map<cloud::CloudId, cloud::MemoryCloud*> raw;
  // Defect ledger of the folder's scrub anchor; null when the folder runs
  // no maintenance (the unledgered check is skipped then).
  const repair::DurabilityTracker* ledger = nullptr;
  std::size_t k = 3;
  std::size_t redundancy_floor = 1;
};

struct AuditOutcome {
  std::size_t expected_tokens = 0;
  std::size_t missing_tokens = 0;       // lost updates
  std::size_t segments = 0;
  std::size_t unrecoverable = 0;        // survivors < k
  std::size_t under_replicated = 0;     // k <= survivors < k + floor
  std::size_t underrep_unledgered = 0;  // ...and no ledger entry covers it
  std::size_t min_survivors = SIZE_MAX;  // SIZE_MAX when no segments
};

AuditOutcome audit_folder(const AuditContext& ctx);

}  // namespace unidrive::sim::population
