// Simulation driver for the UniDrive schedulers: runs an UploadScheduler or
// DownloadScheduler job against SimClouds in virtual time. The decision
// logic is byte-for-byte the one the real threaded client uses — only the
// transport is simulated — so measured schedules are faithful.
#pragma once

#include <vector>

#include "cloud/health.h"
#include "sched/download_scheduler.h"
#include "sched/monitor.h"
#include "sched/upload_scheduler.h"
#include "sim/sim_cloud.h"

namespace unidrive::sim {

struct RunConfig {
  std::size_t connections_per_cloud = 5;
  // A cloud is disabled for the job after this many consecutive failures.
  // Only consulted when no health registry is supplied below.
  int failure_disable_threshold = 8;
  // Hard stop: give up on the whole job after this much virtual time.
  double timeout = 24 * 3600;
  // Dynamic scheduling: offer work to clouds fastest-first (in-channel
  // probing). Off = fixed order, the "multi-cloud benchmark" behaviour.
  bool dynamic_polling = true;
  // Optional shared circuit-breaker registry (pair it with a SimEnvClock so
  // probe timers run on virtual time). When set, per-run failure counting is
  // replaced by the registry: outcomes are recorded into it, open-breaker
  // clouds are not dispatched to, and — because the registry outlives the
  // run — a cloud tripped in one round starts the next round half-open.
  // Non-owning; must outlive the run.
  cloud::CloudHealthRegistry* health = nullptr;
};

struct UploadRunResult {
  bool all_available = false;
  bool all_reliable = false;
  double start_time = 0;
  double available_time = 0;  // when the LAST file became available
  double finish_time = 0;     // when the job fully finished (reliability)
  std::vector<double> file_available_time;  // per file, -1 if never
  std::uint64_t block_transfers = 0;
  std::uint64_t failed_transfers = 0;
};

UploadRunResult run_upload_job(SimEnv& env,
                               const std::vector<SimCloud*>& clouds,
                               sched::UploadScheduler& scheduler,
                               sched::ThroughputMonitor& monitor,
                               const RunConfig& config);

struct DownloadRunResult {
  bool all_complete = false;
  double start_time = 0;
  double finish_time = 0;
  std::vector<double> file_complete_time;  // per file, -1 if never
  std::uint64_t block_transfers = 0;
  std::uint64_t failed_transfers = 0;
};

DownloadRunResult run_download_job(SimEnv& env,
                                   const std::vector<SimCloud*>& clouds,
                                   sched::DownloadScheduler& scheduler,
                                   sched::ThroughputMonitor& monitor,
                                   const RunConfig& config);

}  // namespace unidrive::sim
