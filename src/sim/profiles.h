// Cloud + location profiles for the simulated measurement/evaluation
// testbeds: the 13 PlanetLab vantage points of the measurement study
// (Section 3.2) and the 7 EC2 data centers of the evaluation (Section 7).
//
// The numbers are calibrated to the paper's reported statistics, not to any
// proprietary dataset:
//  * spatial disparity up to ~60x between clouds at one location (BaiduPCS
//    vs Google Drive in China);
//  * Dropbox ~2.76x slower from Los Angeles than from Princeton; Dropbox
//     2x faster than OneDrive at Princeton, roles reversed at Beijing;
//  * same-day max/min swing up to ~17x (lognormal slot noise);
//  * request success ~99% US-to-US, ~90% from China; DBank the flakiest;
//  * EC2 instances cap downlink at 40 Mbps (paper, Section 7.2).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/sim_cloud.h"

namespace unidrive::sim {

enum class CloudKind : std::uint32_t {
  kDropbox = 0,
  kOneDrive = 1,
  kGoogleDrive = 2,
  kBaiduPCS = 3,
  kDBank = 4,
};
inline constexpr std::size_t kNumClouds = 5;
const char* cloud_name(CloudKind kind);

enum class Region {
  kUsEast,
  kUsWest,
  kCanada,
  kEurope,
  kChina,
  kAsia,     // non-China Asia
  kOceania,
  kSouthAmerica,
};

struct LocationProfile {
  std::string name;
  Region region = Region::kUsEast;
  double download_cap_bps = 0;  // instance downlink cap (EC2: 40 Mbps)
};

// The 13 measurement vantage points (10 countries, 5 continents).
std::vector<LocationProfile> planetlab_locations();
// The 7 evaluation data centers (6 countries, 5 continents).
std::vector<LocationProfile> ec2_locations();

// Static per-(cloud, region) link characteristics.
struct LinkSpec {
  double up_bps = 0;
  double down_bps = 0;
  double latency_sec = 0;
  double base_failure_rate = 0;
  double noise_sigma = 0;  // temporal fluctuation strength
};
LinkSpec link_spec(CloudKind cloud, Region region);

// Native-app behaviour per vendor (for the baselines): concurrent HTTP
// connections the official client uses, plus its protocol overhead split
// into a per-file fixed cost (journal updates, notifications, TLS setup)
// and a proportional part. Calibrated so a 1 MB file reproduces Table 3's
// measured overhead columns (Dropbox 7.07%, OneDrive 2.04%, Google Drive
// 1.89%, BaiduPCS 0.70%, DBank 0.96%).
struct NativeAppSpec {
  std::size_t connections = 4;
  double protocol_overhead = 0.005;    // proportional (per payload byte)
  double per_file_fixed_bytes = 10e3;  // fixed per synced file

  [[nodiscard]] double overhead_fraction(double file_bytes) const noexcept {
    return protocol_overhead + per_file_fixed_bytes / file_bytes;
  }
};
NativeAppSpec native_app_spec(CloudKind kind);

// A ready-to-use simulated multi-cloud at one location.
struct CloudSet {
  std::unique_ptr<FluidNet> net;
  std::unique_ptr<FailureModel> failure;
  std::vector<std::unique_ptr<SimCloud>> clouds;

  [[nodiscard]] std::vector<SimCloud*> ptrs() const {
    std::vector<SimCloud*> out;
    out.reserve(clouds.size());
    for (const auto& c : clouds) out.push_back(c.get());
    return out;
  }
};

// Builds the five clouds as seen from `location`. `seed` controls all
// randomness (bandwidth noise, failure draws). `with_failures` off gives a
// failure-free network for isolation experiments.
CloudSet make_cloud_set(SimEnv& env, const LocationProfile& location,
                        std::uint64_t seed, bool with_failures = true);

}  // namespace unidrive::sim
