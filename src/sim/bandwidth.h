// Time-varying bandwidth models for the simulated cloud links.
//
// The measurement study (Section 3.2) found cloud bandwidth to be diverse
// across locations (up to 60x), highly fluctuating over time (up to 17x
// within a day) and unpredictable, with no obvious temporal pattern and
// largely independent across clouds. The composite model reproduces those
// statistics:
//   base rate x diurnal factor x slot noise (lognormal, per 10-min slot).
// `at(t)` is a pure function of time (random access), so the fluid
// simulator can re-evaluate rates at arbitrary instants.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sim/event_queue.h"

namespace unidrive::sim {

class BandwidthModel {
 public:
  virtual ~BandwidthModel() = default;
  // Link bandwidth in bytes/second at virtual time t. Always > 0.
  [[nodiscard]] virtual double at(SimTime t) const = 0;
};

using BandwidthPtr = std::shared_ptr<BandwidthModel>;

// Constant rate.
BandwidthPtr constant_bw(double bytes_per_sec);

// Composite model used by the profiles.
struct FluctuationParams {
  double diurnal_amplitude = 0.3;   // +-30% day/night swing
  double diurnal_phase_sec = 0;     // peak-hour offset
  double noise_sigma = 0.7;         // lognormal sigma of the slot noise
  double slot_seconds = 600;        // noise re-draw interval
  double floor_fraction = 0.02;     // never below this fraction of base
};

BandwidthPtr fluctuating_bw(double base_bytes_per_sec,
                            const FluctuationParams& params,
                            std::uint64_t seed);

// Scales another model by a constant factor.
BandwidthPtr scaled_bw(BandwidthPtr inner, double factor);

// Trace-driven model: piecewise-linear interpolation over (time, rate)
// samples; clamps outside the sampled range. Lets experiments replay real
// bandwidth measurements instead of the synthetic models. Samples must be
// sorted by time and non-empty.
struct TraceSample {
  SimTime time = 0;
  double bytes_per_sec = 0;
};
BandwidthPtr trace_bw(std::vector<TraceSample> samples);

// Parses a two-column CSV ("seconds,bytes_per_sec", '#' comments allowed).
Result<BandwidthPtr> trace_bw_from_csv(std::string_view csv);

}  // namespace unidrive::sim
