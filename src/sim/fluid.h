// Fluid-flow transfer simulator.
//
// Each (cloud, direction) pair is a link with a time-varying capacity B(t);
// additionally each direction may have a shared ACCESS capacity (the
// device's own uplink/downlink — e.g. the 40 Mbps EC2 VM downlink the paper
// calls out). Rates are the max-min fair allocation over all constraints
// (progressive filling), with an optional per-connection cap. Transfers
// progress continuously; the simulator advances in events: the earliest of
// (a) some transfer finishing at current rates, or (b) the rate
// re-evaluation quantum expiring (rates drift with B(t)).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <vector>

#include "sim/bandwidth.h"
#include "sim/event_queue.h"

namespace unidrive::sim {

struct LinkId {
  std::uint32_t cloud = 0;
  bool download = false;

  friend bool operator<(const LinkId& a, const LinkId& b) noexcept {
    if (a.cloud != b.cloud) return a.cloud < b.cloud;
    return a.download < b.download;
  }
};

class FluidNet {
 public:
  // `quantum`: how often rates are re-evaluated against B(t) when nothing
  // completes (smaller = more accurate, slower).
  explicit FluidNet(SimEnv& env, double quantum = 5.0)
      : env_(env), quantum_(quantum) {}

  void set_link(LinkId link, BandwidthPtr bandwidth,
                double per_connection_cap = 0 /* 0 = uncapped */);

  // Shared access-link capacity for one direction (the device's own NIC);
  // all transfers in that direction compete for it. 0 = unlimited.
  void set_access_capacity(bool download, double bytes_per_sec);

  // Starts a transfer of `bytes` on `link`; `done(t)` fires at completion
  // with the completion time. Zero-byte transfers complete immediately.
  void start_transfer(LinkId link, double bytes,
                      std::function<void(SimTime)> done);

  [[nodiscard]] std::size_t active_transfers() const noexcept {
    return transfers_.size();
  }

 private:
  struct Link {
    BandwidthPtr bandwidth;
    double per_conn_cap = 0;
    std::size_t active = 0;
  };
  struct Transfer {
    LinkId link;
    double remaining = 0;
    double rate = 0;  // scratch: last allocation
    std::function<void(SimTime)> done;
  };
  using TransferHandle = std::list<Transfer>::iterator;

  // Max-min fair rates for every active transfer at time `now`.
  void allocate_rates(SimTime now);
  // Advances all transfers to now_, fires completions, schedules next event.
  void reschedule();
  void advance_to(SimTime t);

  SimEnv& env_;
  double quantum_;
  std::map<LinkId, Link> links_;
  double access_capacity_[2] = {0, 0};  // [upload, download]; 0 = unlimited
  std::list<Transfer> transfers_;
  SimTime last_advance_ = 0;
  std::uint64_t generation_ = 0;  // invalidates stale scheduled events
};

}  // namespace unidrive::sim
