#include "sim/e2e.h"

#include "common/logging.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace unidrive::sim {

namespace {

struct Commit {
  std::uint64_t version = 0;
  double time = 0;
  // files published by this commit: (file index, block map of its segment)
  std::vector<std::pair<std::size_t,
                        std::vector<metadata::BlockLocation>>> files;
};

std::string segment_id_for(std::size_t file_index) {
  return "file" + std::to_string(file_index) + "_seg";
}

// One downloading device: polls, fetches metadata, downloads blocks.
class Downloader : public std::enable_shared_from_this<Downloader> {
 public:
  Downloader(SimEnv& env, CloudSet& set, const E2EConfig& config,
             const std::vector<Commit>& commits, double batch_start)
      : env_(env),
        set_(set),
        config_(config),
        commits_(commits),
        batch_start_(batch_start),
        monitor_() {
    result_.file_sync_time.assign(config.num_files, -1.0);
  }

  void start() { schedule_poll(); }

  [[nodiscard]] const DownloaderResult& result() const noexcept {
    return result_;
  }
  [[nodiscard]] bool all_done() const noexcept {
    return synced_files_ == config_.num_files;
  }
  void stop() { stopped_ = true; }

 private:
  void schedule_poll() {
    if (stopped_ || all_done()) return;
    env_.schedule(config_.poll_interval,
                  [self = shared_from_this()] { self->poll(); });
  }

  void poll() {
    if (stopped_ || all_done()) return;
    ++result_.polls;
    // Version check against one cloud (rotating), tiny request.
    SimCloud* cloud =
        set_.clouds[result_.polls % set_.clouds.size()].get();
    cloud->small_op([self = shared_from_this()](bool ok) {
      if (ok) self->on_version_checked();
      self->schedule_poll();
    });
  }

  void on_version_checked() {
    if (seen_commits_ >= commits_.size()) return;  // nothing new
    // New commits exist (version file advanced): fetch the delta metadata.
    const std::size_t first_new = seen_commits_;
    const std::size_t last = commits_.size();
    double meta_bytes = 0;
    for (std::size_t i = first_new; i < last; ++i) {
      meta_bytes += static_cast<double>(commits_[i].files.size()) *
                    config_.metadata_bytes_per_file;
    }
    ++result_.metadata_fetches;
    seen_commits_ = last;
    SimCloud* cloud = set_.clouds[0].get();
    cloud->download(meta_bytes,
                    [self = shared_from_this(), first_new, last](bool ok) {
                      if (!ok) {
                        // Re-fetch on the next poll.
                        self->seen_commits_ = first_new;
                        return;
                      }
                      self->enqueue_commits(first_new, last);
                    });
  }

  void enqueue_commits(std::size_t first, std::size_t last) {
    for (std::size_t i = first; i < last; ++i) {
      for (const auto& [file_index, locations] : commits_[i].files) {
        // Commits may re-publish a file whose block map grew (reliability
        // fill / over-provisioning landed after the first commit).
        latest_locations_[file_index] = locations;
        if (enqueued_.insert(file_index).second) {
          pending_.push_back(file_index);
        }
      }
    }
    maybe_start_job();
  }

  void maybe_start_job() {
    if (job_active_ || pending_.empty() || stopped_) return;
    // Batch everything currently pending into one download job.
    std::vector<sched::DownloadFileSpec> specs;
    std::vector<std::size_t> file_indices;
    for (const std::size_t file_index : pending_) {
      const auto& locations = latest_locations_[file_index];
      sched::DownloadFileSpec spec;
      spec.path = "/f" + std::to_string(file_index);
      spec.segments.push_back(
          {segment_id_for(file_index), config_.file_size, locations});
      specs.push_back(std::move(spec));
      file_indices.push_back(file_index);
    }
    pending_.clear();

    auto scheduler = std::make_shared<sched::DownloadScheduler>(
        config_.code.k, std::move(specs));
    auto runner = std::make_shared<JobRunner<sched::DownloadScheduler>>(
        env_, set_.ptrs(), scheduler, monitor_, config_.run,
        sched::Direction::kDownload);
    job_active_ = true;
    runner->on_progress = [self = shared_from_this(), scheduler,
                           file_indices] {
      for (std::size_t j = 0; j < file_indices.size(); ++j) {
        const std::size_t fi = file_indices[j];
        if (self->result_.file_sync_time[fi] < 0 &&
            scheduler->file_complete(j)) {
          self->result_.file_sync_time[fi] =
              self->env_.now() - self->batch_start_;
          ++self->synced_files_;
        }
      }
    };
    runner->start([self = shared_from_this(), scheduler, file_indices] {
      self->job_active_ = false;
      // Transient failures may have stranded files in this job; requeue them
      // with the FRESHEST published block map (a fresh job also forgets the
      // per-source failure history), up to a retry cap.
      for (std::size_t j = 0; j < file_indices.size(); ++j) {
        const std::size_t fi = file_indices[j];
        if (self->result_.file_sync_time[fi] >= 0) continue;
        if (++self->retry_count_[fi] <= kMaxFileRetries) {
          self->pending_.push_back(fi);
        } else {
          // Count as permanently failed so the run can terminate.
          ++self->synced_files_;
        }
      }
      if (self->all_done()) {
        self->result_.all_synced_time =
            self->env_.now() - self->batch_start_;
      }
      self->maybe_start_job();
    });
  }

  static constexpr int kMaxFileRetries = 8;

  SimEnv& env_;
  CloudSet& set_;
  const E2EConfig& config_;
  const std::vector<Commit>& commits_;
  double batch_start_;
  sched::ThroughputMonitor monitor_;

  DownloaderResult result_;
  std::size_t seen_commits_ = 0;
  std::size_t synced_files_ = 0;
  std::deque<std::size_t> pending_;  // file indices awaiting a job
  std::set<std::size_t> enqueued_;   // ever enqueued (dedup re-publications)
  std::map<std::size_t, std::vector<metadata::BlockLocation>>
      latest_locations_;
  std::map<std::size_t, int> retry_count_;
  bool job_active_ = false;
  bool stopped_ = false;
};

}  // namespace

E2EResult run_unidrive_e2e(SimEnv& env, CloudSet& uploader,
                           const std::vector<CloudSet*>& downloaders,
                           const E2EConfig& config) {
  E2EResult result;
  const double start = env.now();

  // --- uploader side ---------------------------------------------------------
  std::vector<sched::UploadFileSpec> specs;
  for (std::size_t i = 0; i < config.num_files; ++i) {
    sched::UploadFileSpec spec;
    spec.path = "/f" + std::to_string(i);
    spec.segments.push_back({segment_id_for(i), config.file_size});
    specs.push_back(std::move(spec));
  }
  auto up_sched = std::make_shared<sched::UploadScheduler>(
      config.code, [&] {
        std::vector<cloud::CloudId> ids;
        for (const auto& c : uploader.clouds) ids.push_back(c->id());
        return ids;
      }(),
      specs, config.upload_options);
  sched::ThroughputMonitor up_monitor;
  auto up_runner = std::make_shared<JobRunner<sched::UploadScheduler>>(
      env, uploader.ptrs(), up_sched, up_monitor, config.run,
      sched::Direction::kUpload);

  // Shared (not stack-referencing) progress state: upload events may still
  // fire if the caller steps the env after this function returned.
  auto avail_times =
      std::make_shared<std::vector<double>>(config.num_files, -1.0);
  auto upload_done = std::make_shared<bool>(false);
  up_runner->on_progress = [&env, avail_times, up_sched] {
    for (std::size_t i = 0; i < avail_times->size(); ++i) {
      if ((*avail_times)[i] < 0 && up_sched->file_available(i)) {
        (*avail_times)[i] = env.now();
      }
    }
  };
  up_runner->start([upload_done] { *upload_done = true; });

  // Periodic metadata commits: publish block maps of newly available files.
  // All commit state lives in shared ownership so a tick left in the event
  // queue after this call returns cannot touch dead stack frames.
  struct CommitCtx {
    std::vector<Commit> commits;
    std::vector<bool> committed;
    std::vector<std::size_t> published_blocks;  // per file, last count
    double metadata_bytes = 0;
    bool stopped = false;
  };
  auto commit_ctx = std::make_shared<CommitCtx>();
  commit_ctx->committed.assign(config.num_files, false);
  commit_ctx->published_blocks.assign(config.num_files, 0);
  auto commit_tick = std::make_shared<std::function<void()>>();
  *commit_tick = [&env, commit_ctx,
                  weak_tick = std::weak_ptr<std::function<void()>>(commit_tick),
                  up_sched, config, clouds = &uploader.clouds]() {
    if (commit_ctx->stopped) return;
    Commit commit;
    commit.version = commit_ctx->commits.size() + 1;
    commit.time = env.now();
    for (std::size_t i = 0; i < config.num_files; ++i) {
      if (!commit_ctx->committed[i] && up_sched->file_available(i)) {
        commit_ctx->committed[i] = true;
        auto locations = up_sched->locations(segment_id_for(i));
        commit_ctx->published_blocks[i] = locations.size();
        commit.files.emplace_back(i, std::move(locations));
      } else if (commit_ctx->committed[i]) {
        // Re-publish when more blocks landed since the last commit (the
        // real client updates Cloud-IDs in the metadata via callbacks) —
        // downloaders gain sources and fault tolerance.
        auto locations = up_sched->locations(segment_id_for(i));
        if (locations.size() > commit_ctx->published_blocks[i]) {
          commit_ctx->published_blocks[i] = locations.size();
          commit.files.emplace_back(i, std::move(locations));
        }
      }
    }
    if (!commit.files.empty()) {
      // Replicate metadata to all clouds (delta + version file).
      const double meta_bytes =
          static_cast<double>(commit.files.size()) *
              config.metadata_bytes_per_file +
          config.version_file_bytes;
      for (const auto& c : *clouds) {
        c->upload(meta_bytes, [](bool) {});
      }
      commit_ctx->metadata_bytes +=
          meta_bytes * static_cast<double>(clouds->size());
      commit_ctx->commits.push_back(std::move(commit));
    }
    const bool everything_committed =
        std::all_of(commit_ctx->committed.begin(),
                    commit_ctx->committed.end(), [](bool b) { return b; });
    // Keep ticking while uploads can still add blocks worth publishing.
    if (!everything_committed || !up_sched->finished()) {
      if (const auto tick = weak_tick.lock()) {
        env.schedule(config.commit_interval, *tick);
      }
    }
  };
  env.schedule(config.commit_interval, *commit_tick);

  // --- downloader side ---------------------------------------------------------
  std::vector<std::shared_ptr<Downloader>> device_sims;
  for (CloudSet* set : downloaders) {
    auto d = std::make_shared<Downloader>(env, *set, config,
                                          commit_ctx->commits, start);
    d->start();
    device_sims.push_back(std::move(d));
  }

  // --- run to completion ---------------------------------------------------------
  const double deadline = start + config.run.timeout;
  auto all_synced = [&] {
    for (const auto& d : device_sims) {
      if (!d->all_done()) return false;
    }
    return true;
  };
  while (env.now() < deadline && (!*upload_done || !all_synced()) &&
         env.step()) {
  }
  for (const auto& d : device_sims) d->stop();
  // Drain residual events (stopped pollers reschedule nothing).
  while (!all_synced() && env.now() < deadline && env.step()) {
  }
  commit_ctx->stopped = true;

  // --- results ---------------------------------------------------------
  result.upload.file_available_time = *avail_times;
  result.metadata_bytes = commit_ctx->metadata_bytes;
  result.upload.start_time = start;
  result.upload.finish_time = up_runner->finish_time();
  result.upload.all_available = up_sched->all_available();
  result.upload.all_reliable = up_sched->all_reliable();
  result.upload.block_transfers = up_runner->transfers();
  result.upload.failed_transfers = up_runner->failures();
  result.upload.available_time = start;
  for (const double t : result.upload.file_available_time) {
    result.upload.available_time = std::max(result.upload.available_time, t);
  }

  double batch = -1;
  for (const auto& d : device_sims) {
    result.downloaders.push_back(d->result());
    const double t = d->result().all_synced_time;
    if (t < 0) {
      batch = -1;
      break;
    }
    batch = std::max(batch, t);
  }
  result.batch_sync_time = batch;

  // Traffic accounting. Uploaded bytes include the metadata replicas; keep
  // payload and metadata separable for the overhead table.
  for (const auto& c : uploader.clouds) {
    result.payload_bytes += c->stats().bytes_up;
    result.api_requests += c->stats().requests;
  }
  result.payload_bytes =
      std::max(0.0, result.payload_bytes - result.metadata_bytes);
  for (CloudSet* set : downloaders) {
    for (const auto& c : set->clouds) {
      result.payload_bytes += c->stats().bytes_down;
      result.api_requests += c->stats().requests;
    }
  }
  return result;
}

}  // namespace unidrive::sim
