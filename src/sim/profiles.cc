#include "sim/profiles.h"

#include <algorithm>
#include <array>

namespace unidrive::sim {

namespace {
constexpr double kMbps = 1e6 / 8;  // bytes per second per Mbps

struct RegionRow {
  double up_mbps;
  double down_factor;   // download = up * factor
  double fail_base;
};

// Rows indexed by Region; one table per cloud. Calibrated to Section 3.2.
constexpr std::array<RegionRow, 8> kDropbox = {{
    {24.0, 1.6, 0.010},  // UsEast (Princeton: fastest)
    {9.0, 1.6, 0.012},   // UsWest (2.76x slower than Princeton)
    {16.0, 1.6, 0.010},  // Canada
    {12.0, 1.6, 0.015},  // Europe
    {0.8, 1.4, 0.100},   // China (GFW interference)
    {6.0, 1.5, 0.030},   // Asia
    {5.0, 1.5, 0.030},   // Oceania
    {6.0, 1.5, 0.025},   // SouthAmerica
}};
constexpr std::array<RegionRow, 8> kOneDrive = {{
    {12.0, 1.6, 0.010},
    {14.0, 1.6, 0.010},
    {12.0, 1.6, 0.010},
    {14.0, 1.6, 0.012},
    {3.0, 1.5, 0.080},
    {10.0, 1.5, 0.020},
    {8.0, 1.5, 0.020},
    {6.0, 1.5, 0.022},
}};
constexpr std::array<RegionRow, 8> kGoogleDrive = {{
    {16.0, 1.7, 0.010},
    {16.0, 1.7, 0.010},
    {14.0, 1.7, 0.010},
    {16.0, 1.7, 0.010},
    {0.5, 1.3, 0.120},  // effectively blocked from China
    {12.0, 1.6, 0.015},
    {10.0, 1.6, 0.015},
    {8.0, 1.6, 0.018},
}};
constexpr std::array<RegionRow, 8> kBaiduPCS = {{
    {1.5, 1.5, 0.050},
    {2.5, 1.5, 0.050},
    {1.5, 1.5, 0.050},
    {1.2, 1.5, 0.060},
    {30.0, 1.6, 0.020},  // 60x Google Drive's 0.5 Mbps in China
    {5.0, 1.5, 0.040},
    {2.0, 1.4, 0.050},
    {0.8, 1.4, 0.070},
}};
constexpr std::array<RegionRow, 8> kDBank = {{
    {1.0, 1.4, 0.080},
    {1.5, 1.4, 0.080},
    {1.0, 1.4, 0.080},
    {0.8, 1.4, 0.090},
    {15.0, 1.5, 0.035},
    {3.0, 1.4, 0.060},
    {1.5, 1.4, 0.080},
    {0.5, 1.3, 0.110},
}};

const std::array<RegionRow, 8>& table_for(CloudKind kind) {
  switch (kind) {
    case CloudKind::kDropbox: return kDropbox;
    case CloudKind::kOneDrive: return kOneDrive;
    case CloudKind::kGoogleDrive: return kGoogleDrive;
    case CloudKind::kBaiduPCS: return kBaiduPCS;
    case CloudKind::kDBank: return kDBank;
  }
  return kDropbox;
}

double noise_sigma_for(CloudKind kind) {
  switch (kind) {
    case CloudKind::kDropbox: return 0.65;
    case CloudKind::kOneDrive: return 0.70;
    case CloudKind::kGoogleDrive: return 0.60;
    case CloudKind::kBaiduPCS: return 0.75;
    case CloudKind::kDBank: return 0.90;  // "much larger fluctuation"
  }
  return 0.7;
}

}  // namespace

const char* cloud_name(CloudKind kind) {
  switch (kind) {
    case CloudKind::kDropbox: return "Dropbox";
    case CloudKind::kOneDrive: return "OneDrive";
    case CloudKind::kGoogleDrive: return "GoogleDrive";
    case CloudKind::kBaiduPCS: return "BaiduPCS";
    case CloudKind::kDBank: return "DBank";
  }
  return "?";
}

std::vector<LocationProfile> planetlab_locations() {
  return {
      {"Princeton", Region::kUsEast, 0},
      {"LosAngeles", Region::kUsWest, 0},
      {"Vancouver", Region::kCanada, 0},
      {"Cambridge", Region::kEurope, 0},
      {"Paris", Region::kEurope, 0},
      {"Madrid", Region::kEurope, 0},
      {"Beijing", Region::kChina, 0},
      {"Shanghai", Region::kChina, 0},
      {"Seoul", Region::kAsia, 0},
      {"Tokyo", Region::kAsia, 0},
      {"Singapore", Region::kAsia, 0},
      {"Sydney", Region::kOceania, 0},
      {"SaoPaulo", Region::kSouthAmerica, 0},
  };
}

std::vector<LocationProfile> ec2_locations() {
  constexpr double kDownCap = 40 * kMbps;  // rented VMs cap the downlink
  return {
      {"Virginia", Region::kUsEast, kDownCap},
      {"Oregon", Region::kUsWest, kDownCap},
      {"SaoPaulo", Region::kSouthAmerica, kDownCap},
      {"Ireland", Region::kEurope, kDownCap},
      {"Singapore", Region::kAsia, kDownCap},
      {"Tokyo", Region::kAsia, kDownCap},
      {"Sydney", Region::kOceania, kDownCap},
  };
}

LinkSpec link_spec(CloudKind cloud, Region region) {
  const RegionRow& row = table_for(cloud)[static_cast<std::size_t>(region)];
  LinkSpec spec;
  spec.up_bps = row.up_mbps * kMbps;
  spec.down_bps = row.up_mbps * row.down_factor * kMbps;
  // Latency grows as links get slower/more distant (crude but monotone).
  spec.latency_sec = std::clamp(0.08 + 1.5 / row.up_mbps, 0.08, 1.2);
  spec.base_failure_rate = row.fail_base;
  spec.noise_sigma = noise_sigma_for(cloud);
  return spec;
}

NativeAppSpec native_app_spec(CloudKind kind) {
  switch (kind) {
    // Connection counts from Section 7.1; fixed + proportional parts sum to
    // Table 3's overhead at the 1 MB calibration point.
    case CloudKind::kDropbox: return {8, 0.015, 58e3};     // 7.07% @ 1 MB
    case CloudKind::kOneDrive: return {2, 0.006, 15e3};    // 2.04%
    case CloudKind::kGoogleDrive: return {4, 0.006, 13e3}; // 1.89%
    case CloudKind::kBaiduPCS: return {6, 0.002, 5e3};     // 0.70%
    case CloudKind::kDBank: return {4, 0.003, 6.6e3};      // 0.96%
  }
  return {};
}

CloudSet make_cloud_set(SimEnv& env, const LocationProfile& location,
                        std::uint64_t seed, bool with_failures) {
  CloudSet set;
  set.net = std::make_unique<FluidNet>(env);
  if (location.download_cap_bps > 0) {
    // The device's own downlink (the paper's rented VMs cap at 40 Mbps) is
    // SHARED by all five clouds' download transfers.
    set.net->set_access_capacity(/*download=*/true,
                                 location.download_cap_bps);
  }

  FailureParams fparams;
  set.failure =
      std::make_unique<FailureModel>(kNumClouds, fparams, seed ^ 0xFA11);

  for (std::size_t i = 0; i < kNumClouds; ++i) {
    const auto kind = static_cast<CloudKind>(i);
    const LinkSpec spec = link_spec(kind, location.region);
    if (with_failures) {
      set.failure->set_base_rate(i, spec.base_failure_rate);
    }

    FluctuationParams fluct;
    fluct.noise_sigma = spec.noise_sigma;
    // Stagger diurnal peaks per cloud (different home time zones).
    fluct.diurnal_phase_sec = static_cast<double>(i) * 17000.0;

    SimCloudConfig config;
    config.id = static_cast<std::uint32_t>(i);
    config.name = cloud_name(kind);
    config.up = fluctuating_bw(spec.up_bps, fluct, seed * 31 + i * 7 + 1);
    config.down = fluctuating_bw(spec.down_bps, fluct, seed * 37 + i * 11 + 2);
    config.request_latency = spec.latency_sec;
    config.failure_index = i;
    config.failure = with_failures ? set.failure.get() : nullptr;

    set.clouds.push_back(
        std::make_unique<SimCloud>(env, *set.net, std::move(config)));
  }
  return set;
}

}  // namespace unidrive::sim
