// Transient-failure model for simulated Web API requests.
//
// Reproduces three measured behaviours (Section 3.2):
//  * per-request transient failures with a base rate depending on the
//    (cloud, location) pair — ~1% US-to-US, ~10% China-to-US, etc.;
//  * failure probability grows with transfer size (Figure 4);
//  * failures are NEGATIVELY correlated across clouds (Table 1): at any
//    time at most one cloud is "troubled" (elevated failure rate), and the
//    troubled cloud rotates randomly per time slot — when one cloud is
//    having problems the others are statistically healthier, exactly the
//    effect the paper exploits.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_queue.h"

namespace unidrive::sim {

struct FailureParams {
  double base_rate = 0.01;          // per-request failure floor
  double per_mb_rate = 0.004;       // + this per MiB of payload
  double troubled_rate = 0.22;      // rate while this cloud is troubled
  double trouble_slot_seconds = 1800;  // trouble rotation interval
  // P(some cloud is troubled in a slot). High enough that failure bursts
  // dominate the failure statistics — that exclusivity is what produces the
  // NEGATIVE cross-cloud failure correlations of Table 1.
  double trouble_probability = 0.55;
};

class FailureModel {
 public:
  // One model instance covers all `num_clouds` clouds at one location so
  // the troubled-cloud rotation is shared (that's what anti-correlates).
  FailureModel(std::size_t num_clouds, FailureParams params,
               std::uint64_t seed)
      : num_clouds_(num_clouds), params_(params), seed_(seed) {}

  // Failure probability for a request to `cloud` at time t moving `bytes`.
  // Per-cloud base rates may be overridden via set_base_rate.
  [[nodiscard]] double failure_prob(std::size_t cloud, SimTime t,
                                    std::uint64_t bytes) const;

  // Which cloud is troubled in the slot containing t (-1 if none).
  [[nodiscard]] int troubled_cloud(SimTime t) const;

  void set_base_rate(std::size_t cloud, double rate);

 private:
  std::size_t num_clouds_;
  FailureParams params_;
  std::uint64_t seed_;
  std::vector<double> base_override_;
};

}  // namespace unidrive::sim
