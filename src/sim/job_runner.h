// JobRunner — the virtual-time transfer driver shared by transfer_run.cc
// (single synchronous jobs) and e2e.cc (concurrent uploaders/downloaders).
// Mirrors sched::ThreadedTransferDriver: per-cloud connection slots, polls
// idle slots fastest-cloud-first, feeds completions to the scheduler and
// the throughput monitor, disables persistently failing clouds.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "sched/monitor.h"
#include "sim/sim_cloud.h"
#include "sim/transfer_run.h"

namespace unidrive::sim {

template <typename Scheduler>
class JobRunner : public std::enable_shared_from_this<JobRunner<Scheduler>> {
 public:
  // `scheduler` may be owned (shared_ptr) so asynchronous jobs keep their
  // state alive for as long as callbacks may fire.
  JobRunner(SimEnv& env, std::vector<SimCloud*> clouds,
            std::shared_ptr<Scheduler> scheduler,
            sched::ThroughputMonitor& monitor, RunConfig config,
            sched::Direction direction)
      : env_(env),
        clouds_(std::move(clouds)),
        scheduler_(std::move(scheduler)),
        monitor_(monitor),
        config_(config),
        direction_(direction) {
    for (SimCloud* c : clouds_) {
      free_slots_[c->id()] = config_.connections_per_cloud;
      by_id_[c->id()] = c;
      ids_.push_back(c->id());
    }
  }

  void start(std::function<void()> on_done) {
    on_done_ = std::move(on_done);
    start_time_ = env_.now();
    env_.schedule(config_.timeout, [self = this->shared_from_this()] {
      if (!self->done_) self->finish();
    });
    sync_health_gates();  // clouds tripped in earlier rounds start disabled
    check_done();         // a job may be trivially finished (no files)
    poll();
  }

  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] double start_time() const noexcept { return start_time_; }
  [[nodiscard]] double finish_time() const noexcept { return finish_time_; }
  [[nodiscard]] std::uint64_t transfers() const noexcept { return transfers_; }
  [[nodiscard]] std::uint64_t failures() const noexcept { return failures_; }
  [[nodiscard]] Scheduler& scheduler() noexcept { return *scheduler_; }

  // Fires after every block completion (progress observers hook in here).
  std::function<void()> on_progress;

 private:
  // With a health registry, the scheduler's per-cloud enablement mirrors the
  // breakers: open-breaker clouds get their blocks rerouted, and a breaker
  // whose probe timer expired re-enables its cloud so the next dispatch acts
  // as the half-open probe.
  void sync_health_gates() {
    if (config_.health == nullptr) return;
    for (const cloud::CloudId id : ids_) {
      scheduler_->set_cloud_enabled(id, config_.health->admissible(id));
    }
  }

  [[nodiscard]] bool may_dispatch_to(cloud::CloudId id) const {
    return config_.health == nullptr || config_.health->admissible(id);
  }

  void poll() {
    if (done_) return;
    sync_health_gates();
    // Fastest clouds are offered work first: with over-provisioning this is
    // what routes surplus blocks to the fast clouds.
    const auto ranked =
        config_.dynamic_polling ? monitor_.ranked(direction_, ids_) : ids_;
    if constexpr (requires { scheduler_->set_speed_order(ranked); }) {
      if (config_.dynamic_polling) scheduler_->set_speed_order(ranked);
    }
    bool dispatched = true;
    while (dispatched) {
      dispatched = false;
      for (const cloud::CloudId id : ranked) {
        if (free_slots_[id] == 0 || !may_dispatch_to(id)) continue;
        auto task = scheduler_->next_task(id);
        if (!task.has_value()) continue;
        dispatch(*task);
        dispatched = true;
      }
      // Straggler hedging (downloads, dynamic scheduling only): idle fast
      // connections duplicate work pinned on slower clouds.
      if constexpr (requires { scheduler_->next_hedge_task(ids_[0]); }) {
        if (!dispatched && config_.dynamic_polling) {
          for (const cloud::CloudId id : ranked) {
            if (free_slots_[id] == 0 || !may_dispatch_to(id)) continue;
            auto task = scheduler_->next_hedge_task(id);
            if (!task.has_value()) continue;
            dispatch(*task);
            dispatched = true;
          }
        }
      }
    }
  }

  void dispatch(const sched::BlockTask& task) {
    UNI_DLOG << "t=" << env_.now() << " dispatch file" << task.file_index
             << " seg " << task.segment_id << " blk " << task.block_index
             << " -> cloud " << task.cloud;
    --free_slots_[task.cloud];
    // The transfer we are about to issue IS the breaker probe when the cloud
    // is half-open; allow_request() books the probe slot. admissible() was
    // checked just before in this single-threaded loop, so a refusal can
    // only mean the half-open probe quota filled within this poll — feed
    // the block back to the scheduler instead of sending it.
    if (config_.health != nullptr &&
        !config_.health->allow_request(task.cloud)) {
      ++free_slots_[task.cloud];
      scheduler_->on_complete(task, false);
      return;
    }
    const double begin = env_.now();
    auto completion = [self = this->shared_from_this(), task, begin](bool ok) {
      self->on_transfer_done(task, begin, ok);
    };
    SimCloud* cloud = by_id_[task.cloud];
    if (direction_ == sched::Direction::kUpload) {
      cloud->upload(static_cast<double>(task.bytes), std::move(completion));
    } else {
      cloud->download(static_cast<double>(task.bytes), std::move(completion));
    }
  }

  void on_transfer_done(const sched::BlockTask& task, double begin, bool ok) {
    UNI_DLOG << "t=" << env_.now() << " complete ok=" << ok << " seg "
             << task.segment_id << " blk " << task.block_index << " cloud "
             << task.cloud;
    ++free_slots_[task.cloud];
    ++transfers_;
    if (done_) return;  // timed out meanwhile; drop the result
    const double elapsed = env_.now() - begin;
    if (ok) {
      monitor_.record(task.cloud, direction_, static_cast<double>(task.bytes),
                      std::max(1e-9, elapsed));
      consecutive_failures_[task.cloud] = 0;
    } else {
      ++failures_;
      monitor_.record_failure(task.cloud, direction_, elapsed);
      if (config_.health == nullptr &&
          ++consecutive_failures_[task.cloud] >=
              config_.failure_disable_threshold) {
        scheduler_->set_cloud_enabled(task.cloud, false);
      }
    }
    if (config_.health != nullptr) {
      // The breaker decides instead of the per-run counter; poll() syncs the
      // scheduler gates from it right after.
      if (ok) {
        config_.health->record_success(task.cloud, elapsed);
      } else {
        config_.health->record_failure(task.cloud, elapsed);
      }
    }
    scheduler_->on_complete(task, ok);
    if (on_progress) on_progress();
    check_done();
    poll();
  }

  void check_done() {
    if (!done_ && scheduler_->finished()) finish();
  }

  void finish() {
    done_ = true;
    finish_time_ = env_.now();
    if (on_done_) {
      auto cb = std::move(on_done_);
      cb();
    }
  }

  SimEnv& env_;
  std::vector<SimCloud*> clouds_;
  std::shared_ptr<Scheduler> scheduler_;
  sched::ThroughputMonitor& monitor_;
  RunConfig config_;
  sched::Direction direction_;

  std::vector<cloud::CloudId> ids_;
  std::map<cloud::CloudId, std::size_t> free_slots_;
  std::map<cloud::CloudId, SimCloud*> by_id_;
  std::map<cloud::CloudId, int> consecutive_failures_;
  std::function<void()> on_done_;
  bool done_ = false;
  double start_time_ = 0;
  double finish_time_ = 0;
  std::uint64_t transfers_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace unidrive::sim
