// End-to-end multi-device synchronization simulation (Figures 11-12,
// Tables 2-3): one uploading device pushes a batch of files through the
// multi-cloud while several downloading devices — each with its own network
// view of the same five clouds — poll the version file, fetch metadata, and
// pull blocks, all concurrently in virtual time.
//
// The uploader runs the genuine UploadScheduler (two-phase, over-
// provisioned) and commits metadata incrementally: every commit interval it
// publishes the block map of the files that became available since the last
// commit (the real client's periodic sync rounds). Downloaders see a commit
// only after their next poll, then fetch the (delta) metadata and join the
// block download. Sync time per file = download completion - batch start.
#pragma once

#include <optional>

#include "sched/plan.h"
#include "sim/job_runner.h"
#include "sim/profiles.h"

namespace unidrive::sim {

struct E2EConfig {
  std::size_t num_files = 100;
  std::uint64_t file_size = 1 << 20;
  sched::CodeParams code;             // defaults: N=5, k=3, Ks=2, Kr=3
  sched::UploadOptions upload_options;  // ablations / benchmark baseline
  RunConfig run;                      // connection limits etc.
  double poll_interval = 5.0;         // tau: version-file check period
  double commit_interval = 10.0;      // uploader metadata commit period
  // Metadata sizes (bytes), matching the real serialized structures:
  double version_file_bytes = 40;
  double metadata_bytes_per_file = 180;  // snapshot + segment record
};

struct DownloaderResult {
  std::vector<double> file_sync_time;  // per file, from batch start; -1 never
  double all_synced_time = -1;         // when the last file landed
  std::uint64_t metadata_fetches = 0;
  std::uint64_t polls = 0;
};

struct E2EResult {
  UploadRunResult upload;
  std::vector<DownloaderResult> downloaders;
  // Batch sync time: all files on all devices (the Figure 11 metric).
  double batch_sync_time = -1;
  // Traffic accounting for the overhead table.
  double payload_bytes = 0;
  double metadata_bytes = 0;
  std::uint64_t api_requests = 0;
};

// `uploader` and `downloaders` are independent CloudSets (one per device
// location) built over the same five logical clouds.
E2EResult run_unidrive_e2e(SimEnv& env, CloudSet& uploader,
                           const std::vector<CloudSet*>& downloaders,
                           const E2EConfig& config);

}  // namespace unidrive::sim
