// SimCloud — a simulated CCS endpoint: request latency, transient failures,
// and fluid-shared link bandwidth. The virtual-time counterpart of a real
// CloudProvider for the performance experiments; the same scheduler code
// drives both (see transfer_run.h).
#pragma once

#include <functional>
#include <string>

#include "sim/failure.h"
#include "sim/fluid.h"

namespace unidrive::sim {

struct SimCloudConfig {
  std::uint32_t id = 0;
  std::string name;
  BandwidthPtr up;
  BandwidthPtr down;
  double per_connection_cap = 0;  // bytes/sec; 0 = uncapped
  double request_latency = 0.15;  // API call setup (DNS/TLS/HTTP), seconds
  // Index of this cloud in the location's shared FailureModel.
  std::size_t failure_index = 0;
  const FailureModel* failure = nullptr;  // may be null: never fails
};

class SimCloud {
 public:
  SimCloud(SimEnv& env, FluidNet& net, SimCloudConfig config);

  // Transfers `bytes` and calls done(success). A failed request still wastes
  // time: it transfers a random fraction of the payload before aborting.
  void upload(double bytes, std::function<void(bool)> done);
  void download(double bytes, std::function<void(bool)> done);

  // Small metadata request (list, version file, lock file): latency only.
  void small_op(std::function<void(bool)> done);

  void set_outage(bool down) noexcept { outage_ = down; }
  [[nodiscard]] bool in_outage() const noexcept { return outage_; }

  [[nodiscard]] std::uint32_t id() const noexcept { return config_.id; }
  [[nodiscard]] const std::string& name() const noexcept {
    return config_.name;
  }

  // Traffic accounting (bytes actually moved, including aborted requests).
  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t failures = 0;
    double bytes_up = 0;
    double bytes_down = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  void transfer(double bytes, bool is_download,
                std::function<void(bool)> done);

  SimEnv& env_;
  FluidNet& net_;
  SimCloudConfig config_;
  bool outage_ = false;
  Stats stats_;
};

}  // namespace unidrive::sim
