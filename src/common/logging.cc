#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace unidrive {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "-";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace unidrive
