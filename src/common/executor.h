// Executor + BoundedQueue — the shared concurrency substrate of the staged
// sync pipeline (scan → encode → place → transfer) and the transfer drivers.
//
// Executor is a deliberately simple fixed-size thread pool: no work
// stealing, one FIFO task queue, N worker threads. Two usage patterns:
//
//   submit(fn)            fire-and-forget task (the transfer drivers submit
//                         one finite task per block transfer).
//   parallel_apply(n, fn) caller-participating fan-out of fn(0..n-1): the
//                         calling thread claims indices alongside the pool,
//                         so progress is guaranteed even when every pool
//                         thread is busy or blocked — a stage thread may
//                         therefore call it without deadlock risk, whatever
//                         the pool size (the erasure encode fan-out relies
//                         on this).
//
// Tasks must be independent: a submitted task that BLOCKS waiting for
// another submitted task can deadlock a small pool. Blocking on external
// I/O (a cloud request) is fine — that is exactly what the transfer
// drivers do — it just occupies a pool slot for the duration.
//
// Exception safety: a throwing fire-and-forget task is caught and logged —
// it must not kill the worker thread (std::terminate) or wedge the pool.
// parallel_apply() propagates the first exception to the caller after every
// claimed index has completed, so the fan-out never hangs on a throw.
//
// Pool size resolution (Executor::default_threads): the environment
// variable UNIDRIVE_PIPELINE_THREADS wins when set (CI uses =1 to prove
// the pipeline degrades to deterministic single-threaded behaviour),
// otherwise max(floor, hardware_concurrency) — callers pass the transfer
// concurrency they need (clouds × connections) as the floor.
//
// BoundedQueue<T> is the backpressure channel between pipeline stages:
// push() blocks while the queue is full, pop() blocks while it is empty.
// close() ends the stream gracefully (pushes rejected, pops drain the
// remaining items, then return nullopt); cancel() aborts it (contents
// dropped, every blocked producer and consumer released immediately).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace unidrive {

class Executor {
 public:
  explicit Executor(std::size_t threads);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // UNIDRIVE_PIPELINE_THREADS when set (> 0), else
  // max(floor, hardware_concurrency, 1).
  [[nodiscard]] static std::size_t default_threads(std::size_t floor = 1);

  void submit(std::function<void()> fn);

  // Runs fn(0) .. fn(count - 1), returning when all have completed. The
  // caller participates, so this never deadlocks regardless of pool load;
  // with a single-thread pool the calls run serially in index order on the
  // calling thread.
  void parallel_apply(std::size_t count,
                      const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }

  // Worker threads currently executing a task — the "threads in use" half
  // of the rpcs-in-flight vs threads-in-use observability split.
  [[nodiscard]] std::size_t active() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  void worker();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::atomic<std::size_t> active_{0};
  std::vector<std::thread> threads_;
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  // Blocks while the queue is full. Returns false (item dropped) when the
  // queue is closed or cancelled.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] {
      return closed_ || cancelled_ || items_.size() < capacity_;
    });
    if (closed_ || cancelled_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Blocks while the queue is empty. Returns nullopt once the queue is
  // closed and drained, or immediately after cancel().
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] {
      return cancelled_ || closed_ || !items_.empty();
    });
    if (cancelled_ || items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // Graceful end-of-stream: no further pushes; queued items remain poppable.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  // Abort: drop queued items and release every blocked producer/consumer.
  void cancel() {
    std::lock_guard<std::mutex> lock(mutex_);
    cancelled_ = true;
    closed_ = true;
    items_.clear();
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }
  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }
  [[nodiscard]] bool cancelled() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return cancelled_;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
  bool cancelled_ = false;
};

}  // namespace unidrive
