// Clock abstraction. The synchronization protocol (lock refresh/breaking,
// poll intervals) never requires globally synchronized clocks — only locally
// monotonic ones — so every component takes a Clock& and tests drive a
// ManualClock deterministically.
#pragma once

#include <atomic>
#include <chrono>

namespace unidrive {

// Seconds since an arbitrary epoch. Double keeps simulation maths simple and
// has ~microsecond precision over the spans we simulate (weeks).
using TimePoint = double;
using Duration = double;

class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual TimePoint now() const = 0;
};

class RealClock final : public Clock {
 public:
  [[nodiscard]] TimePoint now() const override {
    using namespace std::chrono;
    return duration<double>(steady_clock::now().time_since_epoch()).count();
  }

  static RealClock& instance() {
    static RealClock clock;
    return clock;
  }
};

// Thread-safe manually advanced clock for tests.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimePoint start = 0.0) : now_(start) {}

  [[nodiscard]] TimePoint now() const override { return now_.load(); }
  void advance(Duration d) { now_.store(now_.load() + d); }
  void set(TimePoint t) { now_.store(t); }

 private:
  std::atomic<double> now_;
};

}  // namespace unidrive
