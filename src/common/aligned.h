// 64-byte-aligned byte buffers for the SIMD data plane.
//
// The GF(2^8) shuffle kernels stream 32-byte vectors over whole shards; when
// the source rows start on a cache-line boundary no wide load ever straddles
// two lines, which is worth a few percent of memory bandwidth on the encode
// hot loop. Alignment is an OPTIMIZATION, never a contract: every kernel
// uses unaligned loads/stores and accepts arbitrary pointers (the
// differential fuzz test exercises misaligned heads and tails explicitly).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace unidrive {

inline constexpr std::size_t kKernelAlignment = 64;

template <typename T, std::size_t Align = kKernelAlignment>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "alignment must be a power of two covering alignof(T)");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

// Shard-sized scratch rows on the encode/decode hot path.
using AlignedBytes = std::vector<std::uint8_t, AlignedAllocator<std::uint8_t>>;

}  // namespace unidrive
