#include "common/executor.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "common/logging.h"

namespace unidrive {

Executor::Executor(std::size_t threads) {
  if (threads == 0) threads = 1;
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { worker(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::size_t Executor::default_threads(std::size_t floor) {
  if (const char* env = std::getenv("UNIDRIVE_PIPELINE_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<std::size_t>(v);
  }
  const std::size_t hw = std::thread::hardware_concurrency();
  std::size_t n = floor > hw ? floor : hw;
  return n == 0 ? 1 : n;
}

void Executor::submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void Executor::worker() {
  while (true) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      // Drain remaining tasks even when stopping: submitted work may hold
      // completion counters other threads are waiting on.
      if (queue_.empty()) return;
      fn = std::move(queue_.front());
      queue_.pop_front();
    }
    active_.fetch_add(1, std::memory_order_relaxed);
    // A fire-and-forget task has nowhere to report an exception; letting it
    // escape would std::terminate the process and take the pool with it.
    try {
      fn();
    } catch (const std::exception& e) {
      UNI_LOG(kWarn) << "executor task threw: " << e.what();
    } catch (...) {
      UNI_LOG(kWarn) << "executor task threw a non-std exception";
    }
    active_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Executor::parallel_apply(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (size() <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Shared claim/done state outlives this call only through the pool tasks;
  // they never touch `fn` after every index is claimed, and the caller only
  // returns once every claimed index has completed.
  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t count = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;  // first exception, guarded by mutex
  };
  auto shared = std::make_shared<Shared>();
  shared->count = count;
  shared->fn = &fn;

  const auto work = [shared] {
    while (true) {
      const std::size_t i =
          shared->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= shared->count) return;
      // The done counter must advance even when fn(i) throws, or the caller
      // waits forever; the first exception is rethrown there instead.
      try {
        (*shared->fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared->mutex);
        if (!shared->error) shared->error = std::current_exception();
      }
      if (shared->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          shared->count) {
        std::lock_guard<std::mutex> lock(shared->mutex);
        shared->cv.notify_all();
      }
    }
  };

  const std::size_t helpers = std::min(size(), count - 1);
  for (std::size_t i = 0; i < helpers; ++i) submit(work);
  work();  // the caller claims indices too — guaranteed progress

  std::unique_lock<std::mutex> lock(shared->mutex);
  shared->cv.wait(lock, [&] {
    return shared->done.load(std::memory_order_acquire) >= shared->count;
  });
  if (shared->error) std::rethrow_exception(shared->error);
}

}  // namespace unidrive
