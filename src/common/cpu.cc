#include "common/cpu.h"

#include <cstdlib>
#include <map>
#include <mutex>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace unidrive {

CpuFeatures probe_cpu() noexcept {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    f.ssse3 = (ecx & bit_SSSE3) != 0;
    f.sse42 = (ecx & bit_SSE4_2) != 0;
    f.aesni = (ecx & bit_AES) != 0;
    // AVX2 additionally requires OS support for YMM state (XSAVE/OSXSAVE +
    // XCR0 bits 1-2), otherwise executing a VEX.256 insn faults.
    const bool osxsave = (ecx & bit_OSXSAVE) != 0;
    bool ymm_enabled = false;
    if (osxsave) {
      std::uint32_t xcr0_lo = 0, xcr0_hi = 0;
      __asm__("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
      ymm_enabled = (xcr0_lo & 0x6) == 0x6;
    }
    if (ymm_enabled && __get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
      f.avx2 = (ebx & bit_AVX2) != 0;
    }
  }
#endif
  return f;
}

const CpuFeatures& cpu_features() noexcept {
  static const CpuFeatures cached = [] {
    CpuFeatures f = probe_cpu();
    const char* force = std::getenv("UNIDRIVE_FORCE_SCALAR");
    if (force != nullptr && *force != '\0' && *force != '0') {
      f = CpuFeatures{};
      f.force_scalar = true;
    }
    return f;
  }();
  return cached;
}

namespace {
struct KernelRegistry {
  std::mutex mutex;
  std::map<std::string, ResolvedKernel> kernels;
};
KernelRegistry& registry() {
  static KernelRegistry r;
  return r;
}
}  // namespace

void note_kernel(const char* kernel, const char* impl, int tier) {
  KernelRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.kernels[kernel] = ResolvedKernel{kernel, impl, tier};
}

std::vector<ResolvedKernel> resolved_kernels() {
  KernelRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<ResolvedKernel> out;
  out.reserve(r.kernels.size());
  for (const auto& [name, k] : r.kernels) out.push_back(k);
  return out;
}

}  // namespace unidrive
