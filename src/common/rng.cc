#include "common/rng.h"

#include <cmath>

namespace unidrive {

double Rng::exponential(double mean) noexcept {
  double u = next_double();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) noexcept {
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  return mean + stddev * u * m;
}

double Rng::lognormal(double median, double sigma) noexcept {
  return median * std::exp(normal(0.0, sigma));
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i + 8 <= n) {
    const std::uint64_t w = next();
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<std::uint8_t>(w >> (8 * b));
  }
  if (i < n) {
    const std::uint64_t w = next();
    for (int b = 0; i < n; ++b) out[i++] = static_cast<std::uint8_t>(w >> (8 * b));
  }
  return out;
}

}  // namespace unidrive
