#include "common/bytes.h"

namespace unidrive {

Bytes bytes_from_string(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string string_from_bytes(ByteSpan b) {
  return std::string(b.begin(), b.end());
}

std::string to_hex(ByteSpan b) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t v : b) {
    out.push_back(kDigits[v >> 4]);
    out.push_back(kDigits[v & 0xF]);
  }
  return out;
}

namespace {
int hex_nibble(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return {};
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return {};
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::uint64_t fnv1a(ByteSpan b) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t v : b) {
    h ^= v;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace unidrive
