// Minimal leveled logger. Off by default; benches/tests can raise the level.
#pragma once

#include <sstream>
#include <string>

namespace unidrive {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;
void log_line(LogLevel level, const std::string& msg);

namespace internal {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

#define UNI_LOG(level)                                             \
  if (::unidrive::log_level() > ::unidrive::LogLevel::level) {     \
  } else                                                           \
    ::unidrive::internal::LogMessage(::unidrive::LogLevel::level).stream()

#define UNI_DLOG UNI_LOG(kDebug)

}  // namespace unidrive
