// Compact binary serialization for metadata files (SyncFolderImage, delta
// logs, version files). Varint-coded integers keep the metadata small, which
// matters because metadata is replicated to every cloud on every commit.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/status.h"

namespace unidrive {

class BinaryWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u32(std::uint32_t v);   // fixed little-endian
  void put_u64(std::uint64_t v);   // fixed little-endian
  void put_varint(std::uint64_t v);
  void put_double(double v);
  void put_string(std::string_view s);   // varint length + bytes
  void put_bytes(ByteSpan b);            // varint length + bytes
  void put_raw(ByteSpan b);              // bytes only, no length prefix

  [[nodiscard]] const Bytes& data() const noexcept { return buf_; }
  [[nodiscard]] Bytes take() && noexcept { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  Bytes buf_;
};

class BinaryReader {
 public:
  explicit BinaryReader(ByteSpan data) noexcept : data_(data) {}

  Result<std::uint8_t> get_u8();
  Result<std::uint32_t> get_u32();
  Result<std::uint64_t> get_u64();
  Result<std::uint64_t> get_varint();
  Result<double> get_double();
  Result<std::string> get_string();
  Result<Bytes> get_bytes();
  Result<Bytes> get_raw(std::size_t n);

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }

 private:
  ByteSpan data_;
  std::size_t pos_ = 0;
};

}  // namespace unidrive
