// The single retry/backoff/deadline policy for every cloud-facing call.
//
// Consumer cloud APIs fail constantly (the paper measures 82.5%-99%
// per-request success, with failure probability growing with transfer size),
// so UniDrive used to grow ad-hoc retry loops in every layer. This header
// replaces them: a RetryPolicy describes HOW to retry (attempt budget,
// exponential backoff with decorrelated jitter, per-attempt and total
// deadlines) and retry_call() executes it against any Status-returning
// operation. Time and sleeping are injected (RetryEnv) so tests and the
// discrete-event simulator drive retries deterministically in virtual time.
//
// What retries, and what does not, is decided by Status::is_transient():
// kUnavailable and kTimeout are retried on the same cloud; kOutage, kQuota,
// kNotFound etc. are surfaced immediately — re-paying the backoff cost
// against a dead or full cloud is exactly what the circuit breaker
// (cloud/health.h) exists to avoid.
#pragma once

#include <functional>
#include <optional>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"

namespace unidrive {

// Sleeping is injected so tests and simulations control time. The default
// used by production code sleeps the calling thread for real.
using SleepFn = std::function<void(Duration)>;
SleepFn real_sleep();

// True when `sleep` is the real_sleep() default (or empty). The async retry
// layer uses this to decide HOW to pause: a real sleep becomes a thread-free
// timer-wheel re-arm, while an injected sleep (virtual time — tests advance
// a ManualClock in it) must still be CALLED so its side effects happen.
[[nodiscard]] bool is_real_sleep(const SleepFn& sleep);

struct RetryPolicy {
  // Total tries, including the first one. 1 = no retry.
  int max_attempts = 4;
  // Backoff between attempts: decorrelated jitter, sleep_n drawn uniformly
  // from [base, 3 * sleep_{n-1}] and clamped to [base, cap]. Always >= base
  // (so tests can count on a minimum advance) and never above cap.
  Duration backoff_base = 0.05;
  Duration backoff_cap = 2.0;
  // An attempt that takes longer than this counts as kTimeout even if the
  // underlying call eventually returned OK (the caller already gave up on
  // it; the paper's clouds routinely stall for minutes). 0 = unlimited.
  Duration attempt_deadline = 0;
  // Hard budget for the whole call including backoff sleeps. When the next
  // backoff would overrun it, retrying stops and kTimeout is returned.
  // 0 = unlimited.
  Duration total_deadline = 0;

  // A policy that performs the call exactly once, with no backoff.
  [[nodiscard]] static RetryPolicy single_shot() noexcept {
    RetryPolicy p;
    p.max_attempts = 1;
    p.backoff_base = 0;
    p.backoff_cap = 0;
    return p;
  }
};

// The decorrelated-jitter backoff sequence of one retrying call. Kept as a
// separate object so callers with their own loop shape (e.g. the quorum
// lock, whose "attempt" is a whole multi-cloud protocol round) reuse the
// exact same backoff behaviour as retry_call().
class BackoffState {
 public:
  explicit BackoffState(const RetryPolicy& policy) noexcept
      : base_(policy.backoff_base),
        cap_(policy.backoff_cap),
        prev_(policy.backoff_base) {}

  Duration next(Rng& rng) noexcept {
    const Duration hi = prev_ * 3.0 > base_ ? prev_ * 3.0 : base_;
    prev_ = rng.uniform(base_, hi);
    if (prev_ > cap_) prev_ = cap_;
    return prev_;
  }

 private:
  Duration base_;
  Duration cap_;
  Duration prev_;
};

// Injectable time sources for one call site. Copy-cheap apart from the RNG
// state; each concurrently retrying call should own its env (fork the RNG).
struct RetryEnv {
  Clock* clock = &RealClock::instance();
  SleepFn sleep = real_sleep();
  Rng rng{0x7265747279ULL};  // "retry"
  // Optional observers, so callers (e.g. RetryingCloud) can meter retry
  // behaviour without this layer depending on the obs library. on_attempt
  // fires after every attempt with its 1-based number and outcome;
  // on_backoff fires with each pause that is about to be slept. Null (the
  // default) disables instrumentation.
  std::function<void(int, const Status&)> on_attempt;
  std::function<void(Duration)> on_backoff;
};

// Runs `op` until it returns OK or a non-transient error, the attempt budget
// is exhausted, or a deadline is hit. Returns the last Status (or kTimeout
// when a deadline cut the call short).
Status retry_call(const RetryPolicy& policy, RetryEnv& env,
                  const std::function<Status()>& op);

// Result-returning flavour: the value of the last successful attempt.
template <typename T>
Result<T> retry_call(const RetryPolicy& policy, RetryEnv& env,
                     const std::function<Result<T>()>& op) {
  std::optional<Result<T>> last;
  const Status status = retry_call(policy, env, [&]() -> Status {
    last.emplace(op());
    return last->status();
  });
  // A deadline can stop the call before (or after) an attempt ran; the
  // Status from retry_call is then the authoritative outcome.
  if (!status.is_ok() || !last.has_value()) return status;
  return *std::move(last);
}

}  // namespace unidrive
