#include "common/timer_wheel.h"

#include <chrono>

namespace unidrive {

double TimerWheel::steady_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TimerWheel::TimerWheel() : thread_([this] { run(); }) {}

TimerWheel::~TimerWheel() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    entries_.clear();  // pending timers are dropped, not fired
  }
  cv_.notify_all();
  thread_.join();
}

TimerWheel::TimerId TimerWheel::schedule(Duration delay,
                                         std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  const TimerId id = next_id_++;
  const double deadline = steady_now() + (delay > 0 ? delay : 0);
  entries_.emplace(id, Entry{deadline, std::move(fn)});
  heap_.emplace(deadline, id);
  cv_.notify_one();
  return id;
}

bool TimerWheel::cancel(TimerId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (entries_.erase(id) != 0) return true;
  // Already popped: either finished, or mid-callback. Block until it is
  // done so the caller can rely on the callback not running concurrently —
  // unless we ARE the callback (re-entrant cancel must not deadlock).
  if (running_ == id && std::this_thread::get_id() != thread_.get_id()) {
    done_cv_.wait(lock, [&] { return running_ != id; });
  }
  return false;
}

void TimerWheel::sleep(Duration delay) {
  if (delay <= 0) return;
  std::mutex m;
  std::condition_variable cv;
  bool fired = false;
  schedule(delay, [&] {
    std::lock_guard<std::mutex> lock(m);
    fired = true;
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return fired; });
}

std::size_t TimerWheel::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

TimerWheel& TimerWheel::shared() {
  static TimerWheel wheel;
  return wheel;
}

void TimerWheel::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    // Drop heap entries whose map entry is gone (cancelled).
    while (!heap_.empty() && entries_.count(heap_.top().second) == 0) {
      heap_.pop();
    }
    if (heap_.empty()) {
      cv_.wait(lock, [&] { return stop_ || !heap_.empty(); });
      continue;
    }
    const auto [deadline, id] = heap_.top();
    const double now = steady_now();
    if (deadline > now) {
      cv_.wait_for(lock,
                   std::chrono::duration<double>(deadline - now));
      continue;  // re-evaluate: an earlier timer or a cancel may have landed
    }
    heap_.pop();
    const auto it = entries_.find(id);
    if (it == entries_.end()) continue;  // cancelled while due
    std::function<void()> fn = std::move(it->second.fn);
    entries_.erase(it);
    running_ = id;
    lock.unlock();
    fn();
    lock.lock();
    running_ = 0;
    done_cv_.notify_all();
  }
}

}  // namespace unidrive
