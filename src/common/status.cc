#include "common/status.h"

namespace unidrive {

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kOutage: return "OUTAGE";
    case ErrorCode::kQuotaExceeded: return "QUOTA_EXCEEDED";
    case ErrorCode::kConflict: return "CONFLICT";
    case ErrorCode::kLockContention: return "LOCK_CONTENTION";
    case ErrorCode::kCorrupt: return "CORRUPT";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kUnimplemented: return "UNIMPLEMENTED";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string out = error_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace unidrive
