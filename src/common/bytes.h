// Byte-buffer helpers shared across the codebase.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace unidrive {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

Bytes bytes_from_string(std::string_view s);
std::string string_from_bytes(ByteSpan b);

std::string to_hex(ByteSpan b);
// Returns empty on malformed input (odd length / non-hex chars).
Bytes from_hex(std::string_view hex);

// FNV-1a, used for cheap non-cryptographic fingerprints in tests/benches.
std::uint64_t fnv1a(ByteSpan b) noexcept;

}  // namespace unidrive
