// Runtime CPU feature probe and kernel-dispatch registry.
//
// Every byte-crunching kernel in the data plane (GF(2^8) multiply-accumulate,
// CRC32C, AES-CTR) exists in at least two flavours: a portable scalar
// fallback and one or more ISA-accelerated variants. Each kernel resolves a
// function pointer ONCE (first use, thread-safe via static-local init) by
// consulting cpu_features(); the chosen implementation is registered here so
// observability can export what actually runs (`cpu.kernel.*` gauges) and
// tests can assert the dispatch outcome.
//
// Setting UNIDRIVE_FORCE_SCALAR=1 in the environment masks every ISA bit, so
// the whole process runs on the portable fallbacks — CI uses this to prove
// the scalar paths stay correct and the SIMD paths are equivalence-tested
// against them (tests/kernels_test.cc).
#pragma once

#include <string>
#include <vector>

namespace unidrive {

struct CpuFeatures {
  bool ssse3 = false;   // pshufb          -> GF(2^8) shuffle kernels
  bool sse42 = false;   // crc32 insn      -> hardware CRC32C
  bool avx2 = false;    // vpshufb (256b)  -> wide GF(2^8) kernels
  bool aesni = false;   // aesenc          -> AES-128-CTR
  bool force_scalar = false;  // UNIDRIVE_FORCE_SCALAR was set
};

// Raw CPUID probe of the executing CPU; ignores UNIDRIVE_FORCE_SCALAR.
[[nodiscard]] CpuFeatures probe_cpu() noexcept;

// Cached process-wide view consulted by every kernel resolver: the probe
// with UNIDRIVE_FORCE_SCALAR applied (all ISA bits cleared when forced).
// Read once at first use; changing the environment afterwards has no effect.
[[nodiscard]] const CpuFeatures& cpu_features() noexcept;

// One kernel's resolved dispatch decision.
struct ResolvedKernel {
  std::string kernel;  // stable id, e.g. "gf_mul_add", "crc32c", "aes_ctr"
  std::string impl;    // chosen implementation, e.g. "avx2", "scalar"
  int tier = 0;        // 0 = scalar/portable, higher = wider/faster ISA
};

// Called by a kernel's resolver exactly once, when its function pointer is
// first materialized. Re-registering the same kernel id overwrites (benign).
void note_kernel(const char* kernel, const char* impl, int tier);

// Snapshot of every kernel resolved so far. Kernels resolve lazily: touch
// their kernel_name() accessors first if a complete picture is needed.
[[nodiscard]] std::vector<ResolvedKernel> resolved_kernels();

}  // namespace unidrive
