// Status / Result: explicit, exception-free error propagation for all
// fallible operations (cloud I/O, decoding, locking).
//
// Cloud APIs in UniDrive are unreliable by design (the paper measures
// 82.5%-99% request success rates), so every provider call returns a
// Status/Result and callers must decide whether to retry, reroute to another
// cloud, or surface the failure.
#pragma once

#include <string>
#include <utility>
#include <variant>

namespace unidrive {

enum class ErrorCode {
  kOk = 0,
  kNotFound,          // file/directory does not exist on the cloud
  kUnavailable,       // transient network/server failure; retry may succeed
  kOutage,            // cloud is down or unreachable (spatial/temporal outage)
  kQuotaExceeded,     // provider storage quota exhausted
  kConflict,          // concurrent-update conflict detected
  kLockContention,    // quorum lock could not be acquired
  kCorrupt,           // data failed integrity/decoding checks
  kInvalidArgument,   // caller error
  kTimeout,           // operation exceeded its deadline
  kUnimplemented,
  kInternal,
};

const char* error_code_name(ErrorCode code) noexcept;

// A cheap value type describing the outcome of an operation.
class Status {
 public:
  Status() noexcept = default;  // OK
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return {}; }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  // Transient errors are worth retrying on the same cloud; permanent ones
  // (quota, not-found) require rerouting or surfacing.
  [[nodiscard]] bool is_transient() const noexcept {
    return code_ == ErrorCode::kUnavailable || code_ == ErrorCode::kTimeout;
  }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status make_error(ErrorCode code, std::string message) {
  return Status(code, std::move(message));
}

// Result<T>: either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {}  // NOLINT
  Result(ErrorCode code, std::string message)
      : v_(Status(code, std::move(message))) {}

  [[nodiscard]] bool is_ok() const noexcept {
    return std::holds_alternative<T>(v_);
  }
  [[nodiscard]] Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(v_);
  }
  [[nodiscard]] ErrorCode code() const noexcept {
    return is_ok() ? ErrorCode::kOk : std::get<Status>(v_).code();
  }

  // Precondition: is_ok().
  [[nodiscard]] const T& value() const& { return std::get<T>(v_); }
  [[nodiscard]] T& value() & { return std::get<T>(v_); }
  // On rvalues, value() returns by value so `f().value()` never dangles
  // (e.g. when used as a range-for initializer).
  [[nodiscard]] T value() && { return std::get<T>(std::move(v_)); }
  [[nodiscard]] T&& take() && { return std::get<T>(std::move(v_)); }

  [[nodiscard]] T value_or(T fallback) const {
    return is_ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> v_;
};

// Propagate errors without exceptions:  UNI_RETURN_IF_ERROR(expr);
#define UNI_RETURN_IF_ERROR(expr)                         \
  do {                                                    \
    ::unidrive::Status uni_status_ = (expr);              \
    if (!uni_status_.is_ok()) return uni_status_;         \
  } while (false)

#define UNI_CONCAT_INNER(a, b) a##b
#define UNI_CONCAT(a, b) UNI_CONCAT_INNER(a, b)

#define UNI_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)  \
  auto tmp = (expr);                               \
  if (!tmp.is_ok()) return tmp.status();           \
  lhs = std::move(tmp).take()

#define UNI_ASSIGN_OR_RETURN(lhs, expr) \
  UNI_ASSIGN_OR_RETURN_IMPL(UNI_CONCAT(uni_result_, __LINE__), lhs, expr)

}  // namespace unidrive
