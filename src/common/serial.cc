#include "common/serial.h"

#include <bit>
#include <cstring>

namespace unidrive {

namespace {
Status truncated() {
  return make_error(ErrorCode::kCorrupt, "serialized data truncated");
}
}  // namespace

void BinaryWriter::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void BinaryWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void BinaryWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void BinaryWriter::put_double(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void BinaryWriter::put_string(std::string_view s) {
  put_varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void BinaryWriter::put_bytes(ByteSpan b) {
  put_varint(b.size());
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void BinaryWriter::put_raw(ByteSpan b) {
  buf_.insert(buf_.end(), b.begin(), b.end());
}

Result<std::uint8_t> BinaryReader::get_u8() {
  if (pos_ + 1 > data_.size()) return truncated();
  return data_[pos_++];
}

Result<std::uint32_t> BinaryReader::get_u32() {
  if (pos_ + 4 > data_.size()) return truncated();
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<std::uint64_t> BinaryReader::get_u64() {
  if (pos_ + 8 > data_.size()) return truncated();
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<std::uint64_t> BinaryReader::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= data_.size()) return truncated();
    const std::uint8_t byte = data_[pos_++];
    if (shift >= 64) return make_error(ErrorCode::kCorrupt, "varint overflow");
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

Result<double> BinaryReader::get_double() {
  UNI_ASSIGN_OR_RETURN(const std::uint64_t bits, get_u64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> BinaryReader::get_string() {
  UNI_ASSIGN_OR_RETURN(const std::uint64_t n, get_varint());
  if (pos_ + n > data_.size()) return truncated();
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

Result<Bytes> BinaryReader::get_bytes() {
  UNI_ASSIGN_OR_RETURN(const std::uint64_t n, get_varint());
  return get_raw(n);
}

Result<Bytes> BinaryReader::get_raw(std::size_t n) {
  if (pos_ + n > data_.size()) return truncated();
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace unidrive
