#include "common/retry.h"

#include <chrono>
#include <thread>

namespace unidrive {

namespace {
// A named function (not a lambda) so is_real_sleep can identify the default
// through std::function::target.
void real_sleep_impl(Duration d) {
  if (d > 0) std::this_thread::sleep_for(std::chrono::duration<double>(d));
}
}  // namespace

SleepFn real_sleep() { return SleepFn(&real_sleep_impl); }

bool is_real_sleep(const SleepFn& sleep) {
  if (!sleep) return true;
  using Fp = void (*)(Duration);
  const Fp* target = sleep.target<Fp>();
  return target != nullptr && *target == &real_sleep_impl;
}

Status retry_call(const RetryPolicy& policy, RetryEnv& env,
                  const std::function<Status()>& op) {
  const TimePoint start = env.clock->now();
  BackoffState backoff(policy);
  Status status;
  for (int attempt = 1;; ++attempt) {
    const TimePoint attempt_start = env.clock->now();
    status = op();
    if (status.is_ok() && policy.attempt_deadline > 0 &&
        env.clock->now() - attempt_start > policy.attempt_deadline) {
      // The call came back, but only after the caller had given up on it.
      status = make_error(ErrorCode::kTimeout, "attempt exceeded deadline");
    }
    if (env.on_attempt) env.on_attempt(attempt, status);
    if (status.is_ok() || !status.is_transient()) return status;
    if (attempt >= policy.max_attempts) return status;
    const Duration pause = backoff.next(env.rng);
    if (policy.total_deadline > 0 &&
        env.clock->now() - start + pause > policy.total_deadline) {
      return make_error(ErrorCode::kTimeout,
                        "retry budget exhausted: " + status.message());
    }
    if (env.on_backoff) env.on_backoff(pause);
    env.sleep(pause);
  }
}

}  // namespace unidrive
