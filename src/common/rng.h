// Deterministic PRNG (xoshiro256**) so every simulation, test, and bench is
// reproducible from a seed. Not for cryptographic use.
#pragma once

#include <cstdint>
#include <limits>

#include "common/bytes.h"

namespace unidrive {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    // splitmix64 expansion of the seed into the 4-word state.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Rejection-free Lemire reduction is overkill here; modulo bias is
    // negligible for simulation bounds << 2^64.
    return next() % bound;
  }

  // Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  bool bernoulli(double p) noexcept { return next_double() < p; }

  // Exponential with the given mean (> 0).
  double exponential(double mean) noexcept;

  // Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  // Lognormal such that the *median* of the distribution is `median` and the
  // underlying normal has standard deviation `sigma`.
  double lognormal(double median, double sigma) noexcept;

  Bytes bytes(std::size_t n);

  // Split off an independent child stream (for per-entity RNGs).
  Rng fork() noexcept { return Rng(next() ^ 0xa0761d6478bd642fULL); }

  // UniformRandomBitGenerator interface, so <algorithm>/<random> helpers work.
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }
  result_type operator()() noexcept { return next(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace unidrive
