// TimerWheel — the shared deadline queue behind everything that used to
// sleep a thread: retry backoff re-arming, hedge delays, and LatentCloud's
// simulated request latency. One dedicated thread waits on the earliest
// deadline of a min-heap and fires callbacks as they come due, so a
// thousand pending delays cost one thread, not a thousand.
//
// Contract:
//   - schedule(delay, fn) arms fn to run once on the wheel thread after
//     `delay` seconds (real time). Callbacks must be quick and must never
//     block: a slow callback delays every timer behind it. Anything heavier
//     than re-arming work belongs on an Executor (capture one and submit).
//   - cancel(id) returns true when the callback was averted. When the
//     callback is already running it BLOCKS until it finishes — unless
//     called from the callback itself — so after cancel() returns the
//     callback is guaranteed not to be running (the AsyncHandle cancel
//     guarantee is built on this). Returns false in both late cases.
//   - sleep(d) is the blocking convenience for compat paths that still
//     need a synchronous wait routed through the wheel.
//   - Destruction drops every pending timer without firing it and joins
//     the thread. shared() is the process-wide instance used by the cloud
//     decorators; it outlives every client.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace unidrive {

class TimerWheel {
 public:
  using TimerId = std::uint64_t;

  TimerWheel();
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // Arms `fn` to fire once after `delay` seconds (<= 0 fires as soon as the
  // wheel thread gets to it). Never invokes fn on the caller's stack.
  TimerId schedule(Duration delay, std::function<void()> fn);

  // True = the callback will never run. False = it already ran or is
  // running; in the latter case this blocks until it finished, except when
  // called from the callback itself (re-entrant cancel cannot deadlock).
  bool cancel(TimerId id);

  // Blocks the calling thread for `delay` seconds using a wheel timer (the
  // compat path for blocking verbs; async paths schedule continuations
  // instead).
  void sleep(Duration delay);

  [[nodiscard]] std::size_t pending() const;

  // Process-wide wheel shared by the async cloud layer.
  static TimerWheel& shared();

 private:
  struct Entry {
    double deadline = 0;  // steady-clock seconds
    std::function<void()> fn;
  };

  void run();
  [[nodiscard]] static double steady_now();

  mutable std::mutex mutex_;
  std::condition_variable cv_;        // wakes the wheel thread
  std::condition_variable done_cv_;   // wakes cancellers of a running timer
  std::map<TimerId, Entry> entries_;
  // (deadline, id) min-heap; stale pairs (cancelled entries) are skipped on
  // pop by checking entries_.
  std::priority_queue<std::pair<double, TimerId>,
                      std::vector<std::pair<double, TimerId>>,
                      std::greater<>>
      heap_;
  TimerId next_id_ = 1;
  TimerId running_ = 0;  // id whose callback is executing, 0 = none
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace unidrive
