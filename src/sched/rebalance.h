// Add/remove-cloud rebalancing (Section 6.2, "Adding or Removing CCSs").
//
// Placement changes are computed as an explicit plan of block moves and
// deletions against the current metadata, then executed by a driver:
//  * removing a cloud: every block it holds that is still needed must be
//    re-homed to surviving clouds (bounded by the security cap);
//  * adding a cloud: it receives its fair share of each segment (new block
//    indices are materialized by re-encoding), and other clouds may shed
//    surplus blocks beyond their fair share.
#pragma once

#include <string>
#include <vector>

#include "metadata/image.h"
#include "sched/plan.h"

namespace unidrive::sched {

struct BlockMove {
  std::string segment_id;
  std::uint32_t block_index = 0;  // existing index to copy, or a fresh index
                                  // to materialize when from_cloud == kNone
  cloud::CloudId to_cloud = 0;
  static constexpr cloud::CloudId kNone = static_cast<cloud::CloudId>(-1);
  cloud::CloudId from_cloud = kNone;  // kNone = encode locally from file data
};

struct BlockDeletion {
  std::string segment_id;
  std::uint32_t block_index = 0;
  cloud::CloudId cloud = 0;
};

struct RebalancePlan {
  std::vector<BlockMove> moves;
  std::vector<BlockDeletion> deletions;

  [[nodiscard]] bool empty() const noexcept {
    return moves.empty() && deletions.empty();
  }
};

// Plan for removing `removed` from the multi-cloud. `survivors` are the
// remaining cloud ids; `params` reflect the NEW configuration (N =
// survivors.size()).
RebalancePlan plan_remove_cloud(const metadata::SyncFolderImage& image,
                                cloud::CloudId removed,
                                const std::vector<cloud::CloudId>& survivors,
                                const CodeParams& params);

// Plan for adding `added`. `all_clouds` includes the new cloud; `params`
// reflect the NEW configuration.
RebalancePlan plan_add_cloud(const metadata::SyncFolderImage& image,
                             cloud::CloudId added,
                             const std::vector<cloud::CloudId>& all_clouds,
                             const CodeParams& params);

// Applies a completed plan to the metadata (after the driver executed it).
void apply_rebalance(metadata::SyncFolderImage& image,
                     const RebalancePlan& plan);

}  // namespace unidrive::sched
