#include "sched/rebalance.h"

#include <algorithm>
#include <map>
#include <set>

namespace unidrive::sched {

namespace {

std::map<cloud::CloudId, std::size_t> load_per_cloud(
    const metadata::SegmentInfo& seg) {
  std::map<cloud::CloudId, std::size_t> load;
  for (const metadata::BlockLocation& b : seg.blocks) ++load[b.cloud];
  return load;
}

}  // namespace

RebalancePlan plan_remove_cloud(const metadata::SyncFolderImage& image,
                                cloud::CloudId removed,
                                const std::vector<cloud::CloudId>& survivors,
                                const CodeParams& params) {
  RebalancePlan plan;
  for (const auto& [id, seg] : image.segments()) {
    if (seg.refcount == 0) continue;
    auto load = load_per_cloud(seg);

    // Blocks currently on the removed cloud.
    std::vector<std::uint32_t> displaced;
    std::set<std::uint32_t> present;
    for (const metadata::BlockLocation& b : seg.blocks) {
      present.insert(b.block_index);
      if (b.cloud == removed) displaced.push_back(b.block_index);
    }

    // The paper: "to remove a CCS, we only need to redistribute its fair
    // share ... to other available CCSs". Re-home every displaced block to
    // the least-loaded survivor, bounded by the security cap, so the total
    // redundancy is preserved.
    for (const std::uint32_t b : displaced) {
      cloud::CloudId best = BlockMove::kNone;
      std::size_t best_load = params.max_per_cloud();
      for (const cloud::CloudId c : survivors) {
        const std::size_t l = load.count(c) ? load[c] : 0;
        if (l < best_load) {
          best_load = l;
          best = c;
        }
      }
      if (best == BlockMove::kNone) continue;  // caps exhausted: skip block
      BlockMove move;
      move.segment_id = id;
      move.block_index = b;
      move.from_cloud = BlockMove::kNone;  // block data is re-encodable
      move.to_cloud = best;
      plan.moves.push_back(move);
      ++load[best];
    }
    // Everything on the removed cloud is deleted (best effort — the cloud
    // may already be unreachable; deletion is advisory).
    for (const std::uint32_t b : displaced) {
      plan.deletions.push_back({id, b, removed});
    }
  }
  return plan;
}

RebalancePlan plan_add_cloud(const metadata::SyncFolderImage& image,
                             cloud::CloudId added,
                             const std::vector<cloud::CloudId>& all_clouds,
                             const CodeParams& params) {
  RebalancePlan plan;
  for (const auto& [id, seg] : image.segments()) {
    if (seg.refcount == 0) continue;
    std::set<std::uint32_t> present;
    auto load = load_per_cloud(seg);
    for (const metadata::BlockLocation& b : seg.blocks) {
      present.insert(b.block_index);
    }

    // Give the new cloud its fair share: fresh block indices not yet used.
    std::uint32_t candidate = 0;
    for (std::size_t i = 0; i < params.fair_share(); ++i) {
      while (present.count(candidate) != 0 &&
             candidate < params.code_n()) {
        ++candidate;
      }
      if (candidate >= params.code_n()) break;  // code exhausted
      BlockMove move;
      move.segment_id = id;
      move.block_index = candidate;
      move.from_cloud = BlockMove::kNone;  // encode locally and upload
      move.to_cloud = added;
      plan.moves.push_back(move);
      present.insert(candidate);
    }

    // Other clouds shed surplus blocks beyond their fair share — cheapest
    // way to rebalance, as the paper notes ("simply by deleting some data
    // blocks") — but never below the reliability floor of k total.
    std::size_t total_after =
        present.size();
    for (const metadata::BlockLocation& b : seg.blocks) {
      if (b.cloud == added) continue;
      if (load[b.cloud] > params.fair_share() &&
          total_after > std::max(params.k, params.fair_share() *
                                                all_clouds.size())) {
        plan.deletions.push_back({id, b.block_index, b.cloud});
        --load[b.cloud];
        --total_after;
      }
    }
  }
  return plan;
}

void apply_rebalance(metadata::SyncFolderImage& image,
                     const RebalancePlan& plan) {
  for (const BlockMove& m : plan.moves) {
    metadata::SegmentInfo* seg = image.find_segment_mutable(m.segment_id);
    if (seg == nullptr) continue;
    const metadata::BlockLocation loc{m.block_index, m.to_cloud};
    if (std::find(seg->blocks.begin(), seg->blocks.end(), loc) ==
        seg->blocks.end()) {
      seg->blocks.push_back(loc);
    }
  }
  for (const BlockDeletion& d : plan.deletions) {
    metadata::SegmentInfo* seg = image.find_segment_mutable(d.segment_id);
    if (seg == nullptr) continue;
    const metadata::BlockLocation loc{d.block_index, d.cloud};
    seg->blocks.erase(
        std::remove(seg->blocks.begin(), seg->blocks.end(), loc),
        seg->blocks.end());
  }
}

}  // namespace unidrive::sched
