#include "sched/upload_scheduler.h"

#include <algorithm>
#include <cassert>

namespace unidrive::sched {

UploadScheduler::UploadScheduler(CodeParams params,
                                 std::vector<cloud::CloudId> clouds,
                                 std::vector<UploadFileSpec> files,
                                 UploadOptions options)
    : params_(params),
      options_(options),
      clouds_(std::move(clouds)),
      homes_(clouds_) {
  assert(params_.validate().is_ok());
  assert(clouds_.size() == params_.num_clouds);
  files_.reserve(files.size());
  for (UploadFileSpec& file : files) add_file(std::move(file));
}

void UploadScheduler::add_file(UploadFileSpec file) {
  const std::size_t fi = files_.size();
  FileState fs;
  fs.spec = std::move(file);
  for (const UploadSegmentSpec& seg : fs.spec.segments) {
    SegmentState ss;
    ss.file_index = fi;
    ss.id = seg.id;
    ss.block_bytes = (seg.size + params_.k - 1) / params_.k;
    fs.segment_indices.push_back(segments_.size());
    segments_.push_back(std::move(ss));
  }
  files_.push_back(std::move(fs));
}

bool UploadScheduler::segment_available(const SegmentState& seg) const {
  return seg.done.size() >= params_.k;
}

bool UploadScheduler::segment_reliable(const SegmentState& seg) const {
  // Every *enabled* cloud holds its fair share (completed, not in-flight).
  std::map<cloud::CloudId, std::size_t> done_per_cloud;
  for (const auto& [index, c] : seg.done) ++done_per_cloud[c];
  for (const cloud::CloudId c : clouds_) {
    if (disabled_.count(c) != 0) continue;
    const auto it = done_per_cloud.find(c);
    const std::size_t have = it == done_per_cloud.end() ? 0 : it->second;
    if (have < params_.fair_share()) return false;
  }
  return true;
}

bool UploadScheduler::segment_fully_served(const SegmentState& seg) const {
  return segment_available(seg) && segment_reliable(seg);
}

bool UploadScheduler::file_available(std::size_t file_index) const {
  // Abandoned segments are as available as they will ever get; counting
  // them would pin the batch in the availability phase forever.
  for (const std::size_t si : files_[file_index].segment_indices) {
    const SegmentState& seg = segments_[si];
    if (!seg.abandoned && !segment_available(seg)) return false;
  }
  return true;
}

bool UploadScheduler::all_available() const {
  for (std::size_t fi = 0; fi < files_.size(); ++fi) {
    if (!file_available(fi)) return false;
  }
  return true;
}

bool UploadScheduler::file_reliable(std::size_t file_index) const {
  for (const std::size_t si : files_[file_index].segment_indices) {
    const SegmentState& seg = segments_[si];
    if (!seg.abandoned && !segment_reliable(seg)) return false;
  }
  return true;
}

bool UploadScheduler::all_reliable() const {
  for (std::size_t fi = 0; fi < files_.size(); ++fi) {
    if (!file_reliable(fi)) return false;
  }
  return true;
}

bool UploadScheduler::finished() const {
  // Goal met = done: a surplus block still in flight after every segment
  // is available and reliable does not hold the job open.
  if (all_available() && all_reliable()) return true;
  if (in_flight_ > 0) return false;
  // Finished when every segment is fully served, or nothing more can be
  // assigned to any enabled cloud (e.g. clouds down / caps reached).
  for (const SegmentState& seg : segments_) {
    if (seg.abandoned || segment_fully_served(seg)) continue;
    for (const cloud::CloudId c : clouds_) {
      if (disabled_.count(c) != 0) continue;
      // Feasibility probe on a scratch copy (pick_block has no side effects
      // besides its return, but takes a mutable ref).
      SegmentState probe = seg;
      UploadScheduler* self = const_cast<UploadScheduler*>(this);
      const bool allow_overprov =
          options_.overprovision && !segment_reliable(seg);
      if (self->pick_block(probe, c, allow_overprov).has_value()) {
        return false;
      }
    }
  }
  return true;
}

std::optional<std::uint32_t> UploadScheduler::pick_block(
    SegmentState& seg, cloud::CloudId cloud, bool allow_overprov) {
  if (seg.abandoned) return std::nullopt;
  const std::size_t cap = params_.max_per_cloud();
  if (seg.cloud_load(cloud) >= cap) return std::nullopt;

  const auto placed = [&](std::uint32_t index) {
    return seg.done.count(index) != 0 || seg.in_flight.count(index) != 0;
  };

  // 1. A normal block homed on this cloud.
  const auto normal_count =
      static_cast<std::uint32_t>(params_.normal_blocks());
  for (std::uint32_t b = 0; b < normal_count; ++b) {
    if (home_of(b) == cloud && !placed(b)) return b;
  }
  if (!allow_overprov) return std::nullopt;

  // Over-provisioning starts only once this cloud has COMPLETED its fair
  // share (the paper: "continuing to send extra parity blocks to faster
  // clouds even if they have received their fair share") — otherwise extra
  // blocks would compete with the cloud's own normal blocks for bandwidth.
  std::size_t done_here = 0;
  for (const auto& [index, c] : seg.done) {
    if (c == cloud) ++done_here;
  }
  if (done_here < params_.fair_share()) return std::nullopt;

  // 2. Over-provisioned parity: any unplaced index, preferring the dedicated
  // over-provision range so normal blocks stay available for their homes.
  const auto code_n = static_cast<std::uint32_t>(params_.code_n());
  for (std::uint32_t b = normal_count; b < code_n; ++b) {
    if (!placed(b)) return b;
  }
  // 3. Normal blocks of *other* (slower) clouds, as a last resort when the
  // over-provision range is exhausted: still helps availability; reliability
  // phase will not double-place (the index counts as placed).
  for (std::uint32_t b = 0; b < normal_count; ++b) {
    if (!placed(b) && disabled_.count(home_of(b)) != 0) return b;
  }
  return std::nullopt;
}

std::optional<BlockTask> UploadScheduler::next_task(cloud::CloudId cloud) {
  if (disabled_.count(cloud) != 0) return std::nullopt;

  if (!options_.availability_first) {
    // No two-phase strategy (multi-cloud benchmark, RACS/DepSky-style):
    // every cloud simply works through ITS statically assigned blocks in
    // file order, independently of the other clouds' progress. Slow clouds
    // fall behind on their own queues; nothing rebalances.
    for (FileState& file : files_) {
      for (const std::size_t si : file.segment_indices) {
        SegmentState& seg = segments_[si];
        if (seg.abandoned || segment_fully_served(seg)) continue;
        const bool allow_overprov =
            options_.overprovision && !segment_available(seg);
        const auto choice = pick_block(seg, cloud, allow_overprov);
        if (choice.has_value()) {
          seg.in_flight[*choice] = cloud;
          ++seg.per_cloud[cloud];
          ++in_flight_;
          return BlockTask{seg.file_index, seg.id, *choice, cloud,
                           seg.block_bytes};
        }
      }
    }
    return std::nullopt;
  }

  const bool availability_phase = !all_available();

  // Phase 1: first unavailable file, in batch order.
  if (availability_phase) {
    for (FileState& file : files_) {
      bool file_needs_work = false;
      // Pass A: this cloud's own normal (fair-share) blocks of the
      // segments still missing availability — they serve availability AND
      // reliability and must never be preempted by surplus parity. Homed
      // blocks of already-available segments wait for phase 2
      // (availability-first: resources move to the next pending work).
      bool fair_share_done = true;  // this file's homed work all completed
      for (const std::size_t si : file.segment_indices) {
        SegmentState& seg = segments_[si];
        if (seg.abandoned || segment_available(seg)) continue;
        file_needs_work = true;
        const auto choice =
            pick_block(seg, cloud, /*allow_overprov=*/false);
        if (choice.has_value()) {
          seg.in_flight[*choice] = cloud;
          ++seg.per_cloud[cloud];
          ++in_flight_;
          return BlockTask{seg.file_index, seg.id, *choice, cloud,
                           seg.block_bytes};
        }
        // Fair share "received" = completed, not merely in flight.
        for (const auto& [index, c] : seg.in_flight) {
          if (c == cloud) fair_share_done = false;
        }
      }
      // Pass B: over-provisioned parity. Only once this cloud has RECEIVED
      // its fair share of the whole file (the paper's trigger) does it take
      // surplus blocks, aimed at the segments still missing availability —
      // LAST ones foremost: their normal blocks started most recently, so
      // they are the furthest from availability, while surplus for early
      // segments would duplicate normal blocks about to finish anyway.
      // (Surplus for merely not-yet-reliable segments waits for phase 2:
      // availability of the NEXT file outranks extra redundancy here.)
      if (options_.overprovision && fair_share_done) {
        for (auto it = file.segment_indices.rbegin();
             it != file.segment_indices.rend(); ++it) {
          SegmentState& seg = segments_[*it];
          if (seg.abandoned || segment_available(seg)) continue;
          const auto choice =
              pick_block(seg, cloud, /*allow_overprov=*/true);
          if (choice.has_value()) {
            seg.in_flight[*choice] = cloud;
            ++seg.per_cloud[cloud];
            ++in_flight_;
            return BlockTask{seg.file_index, seg.id, *choice, cloud,
                             seg.block_bytes};
          }
        }
      }
      // Strict availability-first ordering: while this file still needs
      // work, later files must wait (all connections focus on it).
      if (file_needs_work) return std::nullopt;
    }
    return std::nullopt;
  }

  // Phase 2: reliability fill — remaining normal blocks, in file order;
  // fast clouds that finished their fair shares keep streaming surplus
  // parity until the slow clouds complete (over-provisioning stops only
  // when every segment is reliable).
  for (const bool homed_pass : {true, false}) {
    if (!homed_pass && !options_.overprovision) break;
    for (FileState& file : files_) {
      for (const std::size_t si : file.segment_indices) {
        SegmentState& seg = segments_[si];
        if (seg.abandoned || segment_reliable(seg)) continue;
        const auto choice =
            pick_block(seg, cloud, /*allow_overprov=*/!homed_pass);
        if (choice.has_value()) {
          seg.in_flight[*choice] = cloud;
          ++seg.per_cloud[cloud];
          ++in_flight_;
          return BlockTask{seg.file_index, seg.id, *choice, cloud,
                           seg.block_bytes};
        }
      }
    }
  }
  return std::nullopt;
}

void UploadScheduler::on_complete(const BlockTask& task, bool success) {
  // Locate the segment.
  for (const std::size_t si : files_[task.file_index].segment_indices) {
    SegmentState& seg = segments_[si];
    if (seg.id != task.segment_id) continue;
    const auto it = seg.in_flight.find(task.block_index);
    if (it == seg.in_flight.end() || it->second != task.cloud) return;
    seg.in_flight.erase(it);
    --in_flight_;
    auto pc = seg.per_cloud.find(task.cloud);
    if (success) {
      seg.done[task.block_index] = task.cloud;
    } else {
      // Return capacity; the block becomes assignable again (to any cloud).
      if (pc != seg.per_cloud.end() && pc->second > 0) --pc->second;
    }
    return;
  }
}

bool UploadScheduler::segment_settled(const std::string& segment_id) const {
  bool found = false;
  for (const SegmentState& seg : segments_) {
    if (seg.id != segment_id) continue;
    found = true;
    if (!seg.in_flight.empty()) return false;
    if (seg.abandoned || segment_fully_served(seg)) continue;
    // Same feasibility probe as finished(): can any enabled cloud still be
    // handed a block of this segment? With nothing in flight, the probe's
    // inputs only change through new assignments, so the verdict is stable
    // (modulo cloud re-admission — see header).
    for (const cloud::CloudId c : clouds_) {
      if (disabled_.count(c) != 0) continue;
      SegmentState probe = seg;
      UploadScheduler* self = const_cast<UploadScheduler*>(this);
      if (self->pick_block(probe, c, options_.overprovision).has_value()) {
        return false;
      }
    }
  }
  return found;
}

void UploadScheduler::abandon_segment(const std::string& segment_id) {
  for (SegmentState& seg : segments_) {
    if (seg.id == segment_id) seg.abandoned = true;
  }
}

void UploadScheduler::set_cloud_enabled(cloud::CloudId cloud, bool enabled) {
  if (enabled) {
    disabled_.erase(cloud);
    return;
  }
  disabled_.insert(cloud);
  // Re-home normal blocks of the disabled cloud onto the remaining enabled
  // clouds (round-robin), so availability does not wait on a dead cloud.
  std::vector<cloud::CloudId> alive;
  for (const cloud::CloudId c : clouds_) {
    if (disabled_.count(c) == 0) alive.push_back(c);
  }
  if (alive.empty()) return;
  std::size_t next = 0;
  for (cloud::CloudId& home : homes_) {
    if (disabled_.count(home) != 0) {
      home = alive[next++ % alive.size()];
    }
  }
}

bool UploadScheduler::cloud_enabled(cloud::CloudId cloud) const {
  return disabled_.count(cloud) == 0;
}

std::vector<metadata::BlockLocation> UploadScheduler::locations(
    const std::string& segment_id) const {
  std::vector<metadata::BlockLocation> out;
  for (const SegmentState& seg : segments_) {
    if (seg.id != segment_id) continue;
    for (const auto& [index, c] : seg.done) {
      out.push_back({index, c});
    }
    // Merge across duplicate segment ids (dedup within a batch): collect all.
  }
  return out;
}

std::vector<std::pair<std::string, metadata::BlockLocation>>
UploadScheduler::overprovisioned_blocks() const {
  std::vector<std::pair<std::string, metadata::BlockLocation>> out;
  for (const SegmentState& seg : segments_) {
    // Count completed blocks per cloud; anything beyond the fair share on a
    // cloud is an over-provisioned placement (reclaimable later). Blocks in
    // the over-provision index range are reported too.
    std::map<cloud::CloudId, std::size_t> seen;
    for (const auto& [index, c] : seg.done) {
      ++seen[c];
      if (index >= params_.normal_blocks() ||
          seen[c] > params_.fair_share()) {
        out.emplace_back(seg.id, metadata::BlockLocation{index, c});
      }
    }
  }
  return out;
}

}  // namespace unidrive::sched
