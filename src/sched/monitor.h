// In-channel bandwidth probing (Section 6.2).
//
// UniDrive never sends dedicated probe traffic and never tries to predict
// cloud performance; the last transmissions ARE the probe. Every completed
// block transfer is recorded as a (bytes, seconds) sample, and clouds are
// ranked by their recent average *per-connection* throughput (per-connection
// because several concurrent HTTP connections share each cloud's path and
// scheduling decisions are per block).
//
// The estimate is an exponentially weighted moving average so a cloud whose
// network degrades mid-transfer loses its rank within a few blocks.
#pragma once

#include <map>
#include <mutex>
#include <vector>

#include "cloud/provider.h"

namespace unidrive::sched {

enum class Direction : std::uint8_t { kUpload = 0, kDownload = 1 };

class ThroughputMonitor {
 public:
  // `default_estimate` seeds unknown clouds. The default is 0 — i.e. a
  // cloud with no samples ranks BELOW every measured cloud: being wrong
  // about an unmeasured cloud is cheap (it gets probed when the measured
  // ones are busy), whereas an optimistic default would keep routing blocks
  // to a cloud that is actually slow and make stragglers look "fast" to the
  // hedging logic. With all-equal seeds the first round degenerates to the
  // even assignment the paper starts from. `alpha` is the EWMA weight of
  // the newest sample.
  explicit ThroughputMonitor(double default_estimate = 0.0,
                             double alpha = 0.35) noexcept
      : default_estimate_(default_estimate), alpha_(alpha) {}

  void record(cloud::CloudId cloud, Direction dir, double bytes,
              double seconds);

  // A failed transfer moved zero payload in `seconds` of connection time;
  // fold it in as a zero-throughput sample so clouds that fail slowly
  // (burning a connection for the full stall before erroring) sink in the
  // ranking instead of coasting on their last good estimate. Instant
  // failures (seconds ~ 0, e.g. an open circuit breaker) are ignored: no
  // channel time was actually wasted, so they carry no bandwidth signal.
  void record_failure(cloud::CloudId cloud, Direction dir, double seconds);

  // Per-connection throughput estimate in bytes/sec.
  [[nodiscard]] double estimate(cloud::CloudId cloud, Direction dir) const;

  // Candidates sorted fastest-first (stable for equal estimates).
  [[nodiscard]] std::vector<cloud::CloudId> ranked(
      Direction dir, const std::vector<cloud::CloudId>& candidates) const;

  void reset();

 private:
  double default_estimate_;
  double alpha_;
  mutable std::mutex mutex_;
  std::map<std::pair<cloud::CloudId, Direction>, double> ewma_;
};

}  // namespace unidrive::sched
