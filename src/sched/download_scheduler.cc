#include "sched/download_scheduler.h"

#include <algorithm>
#include <cassert>

namespace unidrive::sched {

DownloadScheduler::DownloadScheduler(std::size_t k,
                                     std::vector<DownloadFileSpec> files)
    : k_(k) {
  assert(k_ > 0);
  for (DownloadFileSpec& file : files) append_file(std::move(file));
}

void DownloadScheduler::append_file(DownloadFileSpec file) {
  const std::size_t fi = files_.size();
  file_segments_.emplace_back();
  for (const DownloadSegmentSpec& seg : file.segments) {
    SegmentState ss;
    ss.file_index = fi;
    ss.spec = seg;
    ss.block_bytes = (seg.size + k_ - 1) / k_;
    ss.budget = k_;
    file_segments_[fi].push_back(segments_.size());
    segments_.push_back(std::move(ss));
  }
  files_.push_back(std::move(file));
}

void DownloadScheduler::add_file(DownloadFileSpec file) {
  append_file(std::move(file));
}

void DownloadScheduler::raise_budget(const std::string& segment_id,
                                     std::size_t extra) {
  // Last match wins (see find_segment): only the most recent admission of
  // a re-fed segment id re-arms.
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
    if (it->spec.id == segment_id) {
      it->budget += extra;
      return;
    }
  }
}

const DownloadScheduler::SegmentState* DownloadScheduler::find_segment(
    const std::string& segment_id) const {
  // A streaming batch may re-feed a segment id after an earlier admission
  // completed (e.g. the same content appears again once its first copy was
  // written and released); per-id queries track the newest admission.
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
    if (it->spec.id == segment_id) return &*it;
  }
  return nullptr;
}

bool DownloadScheduler::segment_complete(const std::string& segment_id) const {
  const SegmentState* seg = find_segment(segment_id);
  return seg != nullptr && seg->complete();
}

bool DownloadScheduler::segment_failed(const std::string& segment_id) const {
  const SegmentState* seg = find_segment(segment_id);
  return seg != nullptr && segment_stuck(*seg);
}

bool DownloadScheduler::file_complete(std::size_t file_index) const {
  for (const std::size_t si : file_segments_[file_index]) {
    if (!segments_[si].complete()) return false;
  }
  return true;
}

bool DownloadScheduler::all_complete() const {
  for (std::size_t fi = 0; fi < files_.size(); ++fi) {
    if (!file_complete(fi)) return false;
  }
  return true;
}

bool DownloadScheduler::segment_stuck(const SegmentState& seg) const {
  if (seg.complete()) return false;
  // Count blocks still obtainable: located on an enabled cloud not yet
  // known-failed for that block, or already done/in-flight.
  std::set<std::uint32_t> reachable(seg.done.begin(), seg.done.end());
  for (const auto& [index, c] : seg.in_flight) reachable.insert(index);
  const std::size_t seg_index =
      static_cast<std::size_t>(&seg - segments_.data());
  for (const metadata::BlockLocation& loc : seg.spec.locations) {
    if (disabled_.count(loc.cloud) != 0) continue;
    if (source_exhausted(seg_index, loc.block_index, loc.cloud)) {
      continue;
    }
    reachable.insert(loc.block_index);
  }
  return reachable.size() < seg.budget;
}

bool DownloadScheduler::file_failed(std::size_t file_index) const {
  for (const std::size_t si : file_segments_[file_index]) {
    if (segment_stuck(segments_[si])) return true;
  }
  return false;
}

bool DownloadScheduler::finished() const {
  // Complete is complete: requests still in flight (e.g. a straggler block
  // on a slow cloud that a hedge made redundant) do not delay the job —
  // a real client simply abandons those connections.
  if (all_complete()) return true;
  if (in_flight_ > 0) return false;
  for (const SegmentState& seg : segments_) {
    if (!seg.complete() && !segment_stuck(seg)) return false;
  }
  return true;
}

std::optional<BlockTask> DownloadScheduler::next_task(cloud::CloudId cloud) {
  if (disabled_.count(cloud) != 0) return std::nullopt;
  // Files are scanned in order (availability-first: earlier files fill their
  // k-request budgets before later ones see any capacity), but a file this
  // cloud cannot serve NEVER blocks later files — a connection with nothing
  // to contribute to file i is better spent on file i+1, and a stuck file
  // must not deadlock the whole job.
  for (std::size_t fi = 0; fi < files_.size(); ++fi) {
    for (const std::size_t si : file_segments_[fi]) {
      SegmentState& seg = segments_[si];
      if (seg.complete()) continue;
      // Never request more than the still-needed distinct blocks.
      if (seg.done.size() + seg.in_flight.size() >= seg.budget) continue;
      for (const metadata::BlockLocation& loc : seg.spec.locations) {
        if (loc.cloud != cloud) continue;
        if (seg.done.count(loc.block_index) != 0 ||
            seg.in_flight.count(loc.block_index) != 0) {
          continue;
        }
        if (source_exhausted(si, loc.block_index, cloud)) {
          continue;  // this source failed repeatedly; stop retrying it
        }
        seg.in_flight[loc.block_index] = cloud;
        ++in_flight_;
        return BlockTask{fi, seg.spec.id, loc.block_index, cloud,
                         seg.block_bytes};
      }
    }
  }
  return std::nullopt;
}

void DownloadScheduler::set_speed_order(
    const std::vector<cloud::CloudId>& fastest_first) {
  speed_rank_.clear();
  for (std::size_t i = 0; i < fastest_first.size(); ++i) {
    speed_rank_[fastest_first[i]] = i;
  }
}

std::optional<BlockTask> DownloadScheduler::next_hedge_task(
    cloud::CloudId cloud) {
  if (disabled_.count(cloud) != 0 || speed_rank_.empty()) return std::nullopt;
  const auto my_rank_it = speed_rank_.find(cloud);
  if (my_rank_it == speed_rank_.end()) return std::nullopt;
  const std::size_t my_rank = my_rank_it->second;

  for (std::size_t fi = 0; fi < files_.size(); ++fi) {
    for (const std::size_t si : file_segments_[fi]) {
      SegmentState& seg = segments_[si];
      if (seg.complete()) continue;
      // Hedge only when a needed block is pinned on a strictly slower cloud.
      bool pinned_on_slower = false;
      std::size_t my_in_flight = 0;
      for (const auto& [index, holder] : seg.in_flight) {
        if (holder == cloud) ++my_in_flight;
        const auto rank_it = speed_rank_.find(holder);
        if (rank_it != speed_rank_.end() && rank_it->second > my_rank) {
          pinned_on_slower = true;
        }
      }
      if (!pinned_on_slower || my_in_flight >= 1 + k_ / 2) continue;
      // Fetch an extra distinct block from this cloud.
      for (const metadata::BlockLocation& loc : seg.spec.locations) {
        if (loc.cloud != cloud) continue;
        if (seg.done.count(loc.block_index) != 0 ||
            seg.in_flight.count(loc.block_index) != 0) {
          continue;
        }
        if (source_exhausted(si, loc.block_index, cloud)) {
          continue;
        }
        seg.in_flight[loc.block_index] = cloud;
        ++in_flight_;
        return BlockTask{fi, seg.spec.id, loc.block_index, cloud,
                         seg.block_bytes};
      }
    }
  }
  return std::nullopt;
}

void DownloadScheduler::on_complete(const BlockTask& task, bool success) {
  for (const std::size_t si : file_segments_[task.file_index]) {
    SegmentState& seg = segments_[si];
    if (seg.spec.id != task.segment_id) continue;
    const auto it = seg.in_flight.find(task.block_index);
    if (it == seg.in_flight.end() || it->second != task.cloud) return;
    seg.in_flight.erase(it);
    --in_flight_;
    if (success) {
      seg.done.insert(task.block_index);
    } else {
      ++failure_counts_[{si, task.block_index, task.cloud}];
    }
    return;
  }
}

void DownloadScheduler::set_cloud_enabled(cloud::CloudId cloud, bool enabled) {
  if (enabled) {
    disabled_.erase(cloud);
  } else {
    disabled_.insert(cloud);
  }
}

std::vector<std::uint32_t> DownloadScheduler::fetched_blocks(
    const std::string& segment_id) const {
  std::vector<std::uint32_t> out;
  const SegmentState* seg = find_segment(segment_id);
  if (seg != nullptr) out.assign(seg->done.begin(), seg->done.end());
  return out;
}

}  // namespace unidrive::sched
