// Reliability/security block-placement arithmetic (Section 6.1).
//
// A user enrolls N clouds and states two requirements:
//   security   Ks: fewer than Ks breached clouds must reveal nothing
//              (no Ks-1 providers can jointly reconstruct any file), and
//   reliability Kr: any Kr reachable clouds must suffice to recover data
//              (tolerating N-Kr simultaneous outages), with 1 <= Ks <= Kr <= N.
//
// With each segment cut into k data blocks, those requirements bound the
// per-cloud block count:
//   at least fair_share = ceil(k/Kr) blocks per cloud (reliability floor),
//   at most  max_per_cloud = ceil(k/(Ks-1)) - 1 blocks (security ceiling;
//            k when Ks == 1, i.e. no security requirement).
// UniDrive uses a non-systematic RS code with n = ceil(k/Ks) * N, generates
// the fair_share * N "normal" parity blocks up front, and materializes the
// remaining indices on demand as over-provisioned parity blocks.
#pragma once

#include <cstddef>

#include "common/status.h"

namespace unidrive::sched {

struct CodeParams {
  std::size_t num_clouds = 5;  // N
  std::size_t k = 3;           // data blocks per segment
  std::size_t ks = 2;          // security requirement Ks
  std::size_t kr = 3;          // reliability requirement Kr

  [[nodiscard]] Status validate() const;

  // ceil(k / Kr): blocks every cloud must eventually hold.
  [[nodiscard]] std::size_t fair_share() const noexcept {
    return (k + kr - 1) / kr;
  }

  // Security cap on blocks per cloud (k if Ks == 1).
  [[nodiscard]] std::size_t max_per_cloud() const noexcept {
    if (ks == 1) return k;
    return (k + ks - 2) / (ks - 1) - 1;
  }

  // Normal parity blocks generated in advance.
  [[nodiscard]] std::size_t normal_blocks() const noexcept {
    return fair_share() * num_clouds;
  }

  // Total code length n = ceil(k/Ks) * N; indices >= normal_blocks() are
  // over-provisioned parity blocks.
  [[nodiscard]] std::size_t code_n() const noexcept {
    return ((k + ks - 1) / ks) * num_clouds;
  }

  // Absolute ceiling from the security requirement.
  [[nodiscard]] std::size_t max_total_blocks() const noexcept {
    return max_per_cloud() * num_clouds;
  }

  // Usable fraction of raw multi-cloud quota: k data blocks stored as
  // normal_blocks() parity blocks. (The paper's example: N=3, Kr=2 ->
  // 3 x 100 GB of quota yields 200 GB of user data vs 150 GB for
  // replication.)
  [[nodiscard]] double storage_efficiency() const noexcept {
    return static_cast<double>(k) / static_cast<double>(normal_blocks());
  }
};

}  // namespace unidrive::sched
