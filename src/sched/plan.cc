#include "sched/plan.h"

#include <string>

namespace unidrive::sched {

Status CodeParams::validate() const {
  if (num_clouds == 0 || k == 0) {
    return make_error(ErrorCode::kInvalidArgument, "N and k must be positive");
  }
  if (!(1 <= ks && ks <= kr && kr <= num_clouds)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "need 1 <= Ks <= Kr <= N, got Ks=" + std::to_string(ks) +
                          " Kr=" + std::to_string(kr) +
                          " N=" + std::to_string(num_clouds));
  }
  if (max_per_cloud() < fair_share()) {
    return make_error(
        ErrorCode::kInvalidArgument,
        "security ceiling below reliability floor: max_per_cloud=" +
            std::to_string(max_per_cloud()) +
            " < fair_share=" + std::to_string(fair_share()) +
            " (raise k or loosen Ks/Kr)");
  }
  if (code_n() + k > 256) {
    return make_error(ErrorCode::kInvalidArgument,
                      "code length exceeds GF(256) capacity");
  }
  return Status::ok();
}

}  // namespace unidrive::sched
