// Upload scheduler (Section 6.2): even placement of normal parity blocks,
// data-block over-provisioning, and two-phase (availability-first,
// reliability-second) batch scheduling.
//
// The scheduler is a passive, driver-agnostic decision core: a driver —
// threaded (real clouds) or discrete-event (simulation) — asks
// next_task(cloud) whenever one of that cloud's connections goes idle and
// reports on_complete() when a block transfer finishes. All policy lives
// here so the threaded client and the simulator provably run the same
// algorithm.
//
// Policy recap:
//  * The fair_share * N normal parity blocks of each segment are
//    deterministically homed round-robin across clouds (even assignment).
//  * Phase 1 (availability): files are served strictly in order; a cloud
//    that finished its fair share of the current file keeps receiving
//    over-provisioned parity blocks (respecting the security cap) until the
//    file is available (k distinct blocks in the multi-cloud) — faster
//    clouds therefore carry load proportional to their bandwidth instead of
//    idling behind the slowest cloud.
//  * Phase 2 (reliability): once EVERY file is available, the remaining
//    normal blocks are uploaded so each cloud reaches its fair share.
//  * A block whose home cloud is disabled (outage/quota) is re-homed to the
//    fastest cloud with spare security capacity so availability never waits
//    on a dead cloud.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cloud/provider.h"
#include "metadata/types.h"
#include "sched/plan.h"

namespace unidrive::sched {

// One segment of one file in an upload batch.
struct UploadSegmentSpec {
  std::string id;            // content hash (names the blocks)
  std::uint64_t size = 0;    // plaintext size; block size = ceil(size / k)
};

struct UploadFileSpec {
  std::string path;
  std::vector<UploadSegmentSpec> segments;
};

// A unit of work handed to a driver: upload block `block_index` of
// `segment_id` (shard bytes = RS row block_index) to cloud `cloud`.
struct BlockTask {
  std::size_t file_index = 0;
  std::string segment_id;
  std::uint32_t block_index = 0;
  cloud::CloudId cloud = 0;
  std::uint64_t bytes = 0;  // shard size, for accounting/simulation

  friend bool operator==(const BlockTask& a, const BlockTask& b) noexcept {
    return a.file_index == b.file_index && a.segment_id == b.segment_id &&
           a.block_index == b.block_index && a.cloud == b.cloud;
  }
};

// Policy switches, also the ablation knobs. Defaults are UniDrive; turning
// both off (and static polling in the driver) yields the paper's
// "multi-cloud benchmark" baseline (RACS/DepSky-style: erasure coding and
// parallelism, but no over-provisioning and no dynamic scheduling).
struct UploadOptions {
  bool overprovision = true;      // extra parity to fast clouds
  bool availability_first = true; // two-phase batch ordering
};

class UploadScheduler {
 public:
  UploadScheduler(CodeParams params, std::vector<cloud::CloudId> clouds,
                  std::vector<UploadFileSpec> files,
                  UploadOptions options = {});

  // Streaming: append a file to the batch while the job is running (the
  // caller must serialize this with next_task/on_complete, like every other
  // mutating call). The new file ranks after all existing files in the
  // availability-first order.
  void add_file(UploadFileSpec file);

  // Next block for an idle connection of `cloud`; nullopt = nothing for this
  // cloud right now (it may get work later as other transfers complete).
  std::optional<BlockTask> next_task(cloud::CloudId cloud);

  // Driver callback when a transfer finishes. Failed tasks return to the
  // pool and will be reassigned (possibly to another cloud).
  void on_complete(const BlockTask& task, bool success);

  // Cloud health: disabling removes a cloud from all future assignments and
  // re-homes its pending normal blocks (quota exhausted, outage).
  void set_cloud_enabled(cloud::CloudId cloud, bool enabled);
  [[nodiscard]] bool cloud_enabled(cloud::CloudId cloud) const;

  // Progress.
  [[nodiscard]] std::size_t file_count() const noexcept {
    return files_.size();
  }
  [[nodiscard]] bool file_available(std::size_t file_index) const;
  [[nodiscard]] bool all_available() const;
  [[nodiscard]] bool file_reliable(std::size_t file_index) const;
  [[nodiscard]] bool all_reliable() const;
  // True when no further task will ever be produced and nothing is in
  // flight (success, or as much as the enabled clouds allow).
  [[nodiscard]] bool finished() const;
  [[nodiscard]] std::size_t in_flight() const noexcept { return in_flight_; }

  // True when no block of `segment_id` is in flight and no future task can
  // place another (fully served, or nothing assignable on any enabled
  // cloud): the segment's shard bytes are no longer needed by this job.
  // The verdict is stable unless a disabled cloud is later re-admitted —
  // callers that free bytes on settle should abandon_segment() first.
  [[nodiscard]] bool segment_settled(const std::string& segment_id) const;

  // Permanently withdraw a segment from scheduling: no further blocks will
  // be assigned for it even if clouds are re-admitted, and it no longer
  // holds up finished() or the availability phase. Blocks already placed
  // stay in locations(). Used by streaming drivers after the segment's
  // shard bytes have been released.
  void abandon_segment(const std::string& segment_id);

  // Final block placement of a segment (for committing metadata).
  [[nodiscard]] std::vector<metadata::BlockLocation> locations(
      const std::string& segment_id) const;

  // Over-provisioned (beyond fair share) block placements, for later cleanup
  // once the file is synced everywhere.
  [[nodiscard]] std::vector<std::pair<std::string, metadata::BlockLocation>>
  overprovisioned_blocks() const;

  [[nodiscard]] const CodeParams& params() const noexcept { return params_; }

 private:
  struct SegmentState {
    std::size_t file_index = 0;
    std::string id;
    std::uint64_t block_bytes = 0;
    bool abandoned = false;  // withdrawn: never assign another block
    std::map<std::uint32_t, cloud::CloudId> done;      // index -> cloud
    std::map<std::uint32_t, cloud::CloudId> in_flight; // index -> cloud
    std::map<cloud::CloudId, std::size_t> per_cloud;   // done+in-flight count

    [[nodiscard]] std::size_t distinct_placed() const noexcept {
      return done.size() + in_flight.size();
    }
    [[nodiscard]] std::size_t cloud_load(cloud::CloudId c) const {
      const auto it = per_cloud.find(c);
      return it == per_cloud.end() ? 0 : it->second;
    }
  };

  struct FileState {
    UploadFileSpec spec;
    std::vector<std::size_t> segment_indices;  // into segments_
  };

  // Home cloud of normal block `index` (round-robin), as currently mapped
  // (re-homing on cloud failure mutates homes_).
  [[nodiscard]] cloud::CloudId home_of(std::uint32_t index) const {
    return homes_[index % homes_.size()];
  }

  [[nodiscard]] std::optional<std::uint32_t> pick_block(SegmentState& seg,
                                                        cloud::CloudId cloud,
                                                        bool allow_overprov);
  [[nodiscard]] bool segment_available(const SegmentState& seg) const;
  [[nodiscard]] bool segment_reliable(const SegmentState& seg) const;
  [[nodiscard]] bool segment_fully_served(const SegmentState& seg) const;

  CodeParams params_;
  UploadOptions options_;
  std::vector<cloud::CloudId> clouds_;
  std::vector<cloud::CloudId> homes_;  // round-robin home map (mutable copy)
  std::set<cloud::CloudId> disabled_;
  std::vector<FileState> files_;
  std::vector<SegmentState> segments_;
  std::size_t in_flight_ = 0;
};

}  // namespace unidrive::sched
