#include "sched/monitor.h"

#include <algorithm>

namespace unidrive::sched {

void ThroughputMonitor::record(cloud::CloudId cloud, Direction dir,
                               double bytes, double seconds) {
  if (seconds <= 0 || bytes <= 0) return;
  const double sample = bytes / seconds;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto key = std::make_pair(cloud, dir);
  const auto it = ewma_.find(key);
  if (it == ewma_.end()) {
    ewma_[key] = sample;
  } else {
    it->second = alpha_ * sample + (1 - alpha_) * it->second;
  }
}

void ThroughputMonitor::record_failure(cloud::CloudId cloud, Direction dir,
                                       double seconds) {
  if (seconds < 1e-6) return;  // fail-fast, no channel time wasted
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ewma_.find(std::make_pair(cloud, dir));
  if (it != ewma_.end()) {
    it->second *= 1 - alpha_;  // EWMA update with a zero sample
  }
  // An unmeasured cloud stays unmeasured: it already ranks at the default
  // (bottom) estimate.
}

double ThroughputMonitor::estimate(cloud::CloudId cloud, Direction dir) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ewma_.find(std::make_pair(cloud, dir));
  return it == ewma_.end() ? default_estimate_ : it->second;
}

std::vector<cloud::CloudId> ThroughputMonitor::ranked(
    Direction dir, const std::vector<cloud::CloudId>& candidates) const {
  std::vector<std::pair<double, cloud::CloudId>> scored;
  scored.reserve(candidates.size());
  for (const cloud::CloudId c : candidates) {
    scored.emplace_back(estimate(c, dir), c);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<cloud::CloudId> out;
  out.reserve(scored.size());
  for (const auto& [score, c] : scored) out.push_back(c);
  return out;
}

void ThroughputMonitor::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  ewma_.clear();
}

}  // namespace unidrive::sched
