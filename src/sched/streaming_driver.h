// Streaming transfer drivers — upload and download drivers that accept
// files *incrementally* while transfers are already running, so the CPU
// stages (encode / decode) overlap the network instead of the driver
// draining a frozen plan.
//
// StreamingUploadDriver — the transfer stage of the upload pipeline.
//
// This is the transfer stage of the sync pipeline: the encode stage calls
// add_file() as soon as a segment's shards exist, close() when the scan is
// exhausted, and wait() for the drain. The embedded UploadScheduler keeps
// the batch policy intact — files added later rank after earlier ones in
// the availability-first order, over-provisioning and the per-cloud
// security cap apply unchanged — because all policy still lives in the
// scheduler; this class only feeds it and executes its decisions on a
// shared Executor (same event-driven pump as ThreadedTransferDriver).
//
// Memory release: when a segment "settles" (nothing in flight and no
// future task can place another block — fully served, or every enabled
// cloud is capped/down), the driver abandons it in the scheduler and fires
// the SegmentSettledFn, letting the pipeline drop the shard bytes early.
// Abandoning first makes the release safe: even if a disabled cloud is
// later re-admitted, the scheduler will never ask for those bytes again.
// The settled sweep also runs when clouds go down mid-run, so a producer
// blocked on an in-flight-bytes cap is always unblocked eventually.
//
// cancel() stops all future assignment; transfers already running finish
// (cloud calls are not interruptible) and are awaited by wait().
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cloud/async.h"
#include "cloud/health.h"
#include "cloud/provider.h"
#include "common/executor.h"
#include "metadata/types.h"
#include "obs/obs.h"
#include "sched/download_scheduler.h"
#include "sched/monitor.h"
#include "sched/plan.h"
#include "sched/threaded_driver.h"
#include "sched/upload_scheduler.h"

namespace unidrive::sched {

// Invoked under the driver lock when a segment's shard bytes can be
// released. Must not call back into the driver.
using SegmentSettledFn = std::function<void(const std::string& segment_id)>;

// Completion of one async block transfer, invoked exactly once.
using TransferDoneFn = std::function<void(Status)>;

// Async transfer launcher: starts the block transfer and returns
// immediately; `done` fires from the I/O runtime when it resolves. The
// drivers call this UNDER their lock — implementations must follow the
// AsyncCloud contract (cloud/async.h): never invoke `done` on the caller's
// stack. When provided, in-flight transfers are bounded only by the
// per-cloud connection budget, not by executor threads.
using AsyncTransferFn =
    std::function<cloud::AsyncHandle(const BlockTask&, TransferDoneFn)>;

class StreamingUploadDriver {
 public:
  StreamingUploadDriver(CodeParams params,
                        std::vector<cloud::CloudId> clouds,
                        DriverConfig config, ThroughputMonitor& monitor,
                        std::shared_ptr<Executor> executor,
                        TransferFn transfer, UploadOptions options = {},
                        std::shared_ptr<cloud::CloudHealthRegistry> health =
                            nullptr,
                        obs::ObsPtr obs = nullptr,
                        SegmentSettledFn on_settled = nullptr,
                        AsyncTransferFn async_transfer = nullptr);
  // Cancels and waits for in-flight transfers if the job is still open.
  ~StreamingUploadDriver();

  StreamingUploadDriver(const StreamingUploadDriver&) = delete;
  StreamingUploadDriver& operator=(const StreamingUploadDriver&) = delete;

  // Feed one more file into the running job. Ignored after close/cancel.
  void add_file(UploadFileSpec file);

  // No more files will be added; wait() returns once the scheduler drains.
  void close();

  // Stop assigning new blocks. In-flight transfers complete and are
  // reported to the scheduler, then wait() returns.
  void cancel();

  // Blocks until the job is done: nothing in flight AND (cancelled, or
  // closed with the scheduler finished).
  void wait();

  [[nodiscard]] bool cancelled() const;

  // Snapshot accessors; meaningful once the relevant segment settled or
  // after wait().
  [[nodiscard]] std::vector<metadata::BlockLocation> locations(
      const std::string& segment_id) const;
  [[nodiscard]] std::vector<std::pair<std::string, metadata::BlockLocation>>
  overprovisioned_blocks() const;
  [[nodiscard]] const CodeParams& params() const noexcept {
    return scheduler_.params();
  }

 private:
  // All of pump/sweep_settled/launch/note_inflight require lock_ held.
  void pump();
  void sweep_settled();
  [[nodiscard]] bool done() const;
  void launch(cloud::CloudId cloud, const BlockTask& task);
  // Everything that happens once a transfer's Status is known: metering,
  // monitor feedback, scheduler completion, pump. Shared by the blocking
  // executor task and the async completion. Takes lock_ itself.
  void finish_transfer(cloud::CloudId cloud, const BlockTask& task,
                       const Status& status, TimePoint start);
  void note_inflight();

  std::vector<cloud::CloudId> clouds_;
  DriverConfig config_;
  ThroughputMonitor& monitor_;
  std::shared_ptr<Executor> executor_;
  TransferFn transfer_;
  std::shared_ptr<cloud::CloudHealthRegistry> health_;
  obs::ObsPtr obs_;
  SegmentSettledFn on_settled_;
  AsyncTransferFn async_transfer_;

  mutable std::mutex lock_;
  std::condition_variable cv_;
  UploadScheduler scheduler_;
  std::map<cloud::CloudId, std::size_t> free_conns_;
  std::size_t outstanding_ = 0;
  bool closed_ = false;
  bool cancelled_ = false;
  std::map<cloud::CloudId, int> consecutive_failures_;
  std::set<cloud::CloudId> disabled_;
  std::set<std::string> unsettled_;
  std::map<cloud::CloudId, obs::Counter*> ok_counters_;
  std::map<cloud::CloudId, obs::Counter*> err_counters_;
  obs::Histogram* latency_hist_ = nullptr;
  // "RPCs on the wire" (on_wire_) vs "threads in use" (Executor::active)
  // — the decoupling the async path buys, made visible. on_wire_ counts
  // only *issued* RPCs: the async path issues at launch, the blocking path
  // only once an executor thread picks the task up (a queued task is not a
  // network request). outstanding_ keeps counting both so drain logic in
  // done()/wait() is unchanged.
  obs::Gauge* inflight_gauge_ = nullptr;
  obs::Gauge* inflight_peak_gauge_ = nullptr;
  obs::Gauge* threads_gauge_ = nullptr;
  std::size_t on_wire_ = 0;
  std::size_t inflight_peak_ = 0;
};

// StreamingDownloadDriver — the fetch stage of the restore pipeline: a
// single long-lived DownloadScheduler + pump fed all segments of a restore
// batch incrementally, instead of one scheduler/driver pair per segment.
// The per-cloud connection pools therefore stay busy across segment and
// file boundaries, fastest-cloud-first polling and straggler hedging
// (next_hedge_task, refreshed from the throughput monitor before every
// pump) operate over the whole batch, and the consumer is notified the
// moment any segment's k distinct blocks have landed — not when the whole
// job drains.
//
// The transfer callback GETs the block and stores the shard (it runs on
// the shared executor; must be thread-safe). When a segment reaches its
// distinct-block budget the SegmentFetchedFn fires with ok=true; when the
// scheduler proves the budget unreachable (supply exhausted / clouds down)
// it fires with ok=false. request_extra_block() raises the budget for the
// corrupt-shard search: the segment re-arms and the callback fires again
// when the extra block lands (or supply runs out).
//
// cancel() stops all future assignment; transfers already running finish
// their current request (cloud verbs are not interruptible) and are
// awaited by wait(). Every segment fed is guaranteed a callback: fetched,
// failed, or — after cancel() — cancelled (ok=false).
class StreamingDownloadDriver {
 public:
  // Fired under the driver lock when a segment's fate is decided: ok=true
  // after its budget of distinct blocks was fetched, ok=false when it can
  // never be. Must not call back into the driver (post to an executor for
  // anything heavier than bookkeeping).
  using SegmentFetchedFn =
      std::function<void(const std::string& segment_id, bool ok)>;

  StreamingDownloadDriver(std::size_t k, std::vector<cloud::CloudId> clouds,
                          DriverConfig config, ThroughputMonitor& monitor,
                          std::shared_ptr<Executor> executor,
                          TransferFn transfer,
                          std::shared_ptr<cloud::CloudHealthRegistry> health =
                              nullptr,
                          obs::ObsPtr obs = nullptr,
                          SegmentFetchedFn on_fetched = nullptr,
                          AsyncTransferFn async_transfer = nullptr);
  ~StreamingDownloadDriver();

  StreamingDownloadDriver(const StreamingDownloadDriver&) = delete;
  StreamingDownloadDriver& operator=(const StreamingDownloadDriver&) = delete;

  // Feed one more file into the running job. Ignored after close/cancel.
  void add_file(DownloadFileSpec file);

  // Corrupt-shard search: fetch one more distinct block of the segment.
  // The segment becomes pending again and its SegmentFetchedFn re-fires.
  // Allowed after close() (verification outlives the feed phase).
  void request_extra_block(const std::string& segment_id);

  // No more files will be added; wait() returns once the scheduler drains.
  void close();

  // Stop assigning new blocks. In-flight transfers complete and are
  // reported, pending segments get their ok=false callback.
  void cancel();

  // Blocks until nothing is in flight AND (cancelled, or closed with the
  // scheduler finished).
  void wait();

  [[nodiscard]] bool cancelled() const;

 private:
  // pump/sweep_decided/launch/note_inflight require lock_ held.
  void pump();
  void sweep_decided();
  [[nodiscard]] bool done() const;
  void launch(cloud::CloudId cloud, const BlockTask& task, bool is_hedge);
  // Post-transfer bookkeeping shared by the blocking executor task and the
  // async completion. Takes lock_ itself.
  void finish_transfer(cloud::CloudId cloud, const BlockTask& task,
                       const Status& status, TimePoint start);
  void note_inflight();

  std::vector<cloud::CloudId> clouds_;
  DriverConfig config_;
  ThroughputMonitor& monitor_;
  std::shared_ptr<Executor> executor_;
  TransferFn transfer_;
  std::shared_ptr<cloud::CloudHealthRegistry> health_;
  obs::ObsPtr obs_;
  SegmentFetchedFn on_fetched_;
  AsyncTransferFn async_transfer_;

  mutable std::mutex lock_;
  std::condition_variable cv_;
  DownloadScheduler scheduler_;
  std::map<cloud::CloudId, std::size_t> free_conns_;
  std::size_t outstanding_ = 0;
  bool closed_ = false;
  bool cancelled_ = false;
  std::map<cloud::CloudId, int> consecutive_failures_;
  std::set<cloud::CloudId> disabled_;
  // Segments fed (or re-armed by request_extra_block) whose fate has not
  // been reported yet.
  std::set<std::string> pending_;
  std::map<cloud::CloudId, obs::Counter*> ok_counters_;
  std::map<cloud::CloudId, obs::Counter*> err_counters_;
  obs::Histogram* latency_hist_ = nullptr;
  // Issued RPCs only — see the upload driver's note on on_wire_.
  obs::Gauge* inflight_gauge_ = nullptr;
  obs::Gauge* inflight_peak_gauge_ = nullptr;
  obs::Gauge* threads_gauge_ = nullptr;
  std::size_t on_wire_ = 0;
  std::size_t inflight_peak_ = 0;
};

}  // namespace unidrive::sched
