#include "sched/threaded_driver.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <set>

#include "common/clock.h"
#include "common/logging.h"

namespace unidrive::sched {

ThreadedTransferDriver::ThreadedTransferDriver(
    std::vector<cloud::CloudId> clouds, DriverConfig config,
    ThroughputMonitor& monitor,
    std::shared_ptr<cloud::CloudHealthRegistry> health, obs::ObsPtr obs,
    std::shared_ptr<Executor> executor)
    : clouds_(std::move(clouds)),
      config_(config),
      monitor_(monitor),
      health_(std::move(health)),
      obs_(std::move(obs)),
      executor_(std::move(executor)) {}

template <typename Scheduler>
void ThreadedTransferDriver::run(Scheduler& scheduler,
                                 const TransferFn& transfer, Direction dir) {
  // All scheduler state below is guarded by `mutex`; completion handlers
  // notify under the lock so run() can safely destroy the cv on return.
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t outstanding = 0;  // submitted transfers not yet completed
  std::map<cloud::CloudId, std::size_t> free_conns;
  for (const cloud::CloudId c : clouds_) {
    free_conns[c] = config_.connections_per_cloud;
  }

  // Per-cloud outcome counters, resolved once so transfer tasks only touch
  // atomics; null when observability is off.
  const char* const dir_name = dir == Direction::kUpload ? "up" : "down";
  std::map<cloud::CloudId, obs::Counter*> ok_counters;
  std::map<cloud::CloudId, obs::Counter*> err_counters;
  obs::Histogram* latency_hist = nullptr;
  if (obs_) {
    const std::string prefix = std::string("driver.") + dir_name + ".cloud";
    for (const cloud::CloudId c : clouds_) {
      ok_counters[c] =
          &obs_->metrics.counter(prefix + std::to_string(c) + ".ok");
      err_counters[c] =
          &obs_->metrics.counter(prefix + std::to_string(c) + ".err");
    }
    latency_hist = &obs_->metrics.histogram(std::string("driver.") +
                                            dir_name + ".latency");
  }
  // Per-CLOUD consecutive-failure counters so a flapping cloud cannot
  // livelock a run; with a health registry the breaker decides instead
  // (and, unlike these counters, survives into the next run).
  std::map<cloud::CloudId, int> consecutive_failures;
  // Clouds this run disabled in the scheduler; a later success (a breaker
  // probe that went through) re-admits them.
  std::set<cloud::CloudId> disabled;

  // Two gates: the breaker covers availability failures across rounds; the
  // per-run counter additionally catches clouds that fail deterministically
  // WITHOUT looking unavailable (e.g. out of quota — a health "success"),
  // which would otherwise be reassigned the same blocks forever.
  const auto cloud_is_down = [&](cloud::CloudId cloud) {
    if (health_ != nullptr && !health_->admissible(cloud)) return true;
    return consecutive_failures[cloud] >= config_.max_consecutive_failures;
  };

  // Without a shared executor, a local pool with the same concurrency as
  // the old thread-per-connection model. Declared after mutex/cv so its
  // destructor (which joins the pool) runs first on scope exit, while the
  // synchronization objects the tasks use are still alive.
  std::unique_ptr<Executor> local;
  Executor* exec = executor_.get();
  if (exec == nullptr) {
    local = std::make_unique<Executor>(std::max<std::size_t>(
        1, clouds_.size() * config_.connections_per_cloud));
    exec = local.get();
  }

  // launch() and pump() are mutually recursive and both require `mutex` to
  // be held by the caller.
  std::function<void(cloud::CloudId, const BlockTask&, bool)> launch;
  const auto pump = [&] {
    // Goal met = done: never assign surplus work past finished().
    if (scheduler.finished()) return;
    for (const cloud::CloudId c : clouds_) {
      while (free_conns[c] > 0) {
        const std::optional<BlockTask> task = scheduler.next_task(c);
        if (!task.has_value()) break;
        launch(c, *task, /*is_hedge=*/false);
      }
    }
    // Straggler hedging for downloads: duplicate work pinned on slower
    // clouds once nothing regular is assignable.
    if constexpr (requires { scheduler.next_hedge_task(cloud::CloudId{}); }) {
      scheduler.set_speed_order(monitor_.ranked(dir, clouds_));
      for (const cloud::CloudId c : clouds_) {
        while (free_conns[c] > 0) {
          const std::optional<BlockTask> task = scheduler.next_hedge_task(c);
          if (!task.has_value()) break;
          launch(c, *task, /*is_hedge=*/true);
        }
      }
    }
  };

  launch = [&](cloud::CloudId cloud, const BlockTask& task, bool is_hedge) {
    --free_conns[cloud];
    ++outstanding;
    exec->submit([&, task, cloud, is_hedge] {
      if (is_hedge) obs::add_counter(obs_.get(), "driver.hedge_tasks");

      const TimePoint start = RealClock::instance().now();
      const Status status = transfer(task);
      const TimePoint end = RealClock::instance().now();
      if (obs_ != nullptr) {
        (status.is_ok() ? ok_counters : err_counters).at(cloud)->add();
        latency_hist->observe(end - start);
      }
      if (status.is_ok()) {
        monitor_.record(cloud, dir, static_cast<double>(task.bytes),
                        std::max(1e-9, end - start));
      } else {
        // Failures waste connection time too: feed the stall into the
        // ranking so slow-failing clouds sink below clouds that fail fast.
        monitor_.record_failure(cloud, dir, end - start);
        UNI_LOG(kDebug) << "transfer failed on cloud " << cloud << ": "
                        << status.to_string();
      }

      std::lock_guard<std::mutex> lock(mutex);
      scheduler.on_complete(task, status.is_ok());
      if (status.is_ok()) {
        consecutive_failures[cloud] = 0;
        if (disabled.erase(cloud) != 0) {
          scheduler.set_cloud_enabled(cloud, true);
          obs::add_counter(obs_.get(), "driver.cloud_readmitted");
          UNI_LOG(kInfo) << "cloud " << cloud << " re-admitted";
        }
      } else {
        ++consecutive_failures[cloud];
        if (cloud_is_down(cloud) && disabled.insert(cloud).second) {
          scheduler.set_cloud_enabled(cloud, false);
          obs::add_counter(obs_.get(), "driver.cloud_disabled");
          UNI_LOG(kInfo) << "cloud " << cloud
                         << " disabled after repeated failures";
        }
      }
      ++free_conns[cloud];
      --outstanding;
      pump();
      cv.notify_all();
    });
  };

  {
    std::unique_lock<std::mutex> lock(mutex);
    // A cloud already tripped when the run starts (breaker state carried
    // over from earlier rounds) is disabled up front — unless its probe
    // timer expired, in which case the first transfer probes it.
    if (health_ != nullptr) {
      for (const cloud::CloudId c : clouds_) {
        if (!health_->admissible(c)) {
          scheduler.set_cloud_enabled(c, false);
          disabled.insert(c);
        }
      }
    }
    pump();
    // Every completion pumps before notifying, so outstanding == 0 implies
    // nothing further is assignable: the job is finished or stalled.
    cv.wait(lock, [&] { return outstanding == 0; });
  }
}

void ThreadedTransferDriver::run_upload(UploadScheduler& scheduler,
                                        const TransferFn& transfer) {
  run(scheduler, transfer, Direction::kUpload);
}

void ThreadedTransferDriver::run_download(DownloadScheduler& scheduler,
                                          const TransferFn& transfer) {
  run(scheduler, transfer, Direction::kDownload);
}

}  // namespace unidrive::sched
