#include "sched/threaded_driver.h"

#include <chrono>
#include <map>

#include "common/clock.h"
#include "common/logging.h"

namespace unidrive::sched {

ThreadedTransferDriver::ThreadedTransferDriver(
    std::vector<cloud::CloudId> clouds, DriverConfig config,
    ThroughputMonitor& monitor)
    : clouds_(std::move(clouds)), config_(config), monitor_(monitor) {}

template <typename Scheduler>
void ThreadedTransferDriver::run(Scheduler& scheduler,
                                 const TransferFn& transfer, Direction dir) {
  std::mutex mutex;
  std::condition_variable cv;
  bool stop = false;
  // Consecutive-failure counters so a flapping cloud cannot livelock a run:
  // after max_retries the scheduler-side cloud is disabled for this run.
  std::map<cloud::CloudId, int> consecutive_failures;

  auto worker = [&](cloud::CloudId cloud) {
    while (true) {
      std::optional<BlockTask> task;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] {
          if (stop || scheduler.finished()) return true;
          if ((task = scheduler.next_task(cloud)).has_value()) return true;
          // Straggler hedging for downloads: duplicate work pinned on
          // slower clouds once nothing regular is assignable.
          if constexpr (requires { scheduler.next_hedge_task(cloud); }) {
            scheduler.set_speed_order(monitor_.ranked(dir, clouds_));
            if ((task = scheduler.next_hedge_task(cloud)).has_value()) {
              return true;
            }
          }
          return false;
        });
        if (stop || !task.has_value()) return;
      }

      const TimePoint start = RealClock::instance().now();
      const Status status = transfer(*task);
      const TimePoint end = RealClock::instance().now();
      if (status.is_ok()) {
        monitor_.record(cloud, dir, static_cast<double>(task->bytes),
                        std::max(1e-9, end - start));
      } else {
        UNI_LOG(kDebug) << "transfer failed on cloud " << cloud << ": "
                        << status.to_string();
      }

      {
        std::lock_guard<std::mutex> lock(mutex);
        scheduler.on_complete(*task, status.is_ok());
        if (status.is_ok()) {
          consecutive_failures[cloud] = 0;
        } else if (++consecutive_failures[cloud] >=
                   config_.max_retries_per_block) {
          scheduler.set_cloud_enabled(cloud, false);
          UNI_LOG(kInfo) << "cloud " << cloud
                         << " disabled after repeated failures";
        }
        if (scheduler.finished()) stop = true;
      }
      cv.notify_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(clouds_.size() * config_.connections_per_cloud);
  for (const cloud::CloudId c : clouds_) {
    for (std::size_t i = 0; i < config_.connections_per_cloud; ++i) {
      threads.emplace_back(worker, c);
    }
  }
  // Wake everyone once in case finished() is true at entry.
  cv.notify_all();
  for (std::thread& t : threads) t.join();
}

void ThreadedTransferDriver::run_upload(UploadScheduler& scheduler,
                                        const TransferFn& transfer) {
  run(scheduler, transfer, Direction::kUpload);
}

void ThreadedTransferDriver::run_download(DownloadScheduler& scheduler,
                                          const TransferFn& transfer) {
  run(scheduler, transfer, Direction::kDownload);
}

}  // namespace unidrive::sched
