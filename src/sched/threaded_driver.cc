#include "sched/threaded_driver.h"

#include <chrono>
#include <map>
#include <set>

#include "common/clock.h"
#include "common/logging.h"

namespace unidrive::sched {

ThreadedTransferDriver::ThreadedTransferDriver(
    std::vector<cloud::CloudId> clouds, DriverConfig config,
    ThroughputMonitor& monitor,
    std::shared_ptr<cloud::CloudHealthRegistry> health, obs::ObsPtr obs)
    : clouds_(std::move(clouds)),
      config_(config),
      monitor_(monitor),
      health_(std::move(health)),
      obs_(std::move(obs)) {}

template <typename Scheduler>
void ThreadedTransferDriver::run(Scheduler& scheduler,
                                 const TransferFn& transfer, Direction dir) {
  std::mutex mutex;
  std::condition_variable cv;
  bool stop = false;
  // Per-cloud outcome counters, resolved once so worker threads only touch
  // atomics; null when observability is off.
  const char* const dir_name = dir == Direction::kUpload ? "up" : "down";
  std::map<cloud::CloudId, obs::Counter*> ok_counters;
  std::map<cloud::CloudId, obs::Counter*> err_counters;
  obs::Histogram* latency_hist = nullptr;
  if (obs_) {
    const std::string prefix = std::string("driver.") + dir_name + ".cloud";
    for (const cloud::CloudId c : clouds_) {
      ok_counters[c] =
          &obs_->metrics.counter(prefix + std::to_string(c) + ".ok");
      err_counters[c] =
          &obs_->metrics.counter(prefix + std::to_string(c) + ".err");
    }
    latency_hist = &obs_->metrics.histogram(std::string("driver.") +
                                            dir_name + ".latency");
  }
  // Per-CLOUD consecutive-failure counters so a flapping cloud cannot
  // livelock a run; with a health registry the breaker decides instead
  // (and, unlike these counters, survives into the next run).
  std::map<cloud::CloudId, int> consecutive_failures;
  // Clouds this run disabled in the scheduler; a later success (a breaker
  // probe that went through) re-admits them.
  std::set<cloud::CloudId> disabled;

  // Two gates: the breaker covers availability failures across rounds; the
  // per-run counter additionally catches clouds that fail deterministically
  // WITHOUT looking unavailable (e.g. out of quota — a health "success"),
  // which would otherwise be reassigned the same blocks forever.
  const auto cloud_is_down = [&](cloud::CloudId cloud) {
    if (health_ != nullptr && !health_->admissible(cloud)) return true;
    return consecutive_failures[cloud] >= config_.max_consecutive_failures;
  };

  auto worker = [&](cloud::CloudId cloud) {
    while (true) {
      std::optional<BlockTask> task;
      bool is_hedge = false;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] {
          if (stop || scheduler.finished()) return true;
          if ((task = scheduler.next_task(cloud)).has_value()) return true;
          // Straggler hedging for downloads: duplicate work pinned on
          // slower clouds once nothing regular is assignable.
          if constexpr (requires { scheduler.next_hedge_task(cloud); }) {
            scheduler.set_speed_order(monitor_.ranked(dir, clouds_));
            if ((task = scheduler.next_hedge_task(cloud)).has_value()) {
              is_hedge = true;
              return true;
            }
          }
          return false;
        });
        if (stop || !task.has_value()) return;
      }
      if (is_hedge) obs::add_counter(obs_.get(), "driver.hedge_tasks");

      const TimePoint start = RealClock::instance().now();
      const Status status = transfer(*task);
      const TimePoint end = RealClock::instance().now();
      if (obs_) {
        (status.is_ok() ? ok_counters : err_counters)[cloud]->add();
        latency_hist->observe(end - start);
      }
      if (status.is_ok()) {
        monitor_.record(cloud, dir, static_cast<double>(task->bytes),
                        std::max(1e-9, end - start));
      } else {
        // Failures waste connection time too: feed the stall into the
        // ranking so slow-failing clouds sink below clouds that fail fast.
        monitor_.record_failure(cloud, dir, end - start);
        UNI_LOG(kDebug) << "transfer failed on cloud " << cloud << ": "
                        << status.to_string();
      }

      {
        std::lock_guard<std::mutex> lock(mutex);
        scheduler.on_complete(*task, status.is_ok());
        if (status.is_ok()) {
          consecutive_failures[cloud] = 0;
          if (disabled.erase(cloud) != 0) {
            scheduler.set_cloud_enabled(cloud, true);
            obs::add_counter(obs_.get(), "driver.cloud_readmitted");
            UNI_LOG(kInfo) << "cloud " << cloud << " re-admitted";
          }
        } else {
          ++consecutive_failures[cloud];
          if (cloud_is_down(cloud) && disabled.insert(cloud).second) {
            scheduler.set_cloud_enabled(cloud, false);
            obs::add_counter(obs_.get(), "driver.cloud_disabled");
            UNI_LOG(kInfo) << "cloud " << cloud
                           << " disabled after repeated failures";
          }
        }
        if (scheduler.finished()) stop = true;
      }
      cv.notify_all();
    }
  };

  // A cloud already tripped when the run starts (breaker state carried over
  // from earlier rounds) is disabled up front — unless its probe timer
  // expired, in which case its workers run and the first transfer probes it.
  if (health_ != nullptr) {
    for (const cloud::CloudId c : clouds_) {
      if (!health_->admissible(c)) {
        scheduler.set_cloud_enabled(c, false);
        disabled.insert(c);
      }
    }
  }

  std::vector<std::thread> threads;
  threads.reserve(clouds_.size() * config_.connections_per_cloud);
  for (const cloud::CloudId c : clouds_) {
    for (std::size_t i = 0; i < config_.connections_per_cloud; ++i) {
      threads.emplace_back(worker, c);
    }
  }
  // Wake everyone once in case finished() is true at entry.
  cv.notify_all();
  for (std::thread& t : threads) t.join();
}

void ThreadedTransferDriver::run_upload(UploadScheduler& scheduler,
                                        const TransferFn& transfer) {
  run(scheduler, transfer, Direction::kUpload);
}

void ThreadedTransferDriver::run_download(DownloadScheduler& scheduler,
                                          const TransferFn& transfer) {
  run(scheduler, transfer, Direction::kDownload);
}

}  // namespace unidrive::sched
