// ThreadedTransferDriver — executes an Upload- or DownloadScheduler's plan
// against real CloudProviders with a bounded number of connections per
// cloud (the paper uses up to 5 concurrent HTTP connections per cloud).
//
// The driver is event-driven: instead of parking one thread per connection,
// it tracks free connections per cloud and, under a single lock, "pumps"
// the scheduler — assigning a block to every free connection that can get
// one and submitting each transfer as a finite task on an Executor. When a
// transfer completes, its completion handler feeds the scheduler and the
// throughput monitor (in-channel probing) and pumps again, because a
// completion can unlock work for any cloud (e.g. over-provisioning kicks
// in when the fast cloud finishes its fair share).
//
// The Executor may be shared with other subsystems (the sync pipeline's
// encode stage); transfers block on cloud I/O, so the pool must be sized
// for that (see ClientConfig). Without a shared executor the driver spins
// up a local pool with one thread per connection — the exact concurrency
// of the old thread-per-connection model.
//
// Fault handling: when a shared CloudHealthRegistry is supplied, a cloud
// whose circuit breaker is open is disabled in the scheduler for this run
// (its blocks reroute to the remaining clouds) — and because the registry
// outlives the run, a cloud tripped in round N starts round N+1 half-open
// instead of eating another full failure cycle. Without a registry the
// driver falls back to per-run consecutive-failure counting.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cloud/health.h"
#include "cloud/provider.h"
#include "common/executor.h"
#include "obs/obs.h"
#include "sched/download_scheduler.h"
#include "sched/monitor.h"
#include "sched/upload_scheduler.h"

namespace unidrive::sched {

// Performs the actual transfer for a task; returns OK on success. For
// uploads the callee encodes the shard and PUTs it; for downloads it GETs
// and stores the shard. Runs on an executor thread; must be thread-safe.
using TransferFn = std::function<Status(const BlockTask&)>;

struct DriverConfig {
  std::size_t connections_per_cloud = 5;
  // Consecutive failed transfers before a CLOUD is disabled for this run
  // (per cloud, not per block — a flapping cloud must not livelock a job).
  int max_consecutive_failures = 3;
};

class ThreadedTransferDriver {
 public:
  // When `obs` is non-null, every transfer is counted per cloud
  // (driver.up|down.cloud<id>.ok|err), latency lands in a per-direction
  // histogram (driver.up|down.latency), and straggler handoffs / cloud
  // disable/re-admit events are counted (driver.hedge_tasks,
  // driver.cloud_disabled, driver.cloud_readmitted).
  //
  // When `executor` is null, each run creates a local pool sized
  // clouds * connections_per_cloud.
  ThreadedTransferDriver(std::vector<cloud::CloudId> clouds,
                         DriverConfig config, ThroughputMonitor& monitor,
                         std::shared_ptr<cloud::CloudHealthRegistry> health =
                             nullptr,
                         obs::ObsPtr obs = nullptr,
                         std::shared_ptr<Executor> executor = nullptr);

  // Runs the upload job to completion (or stall); returns when
  // scheduler.finished(). Blocks the calling thread.
  void run_upload(UploadScheduler& scheduler, const TransferFn& transfer);
  void run_download(DownloadScheduler& scheduler, const TransferFn& transfer);

 private:
  // Both schedulers expose the same next_task/on_complete/finished shape;
  // the generic loop is instantiated for each.
  template <typename Scheduler>
  void run(Scheduler& scheduler, const TransferFn& transfer, Direction dir);

  std::vector<cloud::CloudId> clouds_;
  DriverConfig config_;
  ThroughputMonitor& monitor_;
  std::shared_ptr<cloud::CloudHealthRegistry> health_;
  obs::ObsPtr obs_;
  std::shared_ptr<Executor> executor_;
};

}  // namespace unidrive::sched
