#include "sched/streaming_driver.h"

#include <algorithm>
#include <optional>

#include "common/clock.h"
#include "common/logging.h"

namespace unidrive::sched {

StreamingUploadDriver::StreamingUploadDriver(
    CodeParams params, std::vector<cloud::CloudId> clouds,
    DriverConfig config, ThroughputMonitor& monitor,
    std::shared_ptr<Executor> executor, TransferFn transfer,
    UploadOptions options, std::shared_ptr<cloud::CloudHealthRegistry> health,
    obs::ObsPtr obs, SegmentSettledFn on_settled,
    AsyncTransferFn async_transfer)
    : clouds_(std::move(clouds)),
      config_(config),
      monitor_(monitor),
      executor_(std::move(executor)),
      transfer_(std::move(transfer)),
      health_(std::move(health)),
      obs_(std::move(obs)),
      on_settled_(std::move(on_settled)),
      async_transfer_(std::move(async_transfer)),
      scheduler_(params, clouds_, {}, options) {
  for (const cloud::CloudId c : clouds_) {
    free_conns_[c] = config_.connections_per_cloud;
  }
  if (obs_) {
    for (const cloud::CloudId c : clouds_) {
      ok_counters_[c] =
          &obs_->metrics.counter("driver.up.cloud" + std::to_string(c) +
                                 ".ok");
      err_counters_[c] =
          &obs_->metrics.counter("driver.up.cloud" + std::to_string(c) +
                                 ".err");
    }
    latency_hist_ = &obs_->metrics.histogram("driver.up.latency");
    inflight_gauge_ = &obs_->metrics.gauge("driver.up.rpcs_inflight");
    inflight_peak_gauge_ =
        &obs_->metrics.gauge("driver.up.rpcs_inflight_peak");
    threads_gauge_ = &obs_->metrics.gauge("driver.up.exec_threads_active");
  }
  // Same up-front breaker gate as ThreadedTransferDriver: a cloud tripped
  // in an earlier round starts this job disabled unless its probe timer
  // expired.
  if (health_ != nullptr) {
    for (const cloud::CloudId c : clouds_) {
      if (!health_->admissible(c)) {
        scheduler_.set_cloud_enabled(c, false);
        disabled_.insert(c);
      }
    }
  }
}

StreamingUploadDriver::~StreamingUploadDriver() {
  cancel();
  wait();
}

bool StreamingUploadDriver::done() const {
  return outstanding_ == 0 &&
         (cancelled_ || (closed_ && scheduler_.finished()));
}

void StreamingUploadDriver::add_file(UploadFileSpec file) {
  std::lock_guard<std::mutex> guard(lock_);
  if (closed_ || cancelled_) return;
  for (const UploadSegmentSpec& seg : file.segments) {
    unsettled_.insert(seg.id);
  }
  scheduler_.add_file(std::move(file));
  pump();
  // With every cloud capped or down the new segments may already be
  // unassignable; settle them now so a producer blocked on a memory cap
  // is not left waiting for a completion that will never come.
  sweep_settled();
}

void StreamingUploadDriver::close() {
  std::lock_guard<std::mutex> guard(lock_);
  if (closed_) return;
  closed_ = true;
  cv_.notify_all();
}

void StreamingUploadDriver::cancel() {
  std::lock_guard<std::mutex> guard(lock_);
  if (cancelled_) return;
  cancelled_ = true;
  cv_.notify_all();
}

void StreamingUploadDriver::wait() {
  std::unique_lock<std::mutex> guard(lock_);
  cv_.wait(guard, [&] { return done(); });
}

bool StreamingUploadDriver::cancelled() const {
  std::lock_guard<std::mutex> guard(lock_);
  return cancelled_;
}

std::vector<metadata::BlockLocation> StreamingUploadDriver::locations(
    const std::string& segment_id) const {
  std::lock_guard<std::mutex> guard(lock_);
  return scheduler_.locations(segment_id);
}

std::vector<std::pair<std::string, metadata::BlockLocation>>
StreamingUploadDriver::overprovisioned_blocks() const {
  std::lock_guard<std::mutex> guard(lock_);
  return scheduler_.overprovisioned_blocks();
}

void StreamingUploadDriver::pump() {
  if (cancelled_ || scheduler_.finished()) return;
  for (const cloud::CloudId c : clouds_) {
    while (free_conns_[c] > 0) {
      const std::optional<BlockTask> task = scheduler_.next_task(c);
      if (!task.has_value()) break;
      launch(c, *task);
    }
  }
}

void StreamingUploadDriver::sweep_settled() {
  for (auto it = unsettled_.begin(); it != unsettled_.end();) {
    if (!scheduler_.segment_settled(*it)) {
      ++it;
      continue;
    }
    // Abandon BEFORE releasing the bytes: a cloud re-admitted later must
    // never be assigned a block whose shards are gone.
    scheduler_.abandon_segment(*it);
    if (on_settled_) on_settled_(*it);
    it = unsettled_.erase(it);
  }
}

void StreamingUploadDriver::note_inflight() {
  if (inflight_gauge_ == nullptr) return;
  inflight_gauge_->set(static_cast<double>(on_wire_));
  if (on_wire_ > inflight_peak_) {
    inflight_peak_ = on_wire_;
    inflight_peak_gauge_->set(static_cast<double>(inflight_peak_));
  }
  threads_gauge_->set(static_cast<double>(executor_->active()));
}

void StreamingUploadDriver::launch(cloud::CloudId cloud,
                                   const BlockTask& task) {
  --free_conns_[cloud];
  ++outstanding_;
  if (async_transfer_) {
    // The RPC is issued right here, so it is on the wire from launch.
    // Launched under lock_ — safe because async completions never run on
    // the caller's stack (cloud/async.h invariant 1). The handle is
    // deliberately dropped: the driver never cancels an in-flight RPC, so
    // every launch is balanced by exactly one finish_transfer.
    ++on_wire_;
    note_inflight();
    const TimePoint start = RealClock::instance().now();
    async_transfer_(task, [this, task, cloud, start](Status status) {
      finish_transfer(cloud, task, status, start);
    });
    return;
  }
  // Blocking path: the task may sit queued behind a busy pool; it only
  // becomes an RPC when a worker picks it up, so count it there.
  executor_->submit([this, task, cloud] {
    {
      std::lock_guard<std::mutex> guard(lock_);
      ++on_wire_;
      note_inflight();
    }
    const TimePoint start = RealClock::instance().now();
    finish_transfer(cloud, task, transfer_(task), start);
  });
}

void StreamingUploadDriver::finish_transfer(cloud::CloudId cloud,
                                            const BlockTask& task,
                                            const Status& status,
                                            TimePoint start) {
  const TimePoint end = RealClock::instance().now();
  if (obs_ != nullptr) {
    (status.is_ok() ? ok_counters_ : err_counters_).at(cloud)->add();
    latency_hist_->observe(end - start);
  }
  if (status.is_ok()) {
    monitor_.record(cloud, Direction::kUpload,
                    static_cast<double>(task.bytes),
                    std::max(1e-9, end - start));
  } else {
    monitor_.record_failure(cloud, Direction::kUpload, end - start);
    UNI_LOG(kDebug) << "transfer failed on cloud " << cloud << ": "
                    << status.to_string();
  }

  std::lock_guard<std::mutex> guard(lock_);
  scheduler_.on_complete(task, status.is_ok());
  if (status.is_ok()) {
    consecutive_failures_[cloud] = 0;
    if (disabled_.erase(cloud) != 0) {
      scheduler_.set_cloud_enabled(cloud, true);
      obs::add_counter(obs_.get(), "driver.cloud_readmitted");
      UNI_LOG(kInfo) << "cloud " << cloud << " re-admitted";
    }
  } else {
    ++consecutive_failures_[cloud];
    const bool down =
        (health_ != nullptr && !health_->admissible(cloud)) ||
        consecutive_failures_[cloud] >= config_.max_consecutive_failures;
    if (down && disabled_.insert(cloud).second) {
      scheduler_.set_cloud_enabled(cloud, false);
      obs::add_counter(obs_.get(), "driver.cloud_disabled");
      UNI_LOG(kInfo) << "cloud " << cloud
                     << " disabled after repeated failures";
    }
  }
  ++free_conns_[cloud];
  --outstanding_;
  --on_wire_;
  note_inflight();
  pump();
  sweep_settled();
  // Notify under the lock: wait() may destroy this object right after.
  cv_.notify_all();
}

// --- StreamingDownloadDriver ------------------------------------------------

StreamingDownloadDriver::StreamingDownloadDriver(
    std::size_t k, std::vector<cloud::CloudId> clouds, DriverConfig config,
    ThroughputMonitor& monitor, std::shared_ptr<Executor> executor,
    TransferFn transfer, std::shared_ptr<cloud::CloudHealthRegistry> health,
    obs::ObsPtr obs, SegmentFetchedFn on_fetched,
    AsyncTransferFn async_transfer)
    : clouds_(std::move(clouds)),
      config_(config),
      monitor_(monitor),
      executor_(std::move(executor)),
      transfer_(std::move(transfer)),
      health_(std::move(health)),
      obs_(std::move(obs)),
      on_fetched_(std::move(on_fetched)),
      async_transfer_(std::move(async_transfer)),
      scheduler_(k, {}) {
  for (const cloud::CloudId c : clouds_) {
    free_conns_[c] = config_.connections_per_cloud;
  }
  if (obs_) {
    for (const cloud::CloudId c : clouds_) {
      ok_counters_[c] =
          &obs_->metrics.counter("driver.down.cloud" + std::to_string(c) +
                                 ".ok");
      err_counters_[c] =
          &obs_->metrics.counter("driver.down.cloud" + std::to_string(c) +
                                 ".err");
    }
    latency_hist_ = &obs_->metrics.histogram("driver.down.latency");
    inflight_gauge_ = &obs_->metrics.gauge("driver.down.rpcs_inflight");
    inflight_peak_gauge_ =
        &obs_->metrics.gauge("driver.down.rpcs_inflight_peak");
    threads_gauge_ = &obs_->metrics.gauge("driver.down.exec_threads_active");
  }
  if (health_ != nullptr) {
    for (const cloud::CloudId c : clouds_) {
      if (!health_->admissible(c)) {
        scheduler_.set_cloud_enabled(c, false);
        disabled_.insert(c);
      }
    }
  }
}

StreamingDownloadDriver::~StreamingDownloadDriver() {
  cancel();
  wait();
}

bool StreamingDownloadDriver::done() const {
  return outstanding_ == 0 &&
         (cancelled_ || (closed_ && scheduler_.finished()));
}

void StreamingDownloadDriver::add_file(DownloadFileSpec file) {
  std::lock_guard<std::mutex> guard(lock_);
  if (closed_ || cancelled_) return;
  for (const DownloadSegmentSpec& seg : file.segments) {
    pending_.insert(seg.id);
  }
  scheduler_.add_file(std::move(file));
  pump();
  // A segment with too little reachable supply (all holders down) is
  // undecidable-forever unless reported now.
  sweep_decided();
}

void StreamingDownloadDriver::request_extra_block(
    const std::string& segment_id) {
  std::lock_guard<std::mutex> guard(lock_);
  if (cancelled_) {
    if (on_fetched_) on_fetched_(segment_id, false);
    return;
  }
  scheduler_.raise_budget(segment_id, 1);
  pending_.insert(segment_id);
  pump();
  sweep_decided();  // supply may already be exhausted: fail immediately
}

void StreamingDownloadDriver::close() {
  std::lock_guard<std::mutex> guard(lock_);
  if (closed_) return;
  closed_ = true;
  cv_.notify_all();
}

void StreamingDownloadDriver::cancel() {
  std::lock_guard<std::mutex> guard(lock_);
  if (cancelled_) return;
  cancelled_ = true;
  sweep_decided();  // every pending segment gets its ok=false callback
  cv_.notify_all();
}

void StreamingDownloadDriver::wait() {
  std::unique_lock<std::mutex> guard(lock_);
  cv_.wait(guard, [&] { return done(); });
}

bool StreamingDownloadDriver::cancelled() const {
  std::lock_guard<std::mutex> guard(lock_);
  return cancelled_;
}

void StreamingDownloadDriver::pump() {
  if (cancelled_ || scheduler_.finished()) return;
  for (const cloud::CloudId c : clouds_) {
    while (free_conns_[c] > 0) {
      const std::optional<BlockTask> task = scheduler_.next_task(c);
      if (!task.has_value()) break;
      launch(c, *task, /*is_hedge=*/false);
    }
  }
  // Straggler hedging: once nothing regular is assignable, duplicate work
  // pinned on strictly slower clouds (fastest-first order refreshed from
  // the in-channel throughput monitor).
  scheduler_.set_speed_order(
      monitor_.ranked(Direction::kDownload, clouds_));
  for (const cloud::CloudId c : clouds_) {
    while (free_conns_[c] > 0) {
      const std::optional<BlockTask> task = scheduler_.next_hedge_task(c);
      if (!task.has_value()) break;
      launch(c, *task, /*is_hedge=*/true);
    }
  }
}

void StreamingDownloadDriver::sweep_decided() {
  for (auto it = pending_.begin(); it != pending_.end();) {
    bool decided = false;
    bool ok = false;
    if (scheduler_.segment_complete(*it)) {
      decided = true;
      ok = true;
    } else if (cancelled_ || scheduler_.segment_failed(*it)) {
      decided = true;
    }
    if (!decided) {
      ++it;
      continue;
    }
    if (on_fetched_) on_fetched_(*it, ok);
    it = pending_.erase(it);
  }
}

void StreamingDownloadDriver::note_inflight() {
  if (inflight_gauge_ == nullptr) return;
  inflight_gauge_->set(static_cast<double>(on_wire_));
  if (on_wire_ > inflight_peak_) {
    inflight_peak_ = on_wire_;
    inflight_peak_gauge_->set(static_cast<double>(inflight_peak_));
  }
  threads_gauge_->set(static_cast<double>(executor_->active()));
}

void StreamingDownloadDriver::launch(cloud::CloudId cloud,
                                     const BlockTask& task, bool is_hedge) {
  --free_conns_[cloud];
  ++outstanding_;
  if (is_hedge) obs::add_counter(obs_.get(), "driver.hedge_tasks");
  if (async_transfer_) {
    // The RPC is issued right here, so it is on the wire from launch.
    // Launched under lock_ — safe because async completions never run on
    // the caller's stack (cloud/async.h invariant 1). The handle is
    // deliberately dropped: the driver never cancels an in-flight RPC, so
    // every launch is balanced by exactly one finish_transfer.
    ++on_wire_;
    note_inflight();
    const TimePoint start = RealClock::instance().now();
    async_transfer_(task, [this, task, cloud, start](Status status) {
      finish_transfer(cloud, task, status, start);
    });
    return;
  }
  // Blocking path: the task may sit queued behind a busy pool; it only
  // becomes an RPC when a worker picks it up, so count it there.
  executor_->submit([this, task, cloud] {
    {
      std::lock_guard<std::mutex> guard(lock_);
      ++on_wire_;
      note_inflight();
    }
    const TimePoint start = RealClock::instance().now();
    finish_transfer(cloud, task, transfer_(task), start);
  });
}

void StreamingDownloadDriver::finish_transfer(cloud::CloudId cloud,
                                              const BlockTask& task,
                                              const Status& status,
                                              TimePoint start) {
  const TimePoint end = RealClock::instance().now();
  if (obs_ != nullptr) {
    (status.is_ok() ? ok_counters_ : err_counters_).at(cloud)->add();
    latency_hist_->observe(end - start);
  }
  if (status.is_ok()) {
    monitor_.record(cloud, Direction::kDownload,
                    static_cast<double>(task.bytes),
                    std::max(1e-9, end - start));
  } else {
    monitor_.record_failure(cloud, Direction::kDownload, end - start);
    UNI_LOG(kDebug) << "fetch failed on cloud " << cloud << ": "
                    << status.to_string();
  }

  std::lock_guard<std::mutex> guard(lock_);
  scheduler_.on_complete(task, status.is_ok());
  if (status.is_ok()) {
    consecutive_failures_[cloud] = 0;
    if (disabled_.erase(cloud) != 0) {
      scheduler_.set_cloud_enabled(cloud, true);
      obs::add_counter(obs_.get(), "driver.cloud_readmitted");
      UNI_LOG(kInfo) << "cloud " << cloud << " re-admitted";
    }
  } else {
    ++consecutive_failures_[cloud];
    const bool down =
        (health_ != nullptr && !health_->admissible(cloud)) ||
        consecutive_failures_[cloud] >= config_.max_consecutive_failures;
    if (down && disabled_.insert(cloud).second) {
      scheduler_.set_cloud_enabled(cloud, false);
      obs::add_counter(obs_.get(), "driver.cloud_disabled");
      UNI_LOG(kInfo) << "cloud " << cloud
                     << " disabled after repeated failures";
    }
  }
  ++free_conns_[cloud];
  --outstanding_;
  --on_wire_;
  note_inflight();
  pump();
  sweep_decided();
  // Notify under the lock: wait() may destroy this object right after.
  cv_.notify_all();
}

}  // namespace unidrive::sched
