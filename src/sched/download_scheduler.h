// Download scheduler (Section 6.2): only k distinct blocks are needed per
// segment — normal or over-provisioned, from whichever clouds. The driver
// polls idle connections in fastest-cloud-first order (using the in-channel
// throughput monitor), and this scheduler hands each poll the next needed
// block that the polling cloud can supply. Over-provisioning pays off here:
// fast clouds hold extra blocks, so they can serve more than their share.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cloud/provider.h"
#include "metadata/types.h"
#include "sched/upload_scheduler.h"  // BlockTask

namespace unidrive::sched {

struct DownloadSegmentSpec {
  std::string id;
  std::uint64_t size = 0;  // original segment size
  std::vector<metadata::BlockLocation> locations;
};

struct DownloadFileSpec {
  std::string path;
  std::vector<DownloadSegmentSpec> segments;
};

class DownloadScheduler {
 public:
  DownloadScheduler(std::size_t k, std::vector<DownloadFileSpec> files);

  // Streaming: append a file to the batch while the job is running (the
  // caller must serialize this with next_task/on_complete, like every
  // other mutating call). The new file ranks after all existing files in
  // the fastest-first polling order.
  void add_file(DownloadFileSpec file);

  // Raise a segment's distinct-block budget past k by `extra` blocks (the
  // corrupt-shard search: a decoded-but-unverifiable segment needs more
  // distinct blocks to find a clean k-subset). The segment becomes
  // incomplete again until the extra blocks land or supply runs out.
  void raise_budget(const std::string& segment_id, std::size_t extra);

  // Per-segment progress, for streaming drivers that notify a consumer as
  // soon as each segment's budget of distinct blocks has been fetched.
  [[nodiscard]] bool segment_complete(const std::string& segment_id) const;
  // True when the segment can never reach its budget with the enabled
  // clouds and remaining untried sources (counting in-flight requests as
  // potential successes, so the verdict is final).
  [[nodiscard]] bool segment_failed(const std::string& segment_id) const;

  // Next block an idle connection of `cloud` should fetch, or nullopt.
  std::optional<BlockTask> next_task(cloud::CloudId cloud);

  // Straggler hedging (part of dynamic scheduling): when `cloud` is idle
  // but a segment's k-block budget is pinned by a request on a strictly
  // slower cloud, fetch an EXTRA distinct block from `cloud` — whichever k
  // blocks land first complete the segment; the straggler becomes
  // redundant. Bounded to one hedge per (segment, cloud). Requires a prior
  // set_speed_order() so "slower" is defined; returns nullopt otherwise.
  std::optional<BlockTask> next_hedge_task(cloud::CloudId cloud);

  // Fastest-first cloud ranking from the in-channel throughput monitor;
  // refreshed by the driver before polling.
  void set_speed_order(const std::vector<cloud::CloudId>& fastest_first);

  void on_complete(const BlockTask& task, bool success);

  void set_cloud_enabled(cloud::CloudId cloud, bool enabled);

  // A segment is complete when k distinct blocks are fetched; a file when
  // all its segments are; the job when all files are.
  [[nodiscard]] std::size_t file_count() const noexcept {
    return files_.size();
  }
  [[nodiscard]] bool file_complete(std::size_t file_index) const;
  [[nodiscard]] bool all_complete() const;
  // True when all files are complete OR some file can never complete with
  // the enabled clouds (insufficient reachable blocks) and nothing is in
  // flight.
  [[nodiscard]] bool finished() const;
  [[nodiscard]] bool file_failed(std::size_t file_index) const;
  [[nodiscard]] std::size_t in_flight() const noexcept { return in_flight_; }

  // Which block indices were fetched for a segment (driver assembles them).
  [[nodiscard]] std::vector<std::uint32_t> fetched_blocks(
      const std::string& segment_id) const;

 private:
  struct SegmentState {
    std::size_t file_index = 0;
    DownloadSegmentSpec spec;
    std::uint64_t block_bytes = 0;
    // Distinct blocks to fetch: k normally, raised by raise_budget() during
    // a corrupt-shard search.
    std::size_t budget = 0;
    std::set<std::uint32_t> done;
    std::map<std::uint32_t, cloud::CloudId> in_flight;
    std::set<std::uint32_t> failed_everywhere;  // exhausted all holders

    [[nodiscard]] bool complete() const noexcept {
      return done.size() >= budget;
    }
  };

  void append_file(DownloadFileSpec file);
  [[nodiscard]] bool segment_stuck(const SegmentState& seg) const;
  [[nodiscard]] const SegmentState* find_segment(
      const std::string& segment_id) const;

  std::size_t k_;
  std::vector<DownloadFileSpec> files_;
  std::vector<SegmentState> segments_;
  std::vector<std::vector<std::size_t>> file_segments_;
  std::set<cloud::CloudId> disabled_;
  std::map<cloud::CloudId, std::size_t> speed_rank_;  // 0 = fastest
  // Failures are transient (that's the measured cloud behaviour): each
  // (segment, block, cloud) triple may be retried a few times before the
  // scheduler stops considering that source.
  static constexpr int kMaxAttemptsPerSource = 3;
  std::map<std::tuple<std::size_t, std::uint32_t, cloud::CloudId>, int>
      failure_counts_;
  [[nodiscard]] bool source_exhausted(std::size_t segment,
                                      std::uint32_t block,
                                      cloud::CloudId cloud) const {
    const auto it = failure_counts_.find({segment, block, cloud});
    return it != failure_counts_.end() &&
           it->second >= kMaxAttemptsPerSource;
  }
  std::size_t in_flight_ = 0;
};

}  // namespace unidrive::sched
