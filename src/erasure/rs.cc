#include "erasure/rs.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "common/aligned.h"
#include "erasure/gf256.h"

namespace unidrive::erasure {

namespace {

// Systematic construction: [ I_k ; Cauchy ]. Any k-row subset mixes r unit
// rows with (k - r) Cauchy rows; expanding the determinant along the unit
// rows leaves a square Cauchy submatrix, which is always invertible — so
// the code is provably MDS. (The folklore alternative, column-reducing a
// Vandermonde matrix, does NOT guarantee MDS over GF(2^8); that is a
// well-known erasure-coding pitfall.)
GfMatrix systematic_matrix(std::size_t n, std::size_t k) {
  GfMatrix m(n, k);
  for (std::size_t i = 0; i < k; ++i) m.at(i, i) = 1;
  if (n > k) {
    const GfMatrix parity = GfMatrix::cauchy(n - k, k);
    for (std::size_t r = 0; r < n - k; ++r) {
      for (std::size_t c = 0; c < k; ++c) {
        m.at(k + r, c) = parity.at(r, c);
      }
    }
  }
  return m;
}

}  // namespace

RsCode::RsCode(std::size_t n, std::size_t k, RsVariant variant)
    : n_(n), k_(k), variant_(variant) {
  if (k == 0 || k > n || n > 256 ||
      (variant == RsVariant::kNonSystematic && n + k > 256)) {
    throw std::invalid_argument("RsCode: invalid (n, k)");
  }
  matrix_ = (variant == RsVariant::kSystematic) ? systematic_matrix(n, k)
                                                : GfMatrix::cauchy(n, k);
}

std::vector<AlignedBytes> RsCode::split_into_data_shards(
    ByteSpan segment) const {
  const std::size_t size = shard_size(segment.size());
  // 64-byte-aligned source rows (common/aligned.h): a pure optimization for
  // the SIMD dot kernel — every kernel accepts arbitrary alignment.
  std::vector<AlignedBytes> shards(k_, AlignedBytes(size, 0));
  for (std::size_t i = 0; i < k_; ++i) {
    const std::size_t begin = i * size;
    if (begin >= segment.size()) break;
    const std::size_t len = std::min(size, segment.size() - begin);
    std::copy_n(segment.begin() + static_cast<std::ptrdiff_t>(begin), len,
                shards[i].begin());
  }
  return shards;
}

std::vector<Shard> RsCode::encode(ByteSpan segment) const {
  std::vector<std::uint32_t> all(n_);
  for (std::size_t i = 0; i < n_; ++i) all[i] = static_cast<std::uint32_t>(i);
  return encode_shards(segment, all);
}

std::vector<Shard> RsCode::encode_shards(
    ByteSpan segment, const std::vector<std::uint32_t>& indices) const {
  const std::vector<AlignedBytes> data = split_into_data_shards(segment);
  const std::size_t size = shard_size(segment.size());

  std::vector<const std::uint8_t*> srcs(k_);
  for (std::size_t c = 0; c < k_; ++c) srcs[c] = data[c].data();

  std::vector<Shard> out;
  out.reserve(indices.size());
  std::vector<std::uint8_t> coeffs(k_);
  for (const std::uint32_t idx : indices) {
    Shard shard;
    shard.index = idx;
    shard.data.resize(size);
    for (std::size_t c = 0; c < k_; ++c) coeffs[c] = matrix_.at(idx, c);
    Gf256::dot_slice(shard.data.data(), srcs.data(), coeffs.data(), k_, size);
    out.push_back(std::move(shard));
  }
  return out;
}

std::vector<Shard> RsCode::encode_shards_parallel(
    ByteSpan segment, const std::vector<std::uint32_t>& indices,
    Executor& executor) const {
  const std::vector<AlignedBytes> data = split_into_data_shards(segment);
  const std::size_t size = shard_size(segment.size());

  std::vector<const std::uint8_t*> srcs(k_);
  for (std::size_t c = 0; c < k_; ++c) srcs[c] = data[c].data();

  std::vector<Shard> out(indices.size());
  executor.parallel_apply(indices.size(), [&](std::size_t i) {
    Shard& shard = out[i];
    shard.index = indices[i];
    shard.data.resize(size);
    std::vector<std::uint8_t> coeffs(k_);
    for (std::size_t c = 0; c < k_; ++c) coeffs[c] = matrix_.at(shard.index, c);
    Gf256::dot_slice(shard.data.data(), srcs.data(), coeffs.data(), k_, size);
  });
  return out;
}

namespace {

// Shared front half of both decode paths: pick the first k shards with
// distinct in-range indices and invert the matching encode rows.
struct DecodePlan {
  std::vector<const Shard*> chosen;
  GfMatrix inverse;
};

Result<DecodePlan> plan_decode(const std::vector<Shard>& shards,
                               std::size_t shard_size, std::size_t n,
                               std::size_t k, const GfMatrix& matrix) {
  if (shards.size() < k) {
    return make_error(ErrorCode::kCorrupt, "RS decode: fewer than k shards");
  }
  DecodePlan plan;
  std::unordered_set<std::uint32_t> seen;
  for (const Shard& s : shards) {
    if (s.index >= n || !seen.insert(s.index).second) continue;
    if (s.data.size() != shard_size) {
      return make_error(ErrorCode::kCorrupt, "RS decode: bad shard size");
    }
    plan.chosen.push_back(&s);
    if (plan.chosen.size() == k) break;
  }
  if (plan.chosen.size() < k) {
    return make_error(ErrorCode::kCorrupt,
                      "RS decode: fewer than k distinct shards");
  }
  std::vector<std::size_t> rows(k);
  for (std::size_t i = 0; i < k; ++i) rows[i] = plan.chosen[i]->index;
  UNI_ASSIGN_OR_RETURN(plan.inverse, matrix.select_rows(rows).inverted());
  return plan;
}

}  // namespace

Result<Bytes> RsCode::decode(const std::vector<Shard>& shards,
                             std::size_t original_size) const {
  const std::size_t size = shard_size(original_size);
  UNI_ASSIGN_OR_RETURN(const DecodePlan plan,
                       plan_decode(shards, size, n_, k_, matrix_));

  // data[c] = sum_i inverse[c][i] * shard[i], one fused pass per row.
  std::vector<const std::uint8_t*> srcs(k_);
  for (std::size_t i = 0; i < k_; ++i) srcs[i] = plan.chosen[i]->data.data();
  Bytes out(k_ * size);
  std::vector<std::uint8_t> coeffs(k_);
  for (std::size_t c = 0; c < k_; ++c) {
    for (std::size_t i = 0; i < k_; ++i) coeffs[i] = plan.inverse.at(c, i);
    Gf256::dot_slice(out.data() + c * size, srcs.data(), coeffs.data(), k_,
                     size);
  }
  out.resize(original_size);
  return out;
}

Result<Bytes> RsCode::decode_shards_parallel(const std::vector<Shard>& shards,
                                             std::size_t original_size,
                                             Executor& executor) const {
  const std::size_t size = shard_size(original_size);
  UNI_ASSIGN_OR_RETURN(const DecodePlan plan,
                       plan_decode(shards, size, n_, k_, matrix_));

  // Each recovered data row writes a disjoint slice of `out`, so the rows
  // fan out with no synchronization beyond parallel_apply's join.
  std::vector<const std::uint8_t*> srcs(k_);
  for (std::size_t i = 0; i < k_; ++i) srcs[i] = plan.chosen[i]->data.data();
  Bytes out(k_ * size);
  executor.parallel_apply(k_, [&](std::size_t c) {
    std::vector<std::uint8_t> coeffs(k_);
    for (std::size_t i = 0; i < k_; ++i) coeffs[i] = plan.inverse.at(c, i);
    Gf256::dot_slice(out.data() + c * size, srcs.data(), coeffs.data(), k_,
                     size);
  });
  out.resize(original_size);
  return out;
}

}  // namespace unidrive::erasure
