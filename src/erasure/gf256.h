// GF(2^8) arithmetic with the AES polynomial x^8+x^4+x^3+x+1 (0x11B).
// Log/antilog tables are built once at static initialization; hot paths
// (encode/decode inner loops) use the slice kernels over whole shards.
//
// The slice kernels dispatch once at first use (common/cpu.h): an AVX2 or
// SSSE3 shuffle-based split-nibble implementation (the ISA-L idiom — two
// 16-entry pshufb tables per coefficient, built outside the byte loop) when
// the CPU has it, otherwise a portable scalar fallback that caches the
// coefficient's product row outside the byte loop and folds 8 translated
// bytes per word-wide XOR. All kernels accept arbitrarily aligned, zero- or
// odd-length slices; the *_scalar twins are exported as the reference for
// differential tests and as the explicit baseline for benches.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace unidrive::erasure {

class Gf256 {
 public:
  static std::uint8_t add(std::uint8_t a, std::uint8_t b) noexcept {
    return a ^ b;
  }
  static std::uint8_t sub(std::uint8_t a, std::uint8_t b) noexcept {
    return a ^ b;
  }
  static std::uint8_t mul(std::uint8_t a, std::uint8_t b) noexcept;
  static std::uint8_t div(std::uint8_t a, std::uint8_t b) noexcept;  // b != 0
  static std::uint8_t inv(std::uint8_t a) noexcept;                  // a != 0
  static std::uint8_t exp(int power) noexcept;  // generator^power (mod 255)

  // dst[i] ^= coeff * src[i] for i in [0, n) — the incremental kernel.
  static void mul_add_slice(std::uint8_t* dst, const std::uint8_t* src,
                            std::size_t n, std::uint8_t coeff) noexcept;

  // dst[i] = coeff * dst[i].
  static void scale_slice(std::uint8_t* dst, std::size_t n,
                          std::uint8_t coeff) noexcept;

  // Fused dot product — the encode/decode kernel:
  //   dst[i] = XOR over r in [0, rows) of coeffs[r] * srcs[r][i]
  // (dst is OVERWRITTEN). One pass over dst regardless of row count: every
  // source row is read once and dst written once, instead of rows separate
  // read-modify-write sweeps via mul_add_slice. All per-row lookup tables
  // are derived outside the byte loop.
  static void dot_slice(std::uint8_t* dst,
                        const std::uint8_t* const* srcs,
                        const std::uint8_t* coeffs, std::size_t rows,
                        std::size_t n) noexcept;

  // Portable reference twins (always scalar, independent of dispatch).
  static void mul_add_slice_scalar(std::uint8_t* dst, const std::uint8_t* src,
                                   std::size_t n, std::uint8_t coeff) noexcept;
  static void scale_slice_scalar(std::uint8_t* dst, std::size_t n,
                                 std::uint8_t coeff) noexcept;
  static void dot_slice_scalar(std::uint8_t* dst,
                               const std::uint8_t* const* srcs,
                               const std::uint8_t* coeffs, std::size_t rows,
                               std::size_t n) noexcept;

  // Resolved dispatch decision ("avx2", "ssse3" or "scalar"); forces
  // resolution, so the result is also visible via common/cpu.h's registry.
  [[nodiscard]] static const char* kernel_name() noexcept;
  [[nodiscard]] static int kernel_tier() noexcept;  // 0 scalar, 1 ssse3, 2 avx2
};

}  // namespace unidrive::erasure
