// GF(2^8) arithmetic with the AES polynomial x^8+x^4+x^3+x+1 (0x11B).
// Log/antilog tables are built once at static initialization; hot paths
// (encode/decode inner loops) use mul_add_slice over whole shards.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace unidrive::erasure {

class Gf256 {
 public:
  static std::uint8_t add(std::uint8_t a, std::uint8_t b) noexcept {
    return a ^ b;
  }
  static std::uint8_t sub(std::uint8_t a, std::uint8_t b) noexcept {
    return a ^ b;
  }
  static std::uint8_t mul(std::uint8_t a, std::uint8_t b) noexcept;
  static std::uint8_t div(std::uint8_t a, std::uint8_t b) noexcept;  // b != 0
  static std::uint8_t inv(std::uint8_t a) noexcept;                  // a != 0
  static std::uint8_t exp(int power) noexcept;  // generator^power (mod 255)

  // dst[i] ^= coeff * src[i] for i in [0, n) — the encode/decode kernel.
  static void mul_add_slice(std::uint8_t* dst, const std::uint8_t* src,
                            std::size_t n, std::uint8_t coeff) noexcept;

  // dst[i] = coeff * dst[i].
  static void scale_slice(std::uint8_t* dst, std::size_t n,
                          std::uint8_t coeff) noexcept;
};

}  // namespace unidrive::erasure
