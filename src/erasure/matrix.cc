#include "erasure/matrix.h"

#include "erasure/gf256.h"

namespace unidrive::erasure {

GfMatrix GfMatrix::multiply(const GfMatrix& rhs) const {
  GfMatrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const std::uint8_t a = at(r, k);
      if (a == 0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out.at(r, c) = Gf256::add(out.at(r, c), Gf256::mul(a, rhs.at(k, c)));
      }
    }
  }
  return out;
}

Result<GfMatrix> GfMatrix::inverted() const {
  if (rows_ != cols_) {
    return make_error(ErrorCode::kInvalidArgument, "inverse of non-square");
  }
  const std::size_t n = rows_;
  GfMatrix work = *this;
  GfMatrix inv = identity(n);

  for (std::size_t col = 0; col < n; ++col) {
    // Find pivot.
    std::size_t pivot = col;
    while (pivot < n && work.at(pivot, col) == 0) ++pivot;
    if (pivot == n) {
      return make_error(ErrorCode::kCorrupt, "singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(work.at(pivot, c), work.at(col, c));
        std::swap(inv.at(pivot, c), inv.at(col, c));
      }
    }
    // Normalize pivot row.
    const std::uint8_t scale = Gf256::inv(work.at(col, col));
    for (std::size_t c = 0; c < n; ++c) {
      work.at(col, c) = Gf256::mul(work.at(col, c), scale);
      inv.at(col, c) = Gf256::mul(inv.at(col, c), scale);
    }
    // Eliminate the column everywhere else.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const std::uint8_t factor = work.at(r, col);
      if (factor == 0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        work.at(r, c) =
            Gf256::add(work.at(r, c), Gf256::mul(factor, work.at(col, c)));
        inv.at(r, c) =
            Gf256::add(inv.at(r, c), Gf256::mul(factor, inv.at(col, c)));
      }
    }
  }
  return inv;
}

GfMatrix GfMatrix::identity(std::size_t n) {
  GfMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

GfMatrix GfMatrix::vandermonde(std::size_t n, std::size_t k) {
  GfMatrix m(n, k);
  for (std::size_t r = 0; r < n; ++r) {
    std::uint8_t v = 1;
    const auto x = static_cast<std::uint8_t>(r);
    for (std::size_t c = 0; c < k; ++c) {
      m.at(r, c) = v;
      v = Gf256::mul(v, x);
    }
  }
  return m;
}

GfMatrix GfMatrix::cauchy(std::size_t n, std::size_t k) {
  GfMatrix m(n, k);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < k; ++c) {
      const auto x = static_cast<std::uint8_t>(r);
      const auto y = static_cast<std::uint8_t>(n + c);
      m.at(r, c) = Gf256::inv(Gf256::add(x, y));
    }
  }
  return m;
}

GfMatrix GfMatrix::select_rows(const std::vector<std::size_t>& idx) const {
  GfMatrix out(idx.size(), cols_);
  for (std::size_t r = 0; r < idx.size(); ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out.at(r, c) = at(idx[r], c);
    }
  }
  return out;
}

}  // namespace unidrive::erasure
