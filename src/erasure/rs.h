// Reed-Solomon erasure codec over GF(256).
//
// UniDrive encodes each file segment with a *non-systematic* (n, k) code:
// every stored block is a parity block (a dense linear combination of the k
// data blocks), so no cloud ever holds a verbatim piece of the file and
// fewer than Ks clouds cannot reconstruct any content. A systematic variant
// is provided for baseline comparisons and ablations.
//
// Shard layout: a segment of S bytes is split into k data shards of
// ceil(S/k) bytes (zero-padded); encode() produces n coded shards of the
// same size; decode() recovers the segment from any k distinct shards.
#pragma once

#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "common/bytes.h"
#include "common/executor.h"
#include "common/status.h"
#include "erasure/matrix.h"

namespace unidrive::erasure {

enum class RsVariant : std::uint8_t {
  kNonSystematic,  // all n output shards are parity (UniDrive default)
  kSystematic,     // first k shards are the data itself
};

struct Shard {
  std::uint32_t index = 0;  // row in the encode matrix, unique in [0, n)
  Bytes data;
};

class RsCode {
 public:
  // Requires 1 <= k <= n <= 256 (and n + k <= 256 for the Cauchy-based
  // non-systematic construction, far beyond UniDrive's (10, 3) default).
  RsCode(std::size_t n, std::size_t k,
         RsVariant variant = RsVariant::kNonSystematic);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t k() const noexcept { return k_; }
  [[nodiscard]] RsVariant variant() const noexcept { return variant_; }

  [[nodiscard]] std::size_t shard_size(std::size_t segment_size) const noexcept {
    return (segment_size + k_ - 1) / k_;
  }

  // Encode all n shards of the segment.
  [[nodiscard]] std::vector<Shard> encode(ByteSpan segment) const;

  // Encode only the shards whose indices are listed (on-demand generation of
  // over-provisioned parity blocks).
  [[nodiscard]] std::vector<Shard> encode_shards(
      ByteSpan segment, const std::vector<std::uint32_t>& indices) const;

  // Same result as encode_shards(), but the per-shard row combinations are
  // fanned out over `executor` (the calling thread participates, so this is
  // safe from pool threads and degrades to the serial path on a
  // single-thread executor). The segment is split into data shards exactly
  // once, shared read-only by all rows.
  [[nodiscard]] std::vector<Shard> encode_shards_parallel(
      ByteSpan segment, const std::vector<std::uint32_t>& indices,
      Executor& executor) const;

  // Reconstruct the original segment (original_size bytes) from any k
  // shards with distinct indices. Fails with kCorrupt on bad input.
  [[nodiscard]] Result<Bytes> decode(const std::vector<Shard>& shards,
                                     std::size_t original_size) const;

  // Same result as decode(), but the k recovered data rows are fanned out
  // over `executor` (caller-participating, so this is safe from pool
  // threads and degrades to the serial path on a single-thread executor).
  // The matrix inversion stays serial — it is O(k^3) on k-byte rows, dwarfed
  // by the O(k * shard_size) row combinations this parallelizes.
  [[nodiscard]] Result<Bytes> decode_shards_parallel(
      const std::vector<Shard>& shards, std::size_t original_size,
      Executor& executor) const;

  [[nodiscard]] const GfMatrix& encode_matrix() const noexcept {
    return matrix_;
  }

 private:
  [[nodiscard]] std::vector<AlignedBytes> split_into_data_shards(
      ByteSpan segment) const;

  std::size_t n_;
  std::size_t k_;
  RsVariant variant_;
  GfMatrix matrix_;  // n x k
};

}  // namespace unidrive::erasure
