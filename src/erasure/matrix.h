// Dense matrices over GF(256): construction of Vandermonde/Cauchy encode
// matrices and Gauss-Jordan inversion for decoding.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace unidrive::erasure {

class GfMatrix {
 public:
  GfMatrix() = default;
  GfMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  std::uint8_t& at(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] std::uint8_t at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const std::uint8_t* row(std::size_t r) const noexcept {
    return data_.data() + r * cols_;
  }

  [[nodiscard]] GfMatrix multiply(const GfMatrix& rhs) const;

  // Gauss-Jordan inverse; fails (kCorrupt) when singular. Requires square.
  [[nodiscard]] Result<GfMatrix> inverted() const;

  static GfMatrix identity(std::size_t n);

  // n x k Vandermonde matrix with rows [1, x_i, x_i^2, ...], x_i = i.
  // CAUTION: over GF(2^8) the *first k* rows are invertible (distinct x_i),
  // but arbitrary k-row subsets are NOT guaranteed invertible — which is
  // why the MDS code constructions below use Cauchy matrices instead.
  static GfMatrix vandermonde(std::size_t n, std::size_t k);

  // n x k Cauchy matrix, entries 1/(x_i + y_j) with disjoint x/y sets.
  // Requires n + k <= 256. Every square submatrix is invertible.
  static GfMatrix cauchy(std::size_t n, std::size_t k);

  // Rows selected from this matrix (for decoding with a shard subset).
  [[nodiscard]] GfMatrix select_rows(const std::vector<std::size_t>& idx) const;

  friend bool operator==(const GfMatrix& a, const GfMatrix& b) noexcept {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint8_t> data_;
};

}  // namespace unidrive::erasure
