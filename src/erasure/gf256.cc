#include "erasure/gf256.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/cpu.h"

#if defined(__x86_64__) || defined(__i386__)
#define UNIDRIVE_GF_X86 1
#include <immintrin.h>
#endif

namespace unidrive::erasure {

namespace {

struct Tables {
  // exp table doubled to avoid a modulo in mul.
  std::array<std::uint8_t, 512> exp{};
  std::array<std::uint16_t, 256> log{};  // log[0] unused
  // Full 256x256 product table: fastest portable kernel for slice ops.
  std::array<std::array<std::uint8_t, 256>, 256> mul{};

  Tables() noexcept {
    // Generator 0x03 (0x02 is NOT primitive for polynomial 0x11B).
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
      log[static_cast<std::size_t>(x)] = static_cast<std::uint16_t>(i);
      std::uint16_t doubled = x << 1;
      if (doubled & 0x100) doubled ^= 0x11B;  // reduce mod field polynomial
      x = doubled ^ x;                        // multiply by 0x03
    }
    for (int i = 255; i < 512; ++i) {
      exp[static_cast<std::size_t>(i)] = exp[static_cast<std::size_t>(i - 255)];
    }
    for (int a = 0; a < 256; ++a) {
      for (int b = 0; b < 256; ++b) {
        if (a == 0 || b == 0) {
          mul[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = 0;
        } else {
          mul[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
              exp[static_cast<std::size_t>(
                  log[static_cast<std::size_t>(a)] +
                  log[static_cast<std::size_t>(b)])];
        }
      }
    }
  }
};

const Tables& tables() noexcept {
  static const Tables t;
  return t;
}

// Rows fused per pass by the dot kernels: bounds the per-group lookup-table
// working set (SIMD: 2 * 16 bytes per row). Groups accumulate into dst, so
// any row count works; UniDrive's codes stay well under one group (k <= 10).
constexpr std::size_t kDotGroup = 16;

// ---------------------------------------------------------------------------
// Scalar kernels (also the dispatch fallback). The coefficient's 256-entry
// product row — and for the dot kernel, every row of the group — is hoisted
// OUTSIDE the byte loop; the inner loop only indexes resident L1 tables and
// folds 8 translated bytes per word-wide XOR.
// ---------------------------------------------------------------------------

void mul_add_scalar(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                    std::uint8_t coeff) noexcept {
  if (coeff == 0) return;
  std::size_t i = 0;
  if (coeff == 1) {
    // Pure XOR: combine 8 bytes per load/store pair.
    for (; i + 8 <= n; i += 8) {
      std::uint64_t a;
      std::uint64_t b;
      std::memcpy(&a, dst + i, 8);
      std::memcpy(&b, src + i, 8);
      a ^= b;
      std::memcpy(dst + i, &a, 8);
    }
    for (; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  const std::uint8_t* const row = tables().mul[coeff].data();
  for (; i + 8 <= n; i += 8) {
    std::uint8_t translated[8];
    for (std::size_t j = 0; j < 8; ++j) translated[j] = row[src[i + j]];
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, translated, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < n; ++i) dst[i] ^= row[src[i]];
}

void scale_scalar(std::uint8_t* dst, std::size_t n,
                  std::uint8_t coeff) noexcept {
  if (coeff == 1) return;
  const std::uint8_t* const row = tables().mul[coeff].data();
  for (std::size_t i = 0; i < n; ++i) dst[i] = row[dst[i]];
}

void dot_scalar(std::uint8_t* dst, const std::uint8_t* const* srcs,
                const std::uint8_t* coeffs, std::size_t rows,
                std::size_t n) noexcept {
  bool first = true;
  for (std::size_t base = 0; base < rows; base += kDotGroup) {
    const std::size_t g = std::min(kDotGroup, rows - base);
    // Hoist the group's product rows out of the byte loop once.
    const std::uint8_t* row[kDotGroup];
    const std::uint8_t* src[kDotGroup];
    std::size_t m = 0;
    for (std::size_t j = 0; j < g; ++j) {
      if (coeffs[base + j] == 0) continue;  // zero rows contribute nothing
      row[m] = tables().mul[coeffs[base + j]].data();
      src[m] = srcs[base + j];
      ++m;
    }
    if (m == 0) continue;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      std::uint8_t blk[8];
      if (first) {
        std::memset(blk, 0, 8);
      } else {
        std::memcpy(blk, dst + i, 8);
      }
      for (std::size_t j = 0; j < m; ++j) {
        const std::uint8_t* const r = row[j];
        const std::uint8_t* const s = src[j] + i;
        for (std::size_t b = 0; b < 8; ++b) blk[b] ^= r[s[b]];
      }
      std::memcpy(dst + i, blk, 8);
    }
    for (; i < n; ++i) {
      std::uint8_t v = first ? 0 : dst[i];
      for (std::size_t j = 0; j < m; ++j) v ^= row[j][src[j][i]];
      dst[i] = v;
    }
    first = false;
  }
  if (first) std::memset(dst, 0, n);  // no row had a nonzero coefficient
}

// ---------------------------------------------------------------------------
// x86 shuffle kernels (ISA-L idiom): mul(c, x) decomposes over the two
// nibbles of x — mul(c, x) = L[x & 0xF] ^ H[x >> 4] with L[i] = mul(c, i)
// and H[i] = mul(c, i << 4) — so one pshufb per nibble translates 16 (or 32
// with AVX2) bytes at once. The 2x16-byte tables are built outside the byte
// loop. All loads/stores are unaligned-safe; tails fall back to the row
// tables.
// ---------------------------------------------------------------------------
#if UNIDRIVE_GF_X86

inline void nibble_tables(std::uint8_t coeff, std::uint8_t* lo,
                          std::uint8_t* hi) noexcept {
  const auto& row = tables().mul[coeff];
  for (int i = 0; i < 16; ++i) {
    lo[i] = row[static_cast<std::size_t>(i)];
    hi[i] = row[static_cast<std::size_t>(i << 4)];
  }
}

__attribute__((target("ssse3"))) void mul_add_ssse3(std::uint8_t* dst,
                                                    const std::uint8_t* src,
                                                    std::size_t n,
                                                    std::uint8_t coeff) {
  if (coeff == 0) return;
  alignas(16) std::uint8_t lo8[16];
  alignas(16) std::uint8_t hi8[16];
  nibble_tables(coeff, lo8, hi8);
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(lo8));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(hi8));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i l = _mm_shuffle_epi8(lo, _mm_and_si128(v, mask));
    const __m128i h = _mm_shuffle_epi8(
        hi, _mm_and_si128(_mm_srli_epi64(v, 4), mask));
    d = _mm_xor_si128(d, _mm_xor_si128(l, h));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), d);
  }
  const std::uint8_t* const row = tables().mul[coeff].data();
  for (; i < n; ++i) dst[i] ^= row[src[i]];
}

__attribute__((target("ssse3"))) void scale_ssse3(std::uint8_t* dst,
                                                  std::size_t n,
                                                  std::uint8_t coeff) {
  if (coeff == 1) return;
  alignas(16) std::uint8_t lo8[16];
  alignas(16) std::uint8_t hi8[16];
  nibble_tables(coeff, lo8, hi8);
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(lo8));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(hi8));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i l = _mm_shuffle_epi8(lo, _mm_and_si128(v, mask));
    const __m128i h = _mm_shuffle_epi8(
        hi, _mm_and_si128(_mm_srli_epi64(v, 4), mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(l, h));
  }
  const std::uint8_t* const row = tables().mul[coeff].data();
  for (; i < n; ++i) dst[i] = row[dst[i]];
}

__attribute__((target("ssse3"))) void dot_ssse3(std::uint8_t* dst,
                                                const std::uint8_t* const* srcs,
                                                const std::uint8_t* coeffs,
                                                std::size_t rows,
                                                std::size_t n) {
  const __m128i mask = _mm_set1_epi8(0x0F);
  bool first = true;
  for (std::size_t base = 0; base < rows; base += kDotGroup) {
    const std::size_t g = std::min(kDotGroup, rows - base);
    __m128i lo[kDotGroup];
    __m128i hi[kDotGroup];
    const std::uint8_t* src[kDotGroup];
    const std::uint8_t* row[kDotGroup];
    std::size_t m = 0;
    for (std::size_t j = 0; j < g; ++j) {
      if (coeffs[base + j] == 0) continue;
      alignas(16) std::uint8_t lo8[16];
      alignas(16) std::uint8_t hi8[16];
      nibble_tables(coeffs[base + j], lo8, hi8);
      lo[m] = _mm_load_si128(reinterpret_cast<const __m128i*>(lo8));
      hi[m] = _mm_load_si128(reinterpret_cast<const __m128i*>(hi8));
      src[m] = srcs[base + j];
      row[m] = tables().mul[coeffs[base + j]].data();
      ++m;
    }
    if (m == 0) continue;
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
      __m128i acc =
          first ? _mm_setzero_si128()
                : _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
      for (std::size_t j = 0; j < m; ++j) {
        const __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(src[j] + i));
        const __m128i l = _mm_shuffle_epi8(lo[j], _mm_and_si128(v, mask));
        const __m128i h = _mm_shuffle_epi8(
            hi[j], _mm_and_si128(_mm_srli_epi64(v, 4), mask));
        acc = _mm_xor_si128(acc, _mm_xor_si128(l, h));
      }
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), acc);
    }
    for (; i < n; ++i) {
      std::uint8_t v = first ? 0 : dst[i];
      for (std::size_t j = 0; j < m; ++j) v ^= row[j][src[j][i]];
      dst[i] = v;
    }
    first = false;
  }
  if (first) std::memset(dst, 0, n);
}

__attribute__((target("avx2"))) void mul_add_avx2(std::uint8_t* dst,
                                                  const std::uint8_t* src,
                                                  std::size_t n,
                                                  std::uint8_t coeff) {
  if (coeff == 0) return;
  alignas(16) std::uint8_t lo8[16];
  alignas(16) std::uint8_t hi8[16];
  nibble_tables(coeff, lo8, hi8);
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(lo8)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(hi8)));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    __m256i d0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    d0 = _mm256_xor_si256(
        d0, _mm256_xor_si256(
                _mm256_shuffle_epi8(lo, _mm256_and_si256(v0, mask)),
                _mm256_shuffle_epi8(
                    hi, _mm256_and_si256(_mm256_srli_epi64(v0, 4), mask))));
    d1 = _mm256_xor_si256(
        d1, _mm256_xor_si256(
                _mm256_shuffle_epi8(lo, _mm256_and_si256(v1, mask)),
                _mm256_shuffle_epi8(
                    hi, _mm256_and_si256(_mm256_srli_epi64(v1, 4), mask))));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), d1);
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    d = _mm256_xor_si256(
        d, _mm256_xor_si256(
               _mm256_shuffle_epi8(lo, _mm256_and_si256(v, mask)),
               _mm256_shuffle_epi8(
                   hi, _mm256_and_si256(_mm256_srli_epi64(v, 4), mask))));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d);
  }
  const std::uint8_t* const row = tables().mul[coeff].data();
  for (; i < n; ++i) dst[i] ^= row[src[i]];
}

__attribute__((target("avx2"))) void scale_avx2(std::uint8_t* dst,
                                                std::size_t n,
                                                std::uint8_t coeff) {
  if (coeff == 1) return;
  alignas(16) std::uint8_t lo8[16];
  alignas(16) std::uint8_t hi8[16];
  nibble_tables(coeff, lo8, hi8);
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(lo8)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(hi8)));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_xor_si256(
            _mm256_shuffle_epi8(lo, _mm256_and_si256(v, mask)),
            _mm256_shuffle_epi8(
                hi, _mm256_and_si256(_mm256_srli_epi64(v, 4), mask))));
  }
  const std::uint8_t* const row = tables().mul[coeff].data();
  for (; i < n; ++i) dst[i] = row[dst[i]];
}

__attribute__((target("avx2"))) void dot_avx2(std::uint8_t* dst,
                                              const std::uint8_t* const* srcs,
                                              const std::uint8_t* coeffs,
                                              std::size_t rows,
                                              std::size_t n) {
  const __m256i mask = _mm256_set1_epi8(0x0F);
  bool first = true;
  for (std::size_t base = 0; base < rows; base += kDotGroup) {
    const std::size_t g = std::min(kDotGroup, rows - base);
    __m256i lo[kDotGroup];
    __m256i hi[kDotGroup];
    const std::uint8_t* src[kDotGroup];
    const std::uint8_t* row[kDotGroup];
    std::size_t m = 0;
    for (std::size_t j = 0; j < g; ++j) {
      if (coeffs[base + j] == 0) continue;
      alignas(16) std::uint8_t lo8[16];
      alignas(16) std::uint8_t hi8[16];
      nibble_tables(coeffs[base + j], lo8, hi8);
      lo[m] = _mm256_broadcastsi128_si256(
          _mm_load_si128(reinterpret_cast<const __m128i*>(lo8)));
      hi[m] = _mm256_broadcastsi128_si256(
          _mm_load_si128(reinterpret_cast<const __m128i*>(hi8)));
      src[m] = srcs[base + j];
      row[m] = tables().mul[coeffs[base + j]].data();
      ++m;
    }
    if (m == 0) continue;
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
      __m256i acc = first ? _mm256_setzero_si256()
                          : _mm256_loadu_si256(
                                reinterpret_cast<const __m256i*>(dst + i));
      for (std::size_t j = 0; j < m; ++j) {
        const __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src[j] + i));
        acc = _mm256_xor_si256(
            acc,
            _mm256_xor_si256(
                _mm256_shuffle_epi8(lo[j], _mm256_and_si256(v, mask)),
                _mm256_shuffle_epi8(
                    hi[j],
                    _mm256_and_si256(_mm256_srli_epi64(v, 4), mask))));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), acc);
    }
    for (; i < n; ++i) {
      std::uint8_t v = first ? 0 : dst[i];
      for (std::size_t j = 0; j < m; ++j) v ^= row[j][src[j][i]];
      dst[i] = v;
    }
    first = false;
  }
  if (first) std::memset(dst, 0, n);
}

#endif  // UNIDRIVE_GF_X86

// ---------------------------------------------------------------------------
// Dispatch: resolved once at first use, registered with common/cpu.h.
// ---------------------------------------------------------------------------

struct GfKernels {
  void (*mul_add)(std::uint8_t*, const std::uint8_t*, std::size_t,
                  std::uint8_t);
  void (*scale)(std::uint8_t*, std::size_t, std::uint8_t);
  void (*dot)(std::uint8_t*, const std::uint8_t* const*, const std::uint8_t*,
              std::size_t, std::size_t);
  const char* name;
  int tier;
};

const GfKernels& gf_kernels() noexcept {
  static const GfKernels resolved = [] {
    GfKernels k{&mul_add_scalar, &scale_scalar, &dot_scalar, "scalar", 0};
#if UNIDRIVE_GF_X86
    const CpuFeatures& f = cpu_features();
    if (f.avx2) {
      k = GfKernels{&mul_add_avx2, &scale_avx2, &dot_avx2, "avx2", 2};
    } else if (f.ssse3) {
      k = GfKernels{&mul_add_ssse3, &scale_ssse3, &dot_ssse3, "ssse3", 1};
    }
#endif
    note_kernel("gf_mul_add", k.name, k.tier);
    return k;
  }();
  return resolved;
}

}  // namespace

std::uint8_t Gf256::mul(std::uint8_t a, std::uint8_t b) noexcept {
  return tables().mul[a][b];
}

std::uint8_t Gf256::div(std::uint8_t a, std::uint8_t b) noexcept {
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp[static_cast<std::size_t>(t.log[a] + 255 - t.log[b])];
}

std::uint8_t Gf256::inv(std::uint8_t a) noexcept {
  const auto& t = tables();
  return t.exp[static_cast<std::size_t>(255 - t.log[a])];
}

std::uint8_t Gf256::exp(int power) noexcept {
  power %= 255;
  if (power < 0) power += 255;
  return tables().exp[static_cast<std::size_t>(power)];
}

void Gf256::mul_add_slice(std::uint8_t* dst, const std::uint8_t* src,
                          std::size_t n, std::uint8_t coeff) noexcept {
  gf_kernels().mul_add(dst, src, n, coeff);
}

void Gf256::scale_slice(std::uint8_t* dst, std::size_t n,
                        std::uint8_t coeff) noexcept {
  gf_kernels().scale(dst, n, coeff);
}

void Gf256::dot_slice(std::uint8_t* dst, const std::uint8_t* const* srcs,
                      const std::uint8_t* coeffs, std::size_t rows,
                      std::size_t n) noexcept {
  gf_kernels().dot(dst, srcs, coeffs, rows, n);
}

void Gf256::mul_add_slice_scalar(std::uint8_t* dst, const std::uint8_t* src,
                                 std::size_t n, std::uint8_t coeff) noexcept {
  mul_add_scalar(dst, src, n, coeff);
}

void Gf256::scale_slice_scalar(std::uint8_t* dst, std::size_t n,
                               std::uint8_t coeff) noexcept {
  scale_scalar(dst, n, coeff);
}

void Gf256::dot_slice_scalar(std::uint8_t* dst,
                             const std::uint8_t* const* srcs,
                             const std::uint8_t* coeffs, std::size_t rows,
                             std::size_t n) noexcept {
  dot_scalar(dst, srcs, coeffs, rows, n);
}

const char* Gf256::kernel_name() noexcept { return gf_kernels().name; }

int Gf256::kernel_tier() noexcept { return gf_kernels().tier; }

}  // namespace unidrive::erasure
