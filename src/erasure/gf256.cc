#include "erasure/gf256.h"

#include <array>
#include <cstring>

namespace unidrive::erasure {

namespace {

struct Tables {
  // exp table doubled to avoid a modulo in mul.
  std::array<std::uint8_t, 512> exp{};
  std::array<std::uint16_t, 256> log{};  // log[0] unused
  // Full 256x256 product table: fastest portable kernel for slice ops.
  std::array<std::array<std::uint8_t, 256>, 256> mul{};

  Tables() noexcept {
    // Generator 0x03 (0x02 is NOT primitive for polynomial 0x11B).
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
      log[static_cast<std::size_t>(x)] = static_cast<std::uint16_t>(i);
      std::uint16_t doubled = x << 1;
      if (doubled & 0x100) doubled ^= 0x11B;  // reduce mod field polynomial
      x = doubled ^ x;                        // multiply by 0x03
    }
    for (int i = 255; i < 512; ++i) {
      exp[static_cast<std::size_t>(i)] = exp[static_cast<std::size_t>(i - 255)];
    }
    for (int a = 0; a < 256; ++a) {
      for (int b = 0; b < 256; ++b) {
        if (a == 0 || b == 0) {
          mul[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = 0;
        } else {
          mul[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
              exp[static_cast<std::size_t>(
                  log[static_cast<std::size_t>(a)] +
                  log[static_cast<std::size_t>(b)])];
        }
      }
    }
  }
};

const Tables& tables() noexcept {
  static const Tables t;
  return t;
}

}  // namespace

std::uint8_t Gf256::mul(std::uint8_t a, std::uint8_t b) noexcept {
  return tables().mul[a][b];
}

std::uint8_t Gf256::div(std::uint8_t a, std::uint8_t b) noexcept {
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp[static_cast<std::size_t>(t.log[a] + 255 - t.log[b])];
}

std::uint8_t Gf256::inv(std::uint8_t a) noexcept {
  const auto& t = tables();
  return t.exp[static_cast<std::size_t>(255 - t.log[a])];
}

std::uint8_t Gf256::exp(int power) noexcept {
  power %= 255;
  if (power < 0) power += 255;
  return tables().exp[static_cast<std::size_t>(power)];
}

void Gf256::mul_add_slice(std::uint8_t* dst, const std::uint8_t* src,
                          std::size_t n, std::uint8_t coeff) noexcept {
  if (coeff == 0) return;
  std::size_t i = 0;
  if (coeff == 1) {
    // Pure XOR: combine 8 bytes per load/store pair.
    for (; i + 8 <= n; i += 8) {
      std::uint64_t a;
      std::uint64_t b;
      std::memcpy(&a, dst + i, 8);
      std::memcpy(&b, src + i, 8);
      a ^= b;
      std::memcpy(dst + i, &a, 8);
    }
    for (; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  // One 256-entry product row per coefficient (a 256-byte table, resident
  // in L1 for the whole slice), applied in 8-byte blocks: the 8 translated
  // bytes are composed in a local buffer and folded into dst with a single
  // word-wide load/XOR/store instead of 8 read-modify-writes.
  const auto& row = tables().mul[coeff];
  for (; i + 8 <= n; i += 8) {
    std::uint8_t translated[8];
    for (std::size_t j = 0; j < 8; ++j) translated[j] = row[src[i + j]];
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, translated, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < n; ++i) dst[i] ^= row[src[i]];
}

void Gf256::scale_slice(std::uint8_t* dst, std::size_t n,
                        std::uint8_t coeff) noexcept {
  if (coeff == 1) return;
  const auto& row = tables().mul[coeff];
  for (std::size_t i = 0; i < n; ++i) dst[i] = row[dst[i]];
}

}  // namespace unidrive::erasure
