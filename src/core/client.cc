#include "core/client.h"

#include <algorithm>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>

#include "common/logging.h"
#include "crypto/sha1.h"
#include "metadata/delta.h"
#include "sched/rebalance.h"

namespace unidrive::core {

using metadata::Change;
using metadata::FileSnapshot;
using metadata::SegmentInfo;
using metadata::SyncFolderImage;
using metadata::VersionStamp;

namespace {

// The RS codec length is pinned (not derived from the current N) so a block
// index means the same codeword row forever: blocks encoded before an
// add/remove-cloud rebalance stay decodable alongside blocks encoded after.
// The scheduler still bounds *placement* by CodeParams::code_n().
constexpr std::size_t kCodecLength = 64;

erasure::RsCode codec_for(const sched::CodeParams& params) {
  return erasure::RsCode(kCodecLength, params.k);
}

// Shared pool width: explicit config wins, otherwise default_threads()
// (env override, else max(transfer concurrency, hardware)).
std::shared_ptr<Executor> make_executor(const ClientConfig& config,
                                        std::size_t num_clouds) {
  const std::size_t floor =
      std::max<std::size_t>(1, num_clouds * config.driver.connections_per_cloud);
  const std::size_t threads = config.pipeline.threads > 0
                                  ? config.pipeline.threads
                                  : Executor::default_threads(floor);
  return std::make_shared<Executor>(threads);
}

}  // namespace

UniDriveClient::UniDriveClient(cloud::MultiCloud clouds,
                               std::shared_ptr<LocalFs> fs,
                               ClientConfig config, Clock& clock, Rng rng)
    : clouds_(std::move(clouds)),
      fs_(std::move(fs)),
      config_(std::move(config)),
      clock_(clock),
      rng_(rng),
      obs_(std::make_shared<obs::Observability>(clock_)),
      durability_(std::make_shared<repair::DurabilityTracker>(obs_)),
      health_(std::make_shared<cloud::CloudHealthRegistry>(config_.breaker,
                                                           clock_, obs_)),
      guarded_(cloud::guard_clouds(clouds_, config_.retry, health_, clock_,
                                   config_.sleep, rng_, obs_)),
      executor_(make_executor(config_, clouds_.size())),
      store_(guarded_, config_.passphrase, obs_),
      lock_(guarded_, config_.device, config_.lock, clock_, rng_.fork(),
            config_.sleep, obs_),
      monitor_() {
  rebuild_async_clouds();
  load_state();
}

void UniDriveClient::rebuild_guards() {
  guarded_ = cloud::guard_clouds(clouds_, config_.retry, health_, clock_,
                                 config_.sleep, rng_, obs_);
  executor_ = make_executor(config_, clouds_.size());
  store_ = metadata::MetaStore(guarded_, config_.passphrase, obs_);
  lock_ = lock::QuorumLock(guarded_, config_.device, config_.lock, clock_,
                           rng_.fork(), config_.sleep, obs_);
  rebuild_async_clouds();
}

void UniDriveClient::rebuild_async_clouds() {
  async_clouds_.clear();
  io_executor_ = config_.pipeline.io_threads > 0
                     ? std::make_shared<Executor>(config_.pipeline.io_threads)
                     : executor_;
  cloud::AsyncContext ctx;
  ctx.io = io_executor_.get();
  ctx.clock = &clock_;
  ctx.sleep = config_.sleep;
  ctx.obs = obs_;
  async_clouds_.reserve(guarded_.size());
  for (const cloud::CloudPtr& c : guarded_) {
    async_clouds_.push_back(cloud::to_async(c, ctx));
  }
}

void UniDriveClient::load_state() {
  if (config_.state_file.empty()) return;
  std::ifstream in(config_.state_file, std::ios::binary);
  if (!in) return;  // first run
  const Bytes data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  auto image = SyncFolderImage::deserialize(ByteSpan(data));
  if (image.is_ok()) {
    image_ = std::move(image).take();
  } else {
    UNI_LOG(kWarn) << "discarding corrupt client state file "
                   << config_.state_file;
  }
}

void UniDriveClient::persist_state() const {
  if (config_.state_file.empty()) return;
  const Bytes data = image_.serialize();
  // Write-then-rename so a crash never leaves a torn state file.
  const std::string tmp = config_.state_file + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      UNI_LOG(kWarn) << "cannot persist client state to " << tmp;
      return;
    }
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
  }
  std::error_code ec;
  std::filesystem::rename(tmp, config_.state_file, ec);
  if (ec) {
    UNI_LOG(kWarn) << "state rename failed: " << ec.message();
  }
}

sched::CodeParams UniDriveClient::code_params() const {
  sched::CodeParams p;
  p.num_clouds = clouds_.size();
  p.k = config_.k;
  p.ks = config_.ks;
  p.kr = config_.kr;
  return p;
}

std::vector<cloud::CloudId> UniDriveClient::cloud_ids() const {
  std::vector<cloud::CloudId> ids;
  ids.reserve(clouds_.size());
  for (const cloud::CloudPtr& c : clouds_) ids.push_back(c->id());
  return ids;
}

cloud::CloudProvider* UniDriveClient::find_cloud(cloud::CloudId id) const {
  for (const cloud::CloudPtr& c : guarded_) {
    if (c->id() == id) return c.get();
  }
  return nullptr;
}

cloud::AsyncCloud* UniDriveClient::find_async_cloud(cloud::CloudId id) const {
  for (const cloud::AsyncCloudPtr& c : async_clouds_) {
    if (c->id() == id) return c.get();
  }
  return nullptr;
}

bool UniDriveClient::cloud_update_pending() {
  return store_.has_cloud_update(image_.version());
}

// --- data plane -------------------------------------------------------------

std::unique_ptr<UploadPipeline> UniDriveClient::make_pipeline(
    const sched::CodeParams& params) {
  return std::make_unique<UploadPipeline>(
      params, codec_for(params), cloud_ids(), config_.driver, monitor_,
      executor_, [this](cloud::CloudId id) { return find_cloud(id); },
      config_.pipeline, health_, obs_,
      [this](cloud::CloudId id) { return find_async_cloud(id); });
}

std::unique_ptr<DownloadPipeline> UniDriveClient::make_download_pipeline(
    const sched::CodeParams& params) {
  return std::make_unique<DownloadPipeline>(
      params.k, codec_for(params), cloud_ids(), config_.driver, monitor_,
      executor_, [this](cloud::CloudId id) { return find_cloud(id); },
      config_.pipeline, *fs_, health_, obs_,
      [this](cloud::CloudId id) { return find_async_cloud(id); });
}

// Fetches, decodes and integrity-checks one segment. On an integrity
// failure (a cloud served tampered or rotted bytes) the corrupt shard
// cannot be identified directly, so the client fetches additional distinct
// blocks one at a time and searches the k-subsets of everything fetched
// until one decodes to the segment's content hash. One long-lived
// streaming driver serves the whole reconstruction: extra blocks raise the
// budget of the same scheduler instead of standing up a fresh driver per
// attempt.
Result<Bytes> UniDriveClient::fetch_segment(
    const SegmentInfo& segment,
    const std::vector<metadata::BlockLocation>& exclude) {
  const sched::CodeParams params = code_params();
  const erasure::RsCode code = codec_for(params);

  sched::DownloadSegmentSpec seg_spec;
  seg_spec.id = segment.id;
  seg_spec.size = segment.size;
  for (const metadata::BlockLocation& loc : segment.blocks) {
    if (std::find(exclude.begin(), exclude.end(), loc) == exclude.end()) {
      seg_spec.locations.push_back(loc);
    }
  }
  if (seg_spec.locations.empty()) {
    return make_error(ErrorCode::kUnavailable,
                      "could not fetch k blocks for segment " + segment.id);
  }

  std::mutex mu;
  std::condition_variable cv;
  std::vector<erasure::Shard> shards;       // all fetched so far
  std::set<std::uint32_t> fetched_indices;  // distinct block indices held
  std::size_t events = 0;
  bool last_ok = false;

  sched::StreamingDownloadDriver driver(
      params.k, cloud_ids(), config_.driver, monitor_, executor_,
      [&](const sched::BlockTask& task) -> Status {
        cloud::CloudProvider* provider = find_cloud(task.cloud);
        if (provider == nullptr) {
          return make_error(ErrorCode::kInternal, "unknown cloud");
        }
        auto data = provider->download(
            metadata::block_path(task.segment_id, task.block_index));
        if (!data.is_ok()) return data.status();
        std::lock_guard<std::mutex> guard(mu);
        // A hedge duplicate may land second; keep the first copy.
        if (fetched_indices.insert(task.block_index).second) {
          shards.push_back({task.block_index, std::move(data).take()});
        }
        return Status::ok();
      },
      health_, obs_,
      [&](const std::string&, bool ok) {
        std::lock_guard<std::mutex> guard(mu);
        ++events;
        last_ok = ok;
        cv.notify_all();
      });

  sched::DownloadFileSpec spec;
  spec.path = segment.id;
  spec.segments.push_back(std::move(seg_spec));
  driver.add_file(std::move(spec));
  driver.close();

  std::size_t consumed = 0;
  while (true) {
    bool ok = false;
    std::vector<erasure::Shard> held;
    {
      std::unique_lock<std::mutex> guard(mu);
      cv.wait(guard, [&] { return events > consumed; });
      ++consumed;
      ok = last_ok;
      held = shards;
    }
    if (!ok) {
      // First event failing means even k blocks never landed; a later one
      // means the corrupt-shard search ran out of supply.
      return consumed == 1
                 ? make_error(ErrorCode::kUnavailable,
                              "could not fetch k blocks for segment " +
                                  segment.id)
                 : make_error(ErrorCode::kCorrupt,
                              "segment " + segment.id +
                                  ": no verifiable block combination exists");
    }
    auto decoded =
        decode_verified(code, held, segment, params.k, executor_.get());
    if (decoded.is_ok()) return decoded;
    UNI_LOG(kWarn) << "segment " << segment.id
                   << " failed integrity check with " << held.size()
                   << " blocks; fetching another";
    driver.request_extra_block(segment.id);
  }
}

Status UniDriveClient::materialize_file(const FileSnapshot& snapshot,
                                        const SyncFolderImage& image) {
  const sched::CodeParams params = code_params();
  if (config_.pipeline.enabled && params.validate().is_ok()) {
    auto pipeline = make_download_pipeline(params);
    pipeline->add_file(snapshot, image);
    const auto results = pipeline->finish();
    return results.empty() ? Status::ok() : results.front().status;
  }

  // Monolithic fallback: fetch + decode one segment at a time, streaming
  // each into the writer — peak memory is one segment, not the file, and
  // a failed restore aborts the writer instead of leaving a partial file.
  UNI_ASSIGN_OR_RETURN(std::unique_ptr<LocalFs::FileWriter> writer,
                       fs_->open_write(snapshot.path));
  crypto::Sha1 hasher;
  std::uint64_t written = 0;
  for (const std::string& seg_id : snapshot.segment_ids) {
    const SegmentInfo* seg = image.find_segment(seg_id);
    if (seg == nullptr) {
      writer->abort();
      return make_error(ErrorCode::kCorrupt,
                        "snapshot references unknown segment " + seg_id);
    }
    auto piece = fetch_segment(*seg, {});
    if (!piece.is_ok()) {
      writer->abort();
      return piece.status();
    }
    const Status appended = writer->append(ByteSpan(piece.value()));
    if (!appended.is_ok()) {
      writer->abort();
      return appended;
    }
    hasher.update(ByteSpan(piece.value()));
    written += piece.value().size();
  }
  if (written != snapshot.size) {
    writer->abort();
    return make_error(ErrorCode::kCorrupt,
                      "assembled size mismatch for " + snapshot.path);
  }
  if (!snapshot.content_hash.empty()) {
    const crypto::Sha1::Digest digest = hasher.finish();
    if (to_hex(ByteSpan(digest.data(), digest.size())) !=
        snapshot.content_hash) {
      writer->abort();
      return make_error(ErrorCode::kCorrupt,
                        "content hash mismatch for " + snapshot.path);
    }
  }
  return writer->commit();
}

Result<UniDriveClient::ApplyOutcome> UniDriveClient::apply_cloud_image(
    const SyncFolderImage& target) {
  const metadata::ImageDiff diff = metadata::diff_images(image_, target);
  ApplyOutcome outcome;

  // Directory failures must not be swallowed: a file materialized into a
  // missing directory fails too, and the caller needs to know the folder
  // does not fully reflect the committed image.
  for (const std::string& d : diff.added_dirs) {
    const Status s = fs_->make_dir(d);
    if (!s.is_ok()) {
      outcome.dir_failures.push_back(d);
      UNI_LOG(kWarn) << "make_dir " << d << " failed: " << s.to_string();
    }
  }

  // First pass: deletions inline, downloads collected so the whole batch
  // streams through ONE restore pipeline (connection pools and hedging
  // span file boundaries; the prefetch window bounds memory).
  std::vector<const FileSnapshot*> to_download;
  for (const auto& [path, change] : diff.files) {
    switch (change.kind) {
      case metadata::EntryChangeKind::kAdded:
      case metadata::EntryChangeKind::kModified: {
        // Skip if the local file already matches (e.g. we produced it).
        auto local = fs_->read(path);
        if (local.is_ok() &&
            crypto::Sha1::hex(ByteSpan(local.value())) ==
                change.snapshot->content_hash) {
          break;
        }
        to_download.push_back(&*change.snapshot);
        break;
      }
      case metadata::EntryChangeKind::kDeleted:
        if (fs_->remove(path).is_ok()) ++outcome.removed;
        break;
    }
  }

  if (!to_download.empty()) {
    const sched::CodeParams params = code_params();
    if (config_.pipeline.enabled && params.validate().is_ok()) {
      auto pipeline = make_download_pipeline(params);
      for (const FileSnapshot* snapshot : to_download) {
        pipeline->add_file(*snapshot, target);
      }
      for (const DownloadPipeline::FileResult& r : pipeline->finish()) {
        UNI_RETURN_IF_ERROR(r.status);
        ++outcome.downloaded;
      }
    } else {
      for (const FileSnapshot* snapshot : to_download) {
        UNI_RETURN_IF_ERROR(materialize_file(*snapshot, target));
        ++outcome.downloaded;
      }
    }
  }

  for (const std::string& d : diff.removed_dirs) {
    const Status s = fs_->remove_dir(d);
    // Already gone is the desired end state, not a failure.
    if (!s.is_ok() && s.code() != ErrorCode::kNotFound) {
      outcome.dir_failures.push_back(d);
      UNI_LOG(kWarn) << "remove_dir " << d << " failed: " << s.to_string();
    }
  }

  image_ = target;
  return outcome;
}

// --- control plane ----------------------------------------------------------

Status UniDriveClient::commit_locked(SyncFolderImage next,
                                     const std::vector<Change>& changes) {
  // Read the authoritative cloud-side base + delta pair (we hold the lock,
  // so nobody else is writing) and APPEND our commit to the shared delta —
  // overwriting it with a locally kept log would drop other devices'
  // records that are not yet folded into the base.
  SyncFolderImage base;
  metadata::DeltaLog delta;
  std::size_t base_size = 0;
  auto raw = store_.fetch_raw();
  if (raw.is_ok()) {
    base = std::move(raw.value().base);
    delta = std::move(raw.value().delta);
    base_size = base.serialize().size();
  }

  VersionStamp version;
  version.device = config_.device;
  version.counter =
      std::max({next.version().counter, image_.version().counter,
                delta.latest_version().value_or(base.version()).counter}) +
      1;
  version.timestamp = clock_.now();
  next.set_version(version);

  metadata::CommitRecord record;
  record.version = version;
  record.changes = changes;
  delta.append(std::move(record));

  const std::size_t delta_size = delta.serialize().size();
  const bool fold =
      config_.delta_policy.should_merge(base_size, delta_size) ||
      base_size == 0;
  Status status;
  if (fold) {
    // Fold: the new base IS `next`; the delta restarts empty.
    metadata::DeltaLog empty;
    status = store_.publish(next, empty, /*upload_base=*/true);
  } else {
    status = store_.publish(base, delta, /*upload_base=*/false);
  }
  if (!status.is_ok()) return status;
  image_ = std::move(next);
  return Status::ok();
}

Result<SyncReport> UniDriveClient::sync() {
  SyncReport report;
  obs::add_counter(obs_.get(), "sync.rounds");
  obs::Span round_span = obs::start_span(obs_.get(), "sync.round");

  const chunker::SegmenterParams seg_params{config_.theta};
  const sched::CodeParams params = code_params();
  const bool params_ok = params.validate().is_ok();

  // Staged mode: stand the pipeline up BEFORE the scan so CDC output
  // streams straight into encode/transfer while the scanner is still
  // walking files. Invalid CodeParams fall through to the batch branch,
  // which surfaces the validation error only if there is data to upload.
  std::unique_ptr<UploadPipeline> pipeline;
  if (params_ok && config_.pipeline.enabled) pipeline = make_pipeline(params);

  ScanResult scan;
  {
    obs::Span scan_span = round_span.child("sync.scan");
    if (pipeline != nullptr) {
      scan = scan_local_changes(*fs_, image_, seg_params, config_.device,
                                &scan_cache_,
                                [&](const std::string& id, Bytes bytes) {
                                  pipeline->feed(id, std::move(bytes));
                                });
    } else {
      scan = scan_local_changes(*fs_, image_, seg_params, config_.device,
                                &scan_cache_);
    }
  }

  if (!scan.changes.empty()) {
    // --- local update path (Algorithm 1, lines 2-14) ---
    // Data plane first: blocks must hit the clouds before metadata does.
    std::vector<SegmentInfo> uploaded;
    {
      obs::Span upload_span = round_span.child("sync.upload_segments");
      if (pipeline != nullptr) {
        UNI_ASSIGN_OR_RETURN(uploaded, pipeline->finish());
      } else if (!scan.new_segments.empty()) {
        UNI_RETURN_IF_ERROR(params.validate());
        // Monolithic fallback: one batch round through the same object.
        auto batch = make_pipeline(params);
        for (auto& [id, bytes] : scan.new_segments) {
          batch->feed(id, std::move(bytes));
        }
        UNI_ASSIGN_OR_RETURN(uploaded, batch->finish());
      }
    }
    report.segments_uploaded = uploaded.size();

    // Build v_l = v_o + epsilon (+ fresh segment records).
    SyncFolderImage local = image_;
    std::vector<Change> committed_changes;
    for (const SegmentInfo& seg : uploaded) {
      Change c = Change::upsert_segment(seg);
      apply_change(local, c);
      committed_changes.push_back(std::move(c));
    }
    for (const Change& c : scan.changes.aggregated()) {
      apply_change(local, c);
      committed_changes.push_back(c);
      if (c.kind == metadata::ChangeKind::kUpsertFile) ++report.files_uploaded;
    }

    UNI_RETURN_IF_ERROR(lock_.acquire());
    Status commit_status;
    if (store_.has_cloud_update(image_.version())) {
      auto fetched = store_.fetch_latest();
      if (!fetched.is_ok()) {
        lock_.release();
        return fetched.status();
      }
      obs::Span merge_span = round_span.child("sync.merge");
      metadata::MergeResult merged = metadata::merge_images(
          image_, local, fetched.value().image, config_.device);
      merge_span.end();
      report.conflicts = merged.conflicts;
      obs::add_counter(obs_.get(), "sync.conflicts",
                       merged.conflicts.size());
      // The merge may have rewritten paths (conflict copies): recompute the
      // change list as the diff base->merged for the delta log.
      std::vector<Change> merged_changes;
      for (const auto& [id, seg] : merged.merged.segments()) {
        if (fetched.value().image.find_segment(id) == nullptr) {
          merged_changes.push_back(Change::upsert_segment(seg));
        }
      }
      const metadata::ImageDiff d =
          metadata::diff_images(fetched.value().image, merged.merged);
      for (const auto& [path, ec] : d.files) {
        if (ec.kind == metadata::EntryChangeKind::kDeleted) {
          merged_changes.push_back(Change::delete_file(path));
        } else {
          merged_changes.push_back(Change::upsert_file(*ec.snapshot));
        }
      }
      for (const std::string& dir : d.added_dirs) {
        merged_changes.push_back(Change::add_dir(dir));
      }
      for (const std::string& dir : d.removed_dirs) {
        merged_changes.push_back(Change::delete_dir(dir));
      }
      obs::Span commit_span = round_span.child("sync.commit");
      commit_status = commit_locked(merged.merged, merged_changes);
    } else {
      obs::Span commit_span = round_span.child("sync.commit");
      commit_status = commit_locked(local, committed_changes);
    }
    lock_.release();
    UNI_RETURN_IF_ERROR(commit_status);
    report.committed = true;

    // Bring the local folder up to the committed state (conflict copies,
    // concurrently added files from other devices). The local folder
    // currently reflects v_l, so diff from there — commit_locked already
    // moved image_ to the merged state.
    const SyncFolderImage committed = image_;
    image_ = local;
    obs::Span apply_span = round_span.child("sync.apply_cloud");
    auto applied = apply_cloud_image(committed);
    apply_span.end();
    if (!applied.is_ok()) {
      image_ = committed;  // folder lags, but metadata is authoritative
      report.materialize = applied.status();
    } else {
      const ApplyOutcome& outcome = applied.value();
      report.files_downloaded += outcome.downloaded;
      report.files_removed += outcome.removed;
      report.applied_cloud = outcome.downloaded + outcome.removed > 0;
      report.dir_failures = outcome.dir_failures;
      if (!outcome.dir_failures.empty()) {
        report.materialize = Status(
            ErrorCode::kUnavailable,
            "folder materialization incomplete: " +
                std::to_string(outcome.dir_failures.size()) +
                " directory operation(s) failed");
      }
    }
  } else if (store_.has_cloud_update(image_.version())) {
    // --- cloud update path (Algorithm 1, lines 15-18) ---
    UNI_ASSIGN_OR_RETURN(const metadata::FetchedMetadata fetched,
                         store_.fetch_latest());
    obs::Span apply_span = round_span.child("sync.apply_cloud");
    UNI_ASSIGN_OR_RETURN(const ApplyOutcome outcome,
                         apply_cloud_image(fetched.image));
    apply_span.end();
    report.files_downloaded = outcome.downloaded;
    report.files_removed = outcome.removed;
    report.applied_cloud = true;
    report.dir_failures = outcome.dir_failures;
    if (!outcome.dir_failures.empty()) {
      report.materialize = Status(
          ErrorCode::kUnavailable,
          "folder materialization incomplete: " +
              std::to_string(outcome.dir_failures.size()) +
              " directory operation(s) failed");
    }
  }

  report.version = image_.version();
  report.cloud_health = health_->snapshot_all();
  report.durability = durability_->summarize(
      image_, config_.k, config_.redundancy_floor,
      [this](cloud::CloudId id) { return health_->admissible(id); });
  repair::publish_durability_gauges(report.durability, obs_.get());
  // Degraded = reduced reachability OR eroded durability: an open breaker,
  // or any segment whose surviving redundancy fell below the floor.
  report.degraded =
      !health_->all_closed() || report.durability.under_replicated > 0;
  persist_state();
  round_span.end();
  report.metrics = obs_->metrics.snapshot();
  return report;
}

// --- maintenance -------------------------------------------------------------

Status UniDriveClient::cleanup_overprovisioned() {
  const sched::CodeParams params = code_params();
  UNI_RETURN_IF_ERROR(lock_.acquire());
  auto fetched = store_.fetch_latest();
  if (!fetched.is_ok()) {
    lock_.release();
    return fetched.status();
  }
  SyncFolderImage next = std::move(fetched).take().image;

  std::vector<Change> changes;
  for (const auto& [id, seg] : next.segments()) {
    std::map<cloud::CloudId, std::size_t> per_cloud;
    SegmentInfo trimmed = seg;
    std::vector<metadata::BlockLocation> keep;
    for (const metadata::BlockLocation& b : seg.blocks) {
      if (per_cloud[b.cloud] < params.fair_share()) {
        keep.push_back(b);
        ++per_cloud[b.cloud];
      } else {
        // Surplus: delete the block from the cloud (best effort).
        cloud::CloudProvider* provider = find_cloud(b.cloud);
        if (provider != nullptr) {
          (void)provider->remove(metadata::block_path(id, b.block_index));
        }
      }
    }
    if (keep.size() != seg.blocks.size()) {
      trimmed.blocks = std::move(keep);
      changes.push_back(Change::upsert_segment(trimmed));
    }
  }

  Status status = Status::ok();
  if (!changes.empty()) {
    for (const Change& c : changes) apply_change(next, c);
    status = commit_locked(std::move(next), changes);
  }
  lock_.release();
  return status;
}

Result<std::size_t> UniDriveClient::collect_garbage() {
  UNI_RETURN_IF_ERROR(lock_.acquire());
  auto fetched = store_.fetch_latest();
  if (!fetched.is_ok()) {
    lock_.release();
    return fetched.status();
  }
  SyncFolderImage next = std::move(fetched).take().image;

  std::vector<Change> changes;
  for (const std::string& seg_id : next.garbage_segments()) {
    const SegmentInfo* seg = next.find_segment(seg_id);
    if (seg == nullptr) continue;
    // Blocks first, metadata second: a crash in between leaves a harmless
    // pool entry pointing at deleted blocks (retried next GC), never a
    // referenced segment without blocks.
    for (const metadata::BlockLocation& b : seg->blocks) {
      cloud::CloudProvider* provider = find_cloud(b.cloud);
      if (provider != nullptr) {
        (void)provider->remove(metadata::block_path(seg_id, b.block_index));
      }
    }
    changes.push_back(Change::drop_segment(seg_id));
  }

  Status status = Status::ok();
  if (!changes.empty()) {
    for (const Change& c : changes) apply_change(next, c);
    status = commit_locked(std::move(next), changes);
  }
  lock_.release();
  if (!status.is_ok()) return status;
  return changes.size();
}

Status UniDriveClient::resolve_conflict(const metadata::ConflictRecord& record,
                                        ConflictChoice choice) {
  if (record.conflict_copy.empty()) {
    // Nothing was copied (e.g. delete-vs-edit); the cloud version already
    // stands — only kKeepTheirs is meaningful and it is a no-op.
    return choice == ConflictChoice::kKeepTheirs
               ? Status::ok()
               : make_error(ErrorCode::kInvalidArgument,
                            "conflict has no local copy to promote");
  }
  if (choice == ConflictChoice::kKeepMine) {
    UNI_ASSIGN_OR_RETURN(const Bytes mine, fs_->read(record.conflict_copy));
    UNI_RETURN_IF_ERROR(fs_->write(record.path, ByteSpan(mine)));
  }
  UNI_RETURN_IF_ERROR(fs_->remove(record.conflict_copy));
  return Status::ok();
}

Status UniDriveClient::restore_previous_version(const std::string& path) {
  const std::vector<FileSnapshot> history = image_.history(path);
  if (history.empty()) {
    return make_error(ErrorCode::kNotFound,
                      "no superseded snapshot for " + path);
  }
  // Materialize the old content locally; the next sync() scans it as a
  // fresh local edit and commits it through the normal pipeline (so other
  // devices receive it like any other change). Segments are still in the
  // pool — history snapshots keep them referenced.
  UNI_RETURN_IF_ERROR(materialize_file(history.front(), image_));
  return Status::ok();
}

// Hash-verified slice of a segment out of a local file (the client keeps a
// full copy of everything). kNotFound when no referencing file holds a
// clean copy.
Result<Bytes> UniDriveClient::local_segment_slice(
    const SyncFolderImage& image, const std::string& segment_id) {
  for (const auto& [path, snapshot] : image.files()) {
    std::size_t offset = 0;
    for (const std::string& sid : snapshot.segment_ids) {
      const metadata::SegmentInfo* seg = image.find_segment(sid);
      const std::size_t len = seg ? seg->size : 0;
      if (sid == segment_id) {
        auto content = fs_->read(path);
        if (content.is_ok() && offset + len <= content.value().size()) {
          const ByteSpan view(content.value());
          const Bytes piece(view.begin() + offset,
                            view.begin() + offset + len);
          // Trust but verify: the local file may have been edited since.
          if (crypto::Sha1::hex(ByteSpan(piece)) == segment_id) return piece;
        }
        break;  // local copy unusable; try the next referencing file
      }
      offset += len;
    }
  }
  return make_error(ErrorCode::kNotFound,
                    "no verified local copy of segment " + segment_id);
}

// Plaintext bytes of a segment, for re-encoding blocks during rebalances.
// Fast path: the local slice. Fallback: fetch + decode k blocks from the
// multi-cloud — membership changes must work even when the local copy is
// missing (e.g. a freshly joined device administering the multi-cloud).
Result<Bytes> UniDriveClient::segment_content(
    const SyncFolderImage& image, const std::string& segment_id) {
  auto local = local_segment_slice(image, segment_id);
  if (local.is_ok()) return local;
  // Repair path: reconstruct from the clouds. fetch_segment resolves
  // block placements from the record itself — no image adoption needed.
  const metadata::SegmentInfo* seg = image.find_segment(segment_id);
  if (seg == nullptr) {
    return make_error(ErrorCode::kNotFound, "unknown segment " + segment_id);
  }
  return fetch_segment(*seg, {});
}

erasure::RsCode UniDriveClient::codec() const {
  return codec_for(code_params());
}

Result<Bytes> UniDriveClient::reconstruct_segment(
    const std::string& segment_id,
    const std::vector<metadata::BlockLocation>& exclude) {
  auto local = local_segment_slice(image_, segment_id);
  if (local.is_ok()) return local;
  const metadata::SegmentInfo* seg = image_.find_segment(segment_id);
  if (seg == nullptr) {
    return make_error(ErrorCode::kNotFound, "unknown segment " + segment_id);
  }
  // No clean local copy: decode from the clouds WITHOUT the defective
  // placements — a corrupt block must never poison its own repair.
  return fetch_segment(*seg, exclude);
}

Status UniDriveClient::commit_repaired_placements(
    std::vector<SegmentInfo> repaired) {
  if (repaired.empty()) return Status::ok();
  UNI_RETURN_IF_ERROR(lock_.acquire());
  auto fetched = store_.fetch_latest();
  if (!fetched.is_ok()) {
    lock_.release();
    return fetched.status();
  }
  SyncFolderImage next = std::move(fetched).take().image;

  std::vector<Change> changes;
  for (SegmentInfo& seg : repaired) {
    const SegmentInfo* current = next.find_segment(seg.id);
    // Vanished (GC'd) or already identical: the repair is moot/duplicate.
    if (current == nullptr || current->blocks == seg.blocks) continue;
    SegmentInfo updated = *current;  // keep the commit-side refcount/size
    updated.blocks = seg.blocks;
    changes.push_back(Change::upsert_segment(std::move(updated)));
  }

  Status status = Status::ok();
  if (!changes.empty()) {
    // Deliberately do NOT adopt the committed image as v_o: file changes
    // committed by other devices since our last sync ride in `next`, and
    // jumping image_ past them would skip their local materialization.
    // Restoring image_ makes the repair commit (and anything else in
    // `next`) arrive through the normal apply path next round.
    const SyncFolderImage prev = image_;
    for (const Change& change : changes) apply_change(next, change);
    status = commit_locked(std::move(next), changes);
    if (status.is_ok()) {
      image_ = prev;
      obs::add_counter(obs_.get(), "repair.placement_commits");
    }
  }
  lock_.release();
  return status;
}

// Executes a rebalance plan: re-encode + upload moved blocks, delete shed
// ones. Best effort per block (unreachable clouds are skipped; the plan is
// re-derivable later).
void UniDriveClient::execute_rebalance(const SyncFolderImage& image,
                                       const sched::RebalancePlan& plan,
                                       const erasure::RsCode& code,
                                       cloud::CloudProvider* added) {
  for (const sched::BlockMove& move : plan.moves) {
    auto content = segment_content(image, move.segment_id);
    if (!content.is_ok()) {
      UNI_LOG(kWarn) << "rebalance: cannot reconstruct segment "
                     << move.segment_id << ": "
                     << content.status().to_string();
      continue;
    }
    const auto shards =
        code.encode_shards(ByteSpan(content.value()), {move.block_index});
    cloud::CloudProvider* target =
        added != nullptr && added->id() == move.to_cloud ? added
                                                         : find_cloud(move.to_cloud);
    if (target != nullptr) {
      (void)target->upload(
          metadata::block_path(move.segment_id, move.block_index),
          ByteSpan(shards.front().data));
    }
  }
  for (const sched::BlockDeletion& del : plan.deletions) {
    cloud::CloudProvider* provider = find_cloud(del.cloud);
    if (provider != nullptr) {
      (void)provider->remove(
          metadata::block_path(del.segment_id, del.block_index));
    }
  }
}

Status UniDriveClient::add_cloud(cloud::CloudPtr new_cloud) {
  UNI_RETURN_IF_ERROR(lock_.acquire());
  auto fetched = store_.fetch_latest();
  SyncFolderImage next = fetched.is_ok() ? fetched.value().image : image_;

  std::vector<cloud::CloudId> all_ids = cloud_ids();
  all_ids.push_back(new_cloud->id());
  sched::CodeParams params = code_params();
  params.num_clouds = all_ids.size();
  const Status valid = params.validate();
  if (!valid.is_ok()) {
    lock_.release();
    return valid;
  }

  const sched::RebalancePlan plan =
      sched::plan_add_cloud(next, new_cloud->id(), all_ids, params);
  // The joining cloud gets the same resilience guard as enrolled ones for
  // the rebalance uploads.
  cloud::RetryingCloud added_guard(new_cloud, config_.retry, health_, clock_,
                                   config_.sleep, rng_.fork(), obs_);
  execute_rebalance(next, plan, codec_for(params), &added_guard);

  sched::apply_rebalance(next, plan);
  clouds_.push_back(std::move(new_cloud));
  // Rebuild guards + store + lock over the new membership.
  rebuild_guards();
  UNI_RETURN_IF_ERROR(lock_.acquire());
  std::vector<Change> changes;
  for (const auto& [id, seg] : next.segments()) {
    changes.push_back(Change::upsert_segment(seg));
  }
  const Status status = commit_locked(std::move(next), changes);
  lock_.release();
  return status;
}

Status UniDriveClient::remove_cloud(cloud::CloudId removed) {
  UNI_RETURN_IF_ERROR(lock_.acquire());
  auto fetched = store_.fetch_latest();
  SyncFolderImage next = fetched.is_ok() ? fetched.value().image : image_;

  std::vector<cloud::CloudId> survivors;
  for (const cloud::CloudPtr& c : clouds_) {
    if (c->id() != removed) survivors.push_back(c->id());
  }
  if (survivors.size() == clouds_.size()) {
    lock_.release();
    return make_error(ErrorCode::kInvalidArgument, "cloud not enrolled");
  }
  sched::CodeParams params = code_params();
  params.num_clouds = survivors.size();
  const Status valid = params.validate();
  if (!valid.is_ok()) {
    lock_.release();
    return valid;
  }

  const sched::RebalancePlan plan =
      sched::plan_remove_cloud(next, removed, survivors, params);
  execute_rebalance(next, plan, codec_for(params), nullptr);

  sched::apply_rebalance(next, plan);
  lock_.release();  // release on the OLD membership before rebuilding

  clouds_.erase(std::remove_if(clouds_.begin(), clouds_.end(),
                               [&](const cloud::CloudPtr& c) {
                                 return c->id() == removed;
                               }),
                clouds_.end());
  rebuild_guards();
  UNI_RETURN_IF_ERROR(lock_.acquire());
  std::vector<Change> changes;
  for (const auto& [id, seg] : next.segments()) {
    changes.push_back(Change::upsert_segment(seg));
  }
  const Status status = commit_locked(std::move(next), changes);
  lock_.release();
  return status;
}

}  // namespace unidrive::core
