#include "core/client.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>

#include "common/logging.h"
#include "core/kernel_gauges.h"
#include "crypto/convergent.h"
#include "crypto/sha1.h"
#include "metadata/delta.h"
#include "sched/rebalance.h"

namespace unidrive::core {

using metadata::Change;
using metadata::FileSnapshot;
using metadata::SegmentInfo;
using metadata::SyncFolderImage;
using metadata::VersionStamp;

namespace {

// The RS codec length is pinned (not derived from the current N) so a block
// index means the same codeword row forever: blocks encoded before an
// add/remove-cloud rebalance stay decodable alongside blocks encoded after.
// The scheduler still bounds *placement* by CodeParams::code_n().
constexpr std::size_t kCodecLength = 64;

erasure::RsCode codec_for(const sched::CodeParams& params) {
  return erasure::RsCode(kCodecLength, params.k);
}

// Shared pool width: explicit config wins, otherwise default_threads()
// (env override, else max(transfer concurrency, hardware)).
std::shared_ptr<Executor> make_executor(const ClientConfig& config,
                                        std::size_t num_clouds) {
  const std::size_t floor =
      std::max<std::size_t>(1, num_clouds * config.driver.connections_per_cloud);
  const std::size_t threads = config.pipeline.threads > 0
                                  ? config.pipeline.threads
                                  : Executor::default_threads(floor);
  return std::make_shared<Executor>(threads);
}

}  // namespace

UniDriveClient::UniDriveClient(cloud::MultiCloud clouds,
                               std::shared_ptr<LocalFs> fs,
                               ClientConfig config, Clock& clock, Rng rng)
    : clouds_(std::move(clouds)),
      fs_(std::move(fs)),
      config_(std::move(config)),
      clock_(clock),
      rng_(rng),
      obs_(std::make_shared<obs::Observability>(clock_)),
      durability_(std::make_shared<repair::DurabilityTracker>(obs_)),
      health_(std::make_shared<cloud::CloudHealthRegistry>(config_.breaker,
                                                           clock_, obs_)),
      guarded_(cloud::guard_clouds(clouds_, config_.retry, health_, clock_,
                                   config_.sleep, rng_, obs_)),
      executor_(make_executor(config_, clouds_.size())),
      store_(guarded_, config_.passphrase, config_.meta, obs_,
             config_.cipher),
      locks_(guarded_, config_.device, config_.lock, clock_, rng_.fork(),
             config_.sleep, obs_),
      monitor_() {
  export_kernel_gauges(obs_.get());
  rebuild_async_clouds();
  load_state();
  if (config_.pool != nullptr) {
    // The pool's refcounts are keyed by folder id; an empty (unset) id gets
    // a process-unique one so two unrelated clients can never collapse into
    // one folder and GC each other's blocks. Dedup still works (probes are
    // by content), but devices of one folder should share an explicit id.
    if (config_.folder_id.empty()) {
      static std::atomic<std::uint64_t> next_anonymous_folder{0};
      config_.folder_id =
          "folder-auto-" +
          std::to_string(next_anonymous_folder.fetch_add(1)) + "-" +
          config_.device;
      UNI_LOG(kWarn) << "client with a shared segment pool but no folder_id;"
                     << " derived unique id " << config_.folder_id;
    }
    // Register the persisted state's references in the shared segment pool,
    // so other folders' GC protects our segments from the first round on.
    config_.pool->absorb_image(config_.folder_id, image_);
  }
}

void UniDriveClient::rebuild_guards() {
  guarded_ = cloud::guard_clouds(clouds_, config_.retry, health_, clock_,
                                 config_.sleep, rng_, obs_);
  executor_ = make_executor(config_, clouds_.size());
  store_ = metadata::ShardedMetaStore(guarded_, config_.passphrase,
                                      config_.meta, obs_, config_.cipher);
  locks_ = lock::LockManager(guarded_, config_.device, config_.lock, clock_,
                             rng_.fork(), config_.sleep, obs_);
  rebuild_async_clouds();
}

void UniDriveClient::rebuild_async_clouds() {
  async_clouds_.clear();
  io_executor_ = config_.pipeline.io_threads > 0
                     ? std::make_shared<Executor>(config_.pipeline.io_threads)
                     : executor_;
  cloud::AsyncContext ctx;
  ctx.io = io_executor_.get();
  ctx.clock = &clock_;
  ctx.sleep = config_.sleep;
  ctx.obs = obs_;
  async_clouds_.reserve(guarded_.size());
  for (const cloud::CloudPtr& c : guarded_) {
    async_clouds_.push_back(cloud::to_async(c, ctx));
  }
}

void UniDriveClient::load_state() {
  if (config_.state_file.empty()) return;
  std::ifstream in(config_.state_file, std::ios::binary);
  if (!in) return;  // first run
  const Bytes data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  auto image = SyncFolderImage::deserialize(ByteSpan(data));
  if (image.is_ok()) {
    image_ = std::move(image).take();
  } else {
    UNI_LOG(kWarn) << "discarding corrupt client state file "
                   << config_.state_file;
  }
}

void UniDriveClient::persist_state() const {
  if (config_.state_file.empty()) return;
  const Bytes data = image_.serialize();
  // Write-then-rename so a crash never leaves a torn state file.
  const std::string tmp = config_.state_file + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      UNI_LOG(kWarn) << "cannot persist client state to " << tmp;
      return;
    }
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
  }
  std::error_code ec;
  std::filesystem::rename(tmp, config_.state_file, ec);
  if (ec) {
    UNI_LOG(kWarn) << "state rename failed: " << ec.message();
  }
}

sched::CodeParams UniDriveClient::code_params() const {
  sched::CodeParams p;
  p.num_clouds = clouds_.size();
  p.k = config_.k;
  p.ks = config_.ks;
  p.kr = config_.kr;
  return p;
}

std::vector<cloud::CloudId> UniDriveClient::cloud_ids() const {
  std::vector<cloud::CloudId> ids;
  ids.reserve(clouds_.size());
  for (const cloud::CloudPtr& c : clouds_) ids.push_back(c->id());
  return ids;
}

cloud::CloudProvider* UniDriveClient::find_cloud(cloud::CloudId id) const {
  for (const cloud::CloudPtr& c : guarded_) {
    if (c->id() == id) return c.get();
  }
  return nullptr;
}

cloud::AsyncCloud* UniDriveClient::find_async_cloud(cloud::CloudId id) const {
  for (const cloud::AsyncCloudPtr& c : async_clouds_) {
    if (c->id() == id) return c.get();
  }
  return nullptr;
}

bool UniDriveClient::cloud_update_pending() {
  return store_.has_cloud_update(image_.version());
}

// --- data plane -------------------------------------------------------------

std::unique_ptr<UploadPipeline> UniDriveClient::make_pipeline(
    const sched::CodeParams& params) {
  return std::make_unique<UploadPipeline>(
      params, codec_for(params), cloud_ids(), config_.driver, monitor_,
      executor_, [this](cloud::CloudId id) { return find_cloud(id); },
      config_.pipeline, health_, obs_,
      [this](cloud::CloudId id) { return find_async_cloud(id); },
      config_.pool, config_.folder_id);
}

std::unique_ptr<DownloadPipeline> UniDriveClient::make_download_pipeline(
    const sched::CodeParams& params) {
  return std::make_unique<DownloadPipeline>(
      params.k, codec_for(params), cloud_ids(), config_.driver, monitor_,
      executor_, [this](cloud::CloudId id) { return find_cloud(id); },
      config_.pipeline, *fs_, health_, obs_,
      [this](cloud::CloudId id) { return find_async_cloud(id); });
}

// Fetches, decodes and integrity-checks one segment. On an integrity
// failure (a cloud served tampered or rotted bytes) the corrupt shard
// cannot be identified directly, so the client fetches additional distinct
// blocks one at a time and searches the k-subsets of everything fetched
// until one decodes to the segment's content hash. One long-lived
// streaming driver serves the whole reconstruction: extra blocks raise the
// budget of the same scheduler instead of standing up a fresh driver per
// attempt.
Result<Bytes> UniDriveClient::fetch_segment(
    const SegmentInfo& segment,
    const std::vector<metadata::BlockLocation>& exclude) {
  const sched::CodeParams params = code_params();
  const erasure::RsCode code = codec_for(params);

  sched::DownloadSegmentSpec seg_spec;
  seg_spec.id = segment.id;
  seg_spec.size = segment.size;
  for (const metadata::BlockLocation& loc : segment.blocks) {
    if (std::find(exclude.begin(), exclude.end(), loc) == exclude.end()) {
      seg_spec.locations.push_back(loc);
    }
  }
  if (seg_spec.locations.empty()) {
    return make_error(ErrorCode::kUnavailable,
                      "could not fetch k blocks for segment " + segment.id);
  }

  std::mutex mu;
  std::condition_variable cv;
  std::vector<erasure::Shard> shards;       // all fetched so far
  std::set<std::uint32_t> fetched_indices;  // distinct block indices held
  std::size_t events = 0;
  bool last_ok = false;

  sched::StreamingDownloadDriver driver(
      params.k, cloud_ids(), config_.driver, monitor_, executor_,
      [&](const sched::BlockTask& task) -> Status {
        cloud::CloudProvider* provider = find_cloud(task.cloud);
        if (provider == nullptr) {
          return make_error(ErrorCode::kInternal, "unknown cloud");
        }
        auto data = provider->download(
            metadata::block_path(task.segment_id, task.block_index));
        if (!data.is_ok()) return data.status();
        std::lock_guard<std::mutex> guard(mu);
        // A hedge duplicate may land second; keep the first copy.
        if (fetched_indices.insert(task.block_index).second) {
          shards.push_back({task.block_index, std::move(data).take()});
        }
        return Status::ok();
      },
      health_, obs_,
      [&](const std::string&, bool ok) {
        std::lock_guard<std::mutex> guard(mu);
        ++events;
        last_ok = ok;
        cv.notify_all();
      });

  sched::DownloadFileSpec spec;
  spec.path = segment.id;
  spec.segments.push_back(std::move(seg_spec));
  driver.add_file(std::move(spec));
  driver.close();

  std::size_t consumed = 0;
  while (true) {
    bool ok = false;
    std::vector<erasure::Shard> held;
    {
      std::unique_lock<std::mutex> guard(mu);
      cv.wait(guard, [&] { return events > consumed; });
      ++consumed;
      ok = last_ok;
      held = shards;
    }
    if (!ok) {
      // First event failing means even k blocks never landed; a later one
      // means the corrupt-shard search ran out of supply.
      return consumed == 1
                 ? make_error(ErrorCode::kUnavailable,
                              "could not fetch k blocks for segment " +
                                  segment.id)
                 : make_error(ErrorCode::kCorrupt,
                              "segment " + segment.id +
                                  ": no verifiable block combination exists");
    }
    auto decoded =
        decode_verified(code, held, segment, params.k, executor_.get());
    if (decoded.is_ok()) return decoded;
    UNI_LOG(kWarn) << "segment " << segment.id
                   << " failed integrity check with " << held.size()
                   << " blocks; fetching another";
    driver.request_extra_block(segment.id);
  }
}

Status UniDriveClient::materialize_file(const FileSnapshot& snapshot,
                                        const SyncFolderImage& image) {
  const sched::CodeParams params = code_params();
  if (config_.pipeline.enabled && params.validate().is_ok()) {
    auto pipeline = make_download_pipeline(params);
    pipeline->add_file(snapshot, image);
    const auto results = pipeline->finish();
    return results.empty() ? Status::ok() : results.front().status;
  }

  // Monolithic fallback: fetch + decode one segment at a time, streaming
  // each into the writer — peak memory is one segment, not the file, and
  // a failed restore aborts the writer instead of leaving a partial file.
  UNI_ASSIGN_OR_RETURN(std::unique_ptr<LocalFs::FileWriter> writer,
                       fs_->open_write(snapshot.path));
  crypto::Sha1 hasher;
  std::uint64_t written = 0;
  for (const std::string& seg_id : snapshot.segment_ids) {
    const SegmentInfo* seg = image.find_segment(seg_id);
    if (seg == nullptr) {
      writer->abort();
      return make_error(ErrorCode::kCorrupt,
                        "snapshot references unknown segment " + seg_id);
    }
    auto piece = fetch_segment(*seg, {});
    if (!piece.is_ok()) {
      writer->abort();
      return piece.status();
    }
    const Status appended = writer->append(ByteSpan(piece.value()));
    if (!appended.is_ok()) {
      writer->abort();
      return appended;
    }
    hasher.update(ByteSpan(piece.value()));
    written += piece.value().size();
  }
  if (written != snapshot.size) {
    writer->abort();
    return make_error(ErrorCode::kCorrupt,
                      "assembled size mismatch for " + snapshot.path);
  }
  if (!snapshot.content_hash.empty()) {
    const crypto::Sha1::Digest digest = hasher.finish();
    if (to_hex(ByteSpan(digest.data(), digest.size())) !=
        snapshot.content_hash) {
      writer->abort();
      return make_error(ErrorCode::kCorrupt,
                        "content hash mismatch for " + snapshot.path);
    }
  }
  return writer->commit();
}

Result<UniDriveClient::ApplyOutcome> UniDriveClient::apply_cloud_image(
    const SyncFolderImage& target) {
  const metadata::ImageDiff diff = metadata::diff_images(image_, target);
  ApplyOutcome outcome;

  // Directory failures must not be swallowed: a file materialized into a
  // missing directory fails too, and the caller needs to know the folder
  // does not fully reflect the committed image.
  for (const std::string& d : diff.added_dirs) {
    const Status s = fs_->make_dir(d);
    if (!s.is_ok()) {
      outcome.dir_failures.push_back(d);
      UNI_LOG(kWarn) << "make_dir " << d << " failed: " << s.to_string();
    }
  }

  // First pass: deletions inline, downloads collected so the whole batch
  // streams through ONE restore pipeline (connection pools and hedging
  // span file boundaries; the prefetch window bounds memory).
  std::vector<const FileSnapshot*> to_download;
  for (const auto& [path, change] : diff.files) {
    switch (change.kind) {
      case metadata::EntryChangeKind::kAdded:
      case metadata::EntryChangeKind::kModified: {
        // Skip if the local file already matches (e.g. we produced it).
        auto local = fs_->read(path);
        if (local.is_ok() &&
            crypto::Sha1::hex(ByteSpan(local.value())) ==
                change.snapshot->content_hash) {
          break;
        }
        to_download.push_back(&*change.snapshot);
        break;
      }
      case metadata::EntryChangeKind::kDeleted:
        if (fs_->remove(path).is_ok()) ++outcome.removed;
        break;
    }
  }

  if (!to_download.empty()) {
    const sched::CodeParams params = code_params();
    if (config_.pipeline.enabled && params.validate().is_ok()) {
      auto pipeline = make_download_pipeline(params);
      for (const FileSnapshot* snapshot : to_download) {
        pipeline->add_file(*snapshot, target);
      }
      for (const DownloadPipeline::FileResult& r : pipeline->finish()) {
        UNI_RETURN_IF_ERROR(r.status);
        ++outcome.downloaded;
      }
    } else {
      for (const FileSnapshot* snapshot : to_download) {
        UNI_RETURN_IF_ERROR(materialize_file(*snapshot, target));
        ++outcome.downloaded;
      }
    }
  }

  for (const std::string& d : diff.removed_dirs) {
    const Status s = fs_->remove_dir(d);
    // Already gone is the desired end state, not a failure.
    if (!s.is_ok() && s.code() != ErrorCode::kNotFound) {
      outcome.dir_failures.push_back(d);
      UNI_LOG(kWarn) << "remove_dir " << d << " failed: " << s.to_string();
    }
  }

  image_ = target;
  return outcome;
}

// --- control plane ----------------------------------------------------------

std::vector<lock::Scope> UniDriveClient::all_scopes() const {
  std::vector<lock::Scope> scopes;
  scopes.reserve(store_.num_shards() + 1);
  for (std::uint32_t s = 0; s < store_.num_shards(); ++s) {
    scopes.push_back(lock::Scope::of_shard(s));
  }
  scopes.push_back(lock::Scope::root());
  return scopes;
}

Result<metadata::ShardManifest> UniDriveClient::publish_and_flip(
    const SyncFolderImage& next, const std::vector<Change>& changes,
    const metadata::ShardManifest& fenced, const VersionStamp& stamp) {
  const auto slices =
      metadata::split_changes_by_shard(changes, store_.num_shards());
  std::vector<metadata::ShardEntry> dirty;
  dirty.reserve(slices.size());
  for (const metadata::ShardSlice& slice : slices) {
    UNI_ASSIGN_OR_RETURN(
        metadata::ShardEntry entry,
        store_.publish_shard(slice.shard, fenced.find(slice.shard),
                             slice.changes, next, stamp,
                             config_.delta_policy));
    dirty.push_back(std::move(entry));
  }
  return store_.commit_manifest(dirty, fenced, stamp);
}

void UniDriveClient::absorb_foreign_shards(
    SyncFolderImage& next, const metadata::ShardManifest& fenced,
    const metadata::ShardManifest& committed,
    const std::vector<metadata::ShardId>& own) {
  std::set<metadata::ShardId> foreign;
  for (const metadata::ShardEntry& e : committed.entries) {
    if (std::find(own.begin(), own.end(), e.id) != own.end()) continue;
    const metadata::ShardEntry* was = fenced.find(e.id);
    if (was == nullptr || was->version < e.version) foreign.insert(e.id);
  }
  if (foreign.empty()) return;

  // Rebuild the image as (our shards, untouched) + (foreign shards, as
  // committed). Everything routed to a foreign shard is dropped first so a
  // concurrent deletion in that shard does not resurrect through us.
  const std::uint32_t n = committed.num_shards;
  SyncFolderImage merged = next.extract(
      [&](const std::string& path) {
        return foreign.count(metadata::shard_of_path(path, n)) == 0;
      },
      [&](const std::string& seg) {
        return foreign.count(metadata::shard_of_segment(seg, n)) == 0;
      });
  for (const metadata::ShardId id : foreign) {
    const metadata::ShardEntry* e = committed.find(id);
    if (e == nullptr) continue;
    auto shard = store_.fetch_shard(*e);
    if (!shard.is_ok()) {
      // The foreign writer's objects are not visible right now: keep our
      // own content but advertise the fenced basis, so the next round sees
      // a cloud update and reconciles through the normal merge path.
      obs::add_counter(obs_.get(), "meta.shard.absorb.err");
      next.set_version(fenced.version);
      return;
    }
    merged.absorb(shard.value());
  }
  merged.rebuild_refcounts();
  merged.prune_segment_stubs();
  merged.set_version(committed.version);
  obs::add_counter(obs_.get(), "meta.shard.absorb.ok", foreign.size());
  next = std::move(merged);
}

Status UniDriveClient::commit_sharded(const SyncFolderImage& local,
                                      std::vector<Change> changes,
                                      SyncReport* report) {
  constexpr int kMaxAttempts = 4;
  Status last = Status::ok();
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const std::uint32_t n = store_.num_shards();
    auto slices = metadata::split_changes_by_shard(changes, n);
    std::vector<lock::Scope> scopes;
    scopes.reserve(slices.size());
    for (const metadata::ShardSlice& s : slices) {
      scopes.push_back(lock::Scope::of_shard(s.shard));
    }
    UNI_RETURN_IF_ERROR(locks_.acquire_all(scopes));

    metadata::ShardManifest fenced;
    {
      auto manifest = store_.fetch_manifest();
      if (manifest.is_ok()) {
        fenced = std::move(manifest).take();
      } else if (manifest.code() == ErrorCode::kNotFound) {
        fenced.num_shards = n;  // first commit ever
      } else {
        locks_.release_all();
        return manifest.status();
      }
    }
    if (store_.num_shards() != n) {
      // The published manifest was created with a different shard count
      // (that choice is authoritative): re-route and re-lock.
      locks_.release_all();
      continue;
    }

    SyncFolderImage next = local;
    if (image_.version() < fenced.version) {
      // A foreign commit landed since our last reconcile: fetch and 3-way
      // merge before committing (conflicts keep both copies).
      auto fetched = store_.fetch_latest();
      if (!fetched.is_ok()) {
        locks_.release_all();
        return fetched.status();
      }
      obs::Span merge_span = obs::start_span(obs_.get(), "sync.merge");
      metadata::MergeResult merged = metadata::merge_images(
          image_, local, fetched.value().image, config_.device);
      merge_span.end();
      if (report != nullptr) report->conflicts = merged.conflicts;
      obs::add_counter(obs_.get(), "sync.conflicts", merged.conflicts.size());
      // The merge may have rewritten paths (conflict copies): recompute the
      // change list as the diff cloud->merged for the shard delta logs.
      std::vector<Change> merged_changes;
      for (const auto& [id, seg] : merged.merged.segments()) {
        if (fetched.value().image.find_segment(id) == nullptr) {
          merged_changes.push_back(Change::upsert_segment(seg));
        }
      }
      const metadata::ImageDiff d =
          metadata::diff_images(fetched.value().image, merged.merged);
      for (const auto& [path, ec] : d.files) {
        if (ec.kind == metadata::EntryChangeKind::kDeleted) {
          merged_changes.push_back(Change::delete_file(path));
        } else {
          merged_changes.push_back(Change::upsert_file(*ec.snapshot));
        }
      }
      for (const std::string& dir : d.added_dirs) {
        merged_changes.push_back(Change::add_dir(dir));
      }
      for (const std::string& dir : d.removed_dirs) {
        merged_changes.push_back(Change::delete_dir(dir));
      }
      next = std::move(merged.merged);
      changes = std::move(merged_changes);
      if (changes.empty()) {
        // The cloud already carries everything we have: adopt, no commit.
        next.set_version(fetched.value().image.version());
        image_ = std::move(next);
        locks_.release_all();
        return Status::ok();
      }
      // The merge may have routed changes into shards we do not hold yet
      // (conflict copies in other subtrees): re-lock with the full set.
      slices = metadata::split_changes_by_shard(changes, n);
      bool covered = true;
      for (const metadata::ShardSlice& s : slices) {
        if (!locks_.held(lock::Scope::of_shard(s.shard))) {
          covered = false;
          break;
        }
      }
      if (!covered) {
        locks_.release_all();
        last = make_error(ErrorCode::kLockContention,
                          "merge widened the dirty shard set");
        continue;
      }
    }

    VersionStamp stamp;
    stamp.device = config_.device;
    stamp.counter =
        std::max(fenced.version.counter, image_.version().counter) + 1;
    stamp.timestamp = clock_.now();
    next.set_version(stamp);

    // Stage every dirty shard WITHOUT the root scope — the heavy object
    // uploads run concurrently with other writers' disjoint commits.
    std::vector<metadata::ShardId> own;
    own.reserve(slices.size());
    std::vector<metadata::ShardEntry> dirty;
    dirty.reserve(slices.size());
    Status staged = Status::ok();
    for (const metadata::ShardSlice& slice : slices) {
      auto entry = store_.publish_shard(slice.shard, fenced.find(slice.shard),
                                        slice.changes, next, stamp,
                                        config_.delta_policy);
      if (!entry.is_ok()) {
        staged = entry.status();
        break;
      }
      own.push_back(slice.shard);
      dirty.push_back(std::move(entry).take());
    }
    if (!staged.is_ok()) {
      locks_.release_all();
      return staged;
    }

    // Root scope only for the manifest flip — the global choke point stays
    // as narrow as the commit protocol allows.
    if (const Status s = locks_.acquire(lock::Scope::root()); !s.is_ok()) {
      locks_.release_all();
      return s;
    }
    auto flipped = store_.commit_manifest(dirty, fenced, stamp);
    locks_.release_all();
    if (!flipped.is_ok()) {
      if (flipped.code() == ErrorCode::kConflict) {
        last = flipped.status();
        continue;  // restage from fresh state
      }
      return flipped.status();
    }
    next.set_version(flipped.value().version);
    absorb_foreign_shards(next, fenced, flipped.value(), own);
    image_ = std::move(next);
    return Status::ok();
  }
  return last.is_ok() ? make_error(ErrorCode::kLockContention,
                                   "sharded commit retry budget exhausted")
                      : last;
}

Status UniDriveClient::locked_mutation(
    const std::function<std::vector<Change>(SyncFolderImage&)>& mutate,
    bool adopt) {
  constexpr int kMaxAttempts = 3;
  Status last = make_error(ErrorCode::kConflict,
                           "maintenance commit retry budget exhausted");
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    auto fetched = store_.fetch_latest();
    if (!fetched.is_ok() && fetched.code() != ErrorCode::kNotFound) {
      return fetched.status();
    }
    SyncFolderImage next =
        fetched.is_ok() ? std::move(fetched).take().image : image_;
    const VersionStamp basis = next.version();

    std::vector<Change> changes = mutate(next);
    if (changes.empty()) return Status::ok();

    const std::uint32_t n = store_.num_shards();
    const auto slices = metadata::split_changes_by_shard(changes, n);
    std::vector<lock::Scope> scopes;
    scopes.reserve(slices.size() + 1);
    for (const metadata::ShardSlice& s : slices) {
      scopes.push_back(lock::Scope::of_shard(s.shard));
    }
    scopes.push_back(lock::Scope::root());
    UNI_RETURN_IF_ERROR(locks_.acquire_all(scopes));

    metadata::ShardManifest fenced;
    auto manifest = store_.fetch_manifest();
    if (manifest.is_ok()) {
      fenced = std::move(manifest).take();
    } else if (manifest.code() == ErrorCode::kNotFound) {
      fenced.num_shards = n;
    } else {
      locks_.release_all();
      return manifest.status();
    }
    if (store_.num_shards() != n || fenced.version < basis ||
        basis < fenced.version) {
      // A commit landed between our fetch and the locks (the mutation was
      // computed against stale state): recompute from fresh state.
      locks_.release_all();
      last = make_error(ErrorCode::kConflict,
                        "metadata moved while staging a maintenance commit");
      continue;
    }

    VersionStamp stamp;
    stamp.device = config_.device;
    stamp.counter =
        std::max(fenced.version.counter, image_.version().counter) + 1;
    stamp.timestamp = clock_.now();
    next.set_version(stamp);

    auto flipped = publish_and_flip(next, changes, fenced, stamp);
    if (!flipped.is_ok()) {
      locks_.release_all();
      if (flipped.code() == ErrorCode::kConflict) {
        last = flipped.status();
        continue;
      }
      return flipped.status();
    }
    if (adopt) {
      next.set_version(flipped.value().version);
      image_ = std::move(next);
      if (config_.pool != nullptr) {
        config_.pool->absorb_image(config_.folder_id, image_);
      }
    }
    locks_.release_all();
    return Status::ok();
  }
  return last;
}

Result<SyncReport> UniDriveClient::sync() {
  SyncReport report;
  obs::add_counter(obs_.get(), "sync.rounds");
  obs::Span round_span = obs::start_span(obs_.get(), "sync.round");

  const chunker::SegmenterParams seg_params{config_.theta};
  const sched::CodeParams params = code_params();
  const bool params_ok = params.validate().is_ok();

  // Staged mode: stand the pipeline up BEFORE the scan so CDC output
  // streams straight into encode/transfer while the scanner is still
  // walking files. Invalid CodeParams fall through to the batch branch,
  // which surfaces the validation error only if there is data to upload.
  std::unique_ptr<UploadPipeline> pipeline;
  if (params_ok && config_.pipeline.enabled) pipeline = make_pipeline(params);

  ScanResult scan;
  {
    obs::Span scan_span = round_span.child("sync.scan");
    if (pipeline != nullptr) {
      scan = scan_local_changes(*fs_, image_, seg_params, config_.device,
                                &scan_cache_,
                                [&](const std::string& id, Bytes bytes) {
                                  pipeline->feed(id, std::move(bytes));
                                });
    } else {
      scan = scan_local_changes(*fs_, image_, seg_params, config_.device,
                                &scan_cache_);
    }
  }

  if (!scan.changes.empty()) {
    // --- local update path (Algorithm 1, lines 2-14) ---
    // Data plane first: blocks must hit the clouds before metadata does.
    std::vector<SegmentInfo> uploaded;
    {
      obs::Span upload_span = round_span.child("sync.upload_segments");
      if (pipeline != nullptr) {
        UNI_ASSIGN_OR_RETURN(uploaded, pipeline->finish());
      } else if (!scan.new_segments.empty()) {
        UNI_RETURN_IF_ERROR(params.validate());
        // Monolithic fallback: one batch round through the same object.
        // Assigned to the function-scope pointer so its segment-pool pins
        // survive until after the metadata commit below.
        pipeline = make_pipeline(params);
        for (auto& [id, bytes] : scan.new_segments) {
          pipeline->feed(id, std::move(bytes));
        }
        UNI_ASSIGN_OR_RETURN(uploaded, pipeline->finish());
      }
    }
    if (pipeline != nullptr) {
      const UploadPipeline::DedupStats dedup = pipeline->dedup_stats();
      report.segments_deduped = dedup.segments;
      report.dedup_bytes_saved = dedup.bytes_saved;
      // `uploaded` carries one record per fed segment, dedup hits
      // included; clamp so a result subset can never underflow size_t.
      report.segments_uploaded = uploaded.size() >= dedup.segments
                                     ? uploaded.size() - dedup.segments
                                     : 0;
    } else {
      report.segments_uploaded = uploaded.size();
    }

    // Build v_l = v_o + epsilon (+ fresh segment records).
    SyncFolderImage local = image_;
    std::vector<Change> committed_changes;
    for (const SegmentInfo& seg : uploaded) {
      Change c = Change::upsert_segment(seg);
      apply_change(local, c);
      committed_changes.push_back(std::move(c));
    }
    for (const Change& c : scan.changes.aggregated()) {
      apply_change(local, c);
      committed_changes.push_back(c);
      if (c.kind == metadata::ChangeKind::kUpsertFile) ++report.files_uploaded;
    }

    {
      // Sharded commit: locks only the dirty shard scopes (merging against
      // the cloud state when behind), stages one delta object per dirty
      // shard and flips the root manifest atomically under the root scope.
      obs::Span commit_span = round_span.child("sync.commit");
      UNI_RETURN_IF_ERROR(
          commit_sharded(local, std::move(committed_changes), &report));
    }
    report.committed = true;

    // Bring the local folder up to the committed state (conflict copies,
    // concurrently added files from other devices). The local folder
    // currently reflects v_l, so diff from there — commit_sharded already
    // moved image_ to the merged state.
    const SyncFolderImage committed = image_;
    image_ = local;
    obs::Span apply_span = round_span.child("sync.apply_cloud");
    auto applied = apply_cloud_image(committed);
    apply_span.end();
    if (!applied.is_ok()) {
      image_ = committed;  // folder lags, but metadata is authoritative
      report.materialize = applied.status();
    } else {
      const ApplyOutcome& outcome = applied.value();
      report.files_downloaded += outcome.downloaded;
      report.files_removed += outcome.removed;
      report.applied_cloud = outcome.downloaded + outcome.removed > 0;
      report.dir_failures = outcome.dir_failures;
      if (!outcome.dir_failures.empty()) {
        report.materialize = Status(
            ErrorCode::kUnavailable,
            "folder materialization incomplete: " +
                std::to_string(outcome.dir_failures.size()) +
                " directory operation(s) failed");
      }
    }
  } else if (store_.has_cloud_update(image_.version())) {
    // --- cloud update path (Algorithm 1, lines 15-18) ---
    UNI_ASSIGN_OR_RETURN(const metadata::FetchedMetadata fetched,
                         store_.fetch_latest());
    obs::Span apply_span = round_span.child("sync.apply_cloud");
    UNI_ASSIGN_OR_RETURN(const ApplyOutcome outcome,
                         apply_cloud_image(fetched.image));
    apply_span.end();
    report.files_downloaded = outcome.downloaded;
    report.files_removed = outcome.removed;
    report.applied_cloud = true;
    report.dir_failures = outcome.dir_failures;
    if (!outcome.dir_failures.empty()) {
      report.materialize = Status(
          ErrorCode::kUnavailable,
          "folder materialization incomplete: " +
              std::to_string(outcome.dir_failures.size()) +
              " directory operation(s) failed");
    }
  }

  // Reconcile the shared segment pool with the round's final committed
  // state: newly committed segments become dedupable for everyone, dropped
  // ones shed our reference. Runs while the pipeline (and its probe pins)
  // is still alive, so there is no unprotected window.
  if (config_.pool != nullptr) {
    config_.pool->absorb_image(config_.folder_id, image_);
  }

  report.version = image_.version();
  report.cloud_health = health_->snapshot_all();
  report.durability = durability_->summarize(
      image_, config_.k, config_.redundancy_floor,
      [this](cloud::CloudId id) { return health_->admissible(id); });
  repair::publish_durability_gauges(report.durability, obs_.get());
  // Degraded = reduced reachability OR eroded durability: an open breaker,
  // or any segment whose surviving redundancy fell below the floor.
  report.degraded =
      !health_->all_closed() || report.durability.under_replicated > 0;
  persist_state();
  round_span.end();
  report.metrics = obs_->metrics.snapshot();
  return report;
}

// --- maintenance -------------------------------------------------------------

Status UniDriveClient::cleanup_overprovisioned() {
  const sched::CodeParams params = code_params();
  return locked_mutation(
      [&](SyncFolderImage& next) {
        std::vector<Change> changes;
        for (const auto& [id, seg] : next.segments()) {
          std::map<cloud::CloudId, std::size_t> per_cloud;
          SegmentInfo trimmed = seg;
          std::vector<metadata::BlockLocation> keep;
          for (const metadata::BlockLocation& b : seg.blocks) {
            if (per_cloud[b.cloud] < params.fair_share()) {
              keep.push_back(b);
              ++per_cloud[b.cloud];
            } else {
              // Surplus: delete the block from the cloud (best effort,
              // idempotent if the commit below retries).
              cloud::CloudProvider* provider = find_cloud(b.cloud);
              if (provider != nullptr) {
                (void)provider->remove(metadata::block_path(id, b.block_index));
              }
            }
          }
          if (keep.size() != seg.blocks.size()) {
            trimmed.blocks = std::move(keep);
            changes.push_back(Change::upsert_segment(trimmed));
          }
        }
        for (const Change& c : changes) apply_change(next, c);
        return changes;
      },
      /*adopt=*/true);
}

Result<std::size_t> UniDriveClient::collect_garbage() {
  std::size_t collected = 0;
  const Status status = locked_mutation(
      [&](SyncFolderImage& next) {
        collected = 0;
        std::vector<Change> changes;
        for (const std::string& seg_id : next.garbage_segments()) {
          const SegmentInfo* seg = next.find_segment(seg_id);
          if (seg == nullptr) continue;
          // Cross-folder guard: blocks live in a shared content-addressed
          // namespace, so a segment another folder still references must
          // keep its physical blocks — we only drop our own record.
          // try_begin_gc atomically removes the pool entry when nobody else
          // holds it, so a concurrent probe can no longer hand out the
          // locations we are about to delete.
          const bool delete_blocks =
              config_.pool == nullptr ||
              config_.pool->try_begin_gc(config_.folder_id, seg_id);
          if (delete_blocks) {
            // Blocks first, metadata second: a crash in between leaves a
            // harmless pool entry pointing at deleted blocks (retried next
            // GC), never a referenced segment without blocks.
            for (const metadata::BlockLocation& b : seg->blocks) {
              cloud::CloudProvider* provider = find_cloud(b.cloud);
              if (provider != nullptr) {
                (void)provider->remove(
                    metadata::block_path(seg_id, b.block_index));
              }
            }
            // Deletes done: lift the tombstone so probes (held off while
            // the removes were in flight — a racing re-upload of the same
            // content would land on the exact paths being deleted) can
            // miss-and-upload safely again.
            if (config_.pool != nullptr) config_.pool->finish_gc(seg_id);
          } else {
            obs::add_counter(obs_.get(), "dedup.gc.shared_keep");
          }
          changes.push_back(Change::drop_segment(seg_id));
        }
        collected = changes.size();
        for (const Change& c : changes) apply_change(next, c);
        return changes;
      },
      /*adopt=*/true);
  if (!status.is_ok()) return status;
  return collected;
}

Status UniDriveClient::resolve_conflict(const metadata::ConflictRecord& record,
                                        ConflictChoice choice) {
  if (record.conflict_copy.empty()) {
    // Nothing was copied (e.g. delete-vs-edit); the cloud version already
    // stands — only kKeepTheirs is meaningful and it is a no-op.
    return choice == ConflictChoice::kKeepTheirs
               ? Status::ok()
               : make_error(ErrorCode::kInvalidArgument,
                            "conflict has no local copy to promote");
  }
  if (choice == ConflictChoice::kKeepMine) {
    UNI_ASSIGN_OR_RETURN(const Bytes mine, fs_->read(record.conflict_copy));
    UNI_RETURN_IF_ERROR(fs_->write(record.path, ByteSpan(mine)));
  }
  UNI_RETURN_IF_ERROR(fs_->remove(record.conflict_copy));
  return Status::ok();
}

Status UniDriveClient::restore_previous_version(const std::string& path) {
  const std::vector<FileSnapshot> history = image_.history(path);
  if (history.empty()) {
    return make_error(ErrorCode::kNotFound,
                      "no superseded snapshot for " + path);
  }
  // Materialize the old content locally; the next sync() scans it as a
  // fresh local edit and commits it through the normal pipeline (so other
  // devices receive it like any other change). Segments are still in the
  // pool — history snapshots keep them referenced.
  UNI_RETURN_IF_ERROR(materialize_file(history.front(), image_));
  return Status::ok();
}

// Hash-verified slice of a segment out of a local file (the client keeps a
// full copy of everything). kNotFound when no referencing file holds a
// clean copy.
Result<Bytes> UniDriveClient::local_segment_slice(
    const SyncFolderImage& image, const std::string& segment_id) {
  for (const auto& [path, snapshot] : image.files()) {
    std::size_t offset = 0;
    for (const std::string& sid : snapshot.segment_ids) {
      const metadata::SegmentInfo* seg = image.find_segment(sid);
      const std::size_t len = seg ? seg->size : 0;
      if (sid == segment_id) {
        auto content = fs_->read(path);
        if (content.is_ok() && offset + len <= content.value().size()) {
          const ByteSpan view(content.value());
          const Bytes piece(view.begin() + offset,
                            view.begin() + offset + len);
          // Trust but verify: the local file may have been edited since.
          // Dispatches on the id's hash family (SHA-256, legacy SHA-1).
          if (crypto::verify_segment_id(segment_id, ByteSpan(piece))) {
            return piece;
          }
        }
        break;  // local copy unusable; try the next referencing file
      }
      offset += len;
    }
  }
  return make_error(ErrorCode::kNotFound,
                    "no verified local copy of segment " + segment_id);
}

// Plaintext bytes of a segment, for re-encoding blocks during rebalances.
// Fast path: the local slice. Fallback: fetch + decode k blocks from the
// multi-cloud — membership changes must work even when the local copy is
// missing (e.g. a freshly joined device administering the multi-cloud).
Result<Bytes> UniDriveClient::segment_content(
    const SyncFolderImage& image, const std::string& segment_id) {
  auto local = local_segment_slice(image, segment_id);
  if (local.is_ok()) return local;
  // Repair path: reconstruct from the clouds. fetch_segment resolves
  // block placements from the record itself — no image adoption needed.
  const metadata::SegmentInfo* seg = image.find_segment(segment_id);
  if (seg == nullptr) {
    return make_error(ErrorCode::kNotFound, "unknown segment " + segment_id);
  }
  return fetch_segment(*seg, {});
}

erasure::RsCode UniDriveClient::codec() const {
  return codec_for(code_params());
}

Result<Bytes> UniDriveClient::reconstruct_segment(
    const std::string& segment_id,
    const std::vector<metadata::BlockLocation>& exclude) {
  auto local = local_segment_slice(image_, segment_id);
  if (local.is_ok()) return local;
  const metadata::SegmentInfo* seg = image_.find_segment(segment_id);
  if (seg == nullptr) {
    return make_error(ErrorCode::kNotFound, "unknown segment " + segment_id);
  }
  // No clean local copy: decode from the clouds WITHOUT the defective
  // placements — a corrupt block must never poison its own repair.
  return fetch_segment(*seg, exclude);
}

Status UniDriveClient::commit_repaired_placements(
    std::vector<SegmentInfo> repaired) {
  if (repaired.empty()) return Status::ok();
  bool committed = false;
  // adopt=false: v_o (image_) deliberately does NOT advance — file changes
  // committed by other devices since our last sync ride in the fetched
  // image, and jumping image_ past them would skip their local
  // materialization. The repair commit arrives through the normal apply
  // path next round.
  const Status status = locked_mutation(
      [&](SyncFolderImage& next) {
        std::vector<Change> changes;
        for (const SegmentInfo& seg : repaired) {
          const SegmentInfo* current = next.find_segment(seg.id);
          // Vanished (GC'd) or already identical: repair is moot/duplicate.
          if (current == nullptr || current->blocks == seg.blocks) continue;
          SegmentInfo updated = *current;  // keep commit-side refcount/size
          updated.blocks = seg.blocks;
          changes.push_back(Change::upsert_segment(std::move(updated)));
        }
        committed = !changes.empty();
        for (const Change& c : changes) apply_change(next, c);
        return changes;
      },
      /*adopt=*/false);
  if (status.is_ok() && committed) {
    obs::add_counter(obs_.get(), "repair.placement_commits");
  }
  return status;
}

// Executes a rebalance plan: re-encode + upload moved blocks, delete shed
// ones. Best effort per block (unreachable clouds are skipped; the plan is
// re-derivable later).
void UniDriveClient::execute_rebalance(const SyncFolderImage& image,
                                       const sched::RebalancePlan& plan,
                                       const erasure::RsCode& code,
                                       cloud::CloudProvider* added) {
  for (const sched::BlockMove& move : plan.moves) {
    auto content = segment_content(image, move.segment_id);
    if (!content.is_ok()) {
      UNI_LOG(kWarn) << "rebalance: cannot reconstruct segment "
                     << move.segment_id << ": "
                     << content.status().to_string();
      continue;
    }
    // segment_content returns plaintext; stored blocks are coded over the
    // convergent-sealed payload (identity for legacy SHA-1 ids).
    const Bytes sealed =
        crypto::convergent_seal(move.segment_id, ByteSpan(content.value()));
    const auto shards = code.encode_shards(ByteSpan(sealed), {move.block_index});
    cloud::CloudProvider* target =
        added != nullptr && added->id() == move.to_cloud ? added
                                                         : find_cloud(move.to_cloud);
    if (target != nullptr) {
      (void)target->upload(
          metadata::block_path(move.segment_id, move.block_index),
          ByteSpan(shards.front().data));
    }
  }
  for (const sched::BlockDeletion& del : plan.deletions) {
    cloud::CloudProvider* provider = find_cloud(del.cloud);
    if (provider != nullptr) {
      (void)provider->remove(
          metadata::block_path(del.segment_id, del.block_index));
    }
  }
}

// After a membership swap: re-lock the world on the NEW membership, splice
// the rebalanced block map onto the freshest committed state (a writer may
// have committed in the guard-rebuild window — clobbering its image with
// our pre-swap copy would lose that update) and flip the root.
Status UniDriveClient::commit_membership_image(SyncFolderImage next) {
  UNI_RETURN_IF_ERROR(locks_.acquire_all(all_scopes()));

  metadata::ShardManifest fenced;
  auto manifest = store_.fetch_manifest();
  if (manifest.is_ok()) {
    fenced = std::move(manifest).take();
  } else if (manifest.code() == ErrorCode::kNotFound) {
    fenced.num_shards = store_.num_shards();
  } else {
    locks_.release_all();
    return manifest.status();
  }

  std::vector<Change> changes;
  for (const auto& [id, seg] : next.segments()) {
    changes.push_back(Change::upsert_segment(seg));
  }

  SyncFolderImage base = std::move(next);
  auto fresh = store_.fetch_latest();
  if (fresh.is_ok()) {
    // upsert_segment preserves the fresh image's refcounts, so foreign
    // file commits from the swap window survive with correct references.
    base = std::move(fresh).take().image;
    for (const Change& c : changes) apply_change(base, c);
  }

  VersionStamp stamp;
  stamp.device = config_.device;
  stamp.counter =
      std::max(fenced.version.counter, base.version().counter) + 1;
  stamp.timestamp = clock_.now();
  base.set_version(stamp);

  auto flipped = publish_and_flip(base, changes, fenced, stamp);
  if (!flipped.is_ok()) {
    locks_.release_all();
    return flipped.status();
  }
  base.set_version(flipped.value().version);
  image_ = std::move(base);
  locks_.release_all();
  return Status::ok();
}

Status UniDriveClient::add_cloud(cloud::CloudPtr new_cloud) {
  // Membership changes rewrite placements across every shard: hold every
  // scope (stop-the-world) while the rebalance runs.
  UNI_RETURN_IF_ERROR(locks_.acquire_all(all_scopes()));
  auto fetched = store_.fetch_latest();
  SyncFolderImage next = fetched.is_ok() ? fetched.value().image : image_;

  std::vector<cloud::CloudId> all_ids = cloud_ids();
  all_ids.push_back(new_cloud->id());
  sched::CodeParams params = code_params();
  params.num_clouds = all_ids.size();
  const Status valid = params.validate();
  if (!valid.is_ok()) {
    locks_.release_all();
    return valid;
  }

  const sched::RebalancePlan plan =
      sched::plan_add_cloud(next, new_cloud->id(), all_ids, params);
  // The joining cloud gets the same resilience guard as enrolled ones for
  // the rebalance uploads.
  cloud::RetryingCloud added_guard(new_cloud, config_.retry, health_, clock_,
                                   config_.sleep, rng_.fork(), obs_);
  execute_rebalance(next, plan, codec_for(params), &added_guard);
  sched::apply_rebalance(next, plan);

  locks_.release_all();  // release on the OLD membership before rebuilding
  clouds_.push_back(std::move(new_cloud));
  rebuild_guards();
  return commit_membership_image(std::move(next));
}

Status UniDriveClient::remove_cloud(cloud::CloudId removed) {
  UNI_RETURN_IF_ERROR(locks_.acquire_all(all_scopes()));
  auto fetched = store_.fetch_latest();
  SyncFolderImage next = fetched.is_ok() ? fetched.value().image : image_;

  std::vector<cloud::CloudId> survivors;
  for (const cloud::CloudPtr& c : clouds_) {
    if (c->id() != removed) survivors.push_back(c->id());
  }
  if (survivors.size() == clouds_.size()) {
    locks_.release_all();
    return make_error(ErrorCode::kInvalidArgument, "cloud not enrolled");
  }
  sched::CodeParams params = code_params();
  params.num_clouds = survivors.size();
  const Status valid = params.validate();
  if (!valid.is_ok()) {
    locks_.release_all();
    return valid;
  }

  const sched::RebalancePlan plan =
      sched::plan_remove_cloud(next, removed, survivors, params);
  execute_rebalance(next, plan, codec_for(params), nullptr);
  sched::apply_rebalance(next, plan);

  locks_.release_all();  // release on the OLD membership before rebuilding
  clouds_.erase(std::remove_if(clouds_.begin(), clouds_.end(),
                               [&](const cloud::CloudPtr& c) {
                                 return c->id() == removed;
                               }),
                clouds_.end());
  rebuild_guards();
  return commit_membership_image(std::move(next));
}

}  // namespace unidrive::core
