// UploadPipeline — the staged, streaming data-plane write path:
//
//   scan/CDC  ──feed()──►  [dedup probe]  ──►  [bounded encode queue]  ──►  encode workers
//   (producer)             (pool-hit short-circuit)      (seal + RS fan-out
//                                                        on the shared
//                                                        Executor)
//                                                              │ add_file()
//                                                              ▼
//                                                     StreamingUploadDriver
//                                                     (place + transfer)
//
// Backpressure and bounded memory: feed() is an admission gate that
// reserves a segment's full footprint — plaintext + code_n coded shards —
// against PipelineConfig::max_inflight_bytes and blocks the producer until
// enough in-flight bytes drain. The charge is released in stages: the
// plaintext portion as soon as the encode worker has produced the shards,
// the shard portion when the transfer stage reports the segment settled
// (every placed block acked, nothing more assignable). A segment larger
// than the whole cap is admitted alone (the gate opens when the pipeline
// is empty) so progress is always possible.
//
// finish() closes the stream, drains every stage, and returns the
// SegmentInfo records exactly like the old monolithic upload_segments()
// did — including the availability floor (>= k distinct blocks placed, or
// kUnavailable). cancel() aborts all stages without deadlocking even when
// a cloud call hangs: queued work is dropped, running transfers finish
// their current request, and all reserved bytes are released.
//
// With PipelineConfig::enabled = false the same object runs the legacy
// monolithic path (hold all segments, then one batch scheduler round with
// per-block on-demand encoding) — the baseline the pipeline benchmark
// compares against.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cloud/async.h"
#include "cloud/health.h"
#include "cloud/provider.h"
#include "common/executor.h"
#include "dedup/pool_index.h"
#include "erasure/rs.h"
#include "metadata/types.h"
#include "obs/obs.h"
#include "sched/monitor.h"
#include "sched/plan.h"
#include "sched/streaming_driver.h"

namespace unidrive::core {

struct PipelineConfig {
  // false = legacy monolithic round (scan fully, then encode+upload batch).
  bool enabled = true;
  // Shared executor width; 0 = max(clouds * connections, hardware). The
  // UNIDRIVE_PIPELINE_THREADS environment variable overrides either.
  std::size_t threads = 0;
  // Dedicated encode-stage workers popping the bounded queue. Each encode
  // additionally fans its shard rows out over the shared executor.
  std::size_t encode_workers = 2;
  // Capacity of the scan -> encode queue (segments).
  std::size_t encode_queue_capacity = 4;
  // Admission cap on plaintext + shard bytes resident in the pipeline.
  std::size_t max_inflight_bytes = 256u << 20;
  // Completion-based transfers: when an async cloud resolver is supplied,
  // block RPCs launch through the AsyncCloud layer and re-enter the
  // scheduler from their completion — no executor thread is held while a
  // request is on the wire, so in-flight transfers are bounded by the
  // per-cloud connection budget, not the thread count. false forces the
  // blocking one-thread-per-RPC path even when a resolver exists.
  bool async_transfers = true;
  // Width of the dedicated async I/O pool used for the SyncAdapter leaf
  // (blocking RPCs of providers with no native async). 0 = share the
  // pipeline executor.
  std::size_t io_threads = 0;
  // Probe the content-addressed segment pool before encode: a hit skips
  // encode + transfer entirely and only a file→segment reference is
  // committed. Requires a pool index wired through the constructor; off is
  // the dedup-free baseline the dedup benchmark compares against.
  bool dedup = true;
};

// Resolves a cloud id to its guarded provider (never the raw cloud).
using FindCloudFn = std::function<cloud::CloudProvider*(cloud::CloudId)>;

// Resolves a cloud id to its async (completion-based) twin, or nullptr.
using FindAsyncCloudFn = std::function<cloud::AsyncCloud*(cloud::CloudId)>;

class UploadPipeline {
 public:
  UploadPipeline(const sched::CodeParams& params, erasure::RsCode code,
                 std::vector<cloud::CloudId> clouds,
                 sched::DriverConfig driver_config,
                 sched::ThroughputMonitor& monitor,
                 std::shared_ptr<Executor> executor, FindCloudFn find_cloud,
                 PipelineConfig pipeline_config,
                 std::shared_ptr<cloud::CloudHealthRegistry> health,
                 obs::ObsPtr obs, FindAsyncCloudFn find_async = nullptr,
                 dedup::PoolIndexPtr pool = nullptr, std::string folder = {});
  ~UploadPipeline();

  UploadPipeline(const UploadPipeline&) = delete;
  UploadPipeline& operator=(const UploadPipeline&) = delete;

  // Hand one new segment to the pipeline. Blocks while the in-flight-bytes
  // cap is reached (backpressure on the scanner). Duplicate ids are
  // dropped. Returns immediately after cancel().
  void feed(const std::string& id, Bytes bytes);

  // End of stream: drain every stage and return the segment records (with
  // final block locations) in feed order. kUnavailable if any segment
  // ended below k distinct blocks. Call exactly once.
  Result<std::vector<metadata::SegmentInfo>> finish();

  // Abort: stop assigning work, drop queued segments, release every
  // blocked producer and all reserved bytes. In-flight cloud requests
  // complete; finish() afterwards reports the cancellation.
  void cancel();

  // Bytes currently reserved against the cap (for tests).
  [[nodiscard]] std::size_t inflight_bytes() const;

  // Accounting for segments short-circuited by a pool hit this round:
  // their bytes never entered the encode queue and no block RPC was issued,
  // yet finish() still returns full SegmentInfo records for them (block
  // locations come from the pool). Surfaced in SyncReport.
  struct DedupStats {
    std::size_t segments = 0;
    std::uint64_t bytes_saved = 0;
    std::uint64_t blocks_saved = 0;
  };
  [[nodiscard]] DedupStats dedup_stats() const;

 private:
  struct EncodeJob {
    std::string id;
    Bytes bytes;
  };

  void encode_worker();
  void on_segment_settled(const std::string& id);  // under the driver lock
  Status transfer(const sched::BlockTask& task);
  // Completion-based launcher handed to the driver (called under its
  // lock). Fast-fail paths defer the completion via the executor — the
  // AsyncCloud contract forbids running it on the caller's stack.
  cloud::AsyncHandle transfer_async(const sched::BlockTask& task,
                                    sched::TransferDoneFn done);
  void release_bytes_locked(std::size_t n);  // mem_mutex_ held
  void release_retained_pins();  // roll back pool pins of an aborted round
  void join_encode_workers();
  Result<std::vector<metadata::SegmentInfo>> finish_monolithic();
  Result<std::vector<metadata::SegmentInfo>> build_results(
      const std::function<std::vector<metadata::BlockLocation>(
          const std::string&)>& locations,
      std::size_t overprovisioned);

  sched::CodeParams params_;
  erasure::RsCode code_;
  std::vector<cloud::CloudId> clouds_;
  sched::DriverConfig driver_config_;
  sched::ThroughputMonitor& monitor_;
  std::shared_ptr<Executor> executor_;
  FindCloudFn find_cloud_;
  FindAsyncCloudFn find_async_;
  dedup::PoolIndexPtr pool_;
  std::string folder_;
  PipelineConfig config_;
  std::shared_ptr<cloud::CloudHealthRegistry> health_;
  obs::ObsPtr obs_;

  // Admission gate + accounting. mem_mutex_ is a leaf lock everywhere
  // except feed(), which holds nothing else.
  mutable std::mutex mem_mutex_;
  std::condition_variable mem_cv_;
  std::size_t inflight_ = 0;
  std::size_t peak_inflight_ = 0;
  // Remaining charged bytes per fed segment (plaintext drops off after
  // encode, the shard part on settle).
  std::map<std::string, std::size_t> footprint_;
  bool workers_started_ = false;
  std::atomic<bool> cancelled_{false};

  // Feed order and sizes, for building the result records.
  std::vector<std::pair<std::string, std::uint64_t>> fed_;
  std::set<std::string> fed_ids_;

  // Pool-hit bookkeeping (guarded by mem_mutex_): block locations to emit
  // for short-circuited segments, the ids whose pool pin this round created
  // (released again if the round aborts), and the savings tally.
  std::map<std::string, std::vector<metadata::BlockLocation>> deduped_;
  std::vector<std::string> retained_;
  DedupStats dedup_;

  // scan -> encode channel.
  BoundedQueue<EncodeJob> queue_;
  std::vector<std::thread> encode_threads_;

  // Encoded shards awaiting transfer, indexed by block index. shared_ptr
  // so a transfer in progress keeps its shard alive across a concurrent
  // (impossible for settled segments, but cheap) release.
  std::mutex cache_mutex_;
  std::map<std::string, std::vector<std::shared_ptr<const Bytes>>> shards_;

  // Transfer stage (pipelined mode only).
  std::unique_ptr<sched::StreamingUploadDriver> driver_;

  // Monolithic mode: segments held until finish().
  std::map<std::string, Bytes> pending_;
};

}  // namespace unidrive::core
