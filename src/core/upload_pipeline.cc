#include "core/upload_pipeline.h"

#include <algorithm>

#include "common/clock.h"
#include "common/logging.h"
#include "crypto/convergent.h"
#include "sched/threaded_driver.h"
#include "sched/upload_scheduler.h"

namespace unidrive::core {

using metadata::SegmentInfo;

UploadPipeline::UploadPipeline(const sched::CodeParams& params,
                               erasure::RsCode code,
                               std::vector<cloud::CloudId> clouds,
                               sched::DriverConfig driver_config,
                               sched::ThroughputMonitor& monitor,
                               std::shared_ptr<Executor> executor,
                               FindCloudFn find_cloud,
                               PipelineConfig pipeline_config,
                               std::shared_ptr<cloud::CloudHealthRegistry> health,
                               obs::ObsPtr obs, FindAsyncCloudFn find_async,
                               dedup::PoolIndexPtr pool, std::string folder)
    : params_(params),
      code_(std::move(code)),
      clouds_(std::move(clouds)),
      driver_config_(driver_config),
      monitor_(monitor),
      executor_(std::move(executor)),
      find_cloud_(std::move(find_cloud)),
      find_async_(std::move(find_async)),
      pool_(std::move(pool)),
      folder_(std::move(folder)),
      config_(pipeline_config),
      health_(std::move(health)),
      obs_(std::move(obs)),
      queue_(config_.encode_queue_capacity) {
  if (config_.enabled) {
    sched::AsyncTransferFn async;
    if (find_async_ != nullptr && config_.async_transfers) {
      async = [this](const sched::BlockTask& task,
                     sched::TransferDoneFn done) {
        return transfer_async(task, std::move(done));
      };
    }
    driver_ = std::make_unique<sched::StreamingUploadDriver>(
        params_, clouds_, driver_config_, monitor_, executor_,
        [this](const sched::BlockTask& task) { return transfer(task); },
        sched::UploadOptions{}, health_, obs_,
        [this](const std::string& id) { on_segment_settled(id); },
        std::move(async));
  }
}

UploadPipeline::~UploadPipeline() {
  cancel();
  join_encode_workers();
  // driver_ (if any) cancels and drains in its own destructor.
}

std::size_t UploadPipeline::inflight_bytes() const {
  std::lock_guard<std::mutex> guard(mem_mutex_);
  return inflight_;
}

void UploadPipeline::release_bytes_locked(std::size_t n) {
  inflight_ -= std::min(inflight_, n);
  obs::set_gauge(obs_.get(), "pipeline.inflight_bytes",
                 static_cast<double>(inflight_));
  mem_cv_.notify_all();
}

void UploadPipeline::feed(const std::string& id, Bytes bytes) {
  if (cancelled_.load()) return;
  const std::size_t plain = bytes.size();
  // Full footprint reserved up front: the plaintext now in hand plus every
  // coded shard the encode stage will materialize for it.
  const std::size_t footprint =
      plain + code_.shard_size(plain) * params_.code_n();

  {
    std::unique_lock<std::mutex> lock(mem_mutex_);
    if (fed_ids_.count(id) != 0) return;  // dedup (defensive; scanner dedups)
    // Content-addressed pool probe: if another file, version, folder, or
    // user already placed this exact segment, skip encode + transfer and
    // record the pooled locations to emit from finish(). The pin taken here
    // keeps cross-folder GC from freeing the blocks before our commit; it
    // is rolled back if the round aborts. pool_'s mutex is a leaf under
    // mem_mutex_.
    if (config_.dedup && pool_ != nullptr) {
      auto probe = pool_->probe_and_retain(folder_, id, plain, params_.k);
      obs::add_counter(obs_.get(), probe.hit ? "dedup.hit" : "dedup.miss");
      if (probe.hit) {
        fed_ids_.insert(id);
        fed_.emplace_back(id, plain);
        if (probe.newly_retained) retained_.push_back(id);
        dedup_.segments += 1;
        dedup_.bytes_saved += plain;
        dedup_.blocks_saved += probe.blocks.size();
        obs::add_counter(obs_.get(), "dedup.bytes_saved", plain);
        obs::add_counter(obs_.get(), "dedup.blocks_saved",
                         probe.blocks.size());
        deduped_.emplace(id, std::move(probe.blocks));
        return;
      }
    }
    if (!config_.enabled) {
      // Monolithic baseline: hold everything, count only the plaintext
      // (shards are produced per block on demand during the batch round).
      fed_ids_.insert(id);
      fed_.emplace_back(id, plain);
      inflight_ += plain;
      peak_inflight_ = std::max(peak_inflight_, inflight_);
      obs::set_gauge(obs_.get(), "pipeline.inflight_bytes",
                     static_cast<double>(inflight_));
      obs::set_gauge(obs_.get(), "pipeline.inflight_bytes_peak",
                     static_cast<double>(peak_inflight_));
      lock.unlock();
      std::lock_guard<std::mutex> cache(cache_mutex_);
      pending_.emplace(id, std::move(bytes));
      return;
    }
    // Admission gate: wait for room. An oversized segment (footprint >
    // cap) is admitted once the pipeline is empty, so it cannot wedge.
    mem_cv_.wait(lock, [&] {
      return cancelled_.load() || inflight_ == 0 ||
             inflight_ + footprint <= config_.max_inflight_bytes;
    });
    if (cancelled_.load()) return;
    fed_ids_.insert(id);
    fed_.emplace_back(id, plain);
    inflight_ += footprint;
    footprint_[id] = footprint;
    peak_inflight_ = std::max(peak_inflight_, inflight_);
    obs::set_gauge(obs_.get(), "pipeline.inflight_bytes",
                   static_cast<double>(inflight_));
    obs::set_gauge(obs_.get(), "pipeline.inflight_bytes_peak",
                   static_cast<double>(peak_inflight_));
    if (!workers_started_) {
      workers_started_ = true;
      const std::size_t n = std::max<std::size_t>(1, config_.encode_workers);
      encode_threads_.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        encode_threads_.emplace_back([this] { encode_worker(); });
      }
    }
  }

  if (!queue_.push(EncodeJob{id, std::move(bytes)})) {
    // Stream cancelled while blocked on the queue: roll the charge back.
    std::lock_guard<std::mutex> lock(mem_mutex_);
    release_bytes_locked(footprint_[id]);
    footprint_.erase(id);
    return;
  }
  obs::set_gauge(obs_.get(), "pipeline.queue.encode",
                 static_cast<double>(queue_.depth()));
}

void UploadPipeline::encode_worker() {
  std::vector<std::uint32_t> indices(params_.code_n());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    indices[i] = static_cast<std::uint32_t>(i);
  }
  while (auto job = queue_.pop()) {
    obs::set_gauge(obs_.get(), "pipeline.queue.encode",
                   static_cast<double>(queue_.depth()));
    const std::size_t plain = job->bytes.size();
    const TimePoint start = RealClock::instance().now();
    // Convergent seal before encode (in place, so the admission-gate charge
    // still covers the bytes): blocks stored in the shared pool are coded
    // ciphertext, deterministic per segment so dedup survives encryption.
    crypto::convergent_seal_inplace(job->id, job->bytes);
    std::vector<erasure::Shard> shards =
        code_.encode_shards_parallel(ByteSpan(job->bytes), indices,
                                     *executor_);
    obs::observe(obs_.get(), "pipeline.stage.encode.latency",
                 RealClock::instance().now() - start);
    Bytes().swap(job->bytes);  // plaintext no longer needed

    {
      std::lock_guard<std::mutex> cache(cache_mutex_);
      auto& slot = shards_[job->id];
      slot.assign(params_.code_n(), nullptr);
      for (erasure::Shard& s : shards) {
        slot[s.index] = std::make_shared<const Bytes>(std::move(s.data));
      }
    }
    {
      std::lock_guard<std::mutex> lock(mem_mutex_);
      auto it = footprint_.find(job->id);
      if (it != footprint_.end()) {
        const std::size_t drop = std::min(it->second, plain);
        it->second -= drop;
        release_bytes_locked(drop);
      }
    }
    if (!cancelled_.load()) {
      sched::UploadFileSpec spec;
      spec.path = job->id;  // data-plane job: one pseudo-file per segment
      spec.segments.push_back({job->id, plain});
      driver_->add_file(std::move(spec));
    }
  }
}

// Runs under the streaming driver's lock; the driver has already abandoned
// the segment, so these bytes can never be requested again.
void UploadPipeline::on_segment_settled(const std::string& id) {
  {
    std::lock_guard<std::mutex> cache(cache_mutex_);
    shards_.erase(id);
  }
  std::lock_guard<std::mutex> lock(mem_mutex_);
  const auto it = footprint_.find(id);
  if (it == footprint_.end()) return;
  release_bytes_locked(it->second);
  footprint_.erase(it);
}

Status UploadPipeline::transfer(const sched::BlockTask& task) {
  std::shared_ptr<const Bytes> shard;
  {
    std::lock_guard<std::mutex> cache(cache_mutex_);
    const auto it = shards_.find(task.segment_id);
    if (it != shards_.end() && task.block_index < it->second.size()) {
      shard = it->second[task.block_index];
    }
  }
  if (shard == nullptr) {
    return make_error(ErrorCode::kInternal,
                      "shard bytes unavailable for segment " +
                          task.segment_id);
  }
  cloud::CloudProvider* provider = find_cloud_(task.cloud);
  if (provider == nullptr) {
    return make_error(ErrorCode::kInternal, "unknown cloud");
  }
  return provider->upload(
      metadata::block_path(task.segment_id, task.block_index),
      ByteSpan(*shard));
}

cloud::AsyncHandle UploadPipeline::transfer_async(
    const sched::BlockTask& task, sched::TransferDoneFn done) {
  std::shared_ptr<const Bytes> shard;
  {
    std::lock_guard<std::mutex> cache(cache_mutex_);
    const auto it = shards_.find(task.segment_id);
    if (it != shards_.end() && task.block_index < it->second.size()) {
      shard = it->second[task.block_index];
    }
  }
  if (shard == nullptr) {
    const std::string id = task.segment_id;
    executor_->submit([done = std::move(done), id] {
      done(make_error(ErrorCode::kInternal,
                      "shard bytes unavailable for segment " + id));
    });
    return {};
  }
  cloud::AsyncCloud* provider = find_async_(task.cloud);
  if (provider == nullptr) {
    executor_->submit([done = std::move(done)] {
      done(make_error(ErrorCode::kInternal, "unknown cloud"));
    });
    return {};
  }
  // The captured shared_ptr keeps the shard bytes alive until the
  // completion runs (or the handle is cancelled) — a settle that drops the
  // cache entry cannot invalidate the span on the wire.
  return provider->upload_async(
      metadata::block_path(task.segment_id, task.block_index),
      ByteSpan(*shard),
      [shard, done = std::move(done)](Status status) {
        done(std::move(status));
      });
}

void UploadPipeline::cancel() {
  {
    std::lock_guard<std::mutex> lock(mem_mutex_);
    cancelled_.store(true);
    mem_cv_.notify_all();
  }
  queue_.cancel();
  if (driver_ != nullptr) driver_->cancel();
  release_retained_pins();
}

// Roll back pool pins taken by this round's probes. Pins already superseded
// by a committed image (the client absorbs after commit) are unaffected —
// release() drops only the uncommitted pin — so calling this after a
// successful round (the destructor does) is harmless.
void UploadPipeline::release_retained_pins() {
  std::vector<std::string> ids;
  {
    std::lock_guard<std::mutex> lock(mem_mutex_);
    ids.swap(retained_);
  }
  if (pool_ == nullptr) return;
  for (const std::string& id : ids) pool_->release(folder_, id);
}

UploadPipeline::DedupStats UploadPipeline::dedup_stats() const {
  std::lock_guard<std::mutex> lock(mem_mutex_);
  return dedup_;
}

void UploadPipeline::join_encode_workers() {
  for (std::thread& t : encode_threads_) {
    if (t.joinable()) t.join();
  }
  encode_threads_.clear();
}

Result<std::vector<SegmentInfo>> UploadPipeline::build_results(
    const std::function<std::vector<metadata::BlockLocation>(
        const std::string&)>& locations,
    std::size_t overprovisioned) {
  // Per-round placement accounting: where the availability-first scheduler
  // actually put the blocks, and how many were over-provisioned extras.
  std::size_t placed = 0;
  std::vector<SegmentInfo> out;
  out.reserve(fed_.size());
  for (const auto& [id, size] : fed_) {
    SegmentInfo info;
    info.id = id;
    info.size = size;
    // Pool hits short-circuited encode + transfer: their locations come
    // from the pooled copy and count toward no placement counters (no RPC
    // was issued for them this round).
    const auto dedup_it = deduped_.find(id);
    if (dedup_it != deduped_.end()) {
      info.blocks = dedup_it->second;
      out.push_back(std::move(info));
      continue;
    }
    info.blocks = locations(id);
    for (const metadata::BlockLocation& b : info.blocks) {
      obs::add_counter(obs_.get(),
                       "sched.blocks.cloud" + std::to_string(b.cloud));
      ++placed;
    }
    out.push_back(std::move(info));
  }
  obs::add_counter(obs_.get(), "sched.blocks.placed", placed);
  obs::add_counter(obs_.get(), "sched.overprovisioned", overprovisioned);
  obs::add_counter(obs_.get(), "sched.segments", fed_.size());

  for (const SegmentInfo& info : out) {
    // Availability is the hard floor: fewer than k blocks means the
    // segment is not recoverable from the multi-cloud at all.
    std::set<std::uint32_t> distinct;
    for (const metadata::BlockLocation& b : info.blocks) {
      distinct.insert(b.block_index);
    }
    if (distinct.size() < params_.k) {
      return make_error(ErrorCode::kUnavailable,
                        "segment " + info.id +
                            " failed to reach availability");
    }
  }
  return out;
}

Result<std::vector<SegmentInfo>> UploadPipeline::finish_monolithic() {
  std::vector<SegmentInfo> empty;
  std::map<std::string, Bytes> segments;
  {
    std::lock_guard<std::mutex> cache(cache_mutex_);
    segments.swap(pending_);
  }
  const auto drop_all = [&] {
    std::lock_guard<std::mutex> lock(mem_mutex_);
    release_bytes_locked(inflight_);
  };
  if (cancelled_.load()) {
    drop_all();
    if (fed_.empty()) return empty;
    return make_error(ErrorCode::kUnavailable, "upload pipeline cancelled");
  }
  if (segments.empty()) {
    drop_all();
    if (fed_.empty()) return empty;
    // Nothing to upload but fed_ is not empty: every fed segment was a
    // pool hit. Their SegmentInfos must still be emitted, or the caller
    // would commit file changes referencing segments that never get an
    // upsert_segment record — blockless, dangling refs whose probe pin is
    // later released without a committed reference backing it.
    return build_results(
        [](const std::string&) { return std::vector<metadata::BlockLocation>{}; },
        0);
  }

  // Seal once up front; the per-block transfer lambda below re-encodes from
  // these buffers on every task, so they must already be coded ciphertext.
  for (auto& [id, data] : segments) {
    crypto::convergent_seal_inplace(id, data);
  }

  // Batch all segments as one upload job (the two-phase scheduler treats
  // each segment's file position by insertion order).
  std::vector<sched::UploadFileSpec> specs;
  for (const auto& [id, data] : segments) {
    sched::UploadFileSpec spec;
    spec.path = id;
    spec.segments.push_back({id, data.size()});
    specs.push_back(std::move(spec));
  }
  sched::UploadScheduler scheduler(params_, clouds_, specs);

  const auto transfer = [&](const sched::BlockTask& task) -> Status {
    const auto it = segments.find(task.segment_id);
    if (it == segments.end()) {
      return make_error(ErrorCode::kInternal, "unknown segment");
    }
    const std::vector<erasure::Shard> shards =
        code_.encode_shards(ByteSpan(it->second), {task.block_index});
    cloud::CloudProvider* provider = find_cloud_(task.cloud);
    if (provider == nullptr) {
      return make_error(ErrorCode::kInternal, "unknown cloud");
    }
    return provider->upload(
        metadata::block_path(task.segment_id, task.block_index),
        ByteSpan(shards.front().data));
  };

  sched::ThreadedTransferDriver driver(clouds_, driver_config_, monitor_,
                                       health_, obs_, executor_);
  driver.run_upload(scheduler, transfer);
  drop_all();

  return build_results(
      [&](const std::string& id) { return scheduler.locations(id); },
      scheduler.overprovisioned_blocks().size());
}

Result<std::vector<SegmentInfo>> UploadPipeline::finish() {
  if (!config_.enabled) {
    queue_.close();
    return finish_monolithic();
  }

  // Drain stage by stage: no more scan input -> encode workers exit once
  // the queue empties -> no more add_file -> the driver drains.
  queue_.close();
  join_encode_workers();
  driver_->close();
  driver_->wait();

  // Anything still charged (cancelled mid-flight, or segments whose
  // settle callback never fired) is released now; the driver is drained,
  // so no transfer can touch the cache anymore.
  {
    std::lock_guard<std::mutex> cache(cache_mutex_);
    shards_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(mem_mutex_);
    footprint_.clear();
    release_bytes_locked(inflight_);
  }

  if (cancelled_.load()) {
    if (fed_.empty()) return std::vector<SegmentInfo>{};
    return make_error(ErrorCode::kUnavailable, "upload pipeline cancelled");
  }
  return build_results(
      [&](const std::string& id) { return driver_->locations(id); },
      driver_->overprovisioned_blocks().size());
}

}  // namespace unidrive::core
