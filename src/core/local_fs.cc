#include "core/local_fs.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>

#include "cloud/path.h"

namespace unidrive::core {

namespace fs = std::filesystem;

// --- LocalFs::open_write (buffered default) ---------------------------------

namespace {

// Stages appends in memory and publishes through LocalFs::write() on
// commit, so the atomicity of the underlying write() carries over.
class BufferedFileWriter final : public LocalFs::FileWriter {
 public:
  BufferedFileWriter(LocalFs& fs, std::string path)
      : fs_(fs), path_(std::move(path)) {}

  Status append(ByteSpan data) override {
    if (closed_) {
      return make_error(ErrorCode::kInternal, "append after commit/abort");
    }
    buffer_.insert(buffer_.end(), data.begin(), data.end());
    return Status::ok();
  }

  Status commit() override {
    if (closed_) {
      return make_error(ErrorCode::kInternal, "double commit");
    }
    closed_ = true;
    const Status status = fs_.write(path_, buffer_);
    buffer_.clear();
    return status;
  }

  void abort() override {
    closed_ = true;
    buffer_.clear();
  }

 private:
  LocalFs& fs_;
  std::string path_;
  Bytes buffer_;
  bool closed_ = false;
};

// Streams appends straight to "<host>.part" and renames into place on
// commit: peak memory is one chunk, and a crash or abort mid-restore never
// leaves a half-written file at the destination path.
class DiskFileWriter final : public LocalFs::FileWriter {
 public:
  explicit DiskFileWriter(std::string host) : host_(std::move(host)) {
    fs::create_directories(fs::path(host_).parent_path());
    out_.open(part_path(), std::ios::binary | std::ios::trunc);
  }

  ~DiskFileWriter() override { abort(); }

  Status append(ByteSpan data) override {
    if (closed_) {
      return make_error(ErrorCode::kInternal, "append after commit/abort");
    }
    if (!out_) {
      return make_error(ErrorCode::kInternal, "cannot open " + part_path());
    }
    out_.write(reinterpret_cast<const char*>(data.data()),
               static_cast<std::streamsize>(data.size()));
    return out_ ? Status::ok()
                : make_error(ErrorCode::kInternal,
                             "short write to " + part_path());
  }

  Status commit() override {
    if (closed_) {
      return make_error(ErrorCode::kInternal, "double commit");
    }
    closed_ = true;
    out_.close();
    if (!out_) {
      abort_cleanup();
      return make_error(ErrorCode::kInternal, "short write to " + part_path());
    }
    std::error_code ec;
    fs::rename(part_path(), host_, ec);
    if (ec) {
      abort_cleanup();
      return make_error(ErrorCode::kInternal, ec.message());
    }
    return Status::ok();
  }

  void abort() override {
    if (closed_) return;
    closed_ = true;
    out_.close();
    abort_cleanup();
  }

 private:
  [[nodiscard]] std::string part_path() const { return host_ + ".part"; }
  void abort_cleanup() {
    std::error_code ec;
    fs::remove(part_path(), ec);
  }

  std::string host_;
  std::ofstream out_;
  bool closed_ = false;
};

}  // namespace

Result<std::unique_ptr<LocalFs::FileWriter>> LocalFs::open_write(
    const std::string& path) {
  return std::unique_ptr<FileWriter>(new BufferedFileWriter(*this, path));
}

// --- MemoryLocalFs ----------------------------------------------------------

Result<Bytes> MemoryLocalFs::read(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = files_.find(cloud::normalize_path(path));
  if (it == files_.end()) return make_error(ErrorCode::kNotFound, path);
  return it->second.data;
}

Status MemoryLocalFs::write(const std::string& path, ByteSpan data) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = files_[cloud::normalize_path(path)];
  e.data = Bytes(data.begin(), data.end());
  e.mtime = ++tick_;
  return Status::ok();
}

Status MemoryLocalFs::remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (files_.erase(cloud::normalize_path(path)) == 0) {
    return make_error(ErrorCode::kNotFound, path);
  }
  return Status::ok();
}

Status MemoryLocalFs::make_dir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  dirs_.insert(cloud::normalize_path(path));
  return Status::ok();
}

Status MemoryLocalFs::remove_dir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  dirs_.erase(cloud::normalize_path(path));
  return Status::ok();
}

std::vector<std::string> MemoryLocalFs::list_files() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, entry] : files_) out.push_back(path);
  return out;
}

std::vector<std::string> MemoryLocalFs::list_dirs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {dirs_.begin(), dirs_.end()};
}

Result<std::uint64_t> MemoryLocalFs::size(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = files_.find(cloud::normalize_path(path));
  if (it == files_.end()) return make_error(ErrorCode::kNotFound, path);
  return static_cast<std::uint64_t>(it->second.data.size());
}

Result<double> MemoryLocalFs::mtime(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = files_.find(cloud::normalize_path(path));
  if (it == files_.end()) return make_error(ErrorCode::kNotFound, path);
  return it->second.mtime;
}

// --- DiskLocalFs ------------------------------------------------------------

DiskLocalFs::DiskLocalFs(std::string root) : root_(std::move(root)) {
  fs::create_directories(root_);
}

std::string DiskLocalFs::host_path(const std::string& path) const {
  return root_ + cloud::normalize_path(path);
}

Result<std::unique_ptr<LocalFs::FileWriter>> DiskLocalFs::open_write(
    const std::string& path) {
  return std::unique_ptr<FileWriter>(new DiskFileWriter(host_path(path)));
}

Result<Bytes> DiskLocalFs::read(const std::string& path) const {
  std::ifstream in(host_path(path), std::ios::binary);
  if (!in) return make_error(ErrorCode::kNotFound, path);
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  return data;
}

Status DiskLocalFs::write(const std::string& path, ByteSpan data) {
  const std::string host = host_path(path);
  fs::create_directories(fs::path(host).parent_path());
  std::ofstream out(host, std::ios::binary | std::ios::trunc);
  if (!out) return make_error(ErrorCode::kInternal, "cannot open " + host);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return out ? Status::ok()
             : make_error(ErrorCode::kInternal, "short write to " + host);
}

Status DiskLocalFs::remove(const std::string& path) {
  std::error_code ec;
  if (!fs::remove(host_path(path), ec) || ec) {
    return make_error(ErrorCode::kNotFound, path);
  }
  return Status::ok();
}

Status DiskLocalFs::make_dir(const std::string& path) {
  std::error_code ec;
  fs::create_directories(host_path(path), ec);
  return ec ? make_error(ErrorCode::kInternal, ec.message()) : Status::ok();
}

Status DiskLocalFs::remove_dir(const std::string& path) {
  std::error_code ec;
  fs::remove_all(host_path(path), ec);
  return ec ? make_error(ErrorCode::kInternal, ec.message()) : Status::ok();
}

std::vector<std::string> DiskLocalFs::list_files() const {
  std::vector<std::string> out;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file()) continue;
    std::string rel = it->path().string().substr(root_.size());
    out.push_back(cloud::normalize_path(rel));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> DiskLocalFs::list_dirs() const {
  std::vector<std::string> out;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) break;
    if (!it->is_directory()) continue;
    std::string rel = it->path().string().substr(root_.size());
    out.push_back(cloud::normalize_path(rel));
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::uint64_t> DiskLocalFs::size(const std::string& path) const {
  std::error_code ec;
  const auto n = fs::file_size(host_path(path), ec);
  if (ec) return make_error(ErrorCode::kNotFound, path);
  return static_cast<std::uint64_t>(n);
}

Result<double> DiskLocalFs::mtime(const std::string& path) const {
  std::error_code ec;
  const auto t = fs::last_write_time(host_path(path), ec);
  if (ec) return make_error(ErrorCode::kNotFound, path);
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace unidrive::core
