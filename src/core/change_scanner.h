// Change scanner — detects local edits by comparing the sync folder against
// the last committed metadata image (the role of the native apps' file
// watcher; scan-based so it works identically on every LocalFs backend).
//
// Files whose size and content hash match their image snapshot are
// unchanged; everything else produces a ChangedFileList entry. The scanner
// also returns the segmentation of added/edited files so the data plane can
// encode and upload exactly the *new* segments (dedup against the pool).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "chunker/segmenter.h"
#include "core/local_fs.h"
#include "metadata/changelist.h"
#include "metadata/image.h"

namespace unidrive::core {

struct ScanResult {
  metadata::ChangedFileList changes;
  // Content of every new segment (not yet in the image's pool), keyed by
  // segment id — the upload work list.
  std::map<std::string, Bytes> new_segments;
  // Snapshot of each added/edited file (also stored inside changes).
  std::vector<metadata::FileSnapshot> touched;
  std::size_t files_scanned = 0;
  std::size_t files_hashed = 0;  // cache misses (had to read + hash)
};

// Fingerprint cache: maps (path, size, mtime) to the last computed content
// hash so repeated scans of an unchanged folder read nothing. Backends with
// coarse mtimes still work — a content change without an mtime/size change
// is missed until either moves, the same trade-off real sync clients make.
class ScanCache {
 public:
  // Returns the cached content hash, or nullptr on miss.
  [[nodiscard]] const std::string* lookup(const std::string& path,
                                          std::uint64_t size,
                                          double mtime) const;
  void update(const std::string& path, std::uint64_t size, double mtime,
              std::string content_hash);
  void forget(const std::string& path);
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t size = 0;
    double mtime = 0;
    std::string content_hash;
  };
  std::map<std::string, Entry> entries_;
};

// Streaming consumer for new-segment bytes discovered during the scan.
using SegmentSink = std::function<void(const std::string& id, Bytes bytes)>;

// `seg_params.theta` is the target segment size; `device` stamps snapshot
// origin. `cache` (optional) skips re-hashing files whose (size, mtime)
// fingerprint is unchanged and is updated in place.
//
// When `sink` is set, each new segment's bytes are handed to it as soon as
// the segment is discovered (deduped within the scan) instead of being
// accumulated in ScanResult::new_segments — this lets the sync pipeline
// start encoding and uploading while the scan is still hashing later
// files. The sink may block (backpressure from a bounded pipeline).
ScanResult scan_local_changes(const LocalFs& fs,
                              const metadata::SyncFolderImage& image,
                              const chunker::SegmenterParams& seg_params,
                              const std::string& device,
                              ScanCache* cache = nullptr,
                              const SegmentSink& sink = nullptr);

}  // namespace unidrive::core
