// DownloadPipeline — the staged, streaming data-plane restore path, the
// mirror image of UploadPipeline:
//
//   apply/restore  ──add_file()──►  [admission gate]  ──►  StreamingDownloadDriver
//   (producer)                       (bounded prefetch      (fetch k distinct
//                                    window)                blocks per segment)
//                                                                │ on_fetched
//                                                                ▼
//                                                         decode tasks
//                                                         (RS row fan-out on
//                                                         the shared Executor,
//                                                         SHA-1 verified)
//                                                                │
//                                                                ▼
//                                                         in-order file write
//                                                         (LocalFs::FileWriter)
//
// Bounded memory: add_file() admits each segment of a restore batch in
// snapshot order, reserving its full footprint — k coded shards plus the
// decoded plaintext — against PipelineConfig::max_inflight_bytes and
// blocking the producer until enough in-flight bytes drain. The charge is
// released in stages: the shard portion as soon as the segment decodes,
// the plaintext portion once every file position referencing the segment
// has been written. Peak memory is therefore bounded by the window, not by
// file or batch size. A segment larger than the whole cap is admitted
// alone (the gate opens when the pipeline is empty) so progress is always
// possible. Deliberately uncharged overshoot: straggler-hedge duplicates
// and corrupt-search extra blocks (both rare, both one block at a time).
//
// Integrity: every segment decode is verified against the segment id
// (SHA-1 of the content). On a mismatch the pipeline runs the corrupt-
// shard search — request one more distinct block from the driver, retry
// every k-subset — until a clean subset decodes or supply runs out.
// Completed files additionally verify total size and the snapshot's
// content hash before the FileWriter commits; a failed file never leaves
// a partial write behind (the writer aborts).
//
// One long-lived scheduler/driver pair serves the whole batch: per-cloud
// connection pools stay busy across segment and file boundaries, and
// straggler hedging spans the batch. finish() drains every stage and
// returns one status per file in feed order. cancel() aborts without
// deadlocking even when a cloud call hangs: pending segments fail fast,
// running transfers finish their current request, and all reserved bytes
// are released.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "cloud/async.h"
#include "cloud/health.h"
#include "cloud/provider.h"
#include "common/executor.h"
#include "core/local_fs.h"
#include "core/upload_pipeline.h"  // PipelineConfig, Find{,Async}CloudFn
#include "crypto/sha1.h"
#include "erasure/rs.h"
#include "metadata/store.h"
#include "metadata/types.h"
#include "obs/obs.h"
#include "sched/monitor.h"
#include "sched/streaming_driver.h"

namespace unidrive::core {

// Decodes `segment` from any k-subset of `shards` whose plaintext matches
// the segment's content hash (its id). |shards| stays small (<= code_n),
// so the combinatorial search is cheap; with at most one corrupt shard a
// single extra block already guarantees a clean subset. With a non-null
// executor each candidate decode fans its k data rows out in parallel.
Result<Bytes> decode_verified(const erasure::RsCode& code,
                              const std::vector<erasure::Shard>& shards,
                              const metadata::SegmentInfo& segment,
                              std::size_t k, Executor* executor);

class DownloadPipeline {
 public:
  struct FileResult {
    std::string path;
    Status status = Status::ok();
  };

  DownloadPipeline(std::size_t k, erasure::RsCode code,
                   std::vector<cloud::CloudId> clouds,
                   sched::DriverConfig driver_config,
                   sched::ThroughputMonitor& monitor,
                   std::shared_ptr<Executor> executor, FindCloudFn find_cloud,
                   PipelineConfig pipeline_config, LocalFs& fs,
                   std::shared_ptr<cloud::CloudHealthRegistry> health,
                   obs::ObsPtr obs, FindAsyncCloudFn find_async = nullptr);
  ~DownloadPipeline();

  DownloadPipeline(const DownloadPipeline&) = delete;
  DownloadPipeline& operator=(const DownloadPipeline&) = delete;

  // Enqueue one file restore; segments resolve against `image` (only
  // consulted during this call). Blocks while the in-flight-bytes cap is
  // reached (backpressure on the caller). Returns immediately after
  // cancel().
  void add_file(const metadata::FileSnapshot& snapshot,
                const metadata::SyncFolderImage& image);

  // End of stream: drain every stage and return one status per file, in
  // feed order. Call exactly once.
  std::vector<FileResult> finish();

  // Abort: stop assigning fetches, fail pending segments, release every
  // blocked producer and all reserved bytes. In-flight cloud requests
  // complete; unfinished files are aborted (no partial writes survive).
  void cancel();

  // Bytes currently reserved against the cap (for tests).
  [[nodiscard]] std::size_t inflight_bytes() const;

 private:
  struct SegState {
    metadata::SegmentInfo info;
    // Remaining charged bytes, split so each stage releases its portion.
    std::size_t shard_charge = 0;
    std::size_t plain_charge = 0;
    Bytes plain;           // decoded plaintext (until all waiters consume)
    bool resolved = false;  // decoded or failed
    bool decoded = false;
    bool decode_attempted = false;  // distinguishes kUnavailable / kCorrupt
    Status failure = Status::ok();
    // File positions (file index, segment position) awaiting this segment.
    std::size_t waiters_remaining = 0;
  };

  struct FileState {
    std::string path;
    std::uint64_t expected_size = 0;
    std::string content_hash;
    std::vector<std::string> segs;  // segment ids, snapshot order
    std::size_t admitted = 0;       // prefix of segs fed to the driver
    std::size_t next_write = 0;     // next position to append
    std::unique_ptr<LocalFs::FileWriter> writer;
    crypto::Sha1 hasher;
    std::uint64_t written = 0;
    Status status = Status::ok();
    bool closed = false;  // committed or aborted
  };

  // Driver callback (under the driver lock): bookkeeping only, the heavy
  // lifting is posted to the executor.
  void on_segment_fetched(const std::string& id, bool ok);
  // Executor task: decode + verify (ok) or fail (not ok) one segment.
  void process_segment(const std::string& id, bool ok);
  Status transfer(const sched::BlockTask& task);
  // Completion-based launcher handed to the driver (called under its
  // lock). The fetched bytes land in shard_cache_ before `done` fires;
  // fast-fail paths defer the completion via the executor.
  cloud::AsyncHandle transfer_async(const sched::BlockTask& task,
                                    sched::TransferDoneFn done);

  // All *_locked helpers require mu_ held.
  void resolve_failed_locked(const std::string& id, SegState& seg,
                             Status status);
  void advance_files_locked();
  void advance_file_locked(std::size_t file_index);
  void fail_file_locked(FileState& file, Status status);
  void finalize_file_locked(FileState& file);
  void consume_waiter_locked(const std::string& seg_id);
  void maybe_release_segment_locked(const std::string& seg_id);
  void release_bytes(std::size_t n);

  std::size_t k_;
  erasure::RsCode code_;
  std::shared_ptr<Executor> executor_;
  FindCloudFn find_cloud_;
  FindAsyncCloudFn find_async_;
  PipelineConfig config_;
  LocalFs& fs_;
  obs::ObsPtr obs_;

  // Admission gate + accounting. mem_mutex_ is a leaf lock.
  mutable std::mutex mem_mutex_;
  std::condition_variable mem_cv_;
  std::size_t inflight_ = 0;
  std::size_t peak_inflight_ = 0;
  std::atomic<bool> cancelled_{false};

  // Fetched shard bytes, keyed by segment id then block index. Written by
  // transfer() on executor threads, consumed by decode tasks.
  mutable std::mutex cache_mutex_;
  std::map<std::string, std::map<std::uint32_t, Bytes>> shard_cache_;

  // Pipeline state: files in feed order, live segments by id. cv_ signals
  // segment resolution and file completion.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<FileState> files_;
  std::map<std::string, SegState> segments_;
  std::size_t unresolved_segments_ = 0;
  std::size_t open_files_ = 0;
  std::size_t decode_queue_ = 0;  // fetched segments awaiting their decode task

  // Created last, destroyed first: its destructor drains outstanding
  // transfers that call back into this object.
  std::unique_ptr<sched::StreamingDownloadDriver> driver_;
};

}  // namespace unidrive::core
