// UniDriveClient — the complete server-less, client-centric sync engine.
//
// One instance represents one device. sync() runs one round of Algorithm 1:
//
//   if local changes exist:
//       upload new data blocks (data plane, over-provisioned scheduling)
//       acquire quorum lock
//       if cloud update pending: fetch, 3-way merge (conflicts keep both)
//       commit metadata (delta-sync: delta-only unless it outgrew lambda)
//       release lock
//   else if cloud update pending:
//       fetch metadata, download needed blocks, apply to the local folder
//
// Content data and metadata are deliberately decoupled: blocks are immutable
// and uploaded before the metadata that references them is committed, so
// concurrent uploaders never corrupt each other — the lock serializes only
// the (small) metadata commit.
#pragma once

#include <functional>
#include <memory>

#include "cloud/async.h"
#include "cloud/health.h"
#include "cloud/provider.h"
#include "cloud/retrying_cloud.h"
#include "common/clock.h"
#include "common/executor.h"
#include "common/retry.h"
#include "common/rng.h"
#include "core/change_scanner.h"
#include "core/download_pipeline.h"
#include "core/local_fs.h"
#include "core/upload_pipeline.h"
#include "crypto/cipher.h"
#include "erasure/rs.h"
#include "lock/lock_manager.h"
#include "metadata/diff.h"
#include "metadata/sharded_store.h"
#include "obs/obs.h"
#include "repair/durability.h"
#include "sched/monitor.h"
#include "sched/rebalance.h"
#include "sched/threaded_driver.h"

namespace unidrive::core {

struct ClientConfig {
  std::string device = "device";
  std::string passphrase = "unidrive";
  // Metadata cipher: DES for paper fidelity (default), AES-128-CTR or
  // ChaCha20 for hardware speed. Decrypt is tag-dispatched, so changing
  // this never orphans previously written metadata.
  crypto::CipherKind cipher = crypto::CipherKind::kDes;
  std::size_t k = 3;    // data blocks per segment
  std::size_t ks = 2;   // security requirement
  std::size_t kr = 3;   // reliability requirement
  std::size_t theta = 4 << 20;  // target segment size
  lock::LockConfig lock;
  sched::DriverConfig driver;
  // Staged sync write path: shared executor width, encode stage, bounded
  // in-flight bytes. pipeline.enabled = false reverts to the monolithic
  // scan-then-upload round.
  PipelineConfig pipeline;
  metadata::DeltaPolicy delta_policy;
  // Sharded metadata plane: shard count, per-shard compaction bound, cache.
  metadata::ShardConfig meta;
  // Unified resilience layer: every enrolled cloud is wrapped exactly once
  // in a cloud::RetryingCloud combining this retry policy with a circuit
  // breaker shared across sync rounds — no other layer retries.
  RetryPolicy retry;
  cloud::BreakerConfig breaker;
  // All blocking pauses (retry backoff, lock contention backoff) go through
  // this; tests and simulations substitute a virtual-time sleep.
  SleepFn sleep = real_sleep();
  // When set, the client persists its last committed state (v_o, the image
  // it has already reconciled with) to this host file and reloads it at
  // construction — without it a restarted process would treat the whole
  // cloud state as "concurrent changes" and manufacture conflicts.
  std::string state_file;
  // Durability floor: a segment counts as under-replicated (and trips
  // SyncReport.degraded) when its surviving distinct blocks drop below
  // k + redundancy_floor. 0 = only decodability (surviving < k) degrades.
  std::size_t redundancy_floor = 1;
  // Content-addressed segment pool (DESIGN.md §13). When set, the upload
  // pipeline probes it before encode — a hit commits only a file→segment
  // reference — and GC keeps blocks that another folder still references.
  // Clients whose data plane lands on the same physical clouds should share
  // one index; `folder_id` keys its cross-folder refcounts, so all devices
  // of one sync folder must use the same id and distinct folders over the
  // same clouds must use distinct ids. Null = no cross-client dedup (the
  // scanner still dedups within the folder's own image).
  //
  // No default id: two folders silently sharing one id would be counted as
  // ONE folder by the refcount index, and each folder's GC could then
  // delete blocks the other still references. When `pool` is set and this
  // is left empty, the client derives a process-unique id at construction
  // (safe — every client then protects its own references — but devices of
  // one folder stop sharing refcounts, so set it explicitly).
  dedup::PoolIndexPtr pool;
  std::string folder_id;
};

struct SyncReport {
  bool committed = false;        // a local update was pushed to the clouds
  bool applied_cloud = false;    // a cloud update was applied locally
  std::size_t files_uploaded = 0;
  std::size_t segments_uploaded = 0;
  // Segments the upload path short-circuited on a segment-pool hit: their
  // references were committed but no encode or block RPC happened, and
  // `dedup_bytes_saved` plaintext bytes never left the device. Counted
  // separately from segments_uploaded so degraded-mode accounting (how much
  // actually moved this round) stays truthful.
  std::size_t segments_deduped = 0;
  std::uint64_t dedup_bytes_saved = 0;
  std::size_t files_downloaded = 0;
  std::size_t files_removed = 0;
  std::vector<metadata::ConflictRecord> conflicts;
  metadata::VersionStamp version;
  // Degraded mode: true when at least one cloud's circuit breaker was not
  // closed at the end of the round, OR when any segment's surviving
  // redundancy is below the configured floor (durability.under_replicated
  // > 0) — reachability and data health both count.
  bool degraded = false;
  std::vector<cloud::CloudHealthSnapshot> cloud_health;
  // Data-health rollup over the committed image at the end of the round:
  // the defect ledger (scrub findings) joined with breaker admissibility.
  repair::DurabilitySummary durability;
  // Folder materialization outcome. `materialize` is non-OK when the local
  // folder could not be brought fully up to the committed image (directory
  // create/remove failures below, or a file that could not be
  // reconstructed); the metadata commit itself still stands.
  Status materialize;
  std::vector<std::string> dir_failures;  // dirs that failed to (un)make
  // Point-in-time copy of the client's metrics registry, taken at the end
  // of the round. Counters are cumulative over the client's lifetime (they
  // are NOT reset per round); see obs/metrics.h for the name families.
  obs::MetricsSnapshot metrics;
};

class UniDriveClient {
 public:
  UniDriveClient(cloud::MultiCloud clouds, std::shared_ptr<LocalFs> fs,
                 ClientConfig config, Clock& clock = RealClock::instance(),
                 Rng rng = Rng(0));

  // One synchronization round. Safe to call repeatedly (e.g. on a timer).
  Result<SyncReport> sync();

  // Cheap cloud-update probe (the version-file check, period tau).
  [[nodiscard]] bool cloud_update_pending();

  // Deletes over-provisioned blocks beyond every cloud's fair share and
  // commits the trimmed block map (run after all devices synced a file).
  Status cleanup_overprovisioned();

  // Deletes the cloud blocks of segments no snapshot references any more
  // (dereferenced by edits falling off the history, deletions, or conflict
  // resolution) and drops them from the pool. Returns the number of
  // segments collected.
  Result<std::size_t> collect_garbage();

  // Rolls a file back to its most recent superseded snapshot (the paper
  // keeps per-file snapshot history in the image for exactly this): the
  // restored version becomes a NEW local edit committed by the next sync().
  Status restore_previous_version(const std::string& path);

  // Superseded snapshots of a file, most recent first.
  [[nodiscard]] std::vector<metadata::FileSnapshot> file_history(
      const std::string& path) const {
    return image_.history(path);
  }

  // Resolves a keep-both conflict produced by a previous sync. kKeepTheirs
  // drops the conflict copy (the cloud version at `record.path` stands);
  // kKeepMine promotes the conflict copy's content back to the original
  // path. Either way the copy is removed; the next sync() commits the
  // resolution for all devices.
  enum class ConflictChoice { kKeepTheirs, kKeepMine };
  Status resolve_conflict(const metadata::ConflictRecord& record,
                          ConflictChoice choice);

  // Multi-cloud membership changes (Section 6.2). Both re-plan placement,
  // execute the moves/deletions, and commit updated metadata.
  Status add_cloud(cloud::CloudPtr new_cloud);
  Status remove_cloud(cloud::CloudId cloud);

  [[nodiscard]] const metadata::SyncFolderImage& image() const noexcept {
    return image_;
  }
  [[nodiscard]] const cloud::MultiCloud& clouds() const noexcept {
    return clouds_;
  }
  // Shared per-cloud health/breaker state; outlives individual sync rounds.
  [[nodiscard]] const std::shared_ptr<cloud::CloudHealthRegistry>& health()
      const noexcept {
    return health_;
  }
  [[nodiscard]] sched::CodeParams code_params() const;
  [[nodiscard]] const ClientConfig& config() const noexcept { return config_; }
  // The shared metrics/tracing sink every layer of this client reports
  // into. Never null; lives as long as the client.
  [[nodiscard]] const obs::ObsPtr& observability() const noexcept {
    return obs_;
  }
  [[nodiscard]] Clock& clock() const noexcept { return clock_; }

  // --- scrub-and-repair surface (src/repair) -------------------------------
  // The defect ledger shared with the scrubber/repair engine. Never null.
  [[nodiscard]] const std::shared_ptr<repair::DurabilityTracker>& durability()
      const noexcept {
    return durability_;
  }
  // The exact code this client encodes/decodes with (pinned codec length —
  // block indices remain stable across membership changes).
  [[nodiscard]] erasure::RsCode codec() const;
  // Guarded (resilience-decorated) blocking provider / its async twin.
  [[nodiscard]] cloud::CloudProvider* guarded_cloud(cloud::CloudId id) const {
    return find_cloud(id);
  }
  [[nodiscard]] cloud::AsyncCloud* async_cloud(cloud::CloudId id) const {
    return find_async_cloud(id);
  }
  [[nodiscard]] const cloud::AsyncMultiCloud& async_clouds() const noexcept {
    return async_clouds_;
  }
  // Plaintext of a committed segment for repair: the verified local file
  // slice when one exists, otherwise a hash-verified multi-cloud decode
  // that never trusts any placement in `exclude` (the defective ones).
  Result<Bytes> reconstruct_segment(
      const std::string& segment_id,
      const std::vector<metadata::BlockLocation>& exclude);
  // Commits repaired block placements under the quorum lock (fetch-latest,
  // re-validate each segment against the freshest image, upsert, commit).
  // v_o (image_) is deliberately NOT advanced: the repair commit reaches
  // the local folder through the normal apply path next round, so file
  // changes committed by other devices in between are never skipped.
  Status commit_repaired_placements(
      std::vector<metadata::SegmentInfo> repaired);

 private:
  // Data plane: a staged UploadPipeline wired to this client's executor,
  // guarded clouds and observability (also runs the monolithic fallback
  // when config_.pipeline.enabled is false).
  [[nodiscard]] std::unique_ptr<UploadPipeline> make_pipeline(
      const sched::CodeParams& params);
  // Restore mirror: a streaming DownloadPipeline over the same executor,
  // guards and observability (overlapped fetch → parallel decode →
  // in-order write with a bounded prefetch window).
  [[nodiscard]] std::unique_ptr<DownloadPipeline> make_download_pipeline(
      const sched::CodeParams& params);

  // Downloads + decodes the segments of `snapshot` (resolved against
  // `image`) and writes the file. Streams through the DownloadPipeline
  // when config_.pipeline.enabled, otherwise fetches segment by segment
  // into a LocalFs::FileWriter — either way peak memory is bounded and a
  // failed restore never leaves a partial file behind.
  Status materialize_file(const metadata::FileSnapshot& snapshot,
                          const metadata::SyncFolderImage& image);

  // Fetches and decodes one segment, verifying its content hash; on
  // integrity failure, raises the fetch budget of the long-lived driver
  // one distinct block at a time (placements disjoint from `exclude`)
  // until a verifiable subset exists or supply runs out.
  Result<Bytes> fetch_segment(
      const metadata::SegmentInfo& segment,
      const std::vector<metadata::BlockLocation>& exclude);

  // Hash-verified local-file slice of a segment; kNotFound when no
  // referencing file holds a clean copy.
  Result<Bytes> local_segment_slice(const metadata::SyncFolderImage& image,
                                    const std::string& segment_id);

  // Plaintext of a segment: local-file slice when available (verified by
  // hash), otherwise reconstructed from the multi-cloud.
  Result<Bytes> segment_content(const metadata::SyncFolderImage& image,
                                const std::string& segment_id);

  // Uploads moved blocks (re-encoded) and deletes shed ones per `plan`.
  void execute_rebalance(const metadata::SyncFolderImage& image,
                         const sched::RebalancePlan& plan,
                         const erasure::RsCode& code,
                         cloud::CloudProvider* added);

  // Applies the difference between image_ and `target` to the local folder
  // (downloads, deletions); updates image_ on success. Directory
  // create/remove failures do not abort the apply (files are still
  // materialized) but are reported in `dir_failures` so sync() can surface
  // an incomplete materialization instead of silently dropping them.
  struct ApplyOutcome {
    std::size_t downloaded = 0;
    std::size_t removed = 0;
    std::vector<std::string> dir_failures;
  };
  Result<ApplyOutcome> apply_cloud_image(
      const metadata::SyncFolderImage& target);

  // The sharded commit path for sync(): locks only the dirty shard scopes,
  // merges against the cloud state when behind, stages one delta (or folded
  // base) per dirty shard and flips the root manifest atomically. Retries
  // from fresh state on fence conflicts. On success image_ holds the
  // committed image.
  Status commit_sharded(const metadata::SyncFolderImage& local,
                        std::vector<metadata::Change> changes,
                        SyncReport* report);

  // Stages `changes` (already applied to `next`) against the `fenced`
  // manifest and flips the root. All required scopes must already be held.
  // Returns the committed manifest.
  Result<metadata::ShardManifest> publish_and_flip(
      const metadata::SyncFolderImage& next,
      const std::vector<metadata::Change>& changes,
      const metadata::ShardManifest& fenced,
      const metadata::VersionStamp& stamp);

  // Fetch-latest → mutate → lock dirty scopes (+ root) → freshness check →
  // publish+flip retry loop shared by the maintenance commits (cleanup, GC,
  // repair). `adopt` advances image_ (v_o) to the committed state; repair
  // passes false so foreign file changes still reach the apply path.
  Status locked_mutation(
      const std::function<std::vector<metadata::Change>(
          metadata::SyncFolderImage&)>& mutate,
      bool adopt);

  // Folds shards that advanced between `fenced` and `committed` by foreign
  // writers into `next` (our shards in `own` are kept as-is). Falls back to
  // advertising the fenced version on fetch failure so the next round
  // reconciles through the normal cloud-update path.
  void absorb_foreign_shards(metadata::SyncFolderImage& next,
                             const metadata::ShardManifest& fenced,
                             const metadata::ShardManifest& committed,
                             const std::vector<metadata::ShardId>& own);

  // Every shard scope plus root — the stop-the-world set membership changes
  // take while they rewrite placements across the whole image.
  [[nodiscard]] std::vector<lock::Scope> all_scopes() const;

  // Commits the rebalanced image after a membership swap: re-locks all
  // scopes on the new membership, splices the block map onto the freshest
  // committed state and flips the root.
  Status commit_membership_image(metadata::SyncFolderImage next);

  [[nodiscard]] std::vector<cloud::CloudId> cloud_ids() const;
  // Resolves to the GUARDED provider — all I/O goes through the resilience
  // decorator, never the raw cloud.
  [[nodiscard]] cloud::CloudProvider* find_cloud(cloud::CloudId id) const;
  // Resolves to the guarded provider's completion-based twin (the same
  // decorator chain, async all the way down to the SyncAdapter leaf).
  [[nodiscard]] cloud::AsyncCloud* find_async_cloud(cloud::CloudId id) const;

  // Re-wraps clouds_ and rebuilds store_/lock_ after membership changes.
  void rebuild_guards();
  // Builds the async twins of guarded_ (and the dedicated I/O pool when
  // config_.pipeline.io_threads asks for one).
  void rebuild_async_clouds();

  // State persistence (no-ops when config_.state_file is empty).
  void load_state();
  void persist_state() const;

  cloud::MultiCloud clouds_;  // raw providers, as enrolled
  std::shared_ptr<LocalFs> fs_;
  ClientConfig config_;
  Clock& clock_;
  Rng rng_;
  // Declared before health_/guarded_/store_/lock_: they all capture it.
  obs::ObsPtr obs_;
  // Defect ledger shared with the repair subsystem; captures obs_.
  std::shared_ptr<repair::DurabilityTracker> durability_;
  std::shared_ptr<cloud::CloudHealthRegistry> health_;
  cloud::MultiCloud guarded_;  // clouds_, each wrapped in a RetryingCloud
  // Shared thread pool for the sync pipeline and the transfer drivers;
  // sized for clouds * connections unless config_.pipeline.threads (or
  // UNIDRIVE_PIPELINE_THREADS) overrides. Rebuilt on membership changes.
  std::shared_ptr<Executor> executor_;
  // Async completion runtime: the I/O pool running SyncAdapter leaf RPCs
  // (executor_ unless config_.pipeline.io_threads carves out a dedicated
  // pool) and the completion-based twin of each guarded cloud. The twins
  // share breaker/counter/quota/link state with their blocking halves.
  std::shared_ptr<Executor> io_executor_;
  cloud::AsyncMultiCloud async_clouds_;

  metadata::SyncFolderImage image_;  // v_o: last known committed state
  metadata::ShardedMetaStore store_;
  lock::LockManager locks_;
  sched::ThroughputMonitor monitor_;
  ScanCache scan_cache_;  // (size, mtime) fingerprints; avoids re-hashing
};

}  // namespace unidrive::core
