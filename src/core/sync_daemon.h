// SyncDaemon — the background loop a real app runs: periodically checks for
// cloud updates (the cheap version-file probe, period tau) and scans/syncs
// the local folder, feeding everything through UniDriveClient::sync().
// Runs on its own thread; start()/stop() are safe to call repeatedly.
#pragma once

#include <condition_variable>
#include <mutex>
#include <thread>

#include "core/client.h"

namespace unidrive::core {

struct DaemonConfig {
  double sync_interval = 5.0;  // tau: seconds between sync rounds
};

class SyncDaemon {
 public:
  SyncDaemon(UniDriveClient& client, DaemonConfig config)
      : client_(client), config_(config) {}
  ~SyncDaemon() { stop(); }

  SyncDaemon(const SyncDaemon&) = delete;
  SyncDaemon& operator=(const SyncDaemon&) = delete;

  void start();
  void stop();

  // Runs one sync round immediately on the caller's thread (also what the
  // background loop executes); useful for "sync now" UI actions and tests.
  Result<SyncReport> sync_once() { return run_round(); }

  struct Stats {
    std::size_t rounds = 0;
    std::size_t commits = 0;       // rounds that pushed local changes
    std::size_t applied = 0;       // rounds that pulled cloud changes
    std::size_t conflicts = 0;     // conflict files produced
    std::size_t errors = 0;        // failed rounds (retried next tick)
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] bool running() const;

 private:
  Result<SyncReport> run_round();
  void loop();

  UniDriveClient& client_;
  DaemonConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  bool stop_requested_ = false;
  Stats stats_;
};

}  // namespace unidrive::core
