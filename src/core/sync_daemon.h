// SyncDaemon — the background loop a real app runs: periodically checks for
// cloud updates (the cheap version-file probe, period tau) and scans/syncs
// the local folder, feeding everything through UniDriveClient::sync().
// Runs on its own thread; start()/stop() are safe to call repeatedly.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "core/client.h"

namespace unidrive::core {

// Admission budget for one background maintenance slice: how many
// block-granular work units (repair uploads, orphan deletions) the task may
// spend before yielding back to the daemon.
struct MaintenanceBudget {
  std::size_t blocks = 32;
};

// A paced background maintenance phase the daemon runs after sync rounds —
// e.g. repair::RepairService (scrub-and-repair). Implementations count
// per-item failures internally and return non-OK only for slice-level
// faults; either way the daemon keeps ticking.
class MaintenanceTask {
 public:
  virtual ~MaintenanceTask() = default;
  virtual Status run_slice(const MaintenanceBudget& budget) = 0;
};

struct DaemonConfig {
  double sync_interval = 5.0;  // tau: seconds between sync rounds
  // Background maintenance, run after the sync phase of every
  // `maintenance_every`th round with a `maintenance_blocks` budget. Rounds
  // that moved foreground data (commit or cloud apply) divide the budget by
  // `busy_budget_divisor` so maintenance never competes with a user
  // actively syncing (0 = skip the slice entirely on busy rounds).
  std::shared_ptr<MaintenanceTask> maintenance;
  int maintenance_every = 1;
  std::size_t maintenance_blocks = 32;
  std::size_t busy_budget_divisor = 4;
};

class SyncDaemon {
 public:
  SyncDaemon(UniDriveClient& client, DaemonConfig config)
      : client_(client), config_(config) {}
  ~SyncDaemon() { stop(); }

  SyncDaemon(const SyncDaemon&) = delete;
  SyncDaemon& operator=(const SyncDaemon&) = delete;

  void start();
  void stop();

  // Runs one sync round immediately on the caller's thread (also what the
  // background loop executes); useful for "sync now" UI actions and tests.
  Result<SyncReport> sync_once() { return run_round(); }

  struct Stats {
    std::size_t rounds = 0;
    std::size_t commits = 0;       // rounds that pushed local changes
    std::size_t applied = 0;       // rounds that pulled cloud changes
    std::size_t conflicts = 0;     // conflict files produced
    std::size_t errors = 0;        // failed rounds (retried next tick)
    std::size_t maintenance_slices = 0;  // maintenance slices executed
    std::size_t maintenance_errors = 0;  // slices returning non-OK
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] bool running() const;

 private:
  Result<SyncReport> run_round();
  void loop();

  UniDriveClient& client_;
  DaemonConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  bool stop_requested_ = false;
  Stats stats_;
};

}  // namespace unidrive::core
