#include "core/download_pipeline.h"

#include <algorithm>

#include "common/clock.h"
#include "common/logging.h"
#include "crypto/convergent.h"

namespace unidrive::core {

using metadata::FileSnapshot;
using metadata::SegmentInfo;
using metadata::SyncFolderImage;

Result<Bytes> decode_verified(const erasure::RsCode& code,
                              const std::vector<erasure::Shard>& shards,
                              const SegmentInfo& segment, std::size_t k,
                              Executor* executor) {
  std::vector<std::size_t> pick(k);
  std::function<Result<Bytes>(std::size_t, std::size_t)> search =
      [&](std::size_t depth, std::size_t start) -> Result<Bytes> {
    if (depth == k) {
      std::vector<erasure::Shard> subset;
      subset.reserve(k);
      for (const std::size_t i : pick) subset.push_back(shards[i]);
      auto decoded = executor != nullptr
                         ? code.decode_shards_parallel(subset, segment.size,
                                                       *executor)
                         : code.decode(subset, segment.size);
      if (decoded.is_ok()) {
        // Decoded bytes are the sealed payload; open unseals (identity for
        // legacy SHA-1 ids) and verifies against the id's hash family.
        auto opened = crypto::convergent_open(segment.id,
                                              std::move(decoded).take());
        if (opened.is_ok()) return opened;
      }
      return make_error(ErrorCode::kCorrupt, "subset failed");
    }
    for (std::size_t i = start; i + (k - depth) <= shards.size(); ++i) {
      pick[depth] = i;
      auto result = search(depth + 1, i + 1);
      if (result.is_ok()) return result;
    }
    return make_error(ErrorCode::kCorrupt, "no verifiable subset");
  };
  return search(0, 0);
}

DownloadPipeline::DownloadPipeline(
    std::size_t k, erasure::RsCode code, std::vector<cloud::CloudId> clouds,
    sched::DriverConfig driver_config, sched::ThroughputMonitor& monitor,
    std::shared_ptr<Executor> executor, FindCloudFn find_cloud,
    PipelineConfig pipeline_config, LocalFs& fs,
    std::shared_ptr<cloud::CloudHealthRegistry> health, obs::ObsPtr obs,
    FindAsyncCloudFn find_async)
    : k_(k),
      code_(std::move(code)),
      executor_(std::move(executor)),
      find_cloud_(std::move(find_cloud)),
      find_async_(std::move(find_async)),
      config_(pipeline_config),
      fs_(fs),
      obs_(std::move(obs)) {
  sched::AsyncTransferFn async;
  if (find_async_ != nullptr && config_.async_transfers) {
    async = [this](const sched::BlockTask& task, sched::TransferDoneFn done) {
      return transfer_async(task, std::move(done));
    };
  }
  driver_ = std::make_unique<sched::StreamingDownloadDriver>(
      k_, std::move(clouds), driver_config, monitor, executor_,
      [this](const sched::BlockTask& task) { return transfer(task); }, health,
      obs_,
      [this](const std::string& id, bool ok) { on_segment_fetched(id, ok); },
      std::move(async));
}

DownloadPipeline::~DownloadPipeline() {
  cancel();
  // Transfers drain first (no more fetched callbacks), then the decode
  // tasks those callbacks already queued.
  driver_->wait();
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return decode_queue_ == 0; });
}

std::size_t DownloadPipeline::inflight_bytes() const {
  std::lock_guard<std::mutex> guard(mem_mutex_);
  return inflight_;
}

void DownloadPipeline::release_bytes(std::size_t n) {
  std::lock_guard<std::mutex> guard(mem_mutex_);
  inflight_ -= std::min(inflight_, n);
  obs::set_gauge(obs_.get(), "restore.inflight_bytes",
                 static_cast<double>(inflight_));
  mem_cv_.notify_all();
}

void DownloadPipeline::cancel() {
  cancelled_.store(true);
  {
    std::lock_guard<std::mutex> guard(mem_mutex_);
    mem_cv_.notify_all();
  }
  driver_->cancel();  // pending segments get their ok=false callback
}

void DownloadPipeline::add_file(const FileSnapshot& snapshot,
                                const SyncFolderImage& image) {
  std::size_t fi = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fi = files_.size();
    files_.emplace_back();
    FileState& f = files_.back();
    f.path = snapshot.path;
    f.expected_size = snapshot.size;
    f.content_hash = snapshot.content_hash;
    f.segs = snapshot.segment_ids;
    ++open_files_;
    auto writer = fs_.open_write(snapshot.path);
    if (writer.is_ok()) {
      f.writer = std::move(writer).take();
    } else {
      fail_file_locked(f, writer.status());
    }
    if (cancelled_.load() && !f.closed) {
      fail_file_locked(f, make_error(ErrorCode::kUnavailable,
                                     "restore pipeline cancelled"));
    }
  }
  obs::add_counter(obs_.get(), "restore.files");

  for (const std::string& seg_id : snapshot.segment_ids) {
    {
      // Attach to a live in-window admission of the same segment (dedup
      // across and within files); the write advances when it decodes.
      std::lock_guard<std::mutex> lock(mu_);
      FileState& f = files_[fi];
      if (f.closed) return;
      const auto it = segments_.find(seg_id);
      if (it != segments_.end()) {
        ++it->second.waiters_remaining;
        ++f.admitted;
        advance_file_locked(fi);
        continue;
      }
    }

    const SegmentInfo* seg = image.find_segment(seg_id);
    if (seg == nullptr) {
      std::lock_guard<std::mutex> lock(mu_);
      fail_file_locked(files_[fi],
                       make_error(ErrorCode::kCorrupt,
                                  "snapshot references unknown segment " +
                                      seg_id));
      return;
    }
    const std::size_t shard_charge = k_ * code_.shard_size(seg->size);
    const std::size_t plain_charge = seg->size;
    const std::size_t footprint = shard_charge + plain_charge;

    {
      // Admission gate: wait for room in the prefetch window. An oversized
      // segment (footprint > cap) is admitted once the pipeline is empty,
      // so it cannot wedge.
      std::unique_lock<std::mutex> mem(mem_mutex_);
      mem_cv_.wait(mem, [&] {
        return cancelled_.load() || inflight_ == 0 ||
               inflight_ + footprint <= config_.max_inflight_bytes;
      });
      if (cancelled_.load()) {
        // mem_mutex_ is a leaf (taken under mu_ elsewhere): drop it before
        // touching pipeline state.
        mem.unlock();
        std::lock_guard<std::mutex> lock(mu_);
        fail_file_locked(files_[fi],
                         make_error(ErrorCode::kUnavailable,
                                    "restore pipeline cancelled"));
        return;
      }
      inflight_ += footprint;
      peak_inflight_ = std::max(peak_inflight_, inflight_);
      obs::set_gauge(obs_.get(), "restore.inflight_bytes",
                     static_cast<double>(inflight_));
      obs::set_gauge(obs_.get(), "restore.inflight_bytes_peak",
                     static_cast<double>(peak_inflight_));
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      SegState state;
      state.info = *seg;
      state.shard_charge = shard_charge;
      state.plain_charge = plain_charge;
      state.waiters_remaining = 1;
      segments_.emplace(seg_id, std::move(state));
      ++unresolved_segments_;
      ++files_[fi].admitted;
    }
    obs::add_counter(obs_.get(), "restore.segments");

    // Feed the long-lived driver (never under mu_). If the driver was
    // cancelled meanwhile, it drops the spec without arming a callback —
    // resolve the segment as failed ourselves so finish() converges.
    sched::DownloadFileSpec spec;
    spec.path = snapshot.path;
    spec.segments.push_back({seg_id, seg->size, seg->blocks});
    driver_->add_file(std::move(spec));
    if (driver_->cancelled()) {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = segments_.find(seg_id);
      if (it != segments_.end() && !it->second.resolved) {
        resolve_failed_locked(seg_id, it->second,
                              make_error(ErrorCode::kUnavailable,
                                         "restore pipeline cancelled"));
        advance_files_locked();
      }
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  // Finalizes an empty file, or one whose every segment attached to an
  // already-decoded admission.
  advance_file_locked(fi);
}

Status DownloadPipeline::transfer(const sched::BlockTask& task) {
  if (cancelled_.load()) {
    return make_error(ErrorCode::kUnavailable, "restore pipeline cancelled");
  }
  cloud::CloudProvider* provider = find_cloud_(task.cloud);
  if (provider == nullptr) {
    return make_error(ErrorCode::kInternal, "unknown cloud");
  }
  auto data = provider->download(
      metadata::block_path(task.segment_id, task.block_index));
  if (!data.is_ok()) return data.status();
  std::lock_guard<std::mutex> cache(cache_mutex_);
  auto& blocks = shard_cache_[task.segment_id];
  // Keep the first copy (a hedge duplicate may land second).
  blocks.emplace(task.block_index, std::move(data).take());
  return Status::ok();
}

cloud::AsyncHandle DownloadPipeline::transfer_async(
    const sched::BlockTask& task, sched::TransferDoneFn done) {
  if (cancelled_.load()) {
    executor_->submit([done = std::move(done)] {
      done(make_error(ErrorCode::kUnavailable, "restore pipeline cancelled"));
    });
    return {};
  }
  cloud::AsyncCloud* provider = find_async_(task.cloud);
  if (provider == nullptr) {
    executor_->submit([done = std::move(done)] {
      done(make_error(ErrorCode::kInternal, "unknown cloud"));
    });
    return {};
  }
  const std::string seg = task.segment_id;
  const std::uint32_t index = task.block_index;
  // The fetched bytes are stored before `done` fires, so the driver's
  // segment-fetched callback always sees them; `this` stays valid because
  // the pipeline destructor waits out the driver, which waits out every
  // launched completion.
  return provider->download_async(
      metadata::block_path(seg, index),
      [this, seg, index, done = std::move(done)](Result<Bytes> data) {
        if (!data.is_ok()) {
          done(data.status());
          return;
        }
        {
          std::lock_guard<std::mutex> cache(cache_mutex_);
          auto& blocks = shard_cache_[seg];
          // Keep the first copy (a hedge duplicate may land second).
          blocks.emplace(index, std::move(data).take());
        }
        done(Status::ok());
      });
}

// Fired under the driver lock: bookkeeping + handoff only. mu_ here is
// safe — no code path takes the driver lock while holding mu_.
void DownloadPipeline::on_segment_fetched(const std::string& id, bool ok) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++decode_queue_;
    obs::set_gauge(obs_.get(), "restore.queue.decode",
                   static_cast<double>(decode_queue_));
  }
  executor_->submit([this, id, ok] { process_segment(id, ok); });
}

void DownloadPipeline::process_segment(const std::string& id, bool ok) {
  SegmentInfo info;
  bool stale = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = segments_.find(id);
    stale = it == segments_.end() || it->second.resolved;
    if (!stale) info = it->second.info;
  }

  Result<Bytes> decoded = make_error(ErrorCode::kUnavailable, "not fetched");
  if (!stale && ok && !cancelled_.load()) {
    std::vector<erasure::Shard> shards;
    {
      std::lock_guard<std::mutex> cache(cache_mutex_);
      for (const auto& [index, bytes] : shard_cache_[id]) {
        shards.push_back({index, bytes});
      }
    }
    const TimePoint start = RealClock::instance().now();
    decoded = decode_verified(code_, shards, info, k_, executor_.get());
    obs::observe(obs_.get(), "restore.stage.decode.latency",
                 RealClock::instance().now() - start);
    if (!decoded.is_ok() && !cancelled_.load()) {
      // Corrupt-shard search: some fetched shard is bad but unidentifiable;
      // raise the budget by one distinct block and re-try when it lands.
      {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = segments_.find(id);
        if (it != segments_.end()) it->second.decode_attempted = true;
      }
      UNI_LOG(kWarn) << "segment " << id << " failed integrity check with "
                     << shards.size() << " blocks; fetching another";
      {
        std::lock_guard<std::mutex> lock(mu_);
        --decode_queue_;
        obs::set_gauge(obs_.get(), "restore.queue.decode",
                       static_cast<double>(decode_queue_));
        cv_.notify_all();
      }
      driver_->request_extra_block(id);  // re-arms the fetched callback
      return;
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  const auto it = segments_.find(id);
  if (it != segments_.end() && !it->second.resolved) {
    SegState& seg = it->second;
    if (decoded.is_ok()) {
      seg.resolved = true;
      seg.decoded = true;
      seg.plain = std::move(decoded).take();
      --unresolved_segments_;
      release_bytes(seg.shard_charge);
      seg.shard_charge = 0;
      {
        std::lock_guard<std::mutex> cache(cache_mutex_);
        shard_cache_.erase(id);
      }
      advance_files_locked();
      maybe_release_segment_locked(id);
    } else {
      Status failure =
          cancelled_.load()
              ? make_error(ErrorCode::kUnavailable,
                           "restore pipeline cancelled")
              : (seg.decode_attempted
                     ? make_error(ErrorCode::kCorrupt,
                                  "segment " + id +
                                      ": no verifiable block combination "
                                      "exists")
                     : make_error(ErrorCode::kUnavailable,
                                  "could not fetch k blocks for segment " +
                                      id));
      resolve_failed_locked(id, seg, std::move(failure));
      advance_files_locked();
    }
  }
  --decode_queue_;
  obs::set_gauge(obs_.get(), "restore.queue.decode",
                 static_cast<double>(decode_queue_));
  // Notify under the lock: finish() may destroy this object right after.
  cv_.notify_all();
}

void DownloadPipeline::resolve_failed_locked(const std::string& id,
                                             SegState& seg, Status status) {
  seg.resolved = true;
  seg.decoded = false;
  seg.failure = std::move(status);
  --unresolved_segments_;
  release_bytes(seg.shard_charge + seg.plain_charge);
  seg.shard_charge = 0;
  seg.plain_charge = 0;
  {
    std::lock_guard<std::mutex> cache(cache_mutex_);
    shard_cache_.erase(id);
  }
  maybe_release_segment_locked(id);
}

void DownloadPipeline::advance_files_locked() {
  for (std::size_t fi = 0; fi < files_.size(); ++fi) {
    advance_file_locked(fi);
  }
}

void DownloadPipeline::advance_file_locked(std::size_t file_index) {
  FileState& f = files_[file_index];
  if (f.closed) return;
  while (f.next_write < f.admitted) {
    const std::string& seg_id = f.segs[f.next_write];
    const auto it = segments_.find(seg_id);
    if (it == segments_.end()) {
      // A live waiter keeps its segment in the map; absence is a logic
      // error, not a recoverable state.
      fail_file_locked(f, make_error(ErrorCode::kInternal,
                                     "segment state lost for " + seg_id));
      return;
    }
    SegState& seg = it->second;
    if (!seg.resolved) break;
    if (!seg.decoded) {
      fail_file_locked(f, seg.failure);
      return;
    }
    if (f.writer != nullptr) {
      const Status appended = f.writer->append(ByteSpan(seg.plain));
      if (!appended.is_ok()) {
        fail_file_locked(f, appended);
        return;
      }
    }
    f.hasher.update(ByteSpan(seg.plain));
    f.written += seg.plain.size();
    ++f.next_write;
    consume_waiter_locked(seg_id);
  }
  if (!f.closed && f.next_write == f.segs.size()) finalize_file_locked(f);
}

void DownloadPipeline::consume_waiter_locked(const std::string& seg_id) {
  const auto it = segments_.find(seg_id);
  if (it == segments_.end()) return;
  if (it->second.waiters_remaining > 0) --it->second.waiters_remaining;
  maybe_release_segment_locked(seg_id);
}

void DownloadPipeline::maybe_release_segment_locked(
    const std::string& seg_id) {
  const auto it = segments_.find(seg_id);
  if (it == segments_.end()) return;
  SegState& seg = it->second;
  // Keep unresolved segments until their callback lands (it will), and
  // resolved ones while any file position still needs the plaintext.
  if (!seg.resolved || seg.waiters_remaining > 0) return;
  release_bytes(seg.shard_charge + seg.plain_charge);
  segments_.erase(it);
}

void DownloadPipeline::fail_file_locked(FileState& f, Status status) {
  if (f.closed) return;
  f.closed = true;
  --open_files_;
  f.status = std::move(status);
  if (f.writer != nullptr) f.writer->abort();
  // Release this file's claim on every admitted-but-unwritten segment.
  for (std::size_t p = f.next_write; p < f.admitted; ++p) {
    consume_waiter_locked(f.segs[p]);
  }
  f.next_write = f.admitted;
  cv_.notify_all();
}

void DownloadPipeline::finalize_file_locked(FileState& f) {
  if (f.closed) return;
  f.closed = true;
  --open_files_;
  if (f.writer == nullptr) {
    f.status = make_error(ErrorCode::kInternal, "no writer for " + f.path);
  } else if (f.written != f.expected_size) {
    f.writer->abort();
    f.status = make_error(ErrorCode::kCorrupt,
                          "assembled size mismatch for " + f.path);
  } else if (!f.content_hash.empty() &&
             [&] {
               const crypto::Sha1::Digest d = f.hasher.finish();
               return to_hex(ByteSpan(d.data(), d.size())) != f.content_hash;
             }()) {
    f.writer->abort();
    f.status = make_error(ErrorCode::kCorrupt,
                          "content hash mismatch for " + f.path);
  } else {
    f.status = f.writer->commit();
  }
  cv_.notify_all();
}

std::vector<DownloadPipeline::FileResult> DownloadPipeline::finish() {
  driver_->close();
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      return cancelled_.load() ||
             (unresolved_segments_ == 0 && decode_queue_ == 0 &&
              open_files_ == 0);
    });
  }
  // All segments decided (or the job was cancelled): drain the straggler
  // transfers, then the decode tasks already queued.
  driver_->wait();
  std::vector<FileResult> results;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return decode_queue_ == 0; });
    // Cancelled leftovers: segments whose spec never reached the driver,
    // files still open. (Resolving may erase map entries — collect first.)
    std::vector<std::string> unresolved;
    for (const auto& [id, seg] : segments_) {
      if (!seg.resolved) unresolved.push_back(id);
    }
    for (const std::string& id : unresolved) {
      const auto it = segments_.find(id);
      if (it == segments_.end()) continue;
      resolve_failed_locked(id, it->second,
                            make_error(ErrorCode::kUnavailable,
                                       "restore pipeline cancelled"));
    }
    advance_files_locked();
    for (FileState& f : files_) {
      if (!f.closed) {
        fail_file_locked(f, make_error(ErrorCode::kUnavailable,
                                       "restore pipeline cancelled"));
      }
    }
    results.reserve(files_.size());
    for (FileState& f : files_) results.push_back({f.path, f.status});
  }
  {
    std::lock_guard<std::mutex> cache(cache_mutex_);
    shard_cache_.clear();
  }
  // Anything still charged (cancelled mid-flight) is released now.
  {
    std::lock_guard<std::mutex> guard(mem_mutex_);
    inflight_ = 0;
    obs::set_gauge(obs_.get(), "restore.inflight_bytes", 0.0);
    mem_cv_.notify_all();
  }
  return results;
}

}  // namespace unidrive::core
