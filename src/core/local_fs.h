// Local sync-folder abstraction (the paper's "local file system interface").
// MemoryLocalFs backs tests and simulations; DiskLocalFs maps onto a real
// directory via std::filesystem for the end-to-end examples.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace unidrive::core {

class LocalFs {
 public:
  virtual ~LocalFs() = default;

  // Incremental writer for streaming restores: append chunks in order, then
  // commit() to publish the file (or abort() / destroy to discard — a
  // never-committed writer must leave no trace at `path`). The base class
  // provides a buffered default that stages in memory and publishes via
  // write() on commit, so existing subclasses keep working; DiskLocalFs
  // overrides it to stream through a temp file and rename on commit.
  class FileWriter {
   public:
    virtual ~FileWriter() = default;
    virtual Status append(ByteSpan data) = 0;
    // At most one commit; append is invalid afterwards.
    virtual Status commit() = 0;
    // Idempotent; safe after a failed append.
    virtual void abort() = 0;
  };

  // The writer borrows this LocalFs and must not outlive it.
  virtual Result<std::unique_ptr<FileWriter>> open_write(
      const std::string& path);

  virtual Result<Bytes> read(const std::string& path) const = 0;
  virtual Status write(const std::string& path, ByteSpan data) = 0;
  virtual Status remove(const std::string& path) = 0;
  virtual Status make_dir(const std::string& path) = 0;
  virtual Status remove_dir(const std::string& path) = 0;

  // All files (recursive), normalized "/a/b" paths, sorted.
  [[nodiscard]] virtual std::vector<std::string> list_files() const = 0;
  [[nodiscard]] virtual std::vector<std::string> list_dirs() const = 0;
  [[nodiscard]] virtual Result<std::uint64_t> size(
      const std::string& path) const = 0;
  [[nodiscard]] virtual Result<double> mtime(const std::string& path) const = 0;
};

class MemoryLocalFs final : public LocalFs {
 public:
  Result<Bytes> read(const std::string& path) const override;
  Status write(const std::string& path, ByteSpan data) override;
  Status remove(const std::string& path) override;
  Status make_dir(const std::string& path) override;
  Status remove_dir(const std::string& path) override;
  [[nodiscard]] std::vector<std::string> list_files() const override;
  [[nodiscard]] std::vector<std::string> list_dirs() const override;
  [[nodiscard]] Result<std::uint64_t> size(
      const std::string& path) const override;
  [[nodiscard]] Result<double> mtime(const std::string& path) const override;

 private:
  struct Entry {
    Bytes data;
    double mtime = 0;
  };
  mutable std::mutex mutex_;
  std::map<std::string, Entry> files_;
  std::set<std::string> dirs_;
  double tick_ = 0;  // monotonically increasing pseudo-mtime
};

// Real directory. Paths inside the sync folder are normalized (e.g.
// "/docs/a.txt" maps to <root>/docs/a.txt).
class DiskLocalFs final : public LocalFs {
 public:
  explicit DiskLocalFs(std::string root);

  Result<std::unique_ptr<FileWriter>> open_write(
      const std::string& path) override;
  Result<Bytes> read(const std::string& path) const override;
  Status write(const std::string& path, ByteSpan data) override;
  Status remove(const std::string& path) override;
  Status make_dir(const std::string& path) override;
  Status remove_dir(const std::string& path) override;
  [[nodiscard]] std::vector<std::string> list_files() const override;
  [[nodiscard]] std::vector<std::string> list_dirs() const override;
  [[nodiscard]] Result<std::uint64_t> size(
      const std::string& path) const override;
  [[nodiscard]] Result<double> mtime(const std::string& path) const override;

 private:
  [[nodiscard]] std::string host_path(const std::string& path) const;
  std::string root_;
};

}  // namespace unidrive::core
