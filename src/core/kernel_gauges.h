// Exports the kernel-dispatch registry (common/cpu.h) as observability
// gauges, so a metrics scrape shows what actually runs on this host:
//
//   cpu.kernel.<kernel>         = resolved tier (0 scalar, higher = wider ISA)
//   cpu.kernel.<kernel>.<impl>  = 1  (the implementation name, as a key)
//
// Gauges hold doubles, so the implementation NAME travels in the gauge key
// and the tier in the value. Called from the client constructor; touching
// every kernel's accessor here also forces all dispatch decisions to resolve
// eagerly at startup instead of on the first hot-path byte.
#pragma once

#include "obs/obs.h"

namespace unidrive::core {

void export_kernel_gauges(obs::Observability* obs);

}  // namespace unidrive::core
