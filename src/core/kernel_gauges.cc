#include "core/kernel_gauges.h"

#include <string>

#include "common/cpu.h"
#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "crypto/crc32.h"
#include "erasure/gf256.h"

namespace unidrive::core {

void export_kernel_gauges(obs::Observability* obs) {
  // Force every dispatch decision to resolve now (each accessor registers
  // its kernel with note_kernel() on first call).
  (void)erasure::Gf256::kernel_name();
  (void)crypto::crc32c_kernel_name();
  (void)crypto::Aes128::kernel_name();
  (void)crypto::ChaCha20::kernel_name();

  for (const ResolvedKernel& k : resolved_kernels()) {
    obs::set_gauge(obs, "cpu.kernel." + k.kernel, static_cast<double>(k.tier));
    obs::set_gauge(obs, "cpu.kernel." + k.kernel + "." + k.impl, 1.0);
  }
}

}  // namespace unidrive::core
