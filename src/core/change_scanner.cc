#include "core/change_scanner.h"

#include <algorithm>
#include <set>

#include "crypto/sha1.h"

namespace unidrive::core {

using metadata::Change;
using metadata::FileSnapshot;

const std::string* ScanCache::lookup(const std::string& path,
                                     std::uint64_t size, double mtime) const {
  const auto it = entries_.find(path);
  if (it == entries_.end()) return nullptr;
  if (it->second.size != size || it->second.mtime != mtime) return nullptr;
  return &it->second.content_hash;
}

void ScanCache::update(const std::string& path, std::uint64_t size,
                       double mtime, std::string content_hash) {
  entries_[path] = {size, mtime, std::move(content_hash)};
}

void ScanCache::forget(const std::string& path) { entries_.erase(path); }

ScanResult scan_local_changes(const LocalFs& fs,
                              const metadata::SyncFolderImage& image,
                              const chunker::SegmenterParams& seg_params,
                              const std::string& device, ScanCache* cache,
                              const SegmentSink& sink) {
  ScanResult result;
  // With a sink, new_segments stays empty — track emitted ids separately so
  // the within-scan dedup still holds.
  std::set<std::string> emitted;

  const std::vector<std::string> local_files = fs.list_files();
  const std::set<std::string> local_set(local_files.begin(),
                                        local_files.end());

  // Added / edited files.
  for (const std::string& path : local_files) {
    ++result.files_scanned;
    const metadata::FileSnapshot* known = image.find_file(path);
    auto size = fs.size(path);
    if (!size.is_ok()) continue;  // raced with deletion
    const double mtime = fs.mtime(path).value_or(0.0);

    // Fast path: fingerprint cache (size + mtime) avoids reading the file.
    if (cache != nullptr && known != nullptr) {
      const std::string* cached = cache->lookup(path, size.value(), mtime);
      if (cached != nullptr && *cached == known->content_hash) continue;
    }

    auto content = fs.read(path);
    if (!content.is_ok()) continue;
    const Bytes& data = content.value();
    ++result.files_hashed;
    const std::string hash = crypto::Sha1::hex(ByteSpan(data));
    if (cache != nullptr) cache->update(path, data.size(), mtime, hash);
    if (known != nullptr && known->content_hash == hash) continue;

    FileSnapshot snapshot;
    snapshot.path = path;
    snapshot.size = data.size();
    snapshot.mtime = mtime;
    snapshot.content_hash = hash;
    snapshot.origin_device = device;

    const std::vector<chunker::Segment> segments =
        chunker::segment_file(ByteSpan(data), seg_params);
    for (const chunker::Segment& seg : segments) {
      snapshot.segment_ids.push_back(seg.id);
      // Dedup: only segments unknown to the pool (and not already scheduled
      // in this scan) need uploading.
      if (image.find_segment(seg.id) != nullptr) continue;
      if (sink) {
        if (emitted.insert(seg.id).second) {
          sink(seg.id, chunker::segment_bytes(ByteSpan(data), seg));
        }
      } else if (result.new_segments.count(seg.id) == 0) {
        result.new_segments.emplace(
            seg.id, chunker::segment_bytes(ByteSpan(data), seg));
      }
    }
    result.changes.record(Change::upsert_file(snapshot));
    result.touched.push_back(std::move(snapshot));
  }

  // Deleted files.
  for (const auto& [path, snapshot] : image.files()) {
    if (local_set.count(path) == 0) {
      result.changes.record(Change::delete_file(path));
      if (cache != nullptr) cache->forget(path);
    }
  }

  // Directories.
  const std::vector<std::string> local_dirs = fs.list_dirs();
  const std::set<std::string> local_dir_set(local_dirs.begin(),
                                            local_dirs.end());
  for (const std::string& d : local_dirs) {
    if (image.dirs().count(d) == 0) {
      result.changes.record(Change::add_dir(d));
    }
  }
  for (const std::string& d : image.dirs()) {
    if (local_dir_set.count(d) == 0) {
      result.changes.record(Change::delete_dir(d));
    }
  }

  return result;
}

}  // namespace unidrive::core
