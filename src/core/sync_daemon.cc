#include "core/sync_daemon.h"

#include <chrono>

#include "common/logging.h"

namespace unidrive::core {

void SyncDaemon::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  thread_ = std::thread([this] { loop(); });
}

void SyncDaemon::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

bool SyncDaemon::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_ && !stop_requested_;
}

SyncDaemon::Stats SyncDaemon::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

Result<SyncReport> SyncDaemon::run_round() {
  auto report = client_.sync();
  const bool busy = report.is_ok() && (report.value().committed ||
                                       report.value().applied_cloud);
  std::size_t round = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    round = ++stats_.rounds;
    if (report.is_ok()) {
      if (report.value().committed) ++stats_.commits;
      if (report.value().applied_cloud) ++stats_.applied;
      stats_.conflicts += report.value().conflicts.size();
    } else {
      ++stats_.errors;
      UNI_LOG(kWarn) << "sync round failed: " << report.status().to_string();
    }
  }

  // Background maintenance rides the same cadence: paced (every Nth
  // round), budgeted, and throttled further when the foreground round
  // actually moved data.
  if (config_.maintenance != nullptr && config_.maintenance_every > 0 &&
      round % static_cast<std::size_t>(config_.maintenance_every) == 0) {
    MaintenanceBudget budget;
    budget.blocks = config_.maintenance_blocks;
    if (busy) {
      budget.blocks = config_.busy_budget_divisor == 0
                          ? 0
                          : budget.blocks / config_.busy_budget_divisor;
    }
    if (budget.blocks > 0) {
      const Status status = config_.maintenance->run_slice(budget);
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.maintenance_slices;
      if (!status.is_ok()) {
        ++stats_.maintenance_errors;
        UNI_LOG(kWarn) << "maintenance slice failed: " << status.to_string();
      }
    }
  }
  return report;
}

void SyncDaemon::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    lock.unlock();
    (void)run_round();  // errors are counted and retried next tick
    lock.lock();
    cv_.wait_for(lock,
                 std::chrono::duration<double>(config_.sync_interval),
                 [this] { return stop_requested_; });
  }
}

}  // namespace unidrive::core
