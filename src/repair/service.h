// RepairService — packages Scrubber + RepairEngine as the SyncDaemon's
// paced background MaintenanceTask.
//
// Every slice: (optionally) one scrub pass, then one budget-bounded repair
// slice, then a durability rollup published as repair.* gauges. The daemon
// owns the pacing (every Nth round, shrunken budget after busy foreground
// rounds); the service owns the policy of spending whatever budget arrives.
#pragma once

#include <memory>
#include <mutex>

#include "core/sync_daemon.h"
#include "repair/durability.h"
#include "repair/engine.h"
#include "repair/scrubber.h"

namespace unidrive::repair {

struct RepairServiceConfig {
  ScrubConfig scrub;
  RepairConfig repair;
  // Scrub on every Nth slice (1 = every slice). Repair runs every slice —
  // the ledger usually outlives the pass that filled it.
  int scrub_every = 1;
};

class RepairService final : public core::MaintenanceTask {
 public:
  explicit RepairService(core::UniDriveClient& client,
                         RepairServiceConfig config = {});

  Status run_slice(const core::MaintenanceBudget& budget) override;

  struct Totals {
    std::size_t slices = 0;
    std::size_t scrub_passes = 0;
    std::size_t defects_found = 0;      // new defects across all passes
    std::size_t blocks_healed = 0;
    std::size_t rehomed = 0;
    std::size_t orphans_collected = 0;
    std::size_t failures = 0;
    std::size_t unrecoverable = 0;
    ScrubReport last_scrub;
    RepairOutcome last_repair;
  };
  [[nodiscard]] Totals totals() const;
  [[nodiscard]] const std::shared_ptr<DurabilityTracker>& tracker()
      const noexcept {
    return tracker_;
  }

 private:
  core::UniDriveClient& client_;
  RepairServiceConfig config_;
  std::shared_ptr<DurabilityTracker> tracker_;
  Scrubber scrubber_;
  RepairEngine engine_;
  mutable std::mutex mutex_;  // guards totals_ and slice_
  Totals totals_;
  std::size_t slice_ = 0;
};

}  // namespace unidrive::repair
