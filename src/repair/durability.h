// DurabilityTracker — the shared, thread-safe ledger between the scrubber
// (which records defects and orphan sightings), the repair engine (which
// drains them) and the client's SyncReport (which summarizes data health).
//
// Defects are keyed by placement (segment, block index, cloud); the first
// sighting's timestamp survives re-sightings so MTTR measures detection to
// heal. Orphans go through a quarantine before they are collectable:
//
//   an object in /data unreferenced by the committed image is deleted only
//   after (a) it was sighted in at least two scrub passes, (b) the
//   committed version advanced past the version it was first sighted
//   under, and (c) a grace period elapsed since the first sighting.
//
// (b) is the crash-safety core: blocks are uploaded BEFORE the metadata
// referencing them commits, so an object that is still unreferenced after
// a later commit landed was not part of that commit; (c) bounds the
// exposure of a slow uploader that has not reached its commit yet (the
// grace must exceed any client's upload-to-commit window — see DESIGN §10d).
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "metadata/image.h"
#include "obs/obs.h"
#include "repair/types.h"

namespace unidrive::repair {

class DurabilityTracker {
 public:
  // MTTR bounds stretch from sub-second (same-slice heal in virtual time)
  // to hours (a cloud that stayed dark across soak rounds).
  explicit DurabilityTracker(obs::ObsPtr obs = nullptr);

  // --- defect ledger -----------------------------------------------------
  // Records one defective placement. Idempotent: re-sighting an already
  // recorded defect keeps the original detected_at (and kind, unless the
  // new kind is more severe, i.e. corrupt upgraded from missing is kept as
  // reported). Returns true when the defect is new.
  bool record(const Defect& defect);

  // The placement is healthy again (repaired by us, or healed externally —
  // another device's repair pass). Observes healed_at - detected_at into
  // the repair.mttr histogram and drops the entry.
  void mark_healed(const std::string& segment_id, std::uint32_t block_index,
                   cloud::CloudId cloud, TimePoint healed_at);

  // Drops every ledger entry of the segment (it was garbage-collected or
  // vanished from the pool) without counting a heal.
  void forget_segment(const std::string& segment_id);

  // Drops kCloudLost entries of `cloud` (its breaker closed again) without
  // counting heals — the blocks were never actually gone.
  void retract_cloud_lost(cloud::CloudId cloud);

  [[nodiscard]] bool is_defective(const std::string& segment_id,
                                  std::uint32_t block_index,
                                  cloud::CloudId cloud) const;
  // Kind of the recorded defect, or nullopt when the placement is healthy.
  [[nodiscard]] std::optional<DefectKind> defect_kind(
      const std::string& segment_id, std::uint32_t block_index,
      cloud::CloudId cloud) const;

  // All defects, unordered. kOrphanBlock never appears here (orphans live
  // in the quarantine below).
  [[nodiscard]] std::vector<Defect> defects() const;
  [[nodiscard]] std::size_t backlog() const;

  // --- orphan quarantine --------------------------------------------------
  struct OrphanKey {
    cloud::CloudId cloud = 0;
    std::string name;  // leaf name under /data, "<storage-address>_<index>"
    friend bool operator<(const OrphanKey& a, const OrphanKey& b) noexcept {
      if (a.cloud != b.cloud) return a.cloud < b.cloud;
      return a.name < b.name;
    }
  };

  // Reconciles the quarantine with one scrub pass's full sighting set for
  // the clouds that were actually listed: new sightings enter quarantine,
  // re-sightings age, entries of a listed cloud that were NOT re-sighted
  // leave (the object is gone or became referenced). Clouds not in
  // `listed_clouds` keep their entries untouched (unreachable != resolved).
  void observe_orphans(const std::set<OrphanKey>& sighted,
                       const std::set<cloud::CloudId>& listed_clouds,
                       const metadata::VersionStamp& committed_version,
                       TimePoint now);

  // Orphans whose quarantine fully elapsed (see class comment) and which
  // the repair engine may therefore delete.
  [[nodiscard]] std::vector<OrphanKey> collectable_orphans(
      const metadata::VersionStamp& committed_version, TimePoint now,
      Duration grace) const;

  // The orphan was deleted (or turned out referenced); leave quarantine.
  void drop_orphan(const OrphanKey& key);

  [[nodiscard]] std::size_t orphans_quarantined() const;

  // --- durability summary -------------------------------------------------
  // Rolls up data health over `image`: a placement survives when its cloud
  // is admissible AND the ledger holds no defect for it. Only referenced
  // (refcount > 0) segments count — refcount-zero pool entries are GC
  // candidates, not durability obligations. Distinct block indices count
  // once.
  [[nodiscard]] DurabilitySummary summarize(
      const metadata::SyncFolderImage& image, std::size_t k,
      std::size_t redundancy_floor,
      const std::function<bool(cloud::CloudId)>& admissible) const;

 private:
  struct PlacementKey {
    std::string segment_id;
    std::uint32_t block_index = 0;
    cloud::CloudId cloud = 0;
    friend bool operator<(const PlacementKey& a,
                          const PlacementKey& b) noexcept {
      if (a.segment_id != b.segment_id) return a.segment_id < b.segment_id;
      if (a.block_index != b.block_index) return a.block_index < b.block_index;
      return a.cloud < b.cloud;
    }
  };
  struct OrphanEntry {
    metadata::VersionStamp first_seen_version;
    TimePoint first_seen = 0.0;
    std::size_t sightings = 0;
  };

  obs::ObsPtr obs_;
  mutable std::mutex mutex_;
  std::map<PlacementKey, Defect> defects_;
  std::map<OrphanKey, OrphanEntry> orphans_;
};

// Exports the summary as repair.* gauges (backlog, under_replicated,
// unrecoverable, min_surviving, min_redundancy, orphans_quarantined).
void publish_durability_gauges(const DurabilitySummary& summary,
                               obs::Observability* obs);

// Answers "does the committed image reference this /data object?" for the
// orphan sweep. Block leaf names are "<storage-address>_<index>" where the
// address is a one-way fingerprint of the segment id (crypto::
// storage_address) — the id cannot be parsed back out of the name, so the
// reverse map address → placements is precomputed here, once per image.
// Build one per scrub pass / orphan drain. An object counts as referenced
// when ANY pool entry places it, including refcount-zero ones: their
// blocks belong to the segment GC path, not the orphan collector.
// Unparsable names are unreferenced.
class BlockReferenceIndex {
 public:
  explicit BlockReferenceIndex(const metadata::SyncFolderImage& image);
  [[nodiscard]] bool referenced(cloud::CloudId cloud,
                                const std::string& name) const;

 private:
  // storage address -> placements of the segment stored under it.
  std::map<std::string, std::vector<metadata::BlockLocation>> by_address_;
};

}  // namespace unidrive::repair
