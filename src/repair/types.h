// Defect taxonomy of the scrub-and-repair subsystem.
//
// UniDrive's (k, n) dispersal *tolerates* a missing cloud at read time, but
// nothing in the sync protocol ever notices that a provider silently dropped
// or bit-rotted a block — redundancy erodes invisibly until a restore fails.
// The scrubber turns those silent events into explicit Defect records, the
// repair engine drains them, and the DurabilityTracker is the ledger both
// share (and the SyncReport durability summary reads).
#pragma once

#include <cstdint>
#include <string>

#include "cloud/provider.h"
#include "common/clock.h"

namespace unidrive::repair {

enum class DefectKind : std::uint8_t {
  // The committed metadata references the block but the cloud no longer
  // stores an object at its path (provider lost it, or an operator deleted
  // it behind UniDrive's back).
  kMissingBlock = 0,
  // The object exists but its bytes are not the RS codeword row the
  // metadata promises: wrong size (cheap probe) or wrong content (deep
  // verify against a hash-verified decode).
  kCorruptBlock = 1,
  // An object in /data that no committed segment references. Usually debris
  // of a torn upload or a client that died between block upload and
  // metadata commit; collected only after a quarantine (see
  // DurabilityTracker) so an upload racing toward its commit is never
  // deleted from under it.
  kOrphanBlock = 2,
  // Escalation of cloud/health breaker state: the cloud has been refusing
  // requests for so many consecutive scrub passes that its blocks are
  // treated as gone and re-homed onto healthy clouds.
  kCloudLost = 3,
};

const char* defect_kind_name(DefectKind kind) noexcept;

// One defective block. (segment_id, block_index, cloud) identifies the
// placement; detected_at is when the scrubber first saw the defect, so
// heal time minus it is the MTTR sample.
struct Defect {
  DefectKind kind = DefectKind::kMissingBlock;
  std::string segment_id;
  std::uint32_t block_index = 0;
  cloud::CloudId cloud = 0;
  TimePoint detected_at = 0.0;
};

// Point-in-time data-health rollup over a committed image, combining the
// defect ledger with breaker admissibility. Carried in SyncReport so
// degraded mode reflects data durability, not just cloud reachability.
struct DurabilitySummary {
  std::size_t segments = 0;         // live (referenced) segments considered
  std::size_t min_surviving = 0;    // min distinct healthy blocks of any segment
  // min_surviving - k: 0 = some segment has zero margin, negative = some
  // segment cannot be decoded from the clouds at all.
  long long min_redundancy = 0;
  std::size_t under_replicated = 0; // segments with surviving < k + floor
  std::size_t unrecoverable = 0;    // segments with surviving < k
  std::size_t repair_backlog = 0;   // defective blocks awaiting repair
  std::size_t orphans_quarantined = 0;
};

}  // namespace unidrive::repair
