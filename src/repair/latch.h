// CompletionLatch — tiny join primitive for fanning scrub/repair RPCs out
// over the async cloud API (cloud/async.h) and waiting for all completions.
//
// The scrubber and the repair engine launch a bounded batch of *_async
// verbs, each completion calls arrive(), and the issuing thread blocks in
// wait() until the batch drains. Completions never run on the caller's
// stack (AsyncCloud invariant 1), so launching everything before waiting
// cannot deadlock.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace unidrive::repair {

class CompletionLatch {
 public:
  // Registers one expected completion. Call before launching the op.
  void expect(std::size_t n = 1) {
    std::lock_guard<std::mutex> lock(mutex_);
    expected_ += n;
  }

  void arrive() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++arrived_;
    if (arrived_ >= expected_) cv_.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return arrived_ >= expected_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t expected_ = 0;
  std::size_t arrived_ = 0;
};

}  // namespace unidrive::repair
