#include "repair/service.h"

namespace unidrive::repair {

RepairService::RepairService(core::UniDriveClient& client,
                             RepairServiceConfig config)
    : client_(client),
      config_(config),
      tracker_(client.durability()),
      scrubber_(client, tracker_, config.scrub),
      engine_(client, tracker_, config.repair) {}

Status RepairService::run_slice(const core::MaintenanceBudget& budget) {
  std::size_t slice = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    slice = slice_++;
  }

  ScrubReport scrub;
  bool scrubbed = false;
  if (config_.scrub_every > 0 &&
      slice % static_cast<std::size_t>(config_.scrub_every) == 0) {
    scrub = scrubber_.run_pass();
    scrubbed = true;
  }

  const RepairOutcome repair = engine_.run_slice(budget.blocks);

  // Publish the durability rollup (the same one sync() surfaces) so a
  // daemon that is only running maintenance still keeps gauges current.
  const auto& cfg = client_.config();
  const auto& health = client_.health();
  const DurabilitySummary summary = tracker_->summarize(
      client_.image(), cfg.k, cfg.redundancy_floor,
      [&health](cloud::CloudId id) { return health->admissible(id); });
  publish_durability_gauges(summary, client_.observability().get());

  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++totals_.slices;
    if (scrubbed) {
      ++totals_.scrub_passes;
      totals_.defects_found += scrub.missing + scrub.corrupt + scrub.cloud_lost;
      totals_.last_scrub = scrub;
    }
    totals_.blocks_healed += repair.blocks_healed;
    totals_.rehomed += repair.rehomed;
    totals_.orphans_collected += repair.orphans_collected;
    totals_.failures += repair.failures;
    totals_.unrecoverable += repair.unrecoverable;
    totals_.last_repair = repair;
  }
  // Per-block failures are counted, not fatal: the next slice retries.
  return Status::ok();
}

RepairService::Totals RepairService::totals() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return totals_;
}

}  // namespace unidrive::repair
