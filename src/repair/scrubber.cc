#include "repair/scrubber.h"

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "core/download_pipeline.h"
#include "crypto/convergent.h"
#include "crypto/crc32.h"
#include "erasure/rs.h"
#include "metadata/types.h"
#include "repair/latch.h"

namespace unidrive::repair {

Scrubber::Scrubber(core::UniDriveClient& client,
                   std::shared_ptr<DurabilityTracker> tracker,
                   ScrubConfig config)
    : client_(client), tracker_(std::move(tracker)), config_(config) {}

ScrubReport Scrubber::run_pass() {
  ++pass_;
  ScrubReport report;
  report.pass = pass_;
  obs::Observability* obs = client_.observability().get();
  obs::Span span = obs::start_span(obs, "repair.scrub");
  obs::add_counter(obs, "repair.scrub.passes");

  // Snapshot the committed image: the pass classifies against ONE version
  // even if a concurrent sync advances the client mid-pass. A block that a
  // newer commit dropped shows up as an orphan sighting, which the
  // quarantine absorbs; it is never deleted off a single pass.
  const metadata::SyncFolderImage image = client_.image();
  const TimePoint now = client_.clock().now();
  const auto& health = client_.health();

  // Phase 1: one listing per admissible cloud, fanned out concurrently
  // over the async layer. Clouds with an open breaker are skipped — an
  // unreachable cloud's blocks are NOT missing, just unprobeable.
  std::map<cloud::CloudId, Listing> listings;
  {
    std::mutex mu;
    CompletionLatch latch;
    for (const cloud::AsyncCloudPtr& cloud : client_.async_clouds()) {
      const cloud::CloudId id = cloud->id();
      if (!health->admissible(id)) {
        ++report.clouds_skipped;
        continue;
      }
      listings.emplace(id, Listing{});
      latch.expect();
      cloud->list_async(
          metadata::kDataDir,
          [&listings, &mu, &latch, id](Result<std::vector<cloud::FileInfo>> r) {
            {
              std::lock_guard<std::mutex> lock(mu);
              Listing& listing = listings[id];
              if (r.is_ok()) {
                listing.ok = true;
                for (const cloud::FileInfo& f : r.value()) {
                  listing.files[f.name] = f.size;
                }
              }
            }
            latch.arrive();  // last touch: wait() may return right after
          });
    }
    latch.wait();
  }

  std::set<cloud::CloudId> listed;
  for (const auto& [id, listing] : listings) {
    if (listing.ok) {
      listed.insert(id);
    } else {
      ++report.clouds_skipped;  // admissible but the listing itself failed
    }
  }
  report.clouds_probed = listed.size();

  // Cloud-lost bookkeeping: count consecutive passes each enrolled cloud
  // was unprobeable; a successful probe resets the count and retracts any
  // earlier escalation (the blocks were never actually gone).
  for (const cloud::AsyncCloudPtr& cloud : client_.async_clouds()) {
    const cloud::CloudId id = cloud->id();
    if (listed.count(id) > 0) {
      if (open_passes_[id] != 0) {
        open_passes_[id] = 0;
        tracker_->retract_cloud_lost(id);
      }
    } else {
      ++open_passes_[id];
    }
  }

  probe_blocks(image, listings, now, report);
  escalate_lost_clouds(image, now, report);
  collect_orphans(image, listings, now, report);
  deep_verify(image, listed, now, report);

  // Ledger hygiene: defects of segments that left the pool are moot (the
  // segment GC deletes their blocks; nothing to repair).
  for (const Defect& defect : tracker_->defects()) {
    if (image.find_segment(defect.segment_id) == nullptr) {
      tracker_->forget_segment(defect.segment_id);
    }
  }

  obs::add_counter(obs, "repair.scrub.blocks_probed", report.blocks_probed);
  return report;
}

void Scrubber::probe_blocks(const metadata::SyncFolderImage& image,
                            const std::map<cloud::CloudId, Listing>& listings,
                            TimePoint now, ScrubReport& report) {
  obs::Observability* obs = client_.observability().get();
  const std::size_t k = client_.config().k;
  for (const auto& [seg_id, segment] : image.segments()) {
    if (segment.refcount == 0) continue;
    const std::uint64_t shard_size = (segment.size + k - 1) / k;
    for (const metadata::BlockLocation& loc : segment.blocks) {
      ++report.blocks_expected;
      const auto lit = listings.find(loc.cloud);
      if (lit == listings.end() || !lit->second.ok) continue;  // unprobeable
      ++report.blocks_probed;
      const std::string name = metadata::block_name(seg_id, loc.block_index);
      const auto fit = lit->second.files.find(name);
      if (fit == lit->second.files.end()) {
        if (tracker_->record(
                {DefectKind::kMissingBlock, seg_id, loc.block_index,
                 loc.cloud, now})) {
          ++report.missing;
          obs::add_counter(obs, "repair.scrub.defects.missing");
          UNI_LOG(kWarn) << "scrub: block " << name << " missing on cloud "
                         << loc.cloud;
        }
      } else if (fit->second != shard_size) {
        if (tracker_->record(
                {DefectKind::kCorruptBlock, seg_id, loc.block_index,
                 loc.cloud, now})) {
          ++report.corrupt;
          obs::add_counter(obs, "repair.scrub.defects.corrupt");
          UNI_LOG(kWarn) << "scrub: block " << name << " on cloud "
                         << loc.cloud << " has size " << fit->second
                         << ", expected " << shard_size;
        }
      } else {
        // Present with the right size again: a previously missing block
        // healed without us (another device repaired, or the provider
        // recovered it). Corrupt entries need deep verify to clear — the
        // right size proves nothing about the bytes.
        const auto kind =
            tracker_->defect_kind(seg_id, loc.block_index, loc.cloud);
        if (kind.has_value() && *kind == DefectKind::kMissingBlock) {
          tracker_->mark_healed(seg_id, loc.block_index, loc.cloud, now);
          ++report.healed_externally;
          obs::add_counter(obs, "repair.scrub.healed_externally");
        }
      }
    }
  }
}

void Scrubber::escalate_lost_clouds(const metadata::SyncFolderImage& image,
                                    TimePoint now, ScrubReport& report) {
  obs::Observability* obs = client_.observability().get();
  for (const auto& [cloud_id, passes] : open_passes_) {
    if (passes < config_.cloud_lost_after_passes) continue;
    for (const auto& [seg_id, segment] : image.segments()) {
      if (segment.refcount == 0) continue;
      for (const metadata::BlockLocation& loc : segment.blocks) {
        if (loc.cloud != cloud_id) continue;
        if (tracker_->record({DefectKind::kCloudLost, seg_id,
                              loc.block_index, cloud_id, now})) {
          ++report.cloud_lost;
          obs::add_counter(obs, "repair.scrub.defects.cloud_lost");
        }
      }
    }
  }
}

void Scrubber::collect_orphans(const metadata::SyncFolderImage& image,
                               const std::map<cloud::CloudId, Listing>& listings,
                               TimePoint now, ScrubReport& report) {
  std::set<DurabilityTracker::OrphanKey> sighted;
  std::set<cloud::CloudId> listed;
  // Stored names are one-way fingerprints of the segment id, so the
  // reverse lookup is precomputed once over the snapshot image.
  const BlockReferenceIndex referenced(image);
  for (const auto& [cloud_id, listing] : listings) {
    if (!listing.ok) continue;
    listed.insert(cloud_id);
    for (const auto& [name, size] : listing.files) {
      (void)size;
      if (referenced.referenced(cloud_id, name)) continue;
      sighted.insert(DurabilityTracker::OrphanKey{cloud_id, name});
    }
  }
  report.orphans_sighted = sighted.size();
  tracker_->observe_orphans(sighted, listed, image.version(), now);
}

void Scrubber::deep_verify(const metadata::SyncFolderImage& image,
                           const std::set<cloud::CloudId>& listed,
                           TimePoint now, ScrubReport& report) {
  if (config_.deep_verify_segments == 0) return;
  // Live segment ids in map order; resume after the cursor, wrap around.
  std::vector<const metadata::SegmentInfo*> pool;
  for (const auto& [id, segment] : image.segments()) {
    if (segment.refcount > 0) pool.push_back(&segment);
  }
  if (pool.empty()) return;
  std::size_t start = 0;
  if (!deep_cursor_.empty()) {
    while (start < pool.size() && pool[start]->id <= deep_cursor_) ++start;
  }
  const std::size_t count = std::min(config_.deep_verify_segments, pool.size());
  for (std::size_t i = 0; i < count; ++i) {
    const metadata::SegmentInfo* segment = pool[(start + i) % pool.size()];
    verify_segment(*segment, listed, now, report);
    ++report.segments_deep_verified;
    deep_cursor_ = segment->id;
  }
  obs::add_counter(client_.observability().get(),
                   "repair.scrub.deep_verified", count);
}

void Scrubber::verify_segment(const metadata::SegmentInfo& segment,
                              const std::set<cloud::CloudId>& listed,
                              TimePoint now, ScrubReport& report) {
  obs::Observability* obs = client_.observability().get();
  // Fetch every reachable placement that is not already known missing.
  // Slots are written by at most one completion each and read only after
  // the latch's wait() — the latch mutex publishes the writes.
  struct Slot {
    bool launched = false;
    bool fetched = false;
    bool not_found = false;
    Bytes bytes;
  };
  std::vector<Slot> slots(segment.blocks.size());
  {
    CompletionLatch latch;
    for (std::size_t i = 0; i < segment.blocks.size(); ++i) {
      const metadata::BlockLocation& loc = segment.blocks[i];
      if (listed.count(loc.cloud) == 0) continue;
      const auto kind =
          tracker_->defect_kind(segment.id, loc.block_index, loc.cloud);
      if (kind.has_value() && *kind == DefectKind::kMissingBlock) continue;
      cloud::AsyncCloud* cloud = client_.async_cloud(loc.cloud);
      if (cloud == nullptr) continue;
      slots[i].launched = true;
      latch.expect();
      cloud->download_async(
          metadata::block_path(segment.id, loc.block_index),
          [slot = &slots[i], &latch](Result<Bytes> r) {
            if (r.is_ok()) {
              slot->fetched = true;
              slot->bytes = std::move(r).take();
            } else if (r.code() == ErrorCode::kNotFound) {
              slot->not_found = true;
            }
            latch.arrive();
          });
    }
    latch.wait();
  }

  const std::size_t k = client_.config().k;
  const erasure::RsCode code = client_.codec();
  const std::size_t shard_size = (segment.size + k - 1) / k;

  // Decode candidates: fetched blocks of the exact shard size. Wrong-size
  // blocks are corrupt outright and would poison the decode.
  std::vector<erasure::Shard> candidates;
  std::vector<std::size_t> candidate_slot;
  for (std::size_t i = 0; i < segment.blocks.size(); ++i) {
    const metadata::BlockLocation& loc = segment.blocks[i];
    if (slots[i].not_found) {
      if (tracker_->record({DefectKind::kMissingBlock, segment.id,
                            loc.block_index, loc.cloud, now})) {
        ++report.missing;
        obs::add_counter(obs, "repair.scrub.defects.missing");
      }
      continue;
    }
    if (!slots[i].fetched) continue;
    if (slots[i].bytes.size() != shard_size) {
      if (tracker_->record({DefectKind::kCorruptBlock, segment.id,
                            loc.block_index, loc.cloud, now})) {
        ++report.corrupt;
        obs::add_counter(obs, "repair.scrub.defects.corrupt");
      }
      continue;
    }
    candidates.push_back(
        erasure::Shard{loc.block_index, slots[i].bytes});
    candidate_slot.push_back(i);
  }

  if (candidates.size() < k) return;  // repair engine's problem, not ours

  const Result<Bytes> plain =
      core::decode_verified(code, candidates, segment, k, nullptr);
  if (!plain.is_ok()) {
    // No k-subset decodes to the segment's content hash: more corruption
    // than attribution can untangle. Flag every fetched block; the repair
    // engine rebuilds them all from the local file copy when one exists.
    for (const std::size_t i : candidate_slot) {
      const metadata::BlockLocation& loc = segment.blocks[i];
      if (tracker_->record({DefectKind::kCorruptBlock, segment.id,
                            loc.block_index, loc.cloud, now})) {
        ++report.corrupt;
        obs::add_counter(obs, "repair.scrub.defects.corrupt");
      }
    }
    return;
  }

  // Verified plaintext in hand: every fetched block must equal its
  // re-encoded codeword row, byte for byte. This is what catches same-size
  // bit-rot the listing probe cannot see. All candidate rows are re-encoded
  // in ONE fused pass (the segment is split into data shards once, each row
  // is one SIMD dot product), and a CRC32C screen runs before the byte
  // compare so the common all-good case touches each buffer once more at
  // hardware CRC speed instead of a full memcmp mismatch scan.
  std::vector<std::uint32_t> indices;
  indices.reserve(candidates.size());
  for (const std::size_t i : candidate_slot) {
    indices.push_back(segment.blocks[i].block_index);
  }
  // decode_verified returned plaintext; the stored rows are codewords over
  // the convergent-sealed payload, so seal before re-encoding the expected
  // rows (identity for legacy SHA-1 ids).
  const Bytes sealed = crypto::convergent_seal(segment.id, ByteSpan(plain.value()));
  const std::vector<erasure::Shard> expected =
      code.encode_shards(ByteSpan(sealed), indices);
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    const std::size_t i = candidate_slot[c];
    const metadata::BlockLocation& loc = segment.blocks[i];
    const bool matches =
        crypto::crc32c(ByteSpan(expected[c].data)) ==
            crypto::crc32c(ByteSpan(slots[i].bytes)) &&
        expected[c].data == slots[i].bytes;
    if (!matches) {
      if (tracker_->record({DefectKind::kCorruptBlock, segment.id,
                            loc.block_index, loc.cloud, now})) {
        ++report.corrupt;
        obs::add_counter(obs, "repair.scrub.defects.corrupt");
        UNI_LOG(kWarn) << "scrub: bit-rot in block "
                       << metadata::block_name(segment.id, loc.block_index)
                       << " on cloud " << loc.cloud;
      }
    } else {
      // The stored bytes are provably the right codeword row — clear any
      // stale corrupt entry (e.g. healed externally since we recorded it).
      const auto kind =
          tracker_->defect_kind(segment.id, loc.block_index, loc.cloud);
      if (kind.has_value() && *kind == DefectKind::kCorruptBlock) {
        tracker_->mark_healed(segment.id, loc.block_index, loc.cloud, now);
        ++report.healed_externally;
        obs::add_counter(obs, "repair.scrub.healed_externally");
      }
    }
  }
}

}  // namespace unidrive::repair
