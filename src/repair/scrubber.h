// Scrubber — walks the committed SyncFolderImage and checks that every
// cloud still holds the blocks the metadata promises.
//
// One pass has three phases, all driven through the async cloud API so a
// pass costs completions, not pool threads:
//
//   probe        one list(/data) per admissible cloud. Size+presence of
//                every referenced block is checked against the listing:
//                absent -> missing defect, wrong size -> corrupt defect.
//                Clouds with an open breaker are skipped, never blamed.
//   deep verify  a rotating sample of segments is fully downloaded,
//                decoded against the segment's content hash and each
//                stored block compared to its re-encoded codeword row —
//                the only way to catch same-size bit-rot.
//   orphans      listing names no committed segment references are handed
//                to the DurabilityTracker's quarantine (never deleted
//                here; the repair engine collects them after the
//                quarantine elapsed).
//
// A cloud whose breaker has been open for `cloud_lost_after_passes`
// consecutive passes is escalated to kCloudLost: its referenced blocks
// become defects and the repair engine re-homes them onto healthy clouds.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

#include "core/client.h"
#include "repair/durability.h"

namespace unidrive::repair {

struct ScrubConfig {
  // Segments fully downloaded + re-encoded per pass (the expensive check;
  // the cursor rotates so successive passes cover the whole pool).
  std::size_t deep_verify_segments = 2;
  // Consecutive breaker-open passes before a cloud's blocks are treated as
  // permanently lost and re-homed. Generous by default: re-homing is
  // expensive and outages (Fig. 14) usually end.
  int cloud_lost_after_passes = 8;
};

struct ScrubReport {
  std::size_t pass = 0;
  std::size_t clouds_probed = 0;
  std::size_t clouds_skipped = 0;     // breaker open or listing failed
  std::size_t blocks_expected = 0;    // referenced placements in the image
  std::size_t blocks_probed = 0;      // placements actually checked
  std::size_t segments_deep_verified = 0;
  // NEW defects recorded this pass (re-sightings are not counted again).
  std::size_t missing = 0;
  std::size_t corrupt = 0;
  std::size_t cloud_lost = 0;
  std::size_t orphans_sighted = 0;    // current quarantine input
  std::size_t healed_externally = 0;  // defects that resolved without us
};

class Scrubber {
 public:
  Scrubber(core::UniDriveClient& client,
           std::shared_ptr<DurabilityTracker> tracker, ScrubConfig config);

  // One bounded scrub pass over the client's committed image. Runs on the
  // caller's thread; RPCs fan out over the async layer.
  ScrubReport run_pass();

 private:
  struct Listing {
    bool ok = false;
    std::map<std::string, std::uint64_t> files;  // name -> size
  };

  void probe_blocks(const metadata::SyncFolderImage& image,
                    const std::map<cloud::CloudId, Listing>& listings,
                    TimePoint now, ScrubReport& report);
  void escalate_lost_clouds(const metadata::SyncFolderImage& image,
                            TimePoint now, ScrubReport& report);
  void collect_orphans(const metadata::SyncFolderImage& image,
                       const std::map<cloud::CloudId, Listing>& listings,
                       TimePoint now, ScrubReport& report);
  void deep_verify(const metadata::SyncFolderImage& image,
                   const std::set<cloud::CloudId>& listed, TimePoint now,
                   ScrubReport& report);
  void verify_segment(const metadata::SegmentInfo& segment,
                      const std::set<cloud::CloudId>& listed, TimePoint now,
                      ScrubReport& report);

  core::UniDriveClient& client_;
  std::shared_ptr<DurabilityTracker> tracker_;
  ScrubConfig config_;
  std::size_t pass_ = 0;
  std::string deep_cursor_;  // last deep-verified segment id (rotation)
  std::map<cloud::CloudId, int> open_passes_;  // consecutive skipped passes
};

}  // namespace unidrive::repair
