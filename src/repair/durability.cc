#include "repair/durability.h"

#include <algorithm>

#include "crypto/convergent.h"

namespace unidrive::repair {

const char* defect_kind_name(DefectKind kind) noexcept {
  switch (kind) {
    case DefectKind::kMissingBlock:
      return "missing";
    case DefectKind::kCorruptBlock:
      return "corrupt";
    case DefectKind::kOrphanBlock:
      return "orphan";
    case DefectKind::kCloudLost:
      return "cloud_lost";
  }
  return "unknown";
}

namespace {
// Heal latency stretches from "same slice, virtual time" to "cloud dark
// for hours": sub-second buckets up to a 6h overflow.
std::vector<double> mttr_bounds() {
  return {0.1, 1.0, 5.0, 15.0, 60.0, 300.0, 900.0, 3600.0, 21600.0};
}
}  // namespace

DurabilityTracker::DurabilityTracker(obs::ObsPtr obs) : obs_(std::move(obs)) {
  if (obs_ != nullptr) {
    // Pre-create with the wide bounds; later histogram(name) lookups reuse it.
    obs_->metrics.histogram("repair.mttr", mttr_bounds());
  }
}

bool DurabilityTracker::record(const Defect& defect) {
  std::lock_guard<std::mutex> lock(mutex_);
  const PlacementKey key{defect.segment_id, defect.block_index, defect.cloud};
  auto [it, inserted] = defects_.emplace(key, defect);
  if (!inserted) {
    // Keep the original detection time (MTTR measures first sighting to
    // heal) but let the kind sharpen: a size-probe "missing" that deep
    // verify reclassifies as corrupt should repair as the latter.
    it->second.kind = defect.kind;
  }
  return inserted;
}

void DurabilityTracker::mark_healed(const std::string& segment_id,
                                    std::uint32_t block_index,
                                    cloud::CloudId cloud,
                                    TimePoint healed_at) {
  Defect healed;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = defects_.find(PlacementKey{segment_id, block_index, cloud});
    if (it == defects_.end()) return;
    healed = it->second;
    found = true;
    defects_.erase(it);
  }
  if (found && obs_ != nullptr) {
    obs_->metrics.histogram("repair.mttr", mttr_bounds())
        .observe(std::max(0.0, healed_at - healed.detected_at));
  }
}

void DurabilityTracker::forget_segment(const std::string& segment_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = defects_.begin(); it != defects_.end();) {
    if (it->first.segment_id == segment_id) {
      it = defects_.erase(it);
    } else {
      ++it;
    }
  }
}

void DurabilityTracker::retract_cloud_lost(cloud::CloudId cloud) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = defects_.begin(); it != defects_.end();) {
    if (it->first.cloud == cloud &&
        it->second.kind == DefectKind::kCloudLost) {
      it = defects_.erase(it);
    } else {
      ++it;
    }
  }
}

bool DurabilityTracker::is_defective(const std::string& segment_id,
                                     std::uint32_t block_index,
                                     cloud::CloudId cloud) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return defects_.count(PlacementKey{segment_id, block_index, cloud}) > 0;
}

std::optional<DefectKind> DurabilityTracker::defect_kind(
    const std::string& segment_id, std::uint32_t block_index,
    cloud::CloudId cloud) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = defects_.find(PlacementKey{segment_id, block_index, cloud});
  if (it == defects_.end()) return std::nullopt;
  return it->second.kind;
}

std::vector<Defect> DurabilityTracker::defects() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Defect> out;
  out.reserve(defects_.size());
  for (const auto& [key, defect] : defects_) out.push_back(defect);
  return out;
}

std::size_t DurabilityTracker::backlog() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return defects_.size();
}

void DurabilityTracker::observe_orphans(
    const std::set<OrphanKey>& sighted,
    const std::set<cloud::CloudId>& listed_clouds,
    const metadata::VersionStamp& committed_version, TimePoint now) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Entries of listed clouds that were not re-sighted resolved themselves
  // (deleted, or referenced by a newer image).
  for (auto it = orphans_.begin(); it != orphans_.end();) {
    if (listed_clouds.count(it->first.cloud) > 0 &&
        sighted.count(it->first) == 0) {
      it = orphans_.erase(it);
    } else {
      ++it;
    }
  }
  for (const OrphanKey& key : sighted) {
    auto [it, inserted] = orphans_.emplace(
        key, OrphanEntry{committed_version, now, 1});
    if (!inserted) ++it->second.sightings;
  }
}

std::vector<DurabilityTracker::OrphanKey>
DurabilityTracker::collectable_orphans(
    const metadata::VersionStamp& committed_version, TimePoint now,
    Duration grace) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<OrphanKey> out;
  for (const auto& [key, entry] : orphans_) {
    if (entry.sightings >= 2 && entry.first_seen_version < committed_version &&
        now - entry.first_seen >= grace) {
      out.push_back(key);
    }
  }
  return out;
}

void DurabilityTracker::drop_orphan(const OrphanKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  orphans_.erase(key);
}

std::size_t DurabilityTracker::orphans_quarantined() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return orphans_.size();
}

DurabilitySummary DurabilityTracker::summarize(
    const metadata::SyncFolderImage& image, std::size_t k,
    std::size_t redundancy_floor,
    const std::function<bool(cloud::CloudId)>& admissible) const {
  DurabilitySummary summary;
  std::lock_guard<std::mutex> lock(mutex_);
  summary.repair_backlog = defects_.size();
  summary.orphans_quarantined = orphans_.size();
  bool first = true;
  for (const auto& [id, segment] : image.segments()) {
    if (segment.refcount == 0) continue;  // GC candidate, not an obligation
    ++summary.segments;
    std::set<std::uint32_t> surviving;
    for (const metadata::BlockLocation& loc : segment.blocks) {
      if (!admissible(loc.cloud)) continue;
      if (defects_.count(PlacementKey{id, loc.block_index, loc.cloud}) > 0) {
        continue;
      }
      surviving.insert(loc.block_index);
    }
    const std::size_t n = surviving.size();
    if (first || n < summary.min_surviving) summary.min_surviving = n;
    first = false;
    if (n < k) ++summary.unrecoverable;
    if (n < k + redundancy_floor) ++summary.under_replicated;
  }
  if (summary.segments == 0) summary.min_surviving = 0;
  summary.min_redundancy =
      summary.segments == 0
          ? 0
          : static_cast<long long>(summary.min_surviving) -
                static_cast<long long>(k);
  return summary;
}

BlockReferenceIndex::BlockReferenceIndex(
    const metadata::SyncFolderImage& image) {
  for (const auto& [id, segment] : image.segments()) {
    by_address_[crypto::storage_address(id)] = segment.blocks;
  }
}

bool BlockReferenceIndex::referenced(cloud::CloudId cloud,
                                     const std::string& name) const {
  const std::size_t sep = name.rfind('_');
  if (sep == std::string::npos || sep == 0 || sep + 1 >= name.size()) {
    return false;
  }
  std::uint32_t index = 0;
  for (std::size_t i = sep + 1; i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    index = index * 10 + static_cast<std::uint32_t>(c - '0');
  }
  const auto it = by_address_.find(name.substr(0, sep));
  if (it == by_address_.end()) return false;
  for (const metadata::BlockLocation& loc : it->second) {
    if (loc.block_index == index && loc.cloud == cloud) return true;
  }
  return false;
}

void publish_durability_gauges(const DurabilitySummary& summary,
                               obs::Observability* obs) {
  obs::set_gauge(obs, "repair.backlog",
                 static_cast<double>(summary.repair_backlog));
  obs::set_gauge(obs, "repair.under_replicated",
                 static_cast<double>(summary.under_replicated));
  obs::set_gauge(obs, "repair.unrecoverable",
                 static_cast<double>(summary.unrecoverable));
  obs::set_gauge(obs, "repair.min_surviving",
                 static_cast<double>(summary.min_surviving));
  obs::set_gauge(obs, "repair.min_redundancy",
                 static_cast<double>(summary.min_redundancy));
  obs::set_gauge(obs, "repair.orphans_quarantined",
                 static_cast<double>(summary.orphans_quarantined));
}

}  // namespace unidrive::repair
