// RepairEngine — drains the DurabilityTracker's defect ledger and restores
// full redundancy, most-endangered segments first.
//
// One slice is budgeted in blocks (the daemon's admission control): the
// engine orders defective segments by surviving block count ascending —
// a segment one block away from k is repaired before one merely below its
// redundancy floor — and for each:
//
//   1. reconstructs the plaintext (local file slice when available,
//      otherwise a hash-verified decode that EXCLUDES the defective
//      placements),
//   2. re-encodes exactly the lost/corrupt block indices (non-systematic
//      RS with the pinned codec length keeps every index re-derivable),
//   3. re-uploads in place (missing/corrupt on a reachable cloud) or onto
//      a healthy cloud (kCloudLost re-homing, respecting the ks security
//      cap max_per_cloud),
//   4. commits placement changes through the quorum-locked MetaStore —
//      blocks land BEFORE the commit, the same crash-safety order as the
//      sync write path; a crash mid-repair leaves orphans, never dangling
//      references.
//
// In-place repairs need no commit (the metadata already says exactly
// where the block belongs) and are marked healed as soon as the upload
// lands; re-homed blocks are marked healed only after their commit is
// durable. Quarantine-expired orphans are deleted last, each re-checked
// against the freshest committed image.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/client.h"
#include "repair/durability.h"

namespace unidrive::repair {

struct RepairConfig {
  // Quarantine a scrub-sighted orphan must serve before deletion; must
  // exceed any client's worst-case upload-to-commit window (DESIGN §10d).
  Duration orphan_grace = 600.0;
};

struct RepairOutcome {
  std::size_t blocks_healed = 0;      // defects cleared by us this slice
  std::size_t segments_repaired = 0;  // segments with >=1 heal
  std::size_t rehomed = 0;            // blocks moved off a lost cloud
  std::size_t orphans_collected = 0;
  std::size_t failures = 0;       // uploads/deletes that failed (retry later)
  std::size_t unrecoverable = 0;  // segments with no plaintext source left
  bool committed = false;         // a placement-change commit landed
};

class RepairEngine {
 public:
  RepairEngine(core::UniDriveClient& client,
               std::shared_ptr<DurabilityTracker> tracker,
               RepairConfig config);

  // Repairs up to `budget_blocks` blocks (uploads + orphan deletions).
  // Runs on the caller's thread; uploads fan out over the async layer.
  RepairOutcome run_slice(std::size_t budget_blocks);

 private:
  struct PendingRehome {
    std::string segment_id;
    std::uint32_t block_index = 0;
    cloud::CloudId old_cloud = 0;
  };

  void repair_segment(const metadata::SyncFolderImage& image,
                      const metadata::SegmentInfo& segment,
                      std::vector<Defect> defects, std::size_t& budget,
                      RepairOutcome& out,
                      std::vector<metadata::SegmentInfo>& placement_changes,
                      std::vector<PendingRehome>& pending_rehomes);
  void collect_orphans(std::size_t& budget, RepairOutcome& out);

  core::UniDriveClient& client_;
  std::shared_ptr<DurabilityTracker> tracker_;
  RepairConfig config_;
};

}  // namespace unidrive::repair
