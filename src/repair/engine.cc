#include "repair/engine.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/logging.h"
#include "crypto/convergent.h"
#include "metadata/types.h"
#include "repair/latch.h"
#include "sched/plan.h"

namespace unidrive::repair {

RepairEngine::RepairEngine(core::UniDriveClient& client,
                           std::shared_ptr<DurabilityTracker> tracker,
                           RepairConfig config)
    : client_(client), tracker_(std::move(tracker)), config_(std::move(config)) {}

RepairOutcome RepairEngine::run_slice(std::size_t budget_blocks) {
  RepairOutcome out;
  if (budget_blocks == 0) return out;
  obs::Observability* obs = client_.observability().get();
  obs::Span span = obs::start_span(obs, "repair.slice");

  const metadata::SyncFolderImage image = client_.image();
  const auto& health = client_.health();

  // Group the ledger by segment, dropping entries whose segment left the
  // pool (segment GC owns their blocks now).
  std::map<std::string, std::vector<Defect>> by_segment;
  for (Defect& defect : tracker_->defects()) {
    if (image.find_segment(defect.segment_id) == nullptr) {
      tracker_->forget_segment(defect.segment_id);
      continue;
    }
    by_segment[defect.segment_id].push_back(std::move(defect));
  }

  // Priority: fewest surviving blocks first — the segment closest to
  // losing decodability gets the budget before the merely degraded one.
  struct Item {
    const metadata::SegmentInfo* segment = nullptr;
    std::size_t surviving = 0;
  };
  std::vector<Item> queue;
  queue.reserve(by_segment.size());
  for (const auto& [seg_id, defects] : by_segment) {
    const metadata::SegmentInfo* segment = image.find_segment(seg_id);
    std::set<std::uint32_t> surviving;
    for (const metadata::BlockLocation& loc : segment->blocks) {
      if (!health->admissible(loc.cloud)) continue;
      if (tracker_->is_defective(seg_id, loc.block_index, loc.cloud)) continue;
      surviving.insert(loc.block_index);
    }
    queue.push_back(Item{segment, surviving.size()});
  }
  std::sort(queue.begin(), queue.end(), [](const Item& a, const Item& b) {
    if (a.surviving != b.surviving) return a.surviving < b.surviving;
    return a.segment->id < b.segment->id;
  });

  std::size_t budget = budget_blocks;
  std::vector<metadata::SegmentInfo> placement_changes;
  std::vector<PendingRehome> pending_rehomes;
  for (const Item& item : queue) {
    if (budget == 0) break;
    repair_segment(image, *item.segment, by_segment[item.segment->id], budget,
                   out, placement_changes, pending_rehomes);
  }

  // One commit for every re-homed placement of the slice. Blocks are
  // already uploaded; only after the commit is durable do the re-homes
  // count as healed (until then the metadata still references the lost
  // cloud, and the new copies are merely quarantine-protected orphans).
  if (!placement_changes.empty()) {
    const Status status =
        client_.commit_repaired_placements(std::move(placement_changes));
    if (status.is_ok()) {
      out.committed = true;
      obs::add_counter(obs, "repair.commits");
      const TimePoint now = client_.clock().now();
      for (const PendingRehome& rehome : pending_rehomes) {
        tracker_->mark_healed(rehome.segment_id, rehome.block_index,
                              rehome.old_cloud, now);
        ++out.blocks_healed;
        obs::add_counter(obs, "repair.blocks_healed");
      }
    } else {
      out.failures += pending_rehomes.size();
      obs::add_counter(obs, "repair.commit_failures");
      UNI_LOG(kWarn) << "repair: placement commit failed: "
                     << status.to_string();
    }
  }

  collect_orphans(budget, out);
  return out;
}

void RepairEngine::repair_segment(
    const metadata::SyncFolderImage& image,
    const metadata::SegmentInfo& segment, std::vector<Defect> defects,
    std::size_t& budget, RepairOutcome& out,
    std::vector<metadata::SegmentInfo>& placement_changes,
    std::vector<PendingRehome>& pending_rehomes) {
  obs::Observability* obs = client_.observability().get();
  const auto& health = client_.health();
  const sched::CodeParams params = client_.code_params();

  // Plan first, so the (expensive) reconstruction is skipped when nothing
  // is actionable — e.g. every defective cloud is unreachable.
  struct Action {
    Defect defect;
    cloud::CloudId target = 0;
    bool rehome = false;
  };
  std::map<cloud::CloudId, std::size_t> per_cloud;  // ks security cap input
  for (const metadata::BlockLocation& loc : segment.blocks) {
    ++per_cloud[loc.cloud];
  }
  std::vector<Action> actions;
  for (const Defect& defect : defects) {
    if (budget == actions.size()) break;  // slice budget exhausted
    if (defect.kind == DefectKind::kCloudLost) {
      // Re-home onto the admissible cloud holding the fewest blocks of
      // this segment, never exceeding the security cap and never the lost
      // cloud itself.
      cloud::CloudId best = 0;
      bool found = false;
      for (const cloud::AsyncCloudPtr& cloud : client_.async_clouds()) {
        const cloud::CloudId id = cloud->id();
        if (id == defect.cloud || !health->admissible(id)) continue;
        if (per_cloud[id] >= params.max_per_cloud()) continue;
        if (!found || per_cloud[id] < per_cloud[best]) {
          best = id;
          found = true;
        }
      }
      if (!found) {
        ++out.failures;  // no legal target; retry a later slice
        continue;
      }
      ++per_cloud[best];
      actions.push_back(Action{defect, best, true});
    } else {
      if (!health->admissible(defect.cloud)) continue;  // wait for breaker
      actions.push_back(Action{defect, defect.cloud, false});
    }
  }
  if (actions.empty()) return;

  // Reconstruct the plaintext without trusting any defective placement.
  std::vector<metadata::BlockLocation> exclude;
  exclude.reserve(defects.size());
  for (const Defect& defect : defects) {
    exclude.push_back(metadata::BlockLocation{defect.block_index, defect.cloud});
  }
  const Result<Bytes> plain =
      client_.reconstruct_segment(segment.id, exclude);
  if (!plain.is_ok()) {
    ++out.unrecoverable;
    obs::add_counter(obs, "repair.reconstruct_failures");
    UNI_LOG(kWarn) << "repair: segment " << segment.id
                   << " unrecoverable this slice: "
                   << plain.status().to_string();
    return;
  }

  // Re-encode exactly the needed rows, once per distinct index.
  std::vector<std::uint32_t> indices;
  for (const Action& action : actions) {
    if (std::find(indices.begin(), indices.end(),
                  action.defect.block_index) == indices.end()) {
      indices.push_back(action.defect.block_index);
    }
  }
  const erasure::RsCode code = client_.codec();
  // Repaired rows must match the originals byte for byte: seal the
  // reconstructed plaintext before re-encoding (identity for legacy ids).
  const Bytes sealed =
      crypto::convergent_seal(segment.id, ByteSpan(plain.value()));
  const std::vector<erasure::Shard> shards =
      code.encode_shards(ByteSpan(sealed), indices);
  std::map<std::uint32_t, const Bytes*> shard_by_index;
  for (const erasure::Shard& shard : shards) {
    shard_by_index[shard.index] = &shard.data;
  }

  // Fan the uploads out; shards outlive the latch wait (invariant 3).
  struct Slot {
    bool launched = false;
    Status status = make_error(ErrorCode::kInternal, "not launched");
  };
  std::vector<Slot> slots(actions.size());
  {
    CompletionLatch latch;
    for (std::size_t i = 0; i < actions.size(); ++i) {
      const Action& action = actions[i];
      cloud::AsyncCloud* cloud = client_.async_cloud(action.target);
      const Bytes* data = shard_by_index[action.defect.block_index];
      if (cloud == nullptr || data == nullptr) continue;
      slots[i].launched = true;
      latch.expect();
      cloud->upload_async(
          metadata::block_path(segment.id, action.defect.block_index),
          ByteSpan(*data), [slot = &slots[i], &latch](Status s) {
            slot->status = std::move(s);
            latch.arrive();
          });
    }
    latch.wait();
  }

  const TimePoint now = client_.clock().now();
  bool any_healed = false;
  metadata::SegmentInfo updated = segment;
  bool placement_changed = false;
  for (std::size_t i = 0; i < actions.size(); ++i) {
    const Action& action = actions[i];
    if (budget > 0) --budget;  // launched or not, the attempt was admitted
    if (!slots[i].launched || !slots[i].status.is_ok()) {
      ++out.failures;
      obs::add_counter(obs, "repair.upload_failures");
      continue;
    }
    if (action.rehome) {
      for (metadata::BlockLocation& loc : updated.blocks) {
        if (loc.block_index == action.defect.block_index &&
            loc.cloud == action.defect.cloud) {
          loc.cloud = action.target;
        }
      }
      placement_changed = true;
      ++out.rehomed;
      obs::add_counter(obs, "repair.blocks_rehomed");
      pending_rehomes.push_back(PendingRehome{
          segment.id, action.defect.block_index, action.defect.cloud});
      any_healed = true;
    } else {
      // In-place: the metadata already references exactly this placement —
      // the moment the bytes are back, the defect is gone.
      tracker_->mark_healed(segment.id, action.defect.block_index,
                            action.defect.cloud, now);
      ++out.blocks_healed;
      obs::add_counter(obs, "repair.blocks_healed");
      any_healed = true;
    }
  }
  (void)image;
  if (any_healed) ++out.segments_repaired;
  if (placement_changed) placement_changes.push_back(std::move(updated));
}

void RepairEngine::collect_orphans(std::size_t& budget, RepairOutcome& out) {
  obs::Observability* obs = client_.observability().get();
  const TimePoint now = client_.clock().now();
  const std::vector<DurabilityTracker::OrphanKey> collectable =
      tracker_->collectable_orphans(client_.image().version(), now,
                                    config_.orphan_grace);
  // Last-line recheck against the FRESHEST committed image we hold: if a
  // commit adopted an object since quarantine began, it is live data.
  const BlockReferenceIndex referenced(client_.image());
  for (const DurabilityTracker::OrphanKey& key : collectable) {
    if (budget == 0) break;
    if (referenced.referenced(key.cloud, key.name)) {
      tracker_->drop_orphan(key);
      continue;
    }
    cloud::CloudProvider* provider = client_.guarded_cloud(key.cloud);
    if (provider == nullptr) continue;
    const Status status =
        provider->remove(std::string(metadata::kDataDir) + "/" + key.name);
    if (status.is_ok() || status.code() == ErrorCode::kNotFound) {
      tracker_->drop_orphan(key);
      ++out.orphans_collected;
      obs::add_counter(obs, "repair.orphans_collected");
      --budget;
    } else {
      ++out.failures;
    }
  }
}

}  // namespace unidrive::repair
