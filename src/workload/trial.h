// Synthetic stand-in for the paper's real-world trial (Section 7.3): 272
// pilot users at 21 sites across America, Europe, Asia and Australia
// uploaded ~97k files (28.3% documents, 30.5% multimedia) over the study
// period. We generate a statistically matching population and event stream;
// the benches replay it through the simulator and reproduce the Figures
// 15-16 aggregation (throughput by size class, daily averages).
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/profiles.h"

namespace unidrive::workload {

struct TrialSite {
  std::string name;
  sim::Region region;
  std::size_t users = 0;
};

struct UploadEvent {
  std::size_t site = 0;      // index into the site list
  std::size_t user = 0;
  double time = 0;           // seconds within the trial window
  std::uint64_t bytes = 0;
  enum class Kind { kDocument, kMultimedia, kOther } kind = Kind::kDocument;
  // Content identical to an earlier upload in the trial (possibly by a
  // different user/site): a content-addressed stack suppresses its
  // transfer, a dedup-free one re-uploads all of `bytes`.
  bool duplicate = false;
};

struct TrialConfig {
  std::size_t num_users = 272;
  std::size_t num_sites = 21;
  std::size_t num_files = 96982;
  double duration_days = 7;  // the window Figures 15-16 report
  // Fraction of uploads whose content repeats an earlier upload (the paper
  // avoided dedup with random content; real fleets sit anywhere between 0
  // and ~0.75 — shared documents, re-synced media libraries).
  double duplication_ratio = 0.0;
};

struct Trial {
  std::vector<TrialSite> sites;
  std::vector<UploadEvent> events;  // sorted by time
  std::uint64_t total_bytes = 0;
  std::uint64_t duplicate_bytes = 0;  // subset of total carried by duplicates
};

Trial generate_trial(const TrialConfig& config, std::uint64_t seed);

// The paper's size buckets for Figure 15.
struct SizeClass {
  const char* label;
  std::uint64_t min_bytes;
  std::uint64_t max_bytes;
};
const std::vector<SizeClass>& trial_size_classes();
int size_class_of(std::uint64_t bytes);

}  // namespace unidrive::workload
