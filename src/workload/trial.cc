#include "workload/trial.h"

#include <algorithm>
#include <cmath>

namespace unidrive::workload {

namespace {

// Site templates spanning the reported deployment footprint.
const std::vector<std::pair<const char*, sim::Region>>& site_templates() {
  static const std::vector<std::pair<const char*, sim::Region>> kSites = {
      {"Boston", sim::Region::kUsEast},
      {"NewYork", sim::Region::kUsEast},
      {"Raleigh", sim::Region::kUsEast},
      {"Seattle", sim::Region::kUsWest},
      {"PaloAlto", sim::Region::kUsWest},
      {"Toronto", sim::Region::kCanada},
      {"London", sim::Region::kEurope},
      {"Berlin", sim::Region::kEurope},
      {"Zurich", sim::Region::kEurope},
      {"Helsinki", sim::Region::kEurope},
      {"Wuhan", sim::Region::kChina},
      {"Beijing", sim::Region::kChina},
      {"Shenzhen", sim::Region::kChina},
      {"Hangzhou", sim::Region::kChina},
      {"HongKong", sim::Region::kAsia},
      {"Taipei", sim::Region::kAsia},
      {"Tokyo", sim::Region::kAsia},
      {"Seoul", sim::Region::kAsia},
      {"Bangalore", sim::Region::kAsia},
      {"Sydney", sim::Region::kOceania},
      {"Melbourne", sim::Region::kOceania},
  };
  return kSites;
}

UploadEvent::Kind draw_kind(Rng& rng) {
  const double u = rng.next_double();
  if (u < 0.283) return UploadEvent::Kind::kDocument;
  if (u < 0.283 + 0.305) return UploadEvent::Kind::kMultimedia;
  return UploadEvent::Kind::kOther;
}

std::uint64_t draw_size(Rng& rng, UploadEvent::Kind kind) {
  // Lognormal size mixtures per category (medians chosen so the overall
  // volume lands near the reported ~500 GB / ~97k files ~ 5 MB mean).
  double median = 0, sigma = 1.2;
  switch (kind) {
    case UploadEvent::Kind::kDocument:
      median = 120e3;  // office files: ~100 KB median
      sigma = 1.4;
      break;
    case UploadEvent::Kind::kMultimedia:
      median = 2.5e6;  // photos/audio/video
      sigma = 1.6;
      break;
    case UploadEvent::Kind::kOther:
      median = 300e3;
      sigma = 1.8;
      break;
  }
  const double v = rng.lognormal(median, sigma);
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(v));
}

}  // namespace

const std::vector<SizeClass>& trial_size_classes() {
  static const std::vector<SizeClass> kClasses = {
      {"<100KB", 0, 100ULL << 10},
      {"100KB-1MB", 100ULL << 10, 1ULL << 20},
      {"1MB-10MB", 1ULL << 20, 10ULL << 20},
      {">10MB", 10ULL << 20, ~0ULL},
  };
  return kClasses;
}

int size_class_of(std::uint64_t bytes) {
  const auto& classes = trial_size_classes();
  for (std::size_t i = 0; i < classes.size(); ++i) {
    if (bytes >= classes[i].min_bytes && bytes < classes[i].max_bytes) {
      return static_cast<int>(i);
    }
  }
  return static_cast<int>(classes.size()) - 1;
}

Trial generate_trial(const TrialConfig& config, std::uint64_t seed) {
  Rng rng(seed);
  Trial trial;

  const auto& templates = site_templates();
  const std::size_t num_sites = std::min(config.num_sites, templates.size());
  for (std::size_t i = 0; i < num_sites; ++i) {
    trial.sites.push_back({templates[i].first, templates[i].second, 0});
  }

  // Users spread over sites with a skew (a few large sites, many small).
  std::vector<std::size_t> user_site(config.num_users);
  for (std::size_t u = 0; u < config.num_users; ++u) {
    // Zipf-ish: square the uniform draw to favour low site indices.
    const double z = rng.next_double();
    const auto site = static_cast<std::size_t>(z * z * num_sites);
    user_site[u] = std::min(site, num_sites - 1);
    ++trial.sites[user_site[u]].users;
  }

  const double duration = config.duration_days * 86400.0;
  trial.events.reserve(config.num_files);
  for (std::size_t f = 0; f < config.num_files; ++f) {
    UploadEvent ev;
    ev.user = rng.next_below(config.num_users);
    ev.site = user_site[ev.user];
    // Diurnal activity: more uploads during the site's daytime.
    double t;
    do {
      t = rng.uniform(0, duration);
    } while (rng.next_double() >
             0.55 + 0.45 * std::sin(2 * M_PI * t / 86400.0));
    ev.time = t;
    // A duplicate repeats the content (and therefore kind and size) of an
    // earlier upload; the first event is necessarily original.
    if (!trial.events.empty() &&
        rng.next_double() < config.duplication_ratio) {
      const UploadEvent& source =
          trial.events[rng.next_below(trial.events.size())];
      ev.kind = source.kind;
      ev.bytes = source.bytes;
      ev.duplicate = true;
      trial.duplicate_bytes += ev.bytes;
    } else {
      ev.kind = draw_kind(rng);
      ev.bytes = draw_size(rng, ev.kind);
    }
    trial.total_bytes += ev.bytes;
    trial.events.push_back(ev);
  }
  std::sort(trial.events.begin(), trial.events.end(),
            [](const UploadEvent& a, const UploadEvent& b) {
              return a.time < b.time;
            });
  return trial;
}

}  // namespace unidrive::workload
