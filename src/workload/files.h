// Workload generators: file batches for the transfer benches and random
// file contents (incompressible, dedup-proof — the paper uses randomly
// generated contents "to avoid deduplication and transfer suppression").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sched/upload_scheduler.h"

namespace unidrive::workload {

// N files of equal size (the paper's 100 x 1 MB batch et al.).
std::vector<std::uint64_t> uniform_batch(std::size_t count,
                                         std::uint64_t bytes);

// Upload job specs for the simulated client: one spec per file; files
// larger than `theta` split into multiple theta-sized segments, mirroring
// the real segmenter's clamp.
std::vector<sched::UploadFileSpec> upload_specs(
    const std::vector<std::uint64_t>& file_sizes, std::uint64_t theta,
    const std::string& tag);

// Random (incompressible) file content for real-client benches/examples.
Bytes random_file(Rng& rng, std::size_t bytes);

}  // namespace unidrive::workload
