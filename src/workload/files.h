// Workload generators: file batches for the transfer benches and random
// file contents (incompressible, dedup-proof — the paper uses randomly
// generated contents "to avoid deduplication and transfer suppression").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sched/upload_scheduler.h"

namespace unidrive::workload {

// N files of equal size (the paper's 100 x 1 MB batch et al.).
std::vector<std::uint64_t> uniform_batch(std::size_t count,
                                         std::uint64_t bytes);

// Upload job specs for the simulated client: one spec per file; files
// larger than `theta` split into multiple theta-sized segments, mirroring
// the real segmenter's clamp.
std::vector<sched::UploadFileSpec> upload_specs(
    const std::vector<std::uint64_t>& file_sizes, std::uint64_t theta,
    const std::string& tag);

// Random (incompressible) file content for real-client benches/examples.
Bytes random_file(Rng& rng, std::size_t bytes);

// File source with a controllable duplicate-content ratio for the dedup
// benches and scenarios. Each produced file is either fresh random bytes
// (recorded into a bounded library) or, with probability `ratio`, a byte-
// identical copy of a library file — so two sources seeded alike emit the
// same popular files, modelling cross-user duplication. Duplicates repeat a
// whole file, which keeps the measured dup ratio independent of CDC
// boundary resynchronization.
class DuplicatingSource {
 public:
  DuplicatingSource(double ratio, std::size_t library_cap, std::uint64_t seed)
      : ratio_(ratio), library_cap_(library_cap), rng_(seed) {}

  // A fresh or duplicated file of exactly `bytes` bytes. Duplicates are
  // drawn per target size, so the caller's size distribution is preserved.
  Bytes next_file(std::size_t bytes);

  // Bytes emitted that repeated an earlier file, and the total.
  [[nodiscard]] std::uint64_t duplicate_bytes() const noexcept {
    return duplicate_bytes_;
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return total_bytes_;
  }

 private:
  double ratio_;
  std::size_t library_cap_;
  Rng rng_;
  // Library keyed by file size: duplicates must match the requested size.
  std::vector<Bytes> library_;
  std::uint64_t duplicate_bytes_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace unidrive::workload
