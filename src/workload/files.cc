#include "workload/files.h"

namespace unidrive::workload {

std::vector<std::uint64_t> uniform_batch(std::size_t count,
                                         std::uint64_t bytes) {
  return std::vector<std::uint64_t>(count, bytes);
}

std::vector<sched::UploadFileSpec> upload_specs(
    const std::vector<std::uint64_t>& file_sizes, std::uint64_t theta,
    const std::string& tag) {
  std::vector<sched::UploadFileSpec> specs;
  specs.reserve(file_sizes.size());
  for (std::size_t i = 0; i < file_sizes.size(); ++i) {
    sched::UploadFileSpec spec;
    spec.path = "/" + tag + std::to_string(i);
    std::uint64_t remaining = file_sizes[i];
    std::size_t seg = 0;
    do {
      // Mirror the segmenter clamp: pieces of at most 1.5*theta, and merge
      // a short tail into the previous segment when possible.
      std::uint64_t piece = std::min<std::uint64_t>(remaining, theta);
      if (remaining - piece > 0 && remaining - piece < theta / 2) {
        piece = remaining;  // absorb the short tail
      }
      spec.segments.push_back(
          {tag + std::to_string(i) + "_s" + std::to_string(seg++), piece});
      remaining -= piece;
    } while (remaining > 0);
    specs.push_back(std::move(spec));
  }
  return specs;
}

Bytes random_file(Rng& rng, std::size_t bytes) { return rng.bytes(bytes); }

Bytes DuplicatingSource::next_file(std::size_t bytes) {
  total_bytes_ += bytes;
  if (ratio_ > 0 && rng_.next_double() < ratio_) {
    // Scan for a library file of the requested size (sizes in the benches
    // are drawn from a small set, so a linear probe over a bounded library
    // is cheap). Fall through to fresh content when none matches yet.
    const std::size_t start = library_.empty()
                                  ? 0
                                  : rng_.next_below(library_.size());
    for (std::size_t i = 0; i < library_.size(); ++i) {
      const Bytes& candidate = library_[(start + i) % library_.size()];
      if (candidate.size() == bytes) {
        duplicate_bytes_ += bytes;
        return candidate;
      }
    }
  }
  Bytes fresh = rng_.bytes(bytes);
  if (library_.size() < library_cap_) {
    library_.push_back(fresh);
  }
  return fresh;
}

}  // namespace unidrive::workload
