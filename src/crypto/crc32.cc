#include "crypto/crc32.h"

#include <array>

namespace unidrive::crypto {

namespace {
constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}
constexpr auto kTable = make_table();
}  // namespace

std::uint32_t crc32(ByteSpan data, std::uint32_t seed) noexcept {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    c = kTable[(c ^ byte) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace unidrive::crypto
