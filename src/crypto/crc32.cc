#include "crypto/crc32.h"

#include <array>
#include <cstring>

#include "common/cpu.h"

#if defined(__x86_64__) || defined(__i386__)
#define UNIDRIVE_CRC_X86 1
#include <immintrin.h>
#endif

namespace unidrive::crypto {

namespace {

// Reflected CRC-32C polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

// Slicing-by-8 tables: table[0] is the classic byte table; table[k] advances
// a byte seen k positions earlier, so eight lookups retire eight input bytes
// per iteration with no inter-lookup dependency chain.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  Tables() noexcept {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
      }
      t[0][i] = c;
    }
    for (std::size_t k = 1; k < 8; ++k) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        t[k][i] = t[0][t[k - 1][i] & 0xFF] ^ (t[k - 1][i] >> 8);
      }
    }
  }
};

const Tables& tables() noexcept {
  static const Tables t;
  return t;
}

// Raw state update (state is the inverted running CRC).
std::uint32_t update_sw(std::uint32_t state, const std::uint8_t* p,
                        std::size_t n) noexcept {
  const auto& t = tables().t;
  std::uint32_t c = state;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    w ^= c;
    c = t[7][w & 0xFF] ^ t[6][(w >> 8) & 0xFF] ^ t[5][(w >> 16) & 0xFF] ^
        t[4][(w >> 24) & 0xFF] ^ t[3][(w >> 32) & 0xFF] ^
        t[2][(w >> 40) & 0xFF] ^ t[1][(w >> 48) & 0xFF] ^ t[0][w >> 56];
    p += 8;
    n -= 8;
  }
#endif
  while (n-- > 0) {
    c = t[0][(c ^ *p++) & 0xFF] ^ (c >> 8);
  }
  return c;
}

#if UNIDRIVE_CRC_X86
__attribute__((target("sse4.2"))) std::uint32_t update_hw(
    std::uint32_t state, const std::uint8_t* p, std::size_t n) {
#if defined(__x86_64__)
  std::uint64_t c = state;
  // Align to 8 so the wide strides never split a cache line.
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7) != 0) {
    c = _mm_crc32_u8(static_cast<std::uint32_t>(c), *p++);
    --n;
  }
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    c = _mm_crc32_u64(c, w);
    p += 8;
    n -= 8;
  }
  std::uint32_t c32 = static_cast<std::uint32_t>(c);
#else
  std::uint32_t c32 = state;
  while (n >= 4) {
    std::uint32_t w;
    std::memcpy(&w, p, 4);
    c32 = _mm_crc32_u32(c32, w);
    p += 4;
    n -= 4;
  }
#endif
  while (n-- > 0) c32 = _mm_crc32_u8(c32, *p++);
  return c32;
}
#endif  // UNIDRIVE_CRC_X86

struct CrcKernel {
  std::uint32_t (*update)(std::uint32_t, const std::uint8_t*, std::size_t);
  const char* name;
  int tier;
};

const CrcKernel& crc_kernel() noexcept {
  static const CrcKernel resolved = [] {
    CrcKernel k{&update_sw, "scalar", 0};
#if UNIDRIVE_CRC_X86
    if (cpu_features().sse42) k = CrcKernel{&update_hw, "sse4.2", 1};
#endif
    note_kernel("crc32c", k.name, k.tier);
    return k;
  }();
  return resolved;
}

}  // namespace

std::uint32_t crc32c(ByteSpan data, std::uint32_t seed) noexcept {
  return crc_kernel().update(seed ^ 0xFFFFFFFFu, data.data(), data.size()) ^
         0xFFFFFFFFu;
}

std::uint32_t crc32c_sw(ByteSpan data, std::uint32_t seed) noexcept {
  return update_sw(seed ^ 0xFFFFFFFFu, data.data(), data.size()) ^ 0xFFFFFFFFu;
}

const char* crc32c_kernel_name() noexcept { return crc_kernel().name; }

int crc32c_kernel_tier() noexcept { return crc_kernel().tier; }

}  // namespace unidrive::crypto
