#include "crypto/cipher.h"

#include <algorithm>
#include <cstring>

#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace unidrive::crypto {

namespace {

template <std::size_t N>
std::array<std::uint8_t, N> nonce_from_plain(ByteSpan plain) noexcept {
  const auto digest = Sha256::hash(plain);
  std::array<std::uint8_t, N> nonce{};
  std::memcpy(nonce.data(), digest.data(), N);
  return nonce;
}

}  // namespace

const char* cipher_name(CipherKind kind) noexcept {
  switch (kind) {
    case CipherKind::kDes:
      return "des";
    case CipherKind::kAes128Ctr:
      return "aes128ctr";
    case CipherKind::kChaCha20:
      return "chacha20";
  }
  return "unknown";
}

Result<CipherKind> cipher_from_name(std::string_view name) {
  if (name == "des") return CipherKind::kDes;
  if (name == "aes128ctr" || name == "aes") return CipherKind::kAes128Ctr;
  if (name == "chacha20") return CipherKind::kChaCha20;
  return make_error(ErrorCode::kInvalidArgument,
                    "unknown cipher: " + std::string(name));
}

Cipher::Cipher(CipherKind kind, const std::string& passphrase)
    : kind_(kind),
      des_key_(des_key_from_passphrase(passphrase)),
      aes_key_(aes128_key_from_passphrase(passphrase)),
      chacha_key_(chacha20_key_from_passphrase(passphrase)) {}

Bytes Cipher::encrypt(ByteSpan plain) const {
  Bytes frame;
  frame.push_back(static_cast<std::uint8_t>(kind_));
  switch (kind_) {
    case CipherKind::kDes: {
      const auto iv_digest = Sha1::hash(plain);
      Des::Block iv;
      std::copy_n(iv_digest.begin(), iv.size(), iv.begin());
      const Bytes body = des_cbc_encrypt(des_key_, plain, iv);
      frame.insert(frame.end(), body.begin(), body.end());
      break;
    }
    case CipherKind::kAes128Ctr: {
      const auto nonce = nonce_from_plain<Aes128::kNonceSize>(plain);
      frame.insert(frame.end(), nonce.begin(), nonce.end());
      const std::size_t head = frame.size();
      frame.resize(head + plain.size());
      Aes128(aes_key_).ctr_xor(nonce, 0, plain, frame.data() + head);
      break;
    }
    case CipherKind::kChaCha20: {
      const auto nonce = nonce_from_plain<ChaCha20::kNonceSize>(plain);
      frame.insert(frame.end(), nonce.begin(), nonce.end());
      const std::size_t head = frame.size();
      frame.resize(head + plain.size());
      ChaCha20(chacha_key_).xor_stream(nonce, 0, plain, frame.data() + head);
      break;
    }
  }
  return frame;
}

Result<Bytes> Cipher::decrypt(ByteSpan frame) const {
  if (frame.empty()) {
    return make_error(ErrorCode::kCorrupt, "empty cipher frame");
  }
  const std::uint8_t tag = frame[0];
  const ByteSpan body = frame.subspan(1);
  switch (tag) {
    case static_cast<std::uint8_t>(CipherKind::kDes):
      return des_cbc_decrypt(des_key_, body);
    case static_cast<std::uint8_t>(CipherKind::kAes128Ctr): {
      if (body.size() < Aes128::kNonceSize) {
        return make_error(ErrorCode::kCorrupt, "aes cipher frame too short");
      }
      Aes128::Nonce nonce;
      std::memcpy(nonce.data(), body.data(), nonce.size());
      const ByteSpan text = body.subspan(nonce.size());
      Bytes plain(text.size());
      Aes128(aes_key_).ctr_xor(nonce, 0, text, plain.data());
      return plain;
    }
    case static_cast<std::uint8_t>(CipherKind::kChaCha20): {
      if (body.size() < ChaCha20::kNonceSize) {
        return make_error(ErrorCode::kCorrupt,
                          "chacha20 cipher frame too short");
      }
      ChaCha20::Nonce nonce;
      std::memcpy(nonce.data(), body.data(), nonce.size());
      const ByteSpan text = body.subspan(nonce.size());
      Bytes plain(text.size());
      ChaCha20(chacha_key_).xor_stream(nonce, 0, text, plain.data());
      return plain;
    }
    default:
      return make_error(ErrorCode::kCorrupt, "unknown cipher frame tag");
  }
}

const char* Cipher::kernel_name() const noexcept {
  switch (kind_) {
    case CipherKind::kDes:
      return "scalar";
    case CipherKind::kAes128Ctr:
      return Aes128::kernel_name();
    case CipherKind::kChaCha20:
      return ChaCha20::kernel_name();
  }
  return "unknown";
}

}  // namespace unidrive::crypto
