#include "crypto/aes.h"

#include <cstring>

#include "common/cpu.h"
#include "crypto/sha256.h"

#if defined(__x86_64__) || defined(__i386__)
#define UNIDRIVE_AES_X86 1
#include <immintrin.h>
#endif

namespace unidrive::crypto {

namespace {

// FIPS-197 S-box.
constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t kRcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

inline std::uint8_t xtime(std::uint8_t x) noexcept {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1B));
}

using RoundKeys = std::array<std::array<std::uint8_t, 16>, 11>;

void scalar_encrypt_block(const RoundKeys& rk, const std::uint8_t* in,
                          std::uint8_t* out) noexcept {
  std::uint8_t s[16];
  for (int i = 0; i < 16; ++i) s[i] = in[i] ^ rk[0][static_cast<size_t>(i)];
  for (int round = 1; round <= 10; ++round) {
    // SubBytes.
    for (auto& b : s) b = kSbox[b];
    // ShiftRows (state is column-major: byte r + 4c).
    std::uint8_t t = s[1];
    s[1] = s[5]; s[5] = s[9]; s[9] = s[13]; s[13] = t;
    t = s[2]; s[2] = s[10]; s[10] = t;
    t = s[6]; s[6] = s[14]; s[14] = t;
    t = s[15];
    s[15] = s[11]; s[11] = s[7]; s[7] = s[3]; s[3] = t;
    if (round < 10) {
      // MixColumns.
      for (int c = 0; c < 4; ++c) {
        std::uint8_t* col = s + 4 * c;
        const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        const std::uint8_t all = a0 ^ a1 ^ a2 ^ a3;
        col[0] = static_cast<std::uint8_t>(a0 ^ all ^ xtime(a0 ^ a1));
        col[1] = static_cast<std::uint8_t>(a1 ^ all ^ xtime(a1 ^ a2));
        col[2] = static_cast<std::uint8_t>(a2 ^ all ^ xtime(a2 ^ a3));
        col[3] = static_cast<std::uint8_t>(a3 ^ all ^ xtime(a3 ^ a0));
      }
    }
    for (int i = 0; i < 16; ++i) s[i] ^= rk[static_cast<size_t>(round)][static_cast<size_t>(i)];
  }
  std::memcpy(out, s, 16);
}

inline void make_counter_block(const Aes128::Nonce& nonce,
                               std::uint32_t counter,
                               std::uint8_t* block) noexcept {
  std::memcpy(block, nonce.data(), nonce.size());
  block[12] = static_cast<std::uint8_t>(counter >> 24);
  block[13] = static_cast<std::uint8_t>(counter >> 16);
  block[14] = static_cast<std::uint8_t>(counter >> 8);
  block[15] = static_cast<std::uint8_t>(counter);
}

void ctr_xor_scalar_impl(const RoundKeys& rk, const Aes128::Nonce& nonce,
                         std::uint32_t counter0, const std::uint8_t* in,
                         std::size_t n, std::uint8_t* out) noexcept {
  std::uint32_t counter = counter0;
  std::size_t off = 0;
  while (off < n) {
    std::uint8_t block[16];
    std::uint8_t ks[16];
    make_counter_block(nonce, counter++, block);
    scalar_encrypt_block(rk, block, ks);
    const std::size_t len = n - off < 16 ? n - off : 16;
    for (std::size_t i = 0; i < len; ++i) out[off + i] = in[off + i] ^ ks[i];
    off += len;
  }
}

#if UNIDRIVE_AES_X86

__attribute__((target("aes,sse2"))) void ctr_xor_aesni_impl(
    const RoundKeys& rk, const Aes128::Nonce& nonce, std::uint32_t counter0,
    const std::uint8_t* in, std::size_t n, std::uint8_t* out) {
  __m128i k[11];
  for (int i = 0; i < 11; ++i) {
    k[i] = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(rk[static_cast<size_t>(i)].data()));
  }
  std::uint32_t counter = counter0;
  std::size_t off = 0;
  // Four independent blocks per iteration hide the aesenc latency chain.
  while (n - off >= 64) {
    alignas(16) std::uint8_t cb[64];
    for (int b = 0; b < 4; ++b) {
      make_counter_block(nonce, counter++, cb + 16 * b);
    }
    __m128i s0 = _mm_xor_si128(
        _mm_load_si128(reinterpret_cast<const __m128i*>(cb)), k[0]);
    __m128i s1 = _mm_xor_si128(
        _mm_load_si128(reinterpret_cast<const __m128i*>(cb + 16)), k[0]);
    __m128i s2 = _mm_xor_si128(
        _mm_load_si128(reinterpret_cast<const __m128i*>(cb + 32)), k[0]);
    __m128i s3 = _mm_xor_si128(
        _mm_load_si128(reinterpret_cast<const __m128i*>(cb + 48)), k[0]);
    for (int r = 1; r < 10; ++r) {
      s0 = _mm_aesenc_si128(s0, k[r]);
      s1 = _mm_aesenc_si128(s1, k[r]);
      s2 = _mm_aesenc_si128(s2, k[r]);
      s3 = _mm_aesenc_si128(s3, k[r]);
    }
    s0 = _mm_aesenclast_si128(s0, k[10]);
    s1 = _mm_aesenclast_si128(s1, k[10]);
    s2 = _mm_aesenclast_si128(s2, k[10]);
    s3 = _mm_aesenclast_si128(s3, k[10]);
    const std::uint8_t* p = in + off;
    std::uint8_t* q = out + off;
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(q),
        _mm_xor_si128(
            s0, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p))));
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(q + 16),
        _mm_xor_si128(
            s1, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16))));
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(q + 32),
        _mm_xor_si128(
            s2, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32))));
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(q + 48),
        _mm_xor_si128(
            s3, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48))));
    off += 64;
  }
  while (off < n) {
    alignas(16) std::uint8_t cb[16];
    make_counter_block(nonce, counter++, cb);
    __m128i s = _mm_xor_si128(
        _mm_load_si128(reinterpret_cast<const __m128i*>(cb)), k[0]);
    for (int r = 1; r < 10; ++r) s = _mm_aesenc_si128(s, k[r]);
    s = _mm_aesenclast_si128(s, k[10]);
    alignas(16) std::uint8_t ks[16];
    _mm_store_si128(reinterpret_cast<__m128i*>(ks), s);
    const std::size_t len = n - off < 16 ? n - off : 16;
    for (std::size_t i = 0; i < len; ++i) out[off + i] = in[off + i] ^ ks[i];
    off += len;
  }
}

__attribute__((target("aes,sse2"))) void encrypt_block_aesni_impl(
    const RoundKeys& rk, const std::uint8_t* in, std::uint8_t* out) {
  __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
  s = _mm_xor_si128(
      s, _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk[0].data())));
  for (int r = 1; r < 10; ++r) {
    s = _mm_aesenc_si128(
        s, _mm_loadu_si128(reinterpret_cast<const __m128i*>(
               rk[static_cast<size_t>(r)].data())));
  }
  s = _mm_aesenclast_si128(
      s, _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk[10].data())));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), s);
}

#endif  // UNIDRIVE_AES_X86

struct AesKernel {
  void (*ctr)(const RoundKeys&, const Aes128::Nonce&, std::uint32_t,
              const std::uint8_t*, std::size_t, std::uint8_t*);
  void (*block)(const RoundKeys&, const std::uint8_t*, std::uint8_t*);
  const char* name;
  int tier;
};

void scalar_block_adapter(const RoundKeys& rk, const std::uint8_t* in,
                          std::uint8_t* out) noexcept {
  scalar_encrypt_block(rk, in, out);
}

const AesKernel& aes_kernel() noexcept {
  static const AesKernel resolved = [] {
    AesKernel k{&ctr_xor_scalar_impl, &scalar_block_adapter, "scalar", 0};
#if UNIDRIVE_AES_X86
    if (cpu_features().aesni) {
      k = AesKernel{&ctr_xor_aesni_impl, &encrypt_block_aesni_impl, "aesni",
                    1};
    }
#endif
    note_kernel("aes_ctr", k.name, k.tier);
    return k;
  }();
  return resolved;
}

}  // namespace

Aes128::Aes128(const Key& key) noexcept {
  // Standard AES-128 key schedule (shared by both dispatch paths).
  std::uint8_t w[176];
  std::memcpy(w, key.data(), 16);
  for (int i = 16; i < 176; i += 4) {
    std::uint8_t t[4] = {w[i - 4], w[i - 3], w[i - 2], w[i - 1]};
    if (i % 16 == 0) {
      const std::uint8_t rot = t[0];
      t[0] = static_cast<std::uint8_t>(kSbox[t[1]] ^ kRcon[i / 16 - 1]);
      t[1] = kSbox[t[2]];
      t[2] = kSbox[t[3]];
      t[3] = kSbox[rot];
    }
    for (int j = 0; j < 4; ++j) w[i + j] = static_cast<std::uint8_t>(w[i - 16 + j] ^ t[j]);
  }
  for (int r = 0; r < 11; ++r) {
    std::memcpy(round_keys_[static_cast<size_t>(r)].data(), w + 16 * r, 16);
  }
}

Aes128::Block Aes128::encrypt_block(const Block& in) const noexcept {
  Block out;
  aes_kernel().block(round_keys_, in.data(), out.data());
  return out;
}

void Aes128::ctr_xor(const Nonce& nonce, std::uint32_t counter0, ByteSpan in,
                     std::uint8_t* out) const noexcept {
  aes_kernel().ctr(round_keys_, nonce, counter0, in.data(), in.size(), out);
}

void Aes128::ctr_xor_scalar(const Nonce& nonce, std::uint32_t counter0,
                            ByteSpan in, std::uint8_t* out) const noexcept {
  ctr_xor_scalar_impl(round_keys_, nonce, counter0, in.data(), in.size(), out);
}

const char* Aes128::kernel_name() noexcept { return aes_kernel().name; }

int Aes128::kernel_tier() noexcept { return aes_kernel().tier; }

Bytes aes128_ctr_crypt(const Aes128::Key& key, const Aes128::Nonce& nonce,
                       ByteSpan data) {
  Bytes out(data.size());
  Aes128(key).ctr_xor(nonce, 0, data, out.data());
  return out;
}

Aes128::Key aes128_key_from_passphrase(std::string_view passphrase) {
  const auto digest = Sha256::hash(bytes_from_string(passphrase));
  Aes128::Key key{};
  std::memcpy(key.data(), digest.data(), key.size());
  return key;
}

}  // namespace unidrive::crypto
