// SHA-256 (FIPS 180-4). Used for block integrity checks: each stored data
// block carries a digest so corruption introduced by a faulty cloud is
// detected before erasure decoding.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace unidrive::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256() noexcept { reset(); }

  void reset() noexcept;
  void update(ByteSpan data) noexcept;
  [[nodiscard]] Digest finish() noexcept;  // resets afterwards

  static Digest hash(ByteSpan data) noexcept;
  static std::string hex(ByteSpan data);

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::uint32_t h_[8];
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace unidrive::crypto
