// SHA-1 (FIPS 180-1). UniDrive names segments and data blocks by the SHA-1
// of their content, which gives content-addressable storage and enables
// segment-level deduplication. (Security of SHA-1 as a collision-resistant
// hash is not load-bearing here; it is an identifier, as in the paper.)
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace unidrive::crypto {

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha1() noexcept { reset(); }

  void reset() noexcept;
  void update(ByteSpan data) noexcept;
  [[nodiscard]] Digest finish() noexcept;  // resets afterwards

  static Digest hash(ByteSpan data) noexcept;
  static std::string hex(ByteSpan data);

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::uint32_t h_[5];
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace unidrive::crypto
