#include "crypto/convergent.h"

#include <algorithm>
#include <cctype>

#include "crypto/aes.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace unidrive::crypto {

namespace {

bool all_hex(std::string_view s) noexcept {
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isxdigit(c) != 0;
  });
}

// Key = first 16 bytes of the (binary) SHA-256 id; nonce = first 12 bytes of
// SHA-256 over the key material, domain-separated so key and nonce are not
// trivially related. Deterministic per segment: identical plaintext gives an
// identical (key, nonce) pair and thus an identical keystream. (nonce, ctr)
// reuse across *different* segments is impossible because the key differs.
struct ConvergentMaterial {
  Aes128::Key key;
  Aes128::Nonce nonce;
};

ConvergentMaterial derive_material(std::string_view id) {
  const Bytes raw = from_hex(id);
  ConvergentMaterial m;
  std::copy_n(raw.begin(), Aes128::kKeySize, m.key.begin());
  Sha256 h;
  static constexpr char kDomain[] = "unidrive.convergent.nonce.v1";
  h.update(ByteSpan(reinterpret_cast<const std::uint8_t*>(kDomain),
                    sizeof(kDomain) - 1));
  h.update(ByteSpan(raw.data(), raw.size()));
  const Sha256::Digest d = h.finish();
  std::copy_n(d.begin(), Aes128::kNonceSize, m.nonce.begin());
  return m;
}

}  // namespace

SegmentIdKind segment_id_kind(std::string_view id) noexcept {
  if (!all_hex(id)) return SegmentIdKind::kUnknown;
  if (id.size() == 2 * Sha256::kDigestSize) return SegmentIdKind::kSha256;
  if (id.size() == 2 * Sha1::kDigestSize) return SegmentIdKind::kLegacySha1;
  return SegmentIdKind::kUnknown;
}

std::string segment_id(ByteSpan plaintext) { return Sha256::hex(plaintext); }

bool verify_segment_id(std::string_view id, ByteSpan plaintext) {
  switch (segment_id_kind(id)) {
    case SegmentIdKind::kSha256:
      return Sha256::hex(plaintext) == id;
    case SegmentIdKind::kLegacySha1:
      return Sha1::hex(plaintext) == id;
    case SegmentIdKind::kUnknown:
      return false;
  }
  return false;
}

std::string storage_address(std::string_view id) {
  if (segment_id_kind(id) != SegmentIdKind::kSha256) return std::string(id);
  const Bytes raw = from_hex(id);
  Sha256 h;
  static constexpr char kDomain[] = "unidrive.convergent.addr.v1";
  h.update(ByteSpan(reinterpret_cast<const std::uint8_t*>(kDomain),
                    sizeof(kDomain) - 1));
  h.update(ByteSpan(raw.data(), raw.size()));
  const Sha256::Digest d = h.finish();
  return to_hex(ByteSpan(d.data(), d.size()));
}

Bytes convergent_seal(std::string_view id, ByteSpan plaintext) {
  Bytes out(plaintext.begin(), plaintext.end());
  convergent_seal_inplace(id, out);
  return out;
}

void convergent_seal_inplace(std::string_view id, Bytes& data) {
  if (segment_id_kind(id) != SegmentIdKind::kSha256 || data.empty()) {
    return;  // legacy ids: blocks are raw-plaintext codewords
  }
  const ConvergentMaterial m = derive_material(id);
  const Aes128 aes(m.key);
  aes.ctr_xor(m.nonce, 0, ByteSpan(data.data(), data.size()), data.data());
}

Result<Bytes> convergent_open(std::string_view id, Bytes sealed) {
  const SegmentIdKind kind = segment_id_kind(id);
  if (kind == SegmentIdKind::kUnknown) {
    return Status(ErrorCode::kInvalidArgument,
                  "convergent_open: malformed segment id");
  }
  if (kind == SegmentIdKind::kSha256 && !sealed.empty()) {
    const ConvergentMaterial m = derive_material(id);
    const Aes128 aes(m.key);
    aes.ctr_xor(m.nonce, 0, ByteSpan(sealed.data(), sealed.size()),
                sealed.data());
  }
  if (!verify_segment_id(id, ByteSpan(sealed.data(), sealed.size()))) {
    return Status(ErrorCode::kCorrupt,
                  "convergent_open: payload does not hash to segment id");
  }
  return sealed;
}

}  // namespace unidrive::crypto
