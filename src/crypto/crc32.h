// CRC-32 (IEEE 802.3 polynomial, reflected). Cheap per-record checksum for
// the delta log: each appended record is guarded so a torn/partial upload is
// detected when replaying the log.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace unidrive::crypto {

std::uint32_t crc32(ByteSpan data, std::uint32_t seed = 0) noexcept;

}  // namespace unidrive::crypto
