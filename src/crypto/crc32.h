// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected) — the data plane's
// cheap corruption screen: per-record guards in the delta log, the fast
// integrity pre-check in the metadata envelope, and the scrubber's
// block-compare screen all use it, so a torn upload or flipped bit is
// rejected for the cost of a CRC instead of a cryptographic hash.
//
// Dispatch (common/cpu.h): the SSE4.2 crc32 instruction (one u64 per cycle
// class throughput) when the CPU has it, otherwise a slicing-by-8 table
// fallback. Seed chaining composes: crc32c(b, crc32c(a)) == crc32c(a || b).
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace unidrive::crypto {

std::uint32_t crc32c(ByteSpan data, std::uint32_t seed = 0) noexcept;

// Portable reference (always the table kernel, independent of dispatch);
// the differential tests pin the hardware path against it.
std::uint32_t crc32c_sw(ByteSpan data, std::uint32_t seed = 0) noexcept;

// Resolved dispatch decision ("sse4.2" or "scalar"); forces resolution, so
// the result is also visible via common/cpu.h's registry.
[[nodiscard]] const char* crc32c_kernel_name() noexcept;
[[nodiscard]] int crc32c_kernel_tier() noexcept;  // 0 scalar, 1 sse4.2

}  // namespace unidrive::crypto
