#include "crypto/chacha20.h"

#include <cstring>

#include "common/cpu.h"
#include "crypto/sha256.h"

namespace unidrive::crypto {

namespace {

inline std::uint32_t rotl(std::uint32_t x, int n) noexcept {
  return (x << n) | (x >> (32 - n));
}

inline std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) noexcept {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

void block(const std::uint32_t state[16], std::uint8_t out[64]) noexcept {
  std::uint32_t x[16];
  std::memcpy(x, state, sizeof(x));
  for (int i = 0; i < 10; ++i) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = x[i] + state[i];
    out[4 * i] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
}

bool note_once() noexcept {
  note_kernel("chacha20", "portable", 0);
  return true;
}

}  // namespace

ChaCha20::ChaCha20(const Key& key) noexcept {
  for (int i = 0; i < 8; ++i) key_words_[static_cast<size_t>(i)] = load_le32(key.data() + 4 * i);
}

void ChaCha20::xor_stream(const Nonce& nonce, std::uint32_t counter0,
                          ByteSpan in, std::uint8_t* out) const noexcept {
  std::uint32_t state[16] = {
      // "expa" "nd 3" "2-by" "te k"
      0x61707865u, 0x3320646Eu, 0x79622D32u, 0x6B206574u,
      key_words_[0], key_words_[1], key_words_[2], key_words_[3],
      key_words_[4], key_words_[5], key_words_[6], key_words_[7],
      counter0,
      load_le32(nonce.data()), load_le32(nonce.data() + 4),
      load_le32(nonce.data() + 8)};
  std::size_t off = 0;
  const std::size_t n = in.size();
  while (off < n) {
    std::uint8_t ks[kBlockSize];
    block(state, ks);
    ++state[12];
    const std::size_t len = n - off < kBlockSize ? n - off : kBlockSize;
    for (std::size_t i = 0; i < len; ++i) out[off + i] = in[off + i] ^ ks[i];
    off += len;
  }
}

const char* ChaCha20::kernel_name() noexcept {
  static const bool noted = note_once();
  (void)noted;
  return "portable";
}

int ChaCha20::kernel_tier() noexcept {
  (void)kernel_name();
  return 0;
}

Bytes chacha20_crypt(const ChaCha20::Key& key, const ChaCha20::Nonce& nonce,
                     ByteSpan data) {
  Bytes out(data.size());
  ChaCha20(key).xor_stream(nonce, 0, data, out.data());
  return out;
}

ChaCha20::Key chacha20_key_from_passphrase(std::string_view passphrase) {
  const auto digest = Sha256::hash(bytes_from_string(passphrase));
  ChaCha20::Key key{};
  std::memcpy(key.data(), digest.data(), key.size());
  return key;
}

}  // namespace unidrive::crypto
