// AES-128 in CTR mode — the hardware-speed alternative to the paper's DES
// for the metadata encrypt stage (selected via crypto::CipherKind).
//
// Dispatch (common/cpu.h): AES-NI (aesenc, four blocks pipelined per
// iteration) when the CPU has it, otherwise a portable byte-oriented
// FIPS-197 fallback. CTR is a stream mode: encrypt and decrypt are the same
// keystream XOR, any length is supported without padding, and the
// (nonce, counter) pair must never repeat under one key — callers derive
// the nonce from the plaintext digest (metadata/codec.h's determinism
// contract) or from fresh randomness.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/bytes.h"

namespace unidrive::crypto {

class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;
  static constexpr std::size_t kNonceSize = 12;
  using Key = std::array<std::uint8_t, kKeySize>;
  using Block = std::array<std::uint8_t, kBlockSize>;
  using Nonce = std::array<std::uint8_t, kNonceSize>;

  explicit Aes128(const Key& key) noexcept;

  // Single-block ECB encrypt (building block; dispatched).
  [[nodiscard]] Block encrypt_block(const Block& in) const noexcept;

  // CTR keystream XOR: out[i] = in[i] ^ E(key, nonce || be32(counter0 + i/16)).
  // out may alias in.data() (in-place). Encrypt == decrypt.
  void ctr_xor(const Nonce& nonce, std::uint32_t counter0, ByteSpan in,
               std::uint8_t* out) const noexcept;

  // Portable reference twin (always scalar, independent of dispatch).
  void ctr_xor_scalar(const Nonce& nonce, std::uint32_t counter0, ByteSpan in,
                      std::uint8_t* out) const noexcept;

  // Resolved dispatch decision ("aesni" or "scalar"); forces resolution, so
  // the result is also visible via common/cpu.h's registry.
  [[nodiscard]] static const char* kernel_name() noexcept;
  [[nodiscard]] static int kernel_tier() noexcept;  // 0 scalar, 1 aesni

 private:
  // 11 round keys from the standard AES-128 schedule, byte layout; the
  // AES-NI path loads them unaligned per call.
  std::array<std::array<std::uint8_t, kBlockSize>, 11> round_keys_{};
};

// Convenience one-shot CTR transform starting at counter 0.
Bytes aes128_ctr_crypt(const Aes128::Key& key, const Aes128::Nonce& nonce,
                       ByteSpan data);

// Derive an AES-128 key from a passphrase (SHA-256 truncation).
Aes128::Key aes128_key_from_passphrase(std::string_view passphrase);

}  // namespace unidrive::crypto
