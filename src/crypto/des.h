// DES block cipher (FIPS 46-3) with CBC mode and PKCS#7 padding.
//
// The paper encrypts the replicated metadata file with DES before uploading
// it to the clouds, so no single provider can read the folder image. We keep
// the same algorithm choice for fidelity; DES is obsolete as a secure cipher
// (56-bit key) and this module should not be reused for anything else.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"

namespace unidrive::crypto {

class Des {
 public:
  static constexpr std::size_t kBlockSize = 8;
  static constexpr std::size_t kKeySize = 8;
  using Block = std::array<std::uint8_t, kBlockSize>;
  using Key = std::array<std::uint8_t, kKeySize>;

  explicit Des(const Key& key) noexcept { expand_key(key); }

  [[nodiscard]] Block encrypt_block(const Block& in) const noexcept {
    return crypt(in, /*decrypt=*/false);
  }
  [[nodiscard]] Block decrypt_block(const Block& in) const noexcept {
    return crypt(in, /*decrypt=*/true);
  }

 private:
  void expand_key(const Key& key) noexcept;
  [[nodiscard]] Block crypt(const Block& in, bool decrypt) const noexcept;

  std::array<std::uint64_t, 16> subkeys_{};  // 48-bit subkeys in low bits
};

// CBC with PKCS#7 padding; IV is prepended to the ciphertext.
Bytes des_cbc_encrypt(const Des::Key& key, ByteSpan plaintext,
                      const Des::Block& iv);
Result<Bytes> des_cbc_decrypt(const Des::Key& key, ByteSpan ciphertext);

// Derive a DES key from a passphrase (SHA-1 truncation).
Des::Key des_key_from_passphrase(std::string_view passphrase);

}  // namespace unidrive::crypto
