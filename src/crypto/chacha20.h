// ChaCha20 stream cipher (RFC 8439) — the portable hardware-independent
// member of the cipher pair: no special instructions required, constant-time
// by construction (add/rotate/xor only), and fast enough in plain C++ that
// it is the recommended choice on CPUs without AES-NI.
//
// Like AES-CTR this is a keystream XOR: encrypt == decrypt, any length, no
// padding, and a (key, nonce) pair must never repeat. There is no SIMD
// variant; the kernel registry reports it as "portable" tier 0.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/bytes.h"

namespace unidrive::crypto {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kBlockSize = 64;
  using Key = std::array<std::uint8_t, kKeySize>;
  using Nonce = std::array<std::uint8_t, kNonceSize>;

  explicit ChaCha20(const Key& key) noexcept;

  // Keystream XOR: out[i] = in[i] ^ keystream(key, nonce, counter0 + i/64).
  // out may alias in.data() (in-place). Encrypt == decrypt.
  void xor_stream(const Nonce& nonce, std::uint32_t counter0, ByteSpan in,
                  std::uint8_t* out) const noexcept;

  [[nodiscard]] static const char* kernel_name() noexcept;  // "portable"
  [[nodiscard]] static int kernel_tier() noexcept;          // always 0

 private:
  std::array<std::uint32_t, 8> key_words_{};
};

// Convenience one-shot transform starting at counter 0.
Bytes chacha20_crypt(const ChaCha20::Key& key, const ChaCha20::Nonce& nonce,
                     ByteSpan data);

// Derive a ChaCha20 key from a passphrase (full SHA-256 digest).
ChaCha20::Key chacha20_key_from_passphrase(std::string_view passphrase);

}  // namespace unidrive::crypto
