// Config-selectable cipher for the metadata encrypt stage.
//
// The paper uses DES for fidelity; the hardware-speed data plane adds
// AES-128-CTR (AES-NI dispatched) and ChaCha20 (portable) as alternatives.
// Every ciphertext is self-describing: a one-byte kind tag leads the frame,
// so decrypt works regardless of the currently configured kind — a client
// reconfigured from DES to AES can still read every object it wrote before.
//
// Frame layouts (after the tag byte):
//   kDes        — DES-CBC output as produced by des_cbc_encrypt (IV-prefixed,
//                 PKCS#7 padded).
//   kAes128Ctr  — 12-byte nonce || CTR keystream XOR of the plaintext.
//   kChaCha20   — 12-byte nonce || keystream XOR of the plaintext.
//
// Nonces are derived deterministically from SHA-256(plaintext) so identical
// states serialize identically (the codec's dedup/testing contract, same
// rationale as the DES IV derivation). Distinct plaintexts under one key
// therefore never reuse a (key, nonce) pair except with SHA-256-collision
// probability.
#pragma once

#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "crypto/des.h"

namespace unidrive::crypto {

enum class CipherKind : std::uint8_t {
  kDes = 0,
  kAes128Ctr = 1,
  kChaCha20 = 2,
};

// "des", "aes128ctr", "chacha20".
[[nodiscard]] const char* cipher_name(CipherKind kind) noexcept;
[[nodiscard]] Result<CipherKind> cipher_from_name(std::string_view name);

class Cipher {
 public:
  Cipher(CipherKind kind, const std::string& passphrase);

  [[nodiscard]] CipherKind kind() const noexcept { return kind_; }

  // Encrypts under the configured kind; the frame is tagged with it.
  [[nodiscard]] Bytes encrypt(ByteSpan plain) const;

  // Dispatches on the frame's kind tag — any kind decrypts with any
  // configured kind (keys for all kinds derive from the one passphrase).
  [[nodiscard]] Result<Bytes> decrypt(ByteSpan frame) const;

  // Resolved kernel behind the configured kind ("aesni", "scalar", ...).
  [[nodiscard]] const char* kernel_name() const noexcept;

 private:
  CipherKind kind_;
  Des::Key des_key_;
  Aes128::Key aes_key_;
  ChaCha20::Key chacha_key_;
};

}  // namespace unidrive::crypto
