// Convergent dispersal for the content-addressed segment pool (DESIGN.md
// §13), in the style of CDStore's two-stage convergent dispersal: the
// per-segment key is derived from the segment plaintext itself, so two
// parties holding identical bytes produce byte-identical sealed payloads —
// and therefore byte-identical coded blocks — without sharing any secret.
// That is what lets deduplication survive encryption across users.
//
// Segment ids are SHA-256 hex (64 chars). Ids minted before the upgrade are
// SHA-1 hex (40 chars) and their blocks were coded over raw plaintext; both
// properties are preserved by dispatching on id length, so serialized images
// from either era keep working against the same cloud set.
//
// Sealing is AES-128-CTR keyed by the id's leading bytes. CTR is length
// preserving (sealed size == plaintext size), so pipeline byte accounting and
// erasure shard geometry are unchanged, and the AES-NI / scalar twins
// (crypto/aes.h) produce identical bytes, so convergence holds across
// machines and under UNIDRIVE_FORCE_SCALAR.
#pragma once

#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/status.h"

namespace unidrive::crypto {

enum class SegmentIdKind {
  kLegacySha1,  // 40 hex chars; blocks are raw-plaintext codewords
  kSha256,      // 64 hex chars; blocks are convergent-sealed codewords
  kUnknown,
};

[[nodiscard]] SegmentIdKind segment_id_kind(std::string_view id) noexcept;

// Canonical id for newly minted segments: SHA-256 hex of the plaintext.
[[nodiscard]] std::string segment_id(ByteSpan plaintext);

// True when `plaintext` hashes to `id` under the id's own hash family.
[[nodiscard]] bool verify_segment_id(std::string_view id, ByteSpan plaintext);

// Data-plane name stem of a segment's block objects. The convergent key IS
// the id's leading bytes, so the id must never appear on the shared /data
// plane (any party that can list the pool would read the decryption key out
// of the filenames). Blocks are therefore addressed by a second,
// domain-separated SHA-256 over the raw id — one-way, so the name reveals
// no key material, yet still deterministic in the content, so convergence
// and cross-user dedup are unaffected. Legacy SHA-1 ids predate sealing
// (they are not key material) and pass through unchanged, which keeps
// blocks written before the upgrade reachable at their original paths.
[[nodiscard]] std::string storage_address(std::string_view id);

// Plaintext -> sealed payload for the segment named `id` (which the caller
// must have derived from this plaintext). Legacy SHA-1 ids are sealed with
// the identity transform — their blocks predate convergent sealing.
[[nodiscard]] Bytes convergent_seal(std::string_view id, ByteSpan plaintext);

// In-place variant (the CTR keystream XORs over `data`; identity for legacy
// ids) — the hot upload path uses this to avoid a second plaintext-sized
// buffer inside the admission-gated footprint.
void convergent_seal_inplace(std::string_view id, Bytes& data);

// Sealed payload -> plaintext, verifying that the result hashes back to
// `id`. Fails on a hash mismatch (corrupt or mis-addressed payload) or a
// malformed id. Consumes `sealed` (the CTR unseal runs in place).
[[nodiscard]] Result<Bytes> convergent_open(std::string_view id, Bytes sealed);

}  // namespace unidrive::crypto
