// CloudProvider — the minimum RESTful data-access surface UniDrive assumes
// of any consumer cloud storage service: upload, download, create directory,
// list, delete. Nothing else (no compare-and-swap, no append, no server-side
// execution, no cross-cloud communication). Everything UniDrive does —
// metadata replication, quorum locking, block placement — is expressed in
// these five stateless calls.
//
// Consistency contract (matching the paper's assumption): read-after-write.
// After upload() returns OK, a subsequent list()/download() from any client
// observes the file.
//
// Implementations must be safe to call from multiple threads concurrently.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace unidrive::cloud {

using CloudId = std::uint32_t;

struct FileInfo {
  std::string name;  // leaf name within the listed directory
  std::uint64_t size = 0;
};

class CloudProvider {
 public:
  virtual ~CloudProvider() = default;

  // Stable identifier of this cloud within a multi-cloud configuration.
  [[nodiscard]] virtual CloudId id() const noexcept = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  // Uploads (creates or replaces) a file at an absolute slash-separated
  // path, e.g. "/data/<segment>_3". Parent directories are created
  // implicitly, as consumer REST APIs commonly do.
  virtual Status upload(const std::string& path, ByteSpan data) = 0;

  virtual Result<Bytes> download(const std::string& path) = 0;

  virtual Status create_dir(const std::string& path) = 0;

  // Lists immediate children (files only) of the directory.
  virtual Result<std::vector<FileInfo>> list(const std::string& dir) = 0;

  // Deletes a file. Deleting a missing file reports kNotFound.
  virtual Status remove(const std::string& path) = 0;
};

using CloudPtr = std::shared_ptr<CloudProvider>;
using MultiCloud = std::vector<CloudPtr>;

}  // namespace unidrive::cloud
