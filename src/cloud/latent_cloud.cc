#include "cloud/latent_cloud.h"

#include <algorithm>

namespace unidrive::cloud {

double LinkState::reserve(std::size_t bytes, double rate,
                          bool upload_direction, double now) {
  if (rate <= 0 || bytes == 0) return 0;
  const double duration = static_cast<double>(bytes) / rate;
  std::lock_guard<std::mutex> lock(mu_);
  double& free_at = upload_direction ? up_free_at_ : down_free_at_;
  const double start = std::max(now, free_at);
  free_at = start + duration;
  return free_at - now;
}

void LatentCloud::throttle(std::size_t bytes, bool upload_direction) {
  wheel_->sleep(profile_.request_latency_sec);
  const double rate = upload_direction ? profile_.up_bytes_per_sec
                                       : profile_.down_bytes_per_sec;
  wheel_->sleep(link_->reserve(bytes, rate, upload_direction,
                               RealClock::instance().now()));
}

Status LatentCloud::upload(const std::string& path, ByteSpan data) {
  throttle(data.size(), /*upload_direction=*/true);
  return inner_->upload(path, data);
}

Result<Bytes> LatentCloud::download(const std::string& path) {
  auto result = inner_->download(path);
  throttle(result.is_ok() ? result.value().size() : 0,
           /*upload_direction=*/false);
  return result;
}

Status LatentCloud::create_dir(const std::string& path) {
  wheel_->sleep(profile_.request_latency_sec);
  return inner_->create_dir(path);
}

Result<std::vector<FileInfo>> LatentCloud::list(const std::string& dir) {
  wheel_->sleep(profile_.request_latency_sec);
  return inner_->list(dir);
}

Status LatentCloud::remove(const std::string& path) {
  wheel_->sleep(profile_.request_latency_sec);
  return inner_->remove(path);
}

}  // namespace unidrive::cloud
