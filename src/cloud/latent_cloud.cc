#include "cloud/latent_cloud.h"

#include <chrono>
#include <thread>

namespace unidrive::cloud {

namespace {
void sleep_for_seconds(double seconds) {
  if (seconds <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}
}  // namespace

void LatentCloud::throttle(std::size_t bytes, bool upload_direction) {
  sleep_for_seconds(profile_.request_latency_sec);
  const double rate = upload_direction ? profile_.up_bytes_per_sec
                                       : profile_.down_bytes_per_sec;
  if (rate <= 0 || bytes == 0) return;

  const double duration = static_cast<double>(bytes) / rate;
  double wait;
  {
    std::mutex& m = upload_direction ? up_mutex_ : down_mutex_;
    double& free_at = upload_direction ? up_free_at_ : down_free_at_;
    std::lock_guard<std::mutex> lock(m);
    const double now = RealClock::instance().now();
    const double start = std::max(now, free_at);
    free_at = start + duration;
    wait = free_at - now;
  }
  sleep_for_seconds(wait);
}

Status LatentCloud::upload(const std::string& path, ByteSpan data) {
  throttle(data.size(), /*upload_direction=*/true);
  return inner_->upload(path, data);
}

Result<Bytes> LatentCloud::download(const std::string& path) {
  auto result = inner_->download(path);
  throttle(result.is_ok() ? result.value().size() : 0,
           /*upload_direction=*/false);
  return result;
}

Status LatentCloud::create_dir(const std::string& path) {
  sleep_for_seconds(profile_.request_latency_sec);
  return inner_->create_dir(path);
}

Result<std::vector<FileInfo>> LatentCloud::list(const std::string& dir) {
  sleep_for_seconds(profile_.request_latency_sec);
  return inner_->list(dir);
}

Status LatentCloud::remove(const std::string& path) {
  sleep_for_seconds(profile_.request_latency_sec);
  return inner_->remove(path);
}

}  // namespace unidrive::cloud
