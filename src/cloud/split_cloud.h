// SplitNamespaceCloud — routes the content-addressed block namespace
// (paths under metadata::kDataDir, "/data/...") to one backing provider and
// every other path (metadata, locks, changelists) to another.
//
// This is the deployment shape cross-user dedup assumes (DESIGN.md §13):
// many folders enroll the same physical /data plane — convergent dispersal
// makes identical content produce byte-identical block objects at identical
// paths, so the plane stores each popular segment once — while each folder
// keeps a private metadata plane. Both backing providers must match the
// CloudId the folder enrolled (the decorator reports the data plane's id);
// in practice that means one shared data store and one private store per
// (folder, cloud-slot) pair, constructed with the same id.
//
// Purely a router: no caching, no locking of its own. Thread-safety is
// whatever the two backing providers give.
#pragma once

#include <string>
#include <utility>

#include "cloud/provider.h"

namespace unidrive::cloud {

class SplitNamespaceCloud final : public CloudProvider {
 public:
  SplitNamespaceCloud(CloudPtr shared_data, CloudPtr priv)
      : data_(std::move(shared_data)), private_(std::move(priv)) {}

  [[nodiscard]] CloudId id() const noexcept override { return data_->id(); }
  [[nodiscard]] std::string name() const override { return data_->name(); }

  Status upload(const std::string& path, ByteSpan data) override {
    return route(path)->upload(path, data);
  }
  Result<Bytes> download(const std::string& path) override {
    return route(path)->download(path);
  }
  Status create_dir(const std::string& path) override {
    return route(path)->create_dir(path);
  }
  Result<std::vector<FileInfo>> list(const std::string& dir) override {
    return route(dir)->list(dir);
  }
  Status remove(const std::string& path) override {
    return route(path)->remove(path);
  }

 private:
  // The literal must match metadata::kDataDir; spelled here because the
  // cloud layer sits below metadata and cannot include its headers. The
  // separator is part of the match so "/database" or "/data2" cannot
  // silently land on the shared plane.
  CloudProvider* route(const std::string& path) {
    return path == "/data" || path.rfind("/data/", 0) == 0 ? data_.get()
                                                           : private_.get();
  }
  CloudPtr data_;
  CloudPtr private_;
};

}  // namespace unidrive::cloud
