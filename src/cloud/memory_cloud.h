// In-memory CloudProvider with read-after-write consistency — the reference
// substrate standing in for a commercial CCS REST endpoint. Thread-safe.
#pragma once

#include <map>
#include <mutex>
#include <set>
#include <string>

#include "cloud/provider.h"

namespace unidrive::cloud {

class MemoryCloud final : public CloudProvider {
 public:
  MemoryCloud(CloudId id, std::string name)
      : id_(id), name_(std::move(name)) {}

  [[nodiscard]] CloudId id() const noexcept override { return id_; }
  [[nodiscard]] std::string name() const override { return name_; }

  Status upload(const std::string& path, ByteSpan data) override;
  Result<Bytes> download(const std::string& path) override;
  Status create_dir(const std::string& path) override;
  Result<std::vector<FileInfo>> list(const std::string& dir) override;
  Status remove(const std::string& path) override;

  // Introspection for tests and traffic accounting.
  [[nodiscard]] std::size_t file_count() const;
  [[nodiscard]] std::uint64_t stored_bytes() const;
  void clear();

 private:
  CloudId id_;
  std::string name_;

  mutable std::mutex mutex_;
  std::map<std::string, Bytes> files_;  // normalized path -> content
  std::set<std::string> dirs_;          // explicitly created directories
};

}  // namespace unidrive::cloud
