// DirectoryCloud — a CloudProvider persisted in a local directory: every
// object is a file under the root, with path components URL-free-encoded
// into one flat level per directory. The second "real" adapter next to
// MemoryCloud: it survives process restarts, which makes CLI demos and
// crash-recovery tests possible without network access. Thread-safe.
#pragma once

#include <mutex>
#include <string>

#include "cloud/provider.h"

namespace unidrive::cloud {

class DirectoryCloud final : public CloudProvider {
 public:
  // Creates `root` (and parents) if missing.
  DirectoryCloud(CloudId id, std::string name, std::string root);

  [[nodiscard]] CloudId id() const noexcept override { return id_; }
  [[nodiscard]] std::string name() const override { return name_; }

  Status upload(const std::string& path, ByteSpan data) override;
  Result<Bytes> download(const std::string& path) override;
  Status create_dir(const std::string& path) override;
  Result<std::vector<FileInfo>> list(const std::string& dir) override;
  Status remove(const std::string& path) override;

  [[nodiscard]] const std::string& root() const noexcept { return root_; }

 private:
  [[nodiscard]] std::string host_path(const std::string& cloud_path) const;

  CloudId id_;
  std::string name_;
  std::string root_;
  mutable std::mutex mutex_;
};

}  // namespace unidrive::cloud
