// MeteredCloud — per-verb, per-cloud request metering.
//
// Wraps any CloudProvider and records, into a shared Observability:
//
//   cloud.<name>.<verb>.<area>.ok|err   request outcome counters, where
//                                       verb ∈ {upload, download, list,
//                                       create_dir, remove} and area
//                                       classifies the path (/data blocks,
//                                       /meta metadata, /lock lock files,
//                                       other);
//   cloud.<name>.bytes_up|bytes_down    payload bytes actually moved;
//   cloud.<name>.<verb>.latency         per-request latency histogram.
//
// Composed UNDER RetryingCloud (Retrying(Metered(raw))), so every
// individual attempt is metered — retries show up as extra requests, which
// is exactly the per-cloud traffic a provider would bill for and the
// quantity the paper's Fig. 4 success rates are measured against.
//
// Thread-safe when the inner provider is (counters are atomics; the
// instrument lookup takes the registry mutex).
#pragma once

#include "cloud/provider.h"
#include "obs/obs.h"

namespace unidrive::cloud {

// Buckets request paths by what they carry, mirroring the layout the client
// uses on every cloud (metadata/types.h): erasure-coded blocks under /data,
// base/delta/version files under /meta, lock files under /lock. Shared by
// the blocking and async metering surfaces so counter names stay identical.
[[nodiscard]] const char* request_area(const std::string& path);

class MeteredCloud final : public CloudProvider {
 public:
  MeteredCloud(CloudPtr inner, obs::ObsPtr obs);

  [[nodiscard]] CloudId id() const noexcept override { return inner_->id(); }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

  Status upload(const std::string& path, ByteSpan data) override;
  Result<Bytes> download(const std::string& path) override;
  Status create_dir(const std::string& path) override;
  Result<std::vector<FileInfo>> list(const std::string& dir) override;
  Status remove(const std::string& path) override;

  [[nodiscard]] const CloudPtr& inner() const noexcept { return inner_; }

 private:
  void account(const char* verb, const std::string& path, const Status& status,
               Duration elapsed);

  CloudPtr inner_;
  obs::ObsPtr obs_;  // never null
  std::string prefix_;  // "cloud.<name>."
};

}  // namespace unidrive::cloud
