// LatentCloud — real-time bandwidth/latency throttling decorator (token
// bucket + sleep). Used by examples and integration tests that exercise the
// threaded transfer driver against walls-clock time; large-scale performance
// experiments instead use the discrete-event simulator in src/sim.
#pragma once

#include <mutex>

#include "cloud/provider.h"
#include "common/clock.h"

namespace unidrive::cloud {

struct LinkProfile {
  double up_bytes_per_sec = 0;    // 0 = unlimited
  double down_bytes_per_sec = 0;  // 0 = unlimited
  double request_latency_sec = 0;
};

class LatentCloud final : public CloudProvider {
 public:
  LatentCloud(CloudPtr inner, LinkProfile profile)
      : inner_(std::move(inner)), profile_(profile) {}

  [[nodiscard]] CloudId id() const noexcept override { return inner_->id(); }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

  Status upload(const std::string& path, ByteSpan data) override;
  Result<Bytes> download(const std::string& path) override;
  Status create_dir(const std::string& path) override;
  Result<std::vector<FileInfo>> list(const std::string& dir) override;
  Status remove(const std::string& path) override;

 private:
  // Serializes per-direction bandwidth: concurrent transfers queue behind
  // each other, approximating a shared uplink.
  void throttle(std::size_t bytes, bool upload_direction);

  CloudPtr inner_;
  LinkProfile profile_;
  std::mutex up_mutex_;
  std::mutex down_mutex_;
  double up_free_at_ = 0;    // RealClock timestamp when uplink frees
  double down_free_at_ = 0;
};

}  // namespace unidrive::cloud
