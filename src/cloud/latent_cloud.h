// LatentCloud — real-time bandwidth/latency throttling decorator (token
// bucket + deadline-queue waits). Used by examples, integration tests and
// the async-multiplex bench that exercise the transfer drivers against
// wall-clock time; large-scale performance experiments instead use the
// discrete-event simulator in src/sim.
//
// All waits are routed through a TimerWheel: the blocking verbs park the
// calling thread on a wheel timer (one wheel thread serves every pending
// delay), and the async surface (cloud/async.h AsyncLatentCloud) schedules
// its completion on the same wheel without occupying any thread at all.
// Both surfaces share one LinkState, so concurrent transfers — blocking or
// async — queue behind each other on the same simulated uplink.
#pragma once

#include <memory>
#include <mutex>

#include "cloud/provider.h"
#include "common/clock.h"
#include "common/timer_wheel.h"

namespace unidrive::cloud {

struct LinkProfile {
  double up_bytes_per_sec = 0;    // 0 = unlimited
  double down_bytes_per_sec = 0;  // 0 = unlimited
  double request_latency_sec = 0;
};

// Per-direction occupancy of one simulated link, shared between the
// blocking and async surfaces of the same LatentCloud.
struct LinkState {
  // Reserves `bytes` at `rate` bytes/sec starting no earlier than `now`
  // (RealClock seconds); returns how long the caller must wait from `now`
  // until its transfer completes. Thread-safe.
  double reserve(std::size_t bytes, double rate, bool upload_direction,
                 double now);

 private:
  std::mutex mu_;
  double up_free_at_ = 0;
  double down_free_at_ = 0;
};

class LatentCloud final : public CloudProvider {
 public:
  LatentCloud(CloudPtr inner, LinkProfile profile,
              TimerWheel& wheel = TimerWheel::shared())
      : inner_(std::move(inner)),
        profile_(profile),
        wheel_(&wheel),
        link_(std::make_shared<LinkState>()) {}

  [[nodiscard]] CloudId id() const noexcept override { return inner_->id(); }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

  Status upload(const std::string& path, ByteSpan data) override;
  Result<Bytes> download(const std::string& path) override;
  Status create_dir(const std::string& path) override;
  Result<std::vector<FileInfo>> list(const std::string& dir) override;
  Status remove(const std::string& path) override;

  // Exposed so the async decorator shares the same link and profile.
  [[nodiscard]] const CloudPtr& inner() const noexcept { return inner_; }
  [[nodiscard]] const LinkProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] const std::shared_ptr<LinkState>& link() const noexcept {
    return link_;
  }
  [[nodiscard]] TimerWheel& wheel() const noexcept { return *wheel_; }

 private:
  // Blocks for the request latency plus the bandwidth reservation.
  void throttle(std::size_t bytes, bool upload_direction);

  CloudPtr inner_;
  LinkProfile profile_;
  TimerWheel* wheel_;
  std::shared_ptr<LinkState> link_;
};

}  // namespace unidrive::cloud
