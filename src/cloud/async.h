// AsyncCloud — the completion-based cloud API that decouples in-flight
// RPCs from threads.
//
// Every blocking CloudProvider verb pins its calling thread for the full
// round trip, so the transfer drivers could only keep pool_size RPCs in
// flight. AsyncCloud mirrors the five REST verbs as *_async(…, done):
// each call launches the request, returns a cancellable AsyncHandle
// immediately, and invokes the completion exactly once when the request
// resolves. The drivers launch from the scheduler, re-enter it from the
// completion, and hold no pool slot while the request is in the air.
//
// Invariants every implementation upholds:
//
//   1. Completions are NEVER invoked on the caller's stack — they run on
//      the I/O pool or the timer wheel. Callers may therefore launch while
//      holding their own locks (the streaming drivers launch under lock_).
//   2. After AsyncHandle::cancel() returns, the completion will never be
//      invoked (it either already ran, or never will). cancel() blocks
//      while the completion (or the blocking RPC feeding it, for
//      SyncAdapter ops) is running, unless called from the completion
//      itself — so buffers referenced by the request may be freed as soon
//      as the completion has run or cancel() has returned.
//   3. An upload's ByteSpan must stay valid until the completion runs or
//      cancel() returns. The natural pattern is to let ownership ride in
//      the completion closure (capture a shared_ptr to the bytes).
//
// SyncAdapter is the compatibility layer: it wraps any blocking
// CloudProvider by running the verb on a dedicated I/O pool — correct for
// every provider, thread-bound per RPC. The native decorators mirror the
// blocking stack without that bound:
//
//   AsyncRetryingCloud  retry/backoff/deadline/breaker semantics of
//                       RetryingCloud, with backoff re-armed on the timer
//                       wheel instead of a sleeping thread (injected
//                       virtual-time sleeps are still honoured).
//   AsyncMeteredCloud   same counter/histogram names as MeteredCloud.
//   AsyncFaultyCloud /  share the decision RNG, counters and quota
//   AsyncQuotaCloud     accounting with their blocking halves.
//   AsyncLatentCloud    schedules its simulated latency/bandwidth delays
//                       on the wheel — a 1-thread pool can have hundreds
//                       of delayed requests outstanding.
//
// to_async() builds the async twin of a decorated blocking chain by
// walking it (Retrying → Metered → Faulty/Quota/Latent → SyncAdapter leaf),
// so the async data plane and the blocking metadata/lock plane share one
// set of breakers, meters, fault injectors and quotas.
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cloud/health.h"
#include "cloud/provider.h"
#include "common/executor.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/timer_wheel.h"
#include "obs/obs.h"

namespace unidrive::cloud {

namespace detail {

// State machine of one async operation; shared between the AsyncHandle the
// caller holds and the closure that will run the completion.
class AsyncOpState {
 public:
  // Runner side: transition pending -> running right before invoking the
  // completion (or the blocking RPC feeding it). False = cancelled, skip
  // everything.
  bool try_begin();
  // Runner side: running -> done, releases blocked cancellers.
  void finish();

  // Caller side (AsyncHandle::cancel): true = averted (pending ->
  // cancelled; the on_cancel hook ran). False = already begun; blocks
  // until finish() unless called from the runner itself.
  bool cancel();

  // Registers the hook cancel() runs while the op is still pending —
  // composite ops use it to cancel armed timers and inner handles. Returns
  // false when the op was already cancelled (the hook will never run; the
  // caller must clean up itself).
  bool set_on_cancel(std::function<void()> fn);

 private:
  enum class Phase { kPending, kRunning, kDone, kCancelled };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Phase phase_ = Phase::kPending;
  std::thread::id runner_{};
  std::function<void()> on_cancel_;
};

}  // namespace detail

// Value-type handle to one in-flight async operation. Default-constructed
// handles are inert (cancel() returns false).
class AsyncHandle {
 public:
  AsyncHandle() = default;
  explicit AsyncHandle(std::shared_ptr<detail::AsyncOpState> state)
      : state_(std::move(state)) {}

  // True = the completion was averted and will never run. False = the
  // completion ran (or is running — then this blocks until it finished,
  // unless called from the completion itself). Either way, after cancel()
  // returns the completion will never be invoked.
  bool cancel();

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

 private:
  std::shared_ptr<detail::AsyncOpState> state_;
};

using StatusCb = std::function<void(Status)>;
using BytesCb = std::function<void(Result<Bytes>)>;
using ListCb = std::function<void(Result<std::vector<FileInfo>>)>;

// Shared runtime of the async layer: where blocking work runs, where
// delays are parked, how time is read and paused, where metrics land.
//
// All pointers are NON-owning. The owner of the runtime (client, test)
// must keep the pool and wheel alive until every operation launched with
// this context has completed or been cancelled — the drivers guarantee
// that by waiting out all completions. Ops must never keep the pool alive
// themselves: a queued task holding the last reference to its own
// executor would run ~Executor on a worker thread and self-join.
struct AsyncContext {
  Executor* io = nullptr;                    // never null when used
  TimerWheel* wheel = &TimerWheel::shared();
  Clock* clock = &RealClock::instance();
  // Honoured by AsyncRetryingCloud when it is NOT the real sleep: virtual
  // time tests drive retries/breakers by advancing a ManualClock inside it.
  SleepFn sleep = real_sleep();
  obs::ObsPtr obs;                           // may be null
};

class AsyncCloud {
 public:
  virtual ~AsyncCloud() = default;

  [[nodiscard]] virtual CloudId id() const noexcept = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  virtual AsyncHandle upload_async(const std::string& path, ByteSpan data,
                                   StatusCb done) = 0;
  virtual AsyncHandle download_async(const std::string& path,
                                     BytesCb done) = 0;
  virtual AsyncHandle create_dir_async(const std::string& path,
                                       StatusCb done) = 0;
  virtual AsyncHandle list_async(const std::string& dir, ListCb done) = 0;
  virtual AsyncHandle remove_async(const std::string& path,
                                   StatusCb done) = 0;
};

using AsyncCloudPtr = std::shared_ptr<AsyncCloud>;
using AsyncMultiCloud = std::vector<AsyncCloudPtr>;

// Blocking-provider fallback: runs each verb on the I/O pool. One RPC
// still occupies one pool thread for its duration (gauges
// async.io.rpcs_active{,_peak} make that visible), but the caller is
// already free — correctness for arbitrary providers, with the thread
// bound moved from the driver pool to the I/O pool.
class SyncAdapter final : public AsyncCloud {
 public:
  SyncAdapter(CloudPtr inner, AsyncContext ctx);

  [[nodiscard]] CloudId id() const noexcept override { return inner_->id(); }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

  AsyncHandle upload_async(const std::string& path, ByteSpan data,
                           StatusCb done) override;
  AsyncHandle download_async(const std::string& path, BytesCb done) override;
  AsyncHandle create_dir_async(const std::string& path,
                               StatusCb done) override;
  AsyncHandle list_async(const std::string& dir, ListCb done) override;
  AsyncHandle remove_async(const std::string& path, StatusCb done) override;

 private:
  struct Active {
    std::atomic<std::size_t> n{0};
    std::atomic<std::size_t> peak{0};
  };

  template <typename R>
  AsyncHandle run(std::function<R(CloudProvider&)> op,
                  std::function<void(R)> done);

  CloudPtr inner_;
  AsyncContext ctx_;
  std::shared_ptr<Active> active_ = std::make_shared<Active>();
};

// Async twin of a (possibly decorated) blocking provider. Recognizes the
// repo's decorator chain — RetryingCloud, MeteredCloud, FaultyCloud,
// QuotaCloud, LatentCloud — and rebuilds it from native async decorators
// that share state (breakers, counters, RNG streams, quotas, link
// occupancy) with the blocking chain; any unrecognized provider becomes a
// SyncAdapter leaf.
AsyncCloudPtr to_async(const CloudPtr& cloud, const AsyncContext& ctx);

}  // namespace unidrive::cloud
