// StatsCloud — traffic-accounting decorator. Every request is charged its
// payload plus a fixed per-request HTTP(S) overhead, which is how the
// paper's "system overhead" metric (Table 3) is computed: extra network
// traffic divided by actually synced data.
#pragma once

#include <atomic>

#include "cloud/provider.h"

namespace unidrive::cloud {

struct TrafficStats {
  std::uint64_t requests = 0;
  std::uint64_t payload_up = 0;       // file bytes uploaded
  std::uint64_t payload_down = 0;     // file bytes downloaded
  std::uint64_t overhead_bytes = 0;   // HTTP headers, handshakes, etc.

  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return payload_up + payload_down + overhead_bytes;
  }
};

class StatsCloud final : public CloudProvider {
 public:
  // ~820 bytes per request: request + response headers on a keep-alive
  // HTTPS connection (order of magnitude from the paper's trace analysis).
  static constexpr std::uint64_t kDefaultPerRequestOverhead = 820;

  explicit StatsCloud(CloudPtr inner,
                      std::uint64_t per_request_overhead = kDefaultPerRequestOverhead)
      : inner_(std::move(inner)), per_request_overhead_(per_request_overhead) {}

  [[nodiscard]] CloudId id() const noexcept override { return inner_->id(); }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

  Status upload(const std::string& path, ByteSpan data) override;
  Result<Bytes> download(const std::string& path) override;
  Status create_dir(const std::string& path) override;
  Result<std::vector<FileInfo>> list(const std::string& dir) override;
  Status remove(const std::string& path) override;

  [[nodiscard]] TrafficStats stats() const;
  void reset_stats();

 private:
  void charge_request() noexcept {
    requests_.fetch_add(1);
    overhead_.fetch_add(per_request_overhead_);
  }

  CloudPtr inner_;
  std::uint64_t per_request_overhead_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> up_{0};
  std::atomic<std::uint64_t> down_{0};
  std::atomic<std::uint64_t> overhead_{0};
};

}  // namespace unidrive::cloud
