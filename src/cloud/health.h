// CloudHealthRegistry — shared, long-lived per-cloud health state with a
// closed -> open -> half-open circuit breaker.
//
// The paper's reliability measurements (Fig. 14) show consumer clouds going
// through whole-hours outages, and per-request success rates as low as
// 82.5% (Fig. 4). A client that re-pays a full retry cycle against a dead
// provider on every metadata probe and every block transfer wastes most of
// its sync round on guaranteed failures. The registry remembers, across
// sync rounds, which clouds are currently worth talking to:
//
//   closed     requests flow; failures are counted (consecutive + sliding
//              window). Availability failures past a threshold trip the
//              breaker.
//   open       requests are refused instantly (callers see kOutage and
//              reroute to the remaining k-of-N clouds). After
//              `open_duration` the next caller is admitted as a probe.
//   half-open  a bounded number of probe requests go through. Enough
//              successes close the breaker (cloud re-admitted); any
//              failure re-opens it and restarts the probe timer.
//
// One registry instance is shared by every cloud-facing path of a client
// (metadata store, quorum lock, transfer drivers), so a cloud tripped while
// publishing metadata is also skipped by the block scheduler, and a cloud
// that recovered is re-admitted everywhere at once. All methods are
// thread-safe.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "cloud/provider.h"
#include "common/clock.h"
#include "obs/obs.h"

namespace unidrive::cloud {

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

const char* breaker_state_name(BreakerState state) noexcept;

struct BreakerConfig {
  // Trip when this many availability failures arrive back to back...
  int consecutive_failures_to_open = 5;
  // ...or when the sliding window holds at least `min_window_samples`
  // outcomes and the failure ratio reaches this (Fig. 4 clouds fail
  // intermittently rather than consecutively).
  double window_failure_ratio_to_open = 0.6;
  std::size_t window_size = 32;
  std::size_t min_window_samples = 8;
  // How long the breaker stays open before admitting a probe.
  Duration open_duration = 30.0;
  // Probe requests admitted while half-open.
  int half_open_probes = 2;
  // Probe successes needed to close again.
  int probe_successes_to_close = 1;
};

struct CloudHealthSnapshot {
  CloudId id = 0;
  BreakerState state = BreakerState::kClosed;
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;
  int consecutive_failures = 0;
  double window_failure_ratio = 0.0;  // over the sliding window
  double latency_ewma = 0.0;          // seconds per request, EWMA
};

class CloudHealthRegistry {
 public:
  // When `obs` is non-null, breaker transitions are counted there:
  //   breaker.cloud<id>.opened|half_open|closed|rejected
  // (rejected = requests refused while open / probe quota used up).
  explicit CloudHealthRegistry(BreakerConfig config = {},
                               Clock& clock = RealClock::instance(),
                               obs::ObsPtr obs = nullptr)
      : config_(config), clock_(&clock), obs_(std::move(obs)) {}

  // Gate for anyone about to issue a request. false = circuit open: fail
  // fast without touching the network. May transition open -> half-open
  // when the probe timer expired; the caller that receives `true` in that
  // state IS the probe and must report its outcome via record_*().
  bool allow_request(CloudId id);

  // Non-mutating variant for schedulers deciding where to place work:
  // would allow_request() currently admit a request for this cloud?
  [[nodiscard]] bool admissible(CloudId id) const;

  void record_success(CloudId id, Duration latency);
  void record_failure(CloudId id, Duration latency);

  // Classifies `status` the way the breaker cares about: kUnavailable,
  // kTimeout and kOutage count against the cloud; every other response
  // (including kNotFound, kConflict...) proves the cloud answered and
  // counts as a health success.
  void record(CloudId id, const Status& status, Duration latency);

  [[nodiscard]] BreakerState state(CloudId id) const;
  [[nodiscard]] CloudHealthSnapshot snapshot(CloudId id) const;
  // Snapshot of every cloud ever recorded or gated, sorted by id.
  [[nodiscard]] std::vector<CloudHealthSnapshot> snapshot_all() const;

  // True when every known cloud's breaker is closed (no degraded mode).
  [[nodiscard]] bool all_closed() const;

  void reset();

  [[nodiscard]] const BreakerConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Entry {
    BreakerState state = BreakerState::kClosed;
    std::deque<bool> window;  // true = failure, newest at the back
    std::size_t window_failures = 0;
    std::uint64_t successes = 0;
    std::uint64_t failures = 0;
    int consecutive_failures = 0;
    TimePoint opened_at = 0;
    int half_open_admitted = 0;
    int half_open_successes = 0;
    double latency_ewma = 0;
    bool has_latency = false;
  };

  void push_outcome(Entry& e, bool failure, Duration latency);
  [[nodiscard]] bool should_trip(const Entry& e) const;
  void trip(CloudId id, Entry& e);
  void count_transition(CloudId id, const char* transition);
  [[nodiscard]] CloudHealthSnapshot make_snapshot(CloudId id,
                                                  const Entry& e) const;

  BreakerConfig config_;
  Clock* clock_;  // non-owning, never null
  obs::ObsPtr obs_;
  mutable std::mutex mutex_;
  std::map<CloudId, Entry> entries_;
};

}  // namespace unidrive::cloud
