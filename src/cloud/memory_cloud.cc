#include "cloud/memory_cloud.h"

#include "cloud/path.h"

namespace unidrive::cloud {

Status MemoryCloud::upload(const std::string& path, ByteSpan data) {
  const std::string norm = normalize_path(path);
  if (norm == "/") {
    return make_error(ErrorCode::kInvalidArgument, "upload to root");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  files_[norm] = Bytes(data.begin(), data.end());
  return Status::ok();
}

Result<Bytes> MemoryCloud::download(const std::string& path) {
  const std::string norm = normalize_path(path);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = files_.find(norm);
  if (it == files_.end()) {
    return make_error(ErrorCode::kNotFound, name_ + ": " + norm);
  }
  return it->second;
}

Status MemoryCloud::create_dir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  dirs_.insert(normalize_path(path));
  return Status::ok();
}

Result<std::vector<FileInfo>> MemoryCloud::list(const std::string& dir) {
  const std::string norm = normalize_path(dir);
  const std::string prefix = (norm == "/") ? "/" : norm + "/";
  std::vector<FileInfo> out;
  std::lock_guard<std::mutex> lock(mutex_);
  // map is ordered, so the children of `prefix` form a contiguous range.
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    const std::string& p = it->first;
    if (p.compare(0, prefix.size(), prefix) != 0) break;
    // Immediate children only.
    if (p.find('/', prefix.size()) != std::string::npos) continue;
    out.push_back({p.substr(prefix.size()), it->second.size()});
  }
  return out;
}

Status MemoryCloud::remove(const std::string& path) {
  const std::string norm = normalize_path(path);
  std::lock_guard<std::mutex> lock(mutex_);
  if (files_.erase(norm) == 0) {
    return make_error(ErrorCode::kNotFound, name_ + ": " + norm);
  }
  return Status::ok();
}

std::size_t MemoryCloud::file_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.size();
}

std::uint64_t MemoryCloud::stored_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [path, data] : files_) total += data.size();
  return total;
}

void MemoryCloud::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  files_.clear();
  dirs_.clear();
}

}  // namespace unidrive::cloud
