// RateLimitedCloud — consumer REST APIs throttle clients (HTTP 429);
// this decorator enforces a token-bucket request budget and fails excess
// requests with kUnavailable (transient, retriable), exactly how the
// schedulers are expected to experience a throttling vendor.
#pragma once

#include <mutex>

#include "cloud/provider.h"
#include "common/clock.h"

namespace unidrive::cloud {

struct RateLimit {
  double requests_per_second = 10.0;
  double burst = 20.0;  // bucket capacity
};

class RateLimitedCloud final : public CloudProvider {
 public:
  RateLimitedCloud(CloudPtr inner, RateLimit limit, Clock& clock)
      : inner_(std::move(inner)),
        limit_(limit),
        clock_(&clock),
        tokens_(limit.burst),
        last_refill_(clock.now()) {}

  [[nodiscard]] CloudId id() const noexcept override { return inner_->id(); }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

  Status upload(const std::string& path, ByteSpan data) override {
    UNI_RETURN_IF_ERROR(take_token());
    return inner_->upload(path, data);
  }
  Result<Bytes> download(const std::string& path) override {
    UNI_RETURN_IF_ERROR(take_token());
    return inner_->download(path);
  }
  Status create_dir(const std::string& path) override {
    UNI_RETURN_IF_ERROR(take_token());
    return inner_->create_dir(path);
  }
  Result<std::vector<FileInfo>> list(const std::string& dir) override {
    UNI_RETURN_IF_ERROR(take_token());
    return inner_->list(dir);
  }
  Status remove(const std::string& path) override {
    UNI_RETURN_IF_ERROR(take_token());
    return inner_->remove(path);
  }

  [[nodiscard]] std::uint64_t throttled_requests() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return throttled_;
  }

 private:
  Status take_token() {
    std::lock_guard<std::mutex> lock(mutex_);
    const TimePoint now = clock_->now();
    tokens_ = std::min(limit_.burst,
                       tokens_ + (now - last_refill_) * limit_.requests_per_second);
    last_refill_ = now;
    if (tokens_ < 1.0) {
      ++throttled_;
      return make_error(ErrorCode::kUnavailable,
                        name() + ": rate limited (429)");
    }
    tokens_ -= 1.0;
    return Status::ok();
  }

  CloudPtr inner_;
  RateLimit limit_;
  Clock* clock_;
  mutable std::mutex mutex_;
  double tokens_;
  TimePoint last_refill_;
  std::uint64_t throttled_ = 0;
};

}  // namespace unidrive::cloud
