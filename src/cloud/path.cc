#include "cloud/path.h"

namespace unidrive::cloud {

std::vector<std::string> split_path(std::string_view path) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start < path.size()) {
    const std::size_t slash = path.find('/', start);
    const std::size_t end = (slash == std::string_view::npos) ? path.size() : slash;
    if (end > start) parts.emplace_back(path.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

std::string normalize_path(std::string_view path) {
  const std::vector<std::string> parts = split_path(path);
  if (parts.empty()) return "/";
  std::string out;
  for (const std::string& p : parts) {
    out += '/';
    out += p;
  }
  return out;
}

std::string parent_path(std::string_view path) {
  const std::string norm = normalize_path(path);
  const std::size_t slash = norm.find_last_of('/');
  if (slash == 0) return "/";
  return norm.substr(0, slash);
}

std::string basename(std::string_view path) {
  const std::string norm = normalize_path(path);
  if (norm == "/") return "";
  return norm.substr(norm.find_last_of('/') + 1);
}

std::string join_path(std::string_view dir, std::string_view leaf) {
  std::string out = normalize_path(dir);
  if (out == "/") out.clear();
  out += '/';
  out += leaf;
  return normalize_path(out);
}

}  // namespace unidrive::cloud
