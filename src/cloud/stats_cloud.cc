#include "cloud/stats_cloud.h"

namespace unidrive::cloud {

Status StatsCloud::upload(const std::string& path, ByteSpan data) {
  charge_request();
  const Status status = inner_->upload(path, data);
  if (status.is_ok()) up_.fetch_add(data.size());
  return status;
}

Result<Bytes> StatsCloud::download(const std::string& path) {
  charge_request();
  auto result = inner_->download(path);
  if (result.is_ok()) down_.fetch_add(result.value().size());
  return result;
}

Status StatsCloud::create_dir(const std::string& path) {
  charge_request();
  return inner_->create_dir(path);
}

Result<std::vector<FileInfo>> StatsCloud::list(const std::string& dir) {
  charge_request();
  auto result = inner_->list(dir);
  if (result.is_ok()) {
    // Listing responses carry one JSON entry per file; charge ~80 bytes each.
    overhead_.fetch_add(80 * result.value().size());
  }
  return result;
}

Status StatsCloud::remove(const std::string& path) {
  charge_request();
  return inner_->remove(path);
}

TrafficStats StatsCloud::stats() const {
  TrafficStats s;
  s.requests = requests_.load();
  s.payload_up = up_.load();
  s.payload_down = down_.load();
  s.overhead_bytes = overhead_.load();
  return s;
}

void StatsCloud::reset_stats() {
  requests_.store(0);
  up_.store(0);
  down_.store(0);
  overhead_.store(0);
}

}  // namespace unidrive::cloud
