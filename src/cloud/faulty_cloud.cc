#include "cloud/faulty_cloud.h"

#include <algorithm>

namespace unidrive::cloud {

FaultDecision FaultyCloud::draw_decision(std::size_t payload_bytes,
                                         bool is_upload) {
  requests_.fetch_add(1);
  FaultDecision d;
  {
    std::lock_guard<std::mutex> lock(rng_mutex_);
    if (profile_.hang_seconds > 0 && profile_.hang_rate > 0 &&
        rng_.next_double() < profile_.hang_rate) {
      d.hang = true;
      d.hang_seconds = profile_.hang_seconds;
    }
    if (outage_.load()) {
      d.fail = true;
      d.outage = true;
    } else {
      const double p = rng_.next_double();
      const double mb = static_cast<double>(payload_bytes) / (1 << 20);
      const double fail_prob = std::min(
          1.0, profile_.base_failure_rate + profile_.per_mb_failure_rate * mb);
      if (p < fail_prob) d.fail = true;
      if (!d.fail && is_upload && payload_bytes > 0 &&
          profile_.torn_upload_rate > 0 &&
          rng_.next_double() < profile_.torn_upload_rate) {
        d.torn = true;
      }
      // Silent defects: only uploads that (appear to) succeed can rot or
      // vanish — the client must believe everything went fine. Drop wins
      // over bitrot when both fire (nothing stored = nothing to rot).
      if (!d.fail && !d.torn && is_upload && payload_bytes > 0) {
        if (profile_.block_loss_rate > 0 &&
            rng_.next_double() < profile_.block_loss_rate) {
          d.drop = true;
        } else if (profile_.bitrot_rate > 0 &&
                   rng_.next_double() < profile_.bitrot_rate) {
          d.bitrot = true;
        }
      }
    }
  }
  if (d.hang) hangs_.fetch_add(1);
  if (d.fail || d.torn) failures_.fetch_add(1);
  if (d.torn) torn_uploads_.fetch_add(1);
  if (d.bitrot) bitrots_.fetch_add(1);
  if (d.drop) lost_blocks_.fetch_add(1);
  return d;
}

namespace {
// One flipped byte in the middle: size-preserving, so only a content check
// (the scrubber's deep verify) can catch it.
Bytes rot_bytes(ByteSpan data) {
  Bytes rotted(data.begin(), data.end());
  if (!rotted.empty()) rotted[rotted.size() / 2] ^= 0x01;
  return rotted;
}
}  // namespace

namespace {
Status fail_status(bool outage, const std::string& name) {
  return outage ? make_error(ErrorCode::kOutage, name + ": cloud outage")
                : make_error(ErrorCode::kUnavailable,
                             name + ": transient request failure");
}
}  // namespace

Status FaultyCloud::upload(const std::string& path, ByteSpan data) {
  const FaultDecision d = draw_decision(data.size(), /*is_upload=*/true);
  if (d.hang) sleep_(d.hang_seconds);
  if (d.fail) return fail_status(d.outage, name());
  if (d.torn) {
    // Mid-flight abort: a truncated prefix lands at the path, the client
    // sees a failure. Integrity checks (hash-verified decode, version/delta
    // consistency) must reject the garbage.
    (void)inner_->upload(path, data.subspan(0, data.size() / 2));
    return make_error(ErrorCode::kUnavailable,
                      name() + ": upload torn mid-flight");
  }
  if (d.drop) return Status::ok();  // silently lost: stored nothing
  if (d.bitrot) {
    const Bytes rotted = rot_bytes(data);
    const Status status = inner_->upload(path, ByteSpan(rotted));
    return status.is_ok() ? Status::ok() : status;
  }
  return inner_->upload(path, data);
}

Status FaultyCloud::rot_stored(const std::string& path) {
  auto stored = inner_->download(path);
  if (!stored.is_ok()) return stored.status();
  const Bytes rotted = rot_bytes(ByteSpan(stored.value()));
  UNI_RETURN_IF_ERROR(inner_->upload(path, ByteSpan(rotted)));
  bitrots_.fetch_add(1);
  return Status::ok();
}

Status FaultyCloud::drop_stored(const std::string& path) {
  UNI_RETURN_IF_ERROR(inner_->remove(path));
  lost_blocks_.fetch_add(1);
  return Status::ok();
}

Result<Bytes> FaultyCloud::download(const std::string& path) {
  // Size-dependent failure needs the size; peek at the inner file first.
  // (Real transfers fail mid-flight; here the request atomically fails.)
  auto inner_result = inner_->download(path);
  const std::size_t size =
      inner_result.is_ok() ? inner_result.value().size() : 0;
  const FaultDecision d = draw_decision(size, /*is_upload=*/false);
  if (d.hang) sleep_(d.hang_seconds);
  if (d.fail) return fail_status(d.outage, name());
  return inner_result;
}

Status FaultyCloud::create_dir(const std::string& path) {
  const FaultDecision d = draw_decision(0, /*is_upload=*/false);
  if (d.hang) sleep_(d.hang_seconds);
  if (d.fail) return fail_status(d.outage, name());
  return inner_->create_dir(path);
}

Result<std::vector<FileInfo>> FaultyCloud::list(const std::string& dir) {
  const FaultDecision d = draw_decision(0, /*is_upload=*/false);
  if (d.hang) sleep_(d.hang_seconds);
  if (d.fail) return fail_status(d.outage, name());
  return inner_->list(dir);
}

Status FaultyCloud::remove(const std::string& path) {
  const FaultDecision d = draw_decision(0, /*is_upload=*/false);
  if (d.hang) sleep_(d.hang_seconds);
  if (d.fail) return fail_status(d.outage, name());
  return inner_->remove(path);
}

void FaultyCloud::set_profile(FaultProfile profile) {
  std::lock_guard<std::mutex> lock(rng_mutex_);
  profile_ = profile;
}

}  // namespace unidrive::cloud
