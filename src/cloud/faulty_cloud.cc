#include "cloud/faulty_cloud.h"

#include <algorithm>

namespace unidrive::cloud {

bool FaultyCloud::should_fail(std::size_t payload_bytes) {
  requests_.fetch_add(1);
  if (outage_.load()) {
    failures_.fetch_add(1);
    return true;
  }
  double p;
  {
    std::lock_guard<std::mutex> lock(rng_mutex_);
    p = rng_.next_double();
  }
  const double mb = static_cast<double>(payload_bytes) / (1 << 20);
  const double fail_prob = std::min(
      1.0, profile_.base_failure_rate + profile_.per_mb_failure_rate * mb);
  if (p < fail_prob) {
    failures_.fetch_add(1);
    return true;
  }
  return false;
}

namespace {
Status fail_status(bool outage, const std::string& name) {
  return outage ? make_error(ErrorCode::kOutage, name + ": cloud outage")
                : make_error(ErrorCode::kUnavailable,
                             name + ": transient request failure");
}
}  // namespace

Status FaultyCloud::upload(const std::string& path, ByteSpan data) {
  if (should_fail(data.size())) return fail_status(outage_.load(), name());
  return inner_->upload(path, data);
}

Result<Bytes> FaultyCloud::download(const std::string& path) {
  // Size-dependent failure needs the size; peek at the inner file first.
  // (Real transfers fail mid-flight; here the request atomically fails.)
  auto inner_result = inner_->download(path);
  const std::size_t size =
      inner_result.is_ok() ? inner_result.value().size() : 0;
  if (should_fail(size)) return fail_status(outage_.load(), name());
  return inner_result;
}

Status FaultyCloud::create_dir(const std::string& path) {
  if (should_fail(0)) return fail_status(outage_.load(), name());
  return inner_->create_dir(path);
}

Result<std::vector<FileInfo>> FaultyCloud::list(const std::string& dir) {
  if (should_fail(0)) return fail_status(outage_.load(), name());
  return inner_->list(dir);
}

Status FaultyCloud::remove(const std::string& path) {
  if (should_fail(0)) return fail_status(outage_.load(), name());
  return inner_->remove(path);
}

void FaultyCloud::set_profile(FaultProfile profile) {
  std::lock_guard<std::mutex> lock(rng_mutex_);
  profile_ = profile;
}

}  // namespace unidrive::cloud
