#include "cloud/faulty_cloud.h"

#include <algorithm>

namespace unidrive::cloud {

bool FaultyCloud::draw(double probability) {
  if (probability <= 0.0) return false;
  std::lock_guard<std::mutex> lock(rng_mutex_);
  return rng_.next_double() < probability;
}

void FaultyCloud::maybe_hang() {
  double rate;
  Duration stall;
  {
    std::lock_guard<std::mutex> lock(rng_mutex_);
    rate = profile_.hang_rate;
    stall = profile_.hang_seconds;
  }
  if (stall <= 0 || !draw(rate)) return;
  hangs_.fetch_add(1);
  sleep_(stall);
}

bool FaultyCloud::should_fail(std::size_t payload_bytes) {
  requests_.fetch_add(1);
  maybe_hang();
  if (outage_.load()) {
    failures_.fetch_add(1);
    return true;
  }
  double p;
  double base;
  double per_mb;
  {
    std::lock_guard<std::mutex> lock(rng_mutex_);
    p = rng_.next_double();
    base = profile_.base_failure_rate;
    per_mb = profile_.per_mb_failure_rate;
  }
  const double mb = static_cast<double>(payload_bytes) / (1 << 20);
  const double fail_prob = std::min(1.0, base + per_mb * mb);
  if (p < fail_prob) {
    failures_.fetch_add(1);
    return true;
  }
  return false;
}

namespace {
Status fail_status(bool outage, const std::string& name) {
  return outage ? make_error(ErrorCode::kOutage, name + ": cloud outage")
                : make_error(ErrorCode::kUnavailable,
                             name + ": transient request failure");
}
}  // namespace

Status FaultyCloud::upload(const std::string& path, ByteSpan data) {
  if (should_fail(data.size())) return fail_status(outage_.load(), name());
  double torn_rate;
  {
    std::lock_guard<std::mutex> lock(rng_mutex_);
    torn_rate = profile_.torn_upload_rate;
  }
  if (!data.empty() && draw(torn_rate)) {
    // Mid-flight abort: a truncated prefix lands at the path, the client
    // sees a failure. Integrity checks (hash-verified decode, version/delta
    // consistency) must reject the garbage.
    torn_uploads_.fetch_add(1);
    failures_.fetch_add(1);
    (void)inner_->upload(path, data.subspan(0, data.size() / 2));
    return make_error(ErrorCode::kUnavailable,
                      name() + ": upload torn mid-flight");
  }
  return inner_->upload(path, data);
}

Result<Bytes> FaultyCloud::download(const std::string& path) {
  // Size-dependent failure needs the size; peek at the inner file first.
  // (Real transfers fail mid-flight; here the request atomically fails.)
  auto inner_result = inner_->download(path);
  const std::size_t size =
      inner_result.is_ok() ? inner_result.value().size() : 0;
  if (should_fail(size)) return fail_status(outage_.load(), name());
  return inner_result;
}

Status FaultyCloud::create_dir(const std::string& path) {
  if (should_fail(0)) return fail_status(outage_.load(), name());
  return inner_->create_dir(path);
}

Result<std::vector<FileInfo>> FaultyCloud::list(const std::string& dir) {
  if (should_fail(0)) return fail_status(outage_.load(), name());
  return inner_->list(dir);
}

Status FaultyCloud::remove(const std::string& path) {
  if (should_fail(0)) return fail_status(outage_.load(), name());
  return inner_->remove(path);
}

void FaultyCloud::set_profile(FaultProfile profile) {
  std::lock_guard<std::mutex> lock(rng_mutex_);
  profile_ = profile;
}

}  // namespace unidrive::cloud
