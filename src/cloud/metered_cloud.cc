#include "cloud/metered_cloud.h"

#include <utility>

namespace unidrive::cloud {

const char* request_area(const std::string& path) {
  if (path.rfind("/data", 0) == 0) return "data";
  if (path.rfind("/meta", 0) == 0) return "meta";
  if (path.rfind("/lock", 0) == 0) return "lock";
  return "other";
}

MeteredCloud::MeteredCloud(CloudPtr inner, obs::ObsPtr obs)
    : inner_(std::move(inner)),
      obs_(std::move(obs)),
      prefix_("cloud." + inner_->name() + ".") {}

void MeteredCloud::account(const char* verb, const std::string& path,
                           const Status& status, Duration elapsed) {
  obs_->metrics
      .counter(prefix_ + verb + "." + request_area(path) +
               (status.is_ok() ? ".ok" : ".err"))
      .add();
  obs_->metrics.histogram(prefix_ + verb + ".latency").observe(elapsed);
}

Status MeteredCloud::upload(const std::string& path, ByteSpan data) {
  const TimePoint t0 = obs_->clock().now();
  const Status status = inner_->upload(path, data);
  account("upload", path, status, obs_->clock().now() - t0);
  if (status.is_ok()) {
    obs_->metrics.counter(prefix_ + "bytes_up").add(data.size());
  }
  return status;
}

Result<Bytes> MeteredCloud::download(const std::string& path) {
  const TimePoint t0 = obs_->clock().now();
  auto result = inner_->download(path);
  account("download", path, result.status(), obs_->clock().now() - t0);
  if (result.is_ok()) {
    obs_->metrics.counter(prefix_ + "bytes_down").add(result.value().size());
  }
  return result;
}

Status MeteredCloud::create_dir(const std::string& path) {
  const TimePoint t0 = obs_->clock().now();
  const Status status = inner_->create_dir(path);
  account("create_dir", path, status, obs_->clock().now() - t0);
  return status;
}

Result<std::vector<FileInfo>> MeteredCloud::list(const std::string& dir) {
  const TimePoint t0 = obs_->clock().now();
  auto result = inner_->list(dir);
  account("list", dir, result.status(), obs_->clock().now() - t0);
  return result;
}

Status MeteredCloud::remove(const std::string& path) {
  const TimePoint t0 = obs_->clock().now();
  const Status status = inner_->remove(path);
  account("remove", path, status, obs_->clock().now() - t0);
  return status;
}

}  // namespace unidrive::cloud
