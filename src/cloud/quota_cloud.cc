#include "cloud/quota_cloud.h"

#include "cloud/path.h"

namespace unidrive::cloud {

Status QuotaCloud::check_quota(const std::string& normalized,
                               std::size_t bytes) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t used = 0;
  for (const auto& [p, s] : sizes_) {
    if (p != normalized) used += s;
  }
  if (used + bytes > quota_) {
    return make_error(ErrorCode::kQuotaExceeded, name() + ": quota exhausted");
  }
  return Status::ok();
}

void QuotaCloud::record_upload(const std::string& normalized,
                               std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  sizes_[normalized] = bytes;
}

void QuotaCloud::record_remove(const std::string& normalized) {
  std::lock_guard<std::mutex> lock(mutex_);
  sizes_.erase(normalized);
}

Status QuotaCloud::upload(const std::string& path, ByteSpan data) {
  const std::string norm = normalize_path(path);
  const Status quota = check_quota(norm, data.size());
  if (!quota.is_ok()) return quota;
  const Status status = inner_->upload(norm, data);
  if (status.is_ok()) record_upload(norm, data.size());
  return status;
}

Status QuotaCloud::remove(const std::string& path) {
  const std::string norm = normalize_path(path);
  const Status status = inner_->remove(norm);
  if (status.is_ok()) record_remove(norm);
  return status;
}

std::uint64_t QuotaCloud::used_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t used = 0;
  for (const auto& [p, s] : sizes_) used += s;
  return used;
}

}  // namespace unidrive::cloud
