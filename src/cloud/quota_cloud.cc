#include "cloud/quota_cloud.h"

#include "cloud/path.h"

namespace unidrive::cloud {

Status QuotaCloud::upload(const std::string& path, ByteSpan data) {
  const std::string norm = normalize_path(path);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t used = 0;
    for (const auto& [p, s] : sizes_) {
      if (p != norm) used += s;
    }
    if (used + data.size() > quota_) {
      return make_error(ErrorCode::kQuotaExceeded,
                        name() + ": quota exhausted");
    }
  }
  const Status status = inner_->upload(norm, data);
  if (status.is_ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    sizes_[norm] = data.size();
  }
  return status;
}

Status QuotaCloud::remove(const std::string& path) {
  const std::string norm = normalize_path(path);
  const Status status = inner_->remove(norm);
  if (status.is_ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    sizes_.erase(norm);
  }
  return status;
}

std::uint64_t QuotaCloud::used_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t used = 0;
  for (const auto& [p, s] : sizes_) used += s;
  return used;
}

}  // namespace unidrive::cloud
