// Slash-separated cloud path helpers (no filesystem semantics beyond that).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace unidrive::cloud {

// "/a/b/c" -> {"a", "b", "c"}. Empty components are dropped.
std::vector<std::string> split_path(std::string_view path);

// Normalizes to "/a/b/c" form (leading slash, no trailing slash, no empty
// components). The root is "/".
std::string normalize_path(std::string_view path);

// Parent of "/a/b/c" is "/a/b"; parent of "/a" and "/" is "/".
std::string parent_path(std::string_view path);

// Leaf name: basename("/a/b/c") == "c"; basename("/") == "".
std::string basename(std::string_view path);

// join("/a", "b") == "/a/b".
std::string join_path(std::string_view dir, std::string_view leaf);

}  // namespace unidrive::cloud
