// RetryingCloud / DeadlineCloud — the resilience decorators every
// cloud-facing call path goes through.
//
// RetryingCloud composes, around any CloudProvider:
//   - the RetryPolicy (common/retry.h): transient failures retried with
//     decorrelated-jitter backoff under per-attempt and total deadlines;
//   - the CloudHealthRegistry (cloud/health.h): every attempt is gated by
//     the cloud's circuit breaker and its outcome recorded. When the
//     breaker is open, calls fail instantly with kOutage ("circuit open")
//     so callers reroute to the remaining k-of-N clouds instead of burning
//     a retry cycle against a dead provider;
//   - deadline mapping: an attempt that exceeds the policy's
//     attempt_deadline is reported as kTimeout even if it eventually
//     returned OK (consumer clouds stall for minutes; the paper's hang
//     failures).
//
// DeadlineCloud is the standalone deadline-only wrapper for callers that
// want timeout mapping without retry or breaker (e.g. baselines).
//
// Both are thread-safe when the inner provider is.
#pragma once

#include <memory>
#include <mutex>

#include "cloud/health.h"
#include "cloud/provider.h"
#include "common/retry.h"
#include "obs/obs.h"

namespace unidrive::cloud {

// Maps calls that take longer than `deadline` to kTimeout. The inner call
// still runs to completion (the five REST verbs are synchronous and cannot
// be aborted mid-flight); the mapping makes the caller treat the result as
// failed, mirroring a client-side HTTP timeout whose transfer the server
// may still have applied.
class DeadlineCloud final : public CloudProvider {
 public:
  DeadlineCloud(CloudPtr inner, Duration deadline,
                Clock& clock = RealClock::instance())
      : inner_(std::move(inner)), deadline_(deadline), clock_(&clock) {}

  [[nodiscard]] CloudId id() const noexcept override { return inner_->id(); }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

  Status upload(const std::string& path, ByteSpan data) override;
  Result<Bytes> download(const std::string& path) override;
  Status create_dir(const std::string& path) override;
  Result<std::vector<FileInfo>> list(const std::string& dir) override;
  Status remove(const std::string& path) override;

 private:
  [[nodiscard]] Status check(TimePoint started, Status status) const;

  CloudPtr inner_;
  Duration deadline_;
  Clock* clock_;
};

class RetryingCloud final : public CloudProvider {
 public:
  RetryingCloud(CloudPtr inner, RetryPolicy policy,
                std::shared_ptr<CloudHealthRegistry> health = nullptr,
                Clock& clock = RealClock::instance(),
                SleepFn sleep = real_sleep(),
                Rng rng = Rng(0x52455452ULL),  // "RETR"
                obs::ObsPtr obs = nullptr)
      : inner_(std::move(inner)),
        policy_(policy),
        health_(std::move(health)),
        clock_(&clock),
        sleep_(std::move(sleep)),
        rng_(rng),
        obs_(std::move(obs)) {
    if (obs_) {
      // Resolved once: the retry loop then increments plain atomics.
      const std::string prefix = "retry." + inner_->name() + ".";
      attempts_ = &obs_->metrics.counter(prefix + "attempts");
      retries_ = &obs_->metrics.counter(prefix + "retries");
      transient_failures_ =
          &obs_->metrics.counter(prefix + "transient_failures");
      backoff_hist_ = &obs_->metrics.histogram(prefix + "backoff");
    }
  }

  [[nodiscard]] CloudId id() const noexcept override { return inner_->id(); }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

  Status upload(const std::string& path, ByteSpan data) override;
  Result<Bytes> download(const std::string& path) override;
  Status create_dir(const std::string& path) override;
  Result<std::vector<FileInfo>> list(const std::string& dir) override;
  Status remove(const std::string& path) override;

  [[nodiscard]] const RetryPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] const std::shared_ptr<CloudHealthRegistry>& health()
      const noexcept {
    return health_;
  }
  [[nodiscard]] const CloudPtr& inner() const noexcept { return inner_; }

 private:
  // One policy-driven call: breaker gate, attempt timing, health recording.
  Status call(const std::function<Status()>& op);
  template <typename T>
  Result<T> call_result(const std::function<Result<T>()>& op);

  CloudPtr inner_;
  RetryPolicy policy_;
  std::shared_ptr<CloudHealthRegistry> health_;
  Clock* clock_;
  SleepFn sleep_;
  std::mutex rng_mutex_;
  Rng rng_;
  obs::ObsPtr obs_;
  // Cached instruments (owned by obs_->metrics); null when obs_ is null.
  obs::Counter* attempts_ = nullptr;
  obs::Counter* retries_ = nullptr;
  obs::Counter* transient_failures_ = nullptr;
  obs::Histogram* backoff_hist_ = nullptr;
};

// Wraps every cloud of a multi-cloud in a RetryingCloud sharing one policy
// and one health registry — the one-liner the client uses. When `obs` is
// non-null each cloud is additionally metered (Retrying(Metered(raw))), so
// the per-attempt request traffic lands in the shared metrics registry.
MultiCloud guard_clouds(const MultiCloud& clouds, const RetryPolicy& policy,
                        std::shared_ptr<CloudHealthRegistry> health,
                        Clock& clock, SleepFn sleep, Rng& rng,
                        obs::ObsPtr obs = nullptr);

}  // namespace unidrive::cloud
