#include "cloud/health.h"

#include <algorithm>

namespace unidrive::cloud {

namespace {
// EWMA weight for per-request latency; matches the throughput monitor's
// "recent transfers dominate" philosophy.
constexpr double kLatencyAlpha = 0.3;

bool is_availability_failure(ErrorCode code) noexcept {
  return code == ErrorCode::kUnavailable || code == ErrorCode::kTimeout ||
         code == ErrorCode::kOutage;
}
}  // namespace

const char* breaker_state_name(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

bool CloudHealthRegistry::allow_request(CloudId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[id];
  switch (e.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (clock_->now() - e.opened_at >= config_.open_duration) {
        e.state = BreakerState::kHalfOpen;
        e.half_open_admitted = 1;
        e.half_open_successes = 0;
        count_transition(id, "half_open");
        return true;  // this caller is the probe
      }
      count_transition(id, "rejected");
      return false;
    case BreakerState::kHalfOpen:
      if (e.half_open_admitted < config_.half_open_probes) {
        ++e.half_open_admitted;
        return true;
      }
      count_transition(id, "rejected");
      return false;
  }
  return true;
}

bool CloudHealthRegistry::admissible(CloudId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) return true;
  const Entry& e = it->second;
  switch (e.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      return clock_->now() - e.opened_at >= config_.open_duration;
    case BreakerState::kHalfOpen:
      return e.half_open_admitted < config_.half_open_probes;
  }
  return true;
}

void CloudHealthRegistry::push_outcome(Entry& e, bool failure,
                                       Duration latency) {
  e.window.push_back(failure);
  if (failure) ++e.window_failures;
  while (e.window.size() > config_.window_size) {
    if (e.window.front()) --e.window_failures;
    e.window.pop_front();
  }
  if (latency > 0) {
    e.latency_ewma = e.has_latency
                         ? kLatencyAlpha * latency +
                               (1 - kLatencyAlpha) * e.latency_ewma
                         : latency;
    e.has_latency = true;
  }
}

bool CloudHealthRegistry::should_trip(const Entry& e) const {
  if (e.consecutive_failures >= config_.consecutive_failures_to_open) {
    return true;
  }
  return e.window.size() >= config_.min_window_samples &&
         static_cast<double>(e.window_failures) >=
             config_.window_failure_ratio_to_open *
                 static_cast<double>(e.window.size());
}

void CloudHealthRegistry::trip(CloudId id, Entry& e) {
  e.state = BreakerState::kOpen;
  e.opened_at = clock_->now();
  e.half_open_admitted = 0;
  e.half_open_successes = 0;
  count_transition(id, "opened");
}

void CloudHealthRegistry::count_transition(CloudId id,
                                           const char* transition) {
  if (!obs_) return;
  obs_->metrics
      .counter("breaker.cloud" + std::to_string(id) + "." + transition)
      .add();
}

void CloudHealthRegistry::record_success(CloudId id, Duration latency) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[id];
  ++e.successes;
  e.consecutive_failures = 0;
  push_outcome(e, /*failure=*/false, latency);
  if (e.state == BreakerState::kHalfOpen &&
      ++e.half_open_successes >= config_.probe_successes_to_close) {
    e.state = BreakerState::kClosed;
    // Fresh start: the pre-outage window must not trip the breaker again
    // before the recovered cloud had a chance to prove itself.
    e.window.clear();
    e.window_failures = 0;
    count_transition(id, "closed");
  }
  // A straggler success from a request admitted before the trip does not
  // close an open breaker — only probes do.
}

void CloudHealthRegistry::record_failure(CloudId id, Duration latency) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[id];
  ++e.failures;
  ++e.consecutive_failures;
  push_outcome(e, /*failure=*/true, latency);
  if (e.state == BreakerState::kHalfOpen) {
    trip(id, e);  // the probe failed: back to open, timer restarts
  } else if (e.state == BreakerState::kClosed && should_trip(e)) {
    trip(id, e);
  }
}

void CloudHealthRegistry::record(CloudId id, const Status& status,
                                 Duration latency) {
  if (status.is_ok() || !is_availability_failure(status.code())) {
    record_success(id, latency);
  } else {
    record_failure(id, latency);
  }
}

BreakerState CloudHealthRegistry::state(CloudId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(id);
  return it == entries_.end() ? BreakerState::kClosed : it->second.state;
}

CloudHealthSnapshot CloudHealthRegistry::make_snapshot(CloudId id,
                                                       const Entry& e) const {
  CloudHealthSnapshot s;
  s.id = id;
  s.state = e.state;
  s.successes = e.successes;
  s.failures = e.failures;
  s.consecutive_failures = e.consecutive_failures;
  s.window_failure_ratio =
      e.window.empty() ? 0.0
                       : static_cast<double>(e.window_failures) /
                             static_cast<double>(e.window.size());
  s.latency_ewma = e.latency_ewma;
  return s;
}

CloudHealthSnapshot CloudHealthRegistry::snapshot(CloudId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) {
    CloudHealthSnapshot s;
    s.id = id;
    return s;
  }
  return make_snapshot(id, it->second);
}

std::vector<CloudHealthSnapshot> CloudHealthRegistry::snapshot_all() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CloudHealthSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [id, e] : entries_) out.push_back(make_snapshot(id, e));
  return out;
}

bool CloudHealthRegistry::all_closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::all_of(entries_.begin(), entries_.end(), [](const auto& kv) {
    return kv.second.state == BreakerState::kClosed;
  });
}

void CloudHealthRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

}  // namespace unidrive::cloud
