// FaultyCloud — failure-injecting decorator around any CloudProvider.
//
// Models the paper's measured failure behaviour: per-request transient
// failures whose probability grows with transfer size (Figure 4), plus
// whole-cloud outages (reliability experiments, Figure 14), torn uploads
// (a request aborts mid-flight after part of the payload landed) and hangs
// (a request stalls long enough to blow any deadline). Deterministic under
// a seeded RNG; hangs go through an injectable sleep so tests advance a
// ManualClock instead of waiting.
#pragma once

#include <atomic>
#include <mutex>

#include "cloud/provider.h"
#include "common/retry.h"
#include "common/rng.h"

namespace unidrive::cloud {

struct FaultProfile {
  // P(fail) for a request moving `bytes` payload:
  //   min(1, base_failure_rate + per_mb_failure_rate * bytes / 1 MiB)
  double base_failure_rate = 0.0;
  double per_mb_failure_rate = 0.0;
  // Metadata ops (list/create/delete) use base_failure_rate only.

  // Torn upload: with this probability an upload writes a truncated prefix
  // of the payload to the inner cloud and then reports kUnavailable — the
  // client believes it failed while garbage sits at the path.
  double torn_upload_rate = 0.0;
  // Hang: with this probability a request stalls `hang_seconds` (via the
  // injected sleep) before proceeding; deadline wrappers turn the stall
  // into kTimeout.
  double hang_rate = 0.0;
  Duration hang_seconds = 0.0;

  // --- silent defects (the scrubber's prey) -------------------------------
  // Neither produces an error: the client believes the upload succeeded.
  // Bit-rot: the stored bytes differ from the payload (one byte flipped).
  double bitrot_rate = 0.0;
  // Block loss: the upload reports OK but nothing is stored — models a
  // provider losing the object after the fact, compressed into the write.
  double block_loss_rate = 0.0;
};

// One request's worth of injected faults, drawn up front so the blocking
// and async surfaces share the exact same decision logic and counters.
struct FaultDecision {
  bool hang = false;          // stall hang_seconds before proceeding
  Duration hang_seconds = 0;
  bool fail = false;          // report fail_status(outage) and stop
  bool outage = false;        // the failure is a whole-cloud outage
  bool torn = false;          // upload only: write half, report kUnavailable
  bool bitrot = false;        // upload only: store corrupted bytes, report OK
  bool drop = false;          // upload only: store nothing, report OK
};

class FaultyCloud final : public CloudProvider {
 public:
  FaultyCloud(CloudPtr inner, FaultProfile profile, std::uint64_t seed,
              SleepFn sleep = real_sleep())
      : inner_(std::move(inner)),
        profile_(profile),
        rng_(seed),
        sleep_(std::move(sleep)) {}

  [[nodiscard]] CloudId id() const noexcept override { return inner_->id(); }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

  Status upload(const std::string& path, ByteSpan data) override;
  Result<Bytes> download(const std::string& path) override;
  Status create_dir(const std::string& path) override;
  Result<std::vector<FileInfo>> list(const std::string& dir) override;
  Status remove(const std::string& path) override;

  // Complete outage: every request fails with kOutage until restored.
  void set_outage(bool down) noexcept { outage_.store(down); }
  [[nodiscard]] bool in_outage() const noexcept { return outage_.load(); }

  void set_profile(FaultProfile profile);

  // Counters for failure-rate assertions in tests/benches.
  [[nodiscard]] std::uint64_t requests() const noexcept { return requests_.load(); }
  [[nodiscard]] std::uint64_t failures() const noexcept { return failures_.load(); }
  [[nodiscard]] std::uint64_t torn_uploads() const noexcept {
    return torn_uploads_.load();
  }
  [[nodiscard]] std::uint64_t hangs() const noexcept { return hangs_.load(); }
  [[nodiscard]] std::uint64_t bitrots() const noexcept {
    return bitrots_.load();
  }
  [[nodiscard]] std::uint64_t lost_blocks() const noexcept {
    return lost_blocks_.load();
  }

  // Deterministic silent-defect injection for tests/benches: corrupt or
  // delete an object ALREADY stored on the inner cloud, behind the
  // provider's back (no decision draw, but counted like the probabilistic
  // variants). rot flips the middle byte, preserving the size.
  Status rot_stored(const std::string& path);
  Status drop_stored(const std::string& path);

  // Draws every fault for one request (hang, outage/size-dependent failure,
  // torn upload) and updates the counters. The caller then acts on the
  // decision: the blocking verbs sleep/fail inline, the async passthrough
  // (cloud/async.h) schedules the same effects without blocking its caller.
  // Note: an outage request hangs too — a dead endpoint times out, it does
  // not answer fast.
  [[nodiscard]] FaultDecision draw_decision(std::size_t payload_bytes,
                                            bool is_upload);

  // The injected sleep, shared with the async passthrough so gated/virtual
  // hang semantics are identical on both surfaces.
  [[nodiscard]] const SleepFn& sleep_fn() const noexcept { return sleep_; }
  [[nodiscard]] const CloudPtr& inner() const noexcept { return inner_; }

 private:

  CloudPtr inner_;
  FaultProfile profile_;
  std::atomic<bool> outage_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> torn_uploads_{0};
  std::atomic<std::uint64_t> hangs_{0};
  std::atomic<std::uint64_t> bitrots_{0};
  std::atomic<std::uint64_t> lost_blocks_{0};
  std::mutex rng_mutex_;
  Rng rng_;
  SleepFn sleep_;
};

}  // namespace unidrive::cloud
