#include "cloud/retrying_cloud.h"

#include <optional>
#include <utility>

#include "cloud/metered_cloud.h"

namespace unidrive::cloud {

// --- DeadlineCloud ----------------------------------------------------------

Status DeadlineCloud::check(TimePoint started, Status status) const {
  if (status.is_ok() && deadline_ > 0 &&
      clock_->now() - started > deadline_) {
    return make_error(ErrorCode::kTimeout,
                      name() + ": call exceeded deadline");
  }
  return status;
}

Status DeadlineCloud::upload(const std::string& path, ByteSpan data) {
  const TimePoint t0 = clock_->now();
  return check(t0, inner_->upload(path, data));
}

Result<Bytes> DeadlineCloud::download(const std::string& path) {
  const TimePoint t0 = clock_->now();
  auto result = inner_->download(path);
  const Status status = check(t0, result.status());
  if (!status.is_ok()) return status;
  return result;
}

Status DeadlineCloud::create_dir(const std::string& path) {
  const TimePoint t0 = clock_->now();
  return check(t0, inner_->create_dir(path));
}

Result<std::vector<FileInfo>> DeadlineCloud::list(const std::string& dir) {
  const TimePoint t0 = clock_->now();
  auto result = inner_->list(dir);
  const Status status = check(t0, result.status());
  if (!status.is_ok()) return status;
  return result;
}

Status DeadlineCloud::remove(const std::string& path) {
  const TimePoint t0 = clock_->now();
  return check(t0, inner_->remove(path));
}

// --- RetryingCloud ----------------------------------------------------------

Status RetryingCloud::call(const std::function<Status()>& op) {
  RetryEnv env;
  env.clock = clock_;
  env.sleep = sleep_;
  {
    // Concurrent callers each retry with an independent jitter stream.
    std::lock_guard<std::mutex> lock(rng_mutex_);
    env.rng = rng_.fork();
  }
  if (obs_) {
    env.on_attempt = [this](int attempt, const Status& s) {
      attempts_->add();
      if (attempt > 1) retries_->add();
      if (!s.is_ok() && s.is_transient()) transient_failures_->add();
    };
    env.on_backoff = [this](Duration pause) {
      backoff_hist_->observe(pause);
    };
  }
  return retry_call(policy_, env, [&]() -> Status {
    if (health_ && !health_->allow_request(id())) {
      // kOutage is deliberately non-transient: retry_call returns at once
      // instead of spinning its backoff against an open breaker.
      return make_error(ErrorCode::kOutage, name() + ": circuit open");
    }
    const TimePoint t0 = clock_->now();
    Status status = op();
    const Duration elapsed = clock_->now() - t0;
    if (status.is_ok() && policy_.attempt_deadline > 0 &&
        elapsed > policy_.attempt_deadline) {
      status = make_error(ErrorCode::kTimeout,
                          name() + ": attempt exceeded deadline");
    }
    if (health_) health_->record(id(), status, elapsed);
    return status;
  });
}

template <typename T>
Result<T> RetryingCloud::call_result(const std::function<Result<T>()>& op) {
  std::optional<Result<T>> out;
  const Status status = call([&]() -> Status {
    out.emplace(op());
    return out->status();
  });
  // `out` is empty when the breaker refused the very first attempt.
  if (!status.is_ok() || !out.has_value()) return status;
  return *std::move(out);
}

Status RetryingCloud::upload(const std::string& path, ByteSpan data) {
  return call([&] { return inner_->upload(path, data); });
}

Result<Bytes> RetryingCloud::download(const std::string& path) {
  return call_result<Bytes>([&] { return inner_->download(path); });
}

Status RetryingCloud::create_dir(const std::string& path) {
  return call([&] { return inner_->create_dir(path); });
}

Result<std::vector<FileInfo>> RetryingCloud::list(const std::string& dir) {
  return call_result<std::vector<FileInfo>>(
      [&] { return inner_->list(dir); });
}

Status RetryingCloud::remove(const std::string& path) {
  return call([&] { return inner_->remove(path); });
}

MultiCloud guard_clouds(const MultiCloud& clouds, const RetryPolicy& policy,
                        std::shared_ptr<CloudHealthRegistry> health,
                        Clock& clock, SleepFn sleep, Rng& rng,
                        obs::ObsPtr obs) {
  MultiCloud guarded;
  guarded.reserve(clouds.size());
  for (const CloudPtr& c : clouds) {
    const CloudPtr inner =
        obs ? std::make_shared<MeteredCloud>(c, obs) : c;
    guarded.push_back(std::make_shared<RetryingCloud>(
        inner, policy, health, clock, sleep, rng.fork(), obs));
  }
  return guarded;
}

}  // namespace unidrive::cloud
