#include "cloud/async.h"

#include <atomic>
#include <type_traits>
#include <utility>

#include "cloud/faulty_cloud.h"
#include "cloud/latent_cloud.h"
#include "cloud/metered_cloud.h"
#include "cloud/path.h"
#include "cloud/quota_cloud.h"
#include "cloud/retrying_cloud.h"

namespace unidrive::cloud {

// --- AsyncOpState / AsyncHandle ---------------------------------------------

namespace detail {

bool AsyncOpState::try_begin() {
  std::lock_guard<std::mutex> lock(mu_);
  if (phase_ != Phase::kPending) return false;
  phase_ = Phase::kRunning;
  runner_ = std::this_thread::get_id();
  on_cancel_ = nullptr;  // can no longer be needed; drop captured refs
  return true;
}

void AsyncOpState::finish() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    phase_ = Phase::kDone;
  }
  cv_.notify_all();
}

bool AsyncOpState::cancel() {
  std::unique_lock<std::mutex> lock(mu_);
  if (phase_ == Phase::kPending) {
    phase_ = Phase::kCancelled;
    std::function<void()> hook = std::move(on_cancel_);
    on_cancel_ = nullptr;
    lock.unlock();
    if (hook) hook();
    return true;
  }
  if (phase_ == Phase::kRunning && runner_ != std::this_thread::get_id()) {
    cv_.wait(lock, [this] { return phase_ != Phase::kRunning; });
  }
  return false;
}

bool AsyncOpState::set_on_cancel(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (phase_ == Phase::kCancelled) return false;
  on_cancel_ = std::move(fn);
  return true;
}

}  // namespace detail

bool AsyncHandle::cancel() {
  if (!state_) return false;
  return state_->cancel();
}

// --- shared op plumbing -----------------------------------------------------

namespace {

using detail::AsyncOpState;
using OpStatePtr = std::shared_ptr<AsyncOpState>;

// Invokes `done(value)` under the op-state guard: a no-op when the op was
// cancelled, and cancellers block while it runs.
template <typename Cb, typename V>
void complete(const OpStatePtr& state, const Cb& done, V value) {
  if (!state->try_begin()) return;
  done(std::move(value));
  state->finish();
}

// Defers an already-known outcome onto the I/O pool so the completion never
// runs on the caller's stack (invariant 1 in async.h).
template <typename Cb, typename V>
AsyncHandle defer_result(const AsyncContext& ctx, Cb done, V value) {
  auto state = std::make_shared<AsyncOpState>();
  ctx.io->submit(
      [state, done = std::move(done), value = std::move(value)]() mutable {
        complete(state, done, std::move(value));
      });
  return AsyncHandle(state);
}

// Links a composite op (retry chain, latency chain, fault chain) to its
// cancel hook: cancelling the outer handle cancels whatever inner step —
// wheel timer or inner-cloud handle — is currently armed, and stops further
// steps from being armed.
struct OpChain {
  std::mutex mu;
  bool cancelled = false;
  AsyncHandle inner;
  TimerWheel::TimerId timer = 0;
};

using ChainPtr = std::shared_ptr<OpChain>;

ChainPtr make_chain(const OpStatePtr& state, TimerWheel* wheel) {
  auto chain = std::make_shared<OpChain>();
  state->set_on_cancel([chain, wheel] {
    AsyncHandle inner;
    TimerWheel::TimerId timer = 0;
    {
      std::lock_guard<std::mutex> lock(chain->mu);
      chain->cancelled = true;
      inner = std::move(chain->inner);
      chain->inner = AsyncHandle();
      timer = chain->timer;
      chain->timer = 0;
    }
    // Outside the chain lock: either cancel may block while the step it is
    // cancelling runs, and that step takes the chain lock itself.
    if (timer != 0 && wheel != nullptr) wheel->cancel(timer);
    inner.cancel();
  });
  return chain;
}

// Arms an inner-cloud step. False = the op was cancelled first; the step was
// not launched.
template <typename Launch>
bool chain_step(const ChainPtr& chain, Launch&& launch) {
  std::lock_guard<std::mutex> lock(chain->mu);
  if (chain->cancelled) return false;
  chain->timer = 0;
  chain->inner = launch();
  return true;
}

// Runs `fn` after `delay` on the wheel (immediately, in place, when the
// delay is zero). False = the op was cancelled first.
template <typename Fn>
bool chain_delay(const ChainPtr& chain, TimerWheel* wheel, Duration delay,
                 Fn&& fn) {
  {
    std::lock_guard<std::mutex> lock(chain->mu);
    if (chain->cancelled) return false;
    if (delay > 0) {
      chain->timer =
          wheel->schedule(delay, [chain, fn = std::forward<Fn>(fn)]() mutable {
            {
              std::lock_guard<std::mutex> lock(chain->mu);
              if (chain->cancelled) return;
              chain->timer = 0;
            }
            fn();
          });
      return true;
    }
  }
  fn();
  return true;
}

const Status& status_of(const Status& s) { return s; }
template <typename T>
Status status_of(const Result<T>& r) {
  return r.status();
}

template <typename R>
R error_result(Status s) {
  if constexpr (std::is_same_v<R, Status>) {
    return s;
  } else {
    return R(std::move(s));
  }
}

}  // namespace

// --- SyncAdapter ------------------------------------------------------------

SyncAdapter::SyncAdapter(CloudPtr inner, AsyncContext ctx)
    : inner_(std::move(inner)), ctx_(std::move(ctx)) {}

template <typename R>
AsyncHandle SyncAdapter::run(std::function<R(CloudProvider&)> op,
                             std::function<void(R)> done) {
  auto state = std::make_shared<AsyncOpState>();
  ctx_.io->submit([state, inner = inner_, active = active_, obs = ctx_.obs,
                   op = std::move(op), done = std::move(done)] {
    if (!state->try_begin()) return;  // cancelled while queued
    const auto now_active = active->n.fetch_add(1) + 1;
    auto peak = active->peak.load();
    while (now_active > peak &&
           !active->peak.compare_exchange_weak(peak, now_active)) {
    }
    obs::set_gauge(obs.get(), "async.io.rpcs_active",
                   static_cast<double>(now_active));
    obs::set_gauge(obs.get(), "async.io.rpcs_active_peak",
                   static_cast<double>(active->peak.load()));
    R result = op(*inner);
    obs::set_gauge(obs.get(), "async.io.rpcs_active",
                   static_cast<double>(active->n.fetch_sub(1) - 1));
    done(std::move(result));
    state->finish();
  });
  return AsyncHandle(state);
}

AsyncHandle SyncAdapter::upload_async(const std::string& path, ByteSpan data,
                                      StatusCb done) {
  return run<Status>(
      [path, data](CloudProvider& c) { return c.upload(path, data); },
      std::move(done));
}

AsyncHandle SyncAdapter::download_async(const std::string& path,
                                        BytesCb done) {
  return run<Result<Bytes>>(
      [path](CloudProvider& c) { return c.download(path); }, std::move(done));
}

AsyncHandle SyncAdapter::create_dir_async(const std::string& path,
                                          StatusCb done) {
  return run<Status>([path](CloudProvider& c) { return c.create_dir(path); },
                     std::move(done));
}

AsyncHandle SyncAdapter::list_async(const std::string& dir, ListCb done) {
  return run<Result<std::vector<FileInfo>>>(
      [dir](CloudProvider& c) { return c.list(dir); }, std::move(done));
}

AsyncHandle SyncAdapter::remove_async(const std::string& path, StatusCb done) {
  return run<Status>([path](CloudProvider& c) { return c.remove(path); },
                     std::move(done));
}

// --- native async decorators ------------------------------------------------

namespace {

// Same counters/histograms as MeteredCloud, recorded from the completion.
// The closures are self-contained (no back-pointer to the decorator), so
// in-flight ops never dangle even if the decorator is destroyed first.
class AsyncMeteredCloud final : public AsyncCloud {
 public:
  AsyncMeteredCloud(AsyncCloudPtr inner, obs::ObsPtr obs)
      : inner_(std::move(inner)),
        obs_(std::move(obs)),
        prefix_("cloud." + inner_->name() + ".") {}

  [[nodiscard]] CloudId id() const noexcept override { return inner_->id(); }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

  AsyncHandle upload_async(const std::string& path, ByteSpan data,
                           StatusCb done) override {
    const TimePoint t0 = obs_->clock().now();
    return inner_->upload_async(
        path, data,
        [obs = obs_, prefix = prefix_, path, t0, size = data.size(),
         done = std::move(done)](Status s) {
          account(obs, prefix, "upload", path, s, obs->clock().now() - t0);
          if (s.is_ok()) {
            obs->metrics.counter(prefix + "bytes_up").add(size);
          }
          done(std::move(s));
        });
  }

  AsyncHandle download_async(const std::string& path, BytesCb done) override {
    const TimePoint t0 = obs_->clock().now();
    return inner_->download_async(
        path, [obs = obs_, prefix = prefix_, path, t0,
               done = std::move(done)](Result<Bytes> r) {
          account(obs, prefix, "download", path, r.status(),
                  obs->clock().now() - t0);
          if (r.is_ok()) {
            obs->metrics.counter(prefix + "bytes_down").add(r.value().size());
          }
          done(std::move(r));
        });
  }

  AsyncHandle create_dir_async(const std::string& path,
                               StatusCb done) override {
    const TimePoint t0 = obs_->clock().now();
    return inner_->create_dir_async(
        path, [obs = obs_, prefix = prefix_, path, t0,
               done = std::move(done)](Status s) {
          account(obs, prefix, "create_dir", path, s, obs->clock().now() - t0);
          done(std::move(s));
        });
  }

  AsyncHandle list_async(const std::string& dir, ListCb done) override {
    const TimePoint t0 = obs_->clock().now();
    return inner_->list_async(
        dir, [obs = obs_, prefix = prefix_, dir, t0,
              done = std::move(done)](Result<std::vector<FileInfo>> r) {
          account(obs, prefix, "list", dir, r.status(),
                  obs->clock().now() - t0);
          done(std::move(r));
        });
  }

  AsyncHandle remove_async(const std::string& path, StatusCb done) override {
    const TimePoint t0 = obs_->clock().now();
    return inner_->remove_async(
        path, [obs = obs_, prefix = prefix_, path, t0,
               done = std::move(done)](Status s) {
          account(obs, prefix, "remove", path, s, obs->clock().now() - t0);
          done(std::move(s));
        });
  }

 private:
  static void account(const obs::ObsPtr& obs, const std::string& prefix,
                      const char* verb, const std::string& path,
                      const Status& status, Duration elapsed) {
    obs->metrics
        .counter(prefix + verb + "." + request_area(path) +
                 (status.is_ok() ? ".ok" : ".err"))
        .add();
    obs->metrics.histogram(prefix + verb + ".latency").observe(elapsed);
  }

  AsyncCloudPtr inner_;
  obs::ObsPtr obs_;      // never null
  std::string prefix_;   // "cloud.<name>."
};

// Shares quota accounting with the blocking QuotaCloud, so async uploads and
// blocking metadata writes charge the same budget.
class AsyncQuotaCloud final : public AsyncCloud {
 public:
  AsyncQuotaCloud(std::shared_ptr<QuotaCloud> quota, AsyncCloudPtr inner,
                  AsyncContext ctx)
      : quota_(std::move(quota)),
        inner_(std::move(inner)),
        ctx_(std::move(ctx)) {}

  [[nodiscard]] CloudId id() const noexcept override { return quota_->id(); }
  [[nodiscard]] std::string name() const override { return quota_->name(); }

  AsyncHandle upload_async(const std::string& path, ByteSpan data,
                           StatusCb done) override {
    const std::string norm = normalize_path(path);
    const Status quota = quota_->check_quota(norm, data.size());
    if (!quota.is_ok()) return defer_result(ctx_, std::move(done), quota);
    return inner_->upload_async(
        norm, data,
        [quota = quota_, norm, size = data.size(),
         done = std::move(done)](Status s) {
          if (s.is_ok()) quota->record_upload(norm, size);
          done(std::move(s));
        });
  }

  AsyncHandle download_async(const std::string& path, BytesCb done) override {
    return inner_->download_async(path, std::move(done));
  }

  AsyncHandle create_dir_async(const std::string& path,
                               StatusCb done) override {
    return inner_->create_dir_async(path, std::move(done));
  }

  AsyncHandle list_async(const std::string& dir, ListCb done) override {
    return inner_->list_async(dir, std::move(done));
  }

  AsyncHandle remove_async(const std::string& path, StatusCb done) override {
    const std::string norm = normalize_path(path);
    return inner_->remove_async(
        norm, [quota = quota_, norm, done = std::move(done)](Status s) {
          if (s.is_ok()) quota->record_remove(norm);
          done(std::move(s));
        });
  }

 private:
  std::shared_ptr<QuotaCloud> quota_;
  AsyncCloudPtr inner_;
  AsyncContext ctx_;
};

Status fault_status(bool outage, const std::string& name) {
  return outage ? make_error(ErrorCode::kOutage, name + ": cloud outage")
                : make_error(ErrorCode::kUnavailable,
                             name + ": transient request failure");
}

// Injects the blocking FaultyCloud's decisions (same RNG stream, same
// counters) on the async surface. Hangs run the injected sleep on the I/O
// pool — a hung RPC legitimately pins an I/O thread, and gated/virtual
// sleeps keep their test semantics — never on the wheel, whose callbacks
// must not block.
class AsyncFaultyCloud final : public AsyncCloud {
 public:
  AsyncFaultyCloud(std::shared_ptr<FaultyCloud> faulty, AsyncCloudPtr inner,
                   AsyncContext ctx)
      : faulty_(std::move(faulty)),
        inner_(std::move(inner)),
        ctx_(std::move(ctx)) {}

  [[nodiscard]] CloudId id() const noexcept override { return faulty_->id(); }
  [[nodiscard]] std::string name() const override { return faulty_->name(); }

  AsyncHandle upload_async(const std::string& path, ByteSpan data,
                           StatusCb done) override {
    const FaultDecision d = faulty_->draw_decision(data.size(),
                                                   /*is_upload=*/true);
    auto state = std::make_shared<AsyncOpState>();
    auto chain = make_chain(state, ctx_.wheel);
    auto proceed = [name = faulty_->name(), inner = inner_, chain, state,
                    path, data, done = std::move(done), d] {
      if (d.fail) {
        complete(state, done, fault_status(d.outage, name));
        return;
      }
      if (d.torn) {
        // Mid-flight abort: the truncated prefix lands, the client sees a
        // failure (same garbage the blocking path leaves behind).
        chain_step(chain, [&] {
          return inner->upload_async(
              path, data.subspan(0, data.size() / 2),
              [state, done, name](Status) {
                complete(state, done,
                         make_error(ErrorCode::kUnavailable,
                                    name + ": upload torn mid-flight"));
              });
        });
        return;
      }
      if (d.drop) {
        // Silently lost: nothing stored, the client sees success.
        complete(state, done, Status::ok());
        return;
      }
      if (d.bitrot) {
        // Corrupted at rest: one flipped byte lands, the client sees
        // success. The rotted buffer rides in the completion closure
        // (upload invariant 3: the span must outlive the request).
        auto rotted = std::make_shared<Bytes>(data.begin(), data.end());
        if (!rotted->empty()) (*rotted)[rotted->size() / 2] ^= 0x01;
        chain_step(chain, [&] {
          return inner->upload_async(path, ByteSpan(*rotted),
                                     [state, done, rotted](Status s) {
                                       complete(state, done, std::move(s));
                                     });
        });
        return;
      }
      chain_step(chain, [&] {
        return inner->upload_async(path, data, [state, done](Status s) {
          complete(state, done, std::move(s));
        });
      });
    };
    dispatch(d, std::move(proceed));
    return AsyncHandle(state);
  }

  AsyncHandle download_async(const std::string& path, BytesCb done) override {
    auto state = std::make_shared<AsyncOpState>();
    auto chain = make_chain(state, ctx_.wheel);
    // Size-dependent failure needs the size: fetch from the inner cloud
    // first, draw in the completion (mirrors the blocking verb).
    chain_step(chain, [&] {
      return inner_->download_async(
          path, [faulty = faulty_, io = ctx_.io, state,
                 done = std::move(done)](Result<Bytes> r) {
            const std::size_t size = r.is_ok() ? r.value().size() : 0;
            const FaultDecision d =
                faulty->draw_decision(size, /*is_upload=*/false);
            auto settle = [name = faulty->name(), state, done,
                           r = std::move(r), d]() mutable {
              if (d.fail) {
                complete(state, done,
                         Result<Bytes>(fault_status(d.outage, name)));
              } else {
                complete(state, done, std::move(r));
              }
            };
            if (d.hang) {
              io->submit([sleep = faulty->sleep_fn(), stall = d.hang_seconds,
                          settle = std::move(settle)]() mutable {
                sleep(stall);
                settle();
              });
            } else {
              settle();
            }
          });
    });
    return AsyncHandle(state);
  }

  AsyncHandle create_dir_async(const std::string& path,
                               StatusCb done) override {
    return meta_op(std::move(done), [path](AsyncCloud& c, StatusCb cb) {
      return c.create_dir_async(path, std::move(cb));
    });
  }

  AsyncHandle list_async(const std::string& dir, ListCb done) override {
    const FaultDecision d = faulty_->draw_decision(0, /*is_upload=*/false);
    auto state = std::make_shared<AsyncOpState>();
    auto chain = make_chain(state, ctx_.wheel);
    auto proceed = [name = faulty_->name(), inner = inner_, chain, state, dir,
                    done = std::move(done), d] {
      if (d.fail) {
        complete(state, done,
                 Result<std::vector<FileInfo>>(fault_status(d.outage, name)));
        return;
      }
      chain_step(chain, [&] {
        return inner->list_async(
            dir, [state, done](Result<std::vector<FileInfo>> r) {
              complete(state, done, std::move(r));
            });
      });
    };
    dispatch(d, std::move(proceed));
    return AsyncHandle(state);
  }

  AsyncHandle remove_async(const std::string& path, StatusCb done) override {
    return meta_op(std::move(done), [path](AsyncCloud& c, StatusCb cb) {
      return c.remove_async(path, std::move(cb));
    });
  }

 private:
  // Shared shape of the Status-returning metadata verbs.
  template <typename Launch>
  AsyncHandle meta_op(StatusCb done, Launch launch) {
    const FaultDecision d = faulty_->draw_decision(0, /*is_upload=*/false);
    auto state = std::make_shared<AsyncOpState>();
    auto chain = make_chain(state, ctx_.wheel);
    auto proceed = [name = faulty_->name(), inner = inner_, chain, state,
                    done = std::move(done), launch = std::move(launch), d] {
      if (d.fail) {
        complete(state, done, fault_status(d.outage, name));
        return;
      }
      chain_step(chain, [&] {
        return launch(*inner, [state, done](Status s) {
          complete(state, done, std::move(s));
        });
      });
    };
    dispatch(d, std::move(proceed));
    return AsyncHandle(state);
  }

  // Runs `proceed` per the decision: after the injected hang (on the I/O
  // pool), deferred (fail paths must not complete on the caller's stack),
  // or in place when it only launches an inner op (which defers itself).
  template <typename Fn>
  void dispatch(const FaultDecision& d, Fn proceed) {
    if (d.hang) {
      ctx_.io->submit([sleep = faulty_->sleep_fn(), stall = d.hang_seconds,
                       proceed = std::move(proceed)]() mutable {
        sleep(stall);
        proceed();
      });
    } else if (d.fail || d.torn || d.drop) {
      // fail and drop complete without launching an inner op, so they must
      // be deferred off the caller's stack (invariant 1); torn keeps its
      // historical deferral.
      ctx_.io->submit(std::move(proceed));
    } else {
      proceed();
    }
  }

  std::shared_ptr<FaultyCloud> faulty_;
  AsyncCloudPtr inner_;
  AsyncContext ctx_;
};

// The point of the whole layer: latency and bandwidth waits become wheel
// timers, so a 1-thread pool can have hundreds of delayed requests
// outstanding. Shares its LinkState with the blocking surface.
class AsyncLatentCloud final : public AsyncCloud {
 public:
  AsyncLatentCloud(std::shared_ptr<LatentCloud> latent, AsyncCloudPtr inner)
      : latent_(std::move(latent)), inner_(std::move(inner)) {}

  [[nodiscard]] CloudId id() const noexcept override { return latent_->id(); }
  [[nodiscard]] std::string name() const override { return latent_->name(); }

  AsyncHandle upload_async(const std::string& path, ByteSpan data,
                           StatusCb done) override {
    const LinkProfile& p = latent_->profile();
    // One combined wait (latency + uplink occupancy, reserved at launch)
    // instead of the blocking path's two sequential sleeps.
    const Duration wait =
        p.request_latency_sec +
        latent_->link()->reserve(data.size(), p.up_bytes_per_sec,
                                 /*upload_direction=*/true,
                                 RealClock::instance().now());
    auto state = std::make_shared<AsyncOpState>();
    auto chain = make_chain(state, &latent_->wheel());
    chain_delay(chain, &latent_->wheel(), wait,
                [inner = inner_, chain, state, path, data,
                 done = std::move(done)] {
                  chain_step(chain, [&] {
                    return inner->upload_async(
                        path, data, [state, done](Status s) {
                          complete(state, done, std::move(s));
                        });
                  });
                });
    return AsyncHandle(state);
  }

  AsyncHandle download_async(const std::string& path, BytesCb done) override {
    auto state = std::make_shared<AsyncOpState>();
    auto chain = make_chain(state, &latent_->wheel());
    chain_step(chain, [&] {
      return inner_->download_async(
          path, [latent = latent_, chain, state,
                 done = std::move(done)](Result<Bytes> r) mutable {
            const LinkProfile& p = latent->profile();
            const std::size_t size = r.is_ok() ? r.value().size() : 0;
            const Duration wait =
                p.request_latency_sec +
                latent->link()->reserve(size, p.down_bytes_per_sec,
                                        /*upload_direction=*/false,
                                        RealClock::instance().now());
            chain_delay(chain, &latent->wheel(), wait,
                        [state, done = std::move(done),
                         r = std::move(r)]() mutable {
                          complete(state, done, std::move(r));
                        });
          });
    });
    return AsyncHandle(state);
  }

  AsyncHandle create_dir_async(const std::string& path,
                               StatusCb done) override {
    return meta_op(std::move(done), [path](AsyncCloud& c, StatusCb cb) {
      return c.create_dir_async(path, std::move(cb));
    });
  }

  AsyncHandle list_async(const std::string& dir, ListCb done) override {
    auto state = std::make_shared<AsyncOpState>();
    auto chain = make_chain(state, &latent_->wheel());
    chain_delay(chain, &latent_->wheel(),
                latent_->profile().request_latency_sec,
                [inner = inner_, chain, state, dir, done = std::move(done)] {
                  chain_step(chain, [&] {
                    return inner->list_async(
                        dir, [state, done](Result<std::vector<FileInfo>> r) {
                          complete(state, done, std::move(r));
                        });
                  });
                });
    return AsyncHandle(state);
  }

  AsyncHandle remove_async(const std::string& path, StatusCb done) override {
    return meta_op(std::move(done), [path](AsyncCloud& c, StatusCb cb) {
      return c.remove_async(path, std::move(cb));
    });
  }

 private:
  template <typename Launch>
  AsyncHandle meta_op(StatusCb done, Launch launch) {
    auto state = std::make_shared<AsyncOpState>();
    auto chain = make_chain(state, &latent_->wheel());
    chain_delay(chain, &latent_->wheel(),
                latent_->profile().request_latency_sec,
                [inner = inner_, chain, state, done = std::move(done),
                 launch = std::move(launch)] {
                  chain_step(chain, [&] {
                    return launch(*inner, [state, done](Status s) {
                      complete(state, done, std::move(s));
                    });
                  });
                });
    return AsyncHandle(state);
  }

  std::shared_ptr<LatentCloud> latent_;
  AsyncCloudPtr inner_;
};

// --- AsyncRetryingCloud -----------------------------------------------------

// One retrying async call. Attempt bookkeeping (attempt, backoff, rng,
// timestamps) is touched sequentially — each attempt is armed from the
// previous one's completion — so only `chain` needs synchronization.
template <typename R>
struct RetryOp {
  RetryOp(const RetryPolicy& p, Rng rng_in)
      : policy(p), backoff(p), rng(rng_in) {}

  OpStatePtr state = std::make_shared<AsyncOpState>();
  ChainPtr chain;
  AsyncCloudPtr inner;
  std::function<AsyncHandle(AsyncCloud&, std::function<void(R)>)> launch;
  std::function<void(R)> done;
  RetryPolicy policy;
  std::shared_ptr<CloudHealthRegistry> health;  // may be null
  AsyncContext ctx;
  CloudId cloud_id = 0;
  std::string cloud_name;
  // Real sleeps become thread-free wheel re-arms; injected (virtual-time)
  // sleeps must be CALLED for their side effects, so they run on the pool.
  bool wheel_backoff = true;
  obs::Counter* attempts = nullptr;
  obs::Counter* retries = nullptr;
  obs::Counter* transient_failures = nullptr;
  obs::Histogram* backoff_hist = nullptr;

  int attempt = 0;
  TimePoint started = 0;
  TimePoint attempt_start = 0;
  BackoffState backoff;
  Rng rng;
};

template <typename R>
void retry_attempt(const std::shared_ptr<RetryOp<R>>& op);

// Mirrors RetryingCloud::call / retry_call exactly: same deadline mapping,
// same health recording, same counter semantics, same messages.
template <typename R>
void retry_on_result(const std::shared_ptr<RetryOp<R>>& op, R r) {
  Status status = status_of(r);
  const Duration elapsed = op->ctx.clock->now() - op->attempt_start;
  if (status.is_ok() && op->policy.attempt_deadline > 0 &&
      elapsed > op->policy.attempt_deadline) {
    status = make_error(ErrorCode::kTimeout,
                        op->cloud_name + ": attempt exceeded deadline");
    r = error_result<R>(status);
  }
  if (op->health) op->health->record(op->cloud_id, status, elapsed);
  if (op->attempts) {
    op->attempts->add();
    if (op->attempt > 1) op->retries->add();
    if (!status.is_ok() && status.is_transient()) {
      op->transient_failures->add();
    }
  }
  if (status.is_ok() || !status.is_transient() ||
      op->attempt >= op->policy.max_attempts) {
    complete(op->state, op->done, std::move(r));
    return;
  }
  const Duration pause = op->backoff.next(op->rng);
  if (op->policy.total_deadline > 0 &&
      op->ctx.clock->now() - op->started + pause > op->policy.total_deadline) {
    complete(op->state, op->done,
             error_result<R>(make_error(
                 ErrorCode::kTimeout,
                 "retry budget exhausted: " + status.message())));
    return;
  }
  if (op->backoff_hist) op->backoff_hist->observe(pause);
  if (op->wheel_backoff) {
    chain_delay(op->chain, op->ctx.wheel, pause, [op] { retry_attempt(op); });
  } else {
    op->ctx.io->submit([op, pause] {
      op->ctx.sleep(pause);
      retry_attempt(op);
    });
  }
}

template <typename R>
void retry_attempt(const std::shared_ptr<RetryOp<R>>& op) {
  ++op->attempt;
  if (op->health && !op->health->allow_request(op->cloud_id)) {
    // kOutage is non-transient: surface at once instead of spinning the
    // backoff against an open breaker. Not recorded as health — the request
    // never went out.
    Status refused =
        make_error(ErrorCode::kOutage, op->cloud_name + ": circuit open");
    if (op->attempts) {
      op->attempts->add();
      if (op->attempt > 1) op->retries->add();
    }
    complete(op->state, op->done, error_result<R>(std::move(refused)));
    return;
  }
  op->attempt_start = op->ctx.clock->now();
  chain_step(op->chain, [&] {
    return op->launch(*op->inner,
                      [op](R r) { retry_on_result(op, std::move(r)); });
  });
}

// Retry/backoff/deadline/breaker for the async surface, built from (and
// sharing health + policy with) the blocking RetryingCloud it mirrors.
class AsyncRetryingCloud final : public AsyncCloud {
 public:
  AsyncRetryingCloud(std::shared_ptr<RetryingCloud> blocking,
                     AsyncCloudPtr inner, AsyncContext ctx)
      : blocking_(std::move(blocking)),
        inner_(std::move(inner)),
        ctx_(std::move(ctx)),
        rng_(0x41535952ULL ^  // "ASYR"
             (0x9e3779b9ULL * (blocking_->id() + 1))) {
    if (ctx_.obs) {
      const std::string prefix = "retry." + blocking_->name() + ".";
      attempts_ = &ctx_.obs->metrics.counter(prefix + "attempts");
      retries_ = &ctx_.obs->metrics.counter(prefix + "retries");
      transient_failures_ =
          &ctx_.obs->metrics.counter(prefix + "transient_failures");
      backoff_hist_ = &ctx_.obs->metrics.histogram(prefix + "backoff");
    }
  }

  [[nodiscard]] CloudId id() const noexcept override {
    return blocking_->id();
  }
  [[nodiscard]] std::string name() const override {
    return blocking_->name();
  }

  AsyncHandle upload_async(const std::string& path, ByteSpan data,
                           StatusCb done) override {
    auto op = make_op<Status>(std::move(done));
    op->launch = [path, data](AsyncCloud& c, std::function<void(Status)> cb) {
      return c.upload_async(path, data, std::move(cb));
    };
    return start(op);
  }

  AsyncHandle download_async(const std::string& path, BytesCb done) override {
    auto op = make_op<Result<Bytes>>(std::move(done));
    op->launch = [path](AsyncCloud& c,
                        std::function<void(Result<Bytes>)> cb) {
      return c.download_async(path, std::move(cb));
    };
    return start(op);
  }

  AsyncHandle create_dir_async(const std::string& path,
                               StatusCb done) override {
    auto op = make_op<Status>(std::move(done));
    op->launch = [path](AsyncCloud& c, std::function<void(Status)> cb) {
      return c.create_dir_async(path, std::move(cb));
    };
    return start(op);
  }

  AsyncHandle list_async(const std::string& dir, ListCb done) override {
    auto op = make_op<Result<std::vector<FileInfo>>>(std::move(done));
    op->launch = [dir](AsyncCloud& c,
                       std::function<void(Result<std::vector<FileInfo>>)> cb) {
      return c.list_async(dir, std::move(cb));
    };
    return start(op);
  }

  AsyncHandle remove_async(const std::string& path, StatusCb done) override {
    auto op = make_op<Status>(std::move(done));
    op->launch = [path](AsyncCloud& c, std::function<void(Status)> cb) {
      return c.remove_async(path, std::move(cb));
    };
    return start(op);
  }

 private:
  template <typename R>
  std::shared_ptr<RetryOp<R>> make_op(std::function<void(R)> done) {
    Rng fork;
    {
      // Concurrent ops each retry with an independent jitter stream.
      std::lock_guard<std::mutex> lock(rng_mutex_);
      fork = rng_.fork();
    }
    auto op = std::make_shared<RetryOp<R>>(blocking_->policy(), fork);
    op->chain = make_chain(op->state, ctx_.wheel);
    op->inner = inner_;
    op->done = std::move(done);
    op->health = blocking_->health();
    op->ctx = ctx_;
    op->cloud_id = blocking_->id();
    op->cloud_name = blocking_->name();
    op->wheel_backoff = is_real_sleep(ctx_.sleep);
    op->attempts = attempts_;
    op->retries = retries_;
    op->transient_failures = transient_failures_;
    op->backoff_hist = backoff_hist_;
    op->started = ctx_.clock->now();
    return op;
  }

  template <typename R>
  AsyncHandle start(const std::shared_ptr<RetryOp<R>>& op) {
    // The first attempt is deferred so a breaker fast-fail never completes
    // on the caller's stack.
    ctx_.io->submit([op] { retry_attempt(op); });
    return AsyncHandle(op->state);
  }

  std::shared_ptr<RetryingCloud> blocking_;
  AsyncCloudPtr inner_;
  AsyncContext ctx_;
  std::mutex rng_mutex_;
  Rng rng_;
  // Cached instruments (owned by ctx_.obs->metrics); null when obs is null.
  obs::Counter* attempts_ = nullptr;
  obs::Counter* retries_ = nullptr;
  obs::Counter* transient_failures_ = nullptr;
  obs::Histogram* backoff_hist_ = nullptr;
};

}  // namespace

// --- to_async ---------------------------------------------------------------

AsyncCloudPtr to_async(const CloudPtr& cloud, const AsyncContext& ctx) {
  if (auto rc = std::dynamic_pointer_cast<RetryingCloud>(cloud)) {
    return std::make_shared<AsyncRetryingCloud>(
        rc, to_async(rc->inner(), ctx), ctx);
  }
  if (auto mc = std::dynamic_pointer_cast<MeteredCloud>(cloud)) {
    // Without a registry in the context the async twin could not meter;
    // keep the blocking meter in the loop via the adapter instead.
    if (!ctx.obs) return std::make_shared<SyncAdapter>(cloud, ctx);
    return std::make_shared<AsyncMeteredCloud>(to_async(mc->inner(), ctx),
                                               ctx.obs);
  }
  if (auto fc = std::dynamic_pointer_cast<FaultyCloud>(cloud)) {
    return std::make_shared<AsyncFaultyCloud>(fc, to_async(fc->inner(), ctx),
                                              ctx);
  }
  if (auto qc = std::dynamic_pointer_cast<QuotaCloud>(cloud)) {
    return std::make_shared<AsyncQuotaCloud>(qc, to_async(qc->inner(), ctx),
                                             ctx);
  }
  if (auto lc = std::dynamic_pointer_cast<LatentCloud>(cloud)) {
    return std::make_shared<AsyncLatentCloud>(lc, to_async(lc->inner(), ctx));
  }
  return std::make_shared<SyncAdapter>(cloud, ctx);
}

}  // namespace unidrive::cloud
