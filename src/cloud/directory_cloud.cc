#include "cloud/directory_cloud.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "cloud/path.h"

namespace unidrive::cloud {

namespace fs = std::filesystem;

DirectoryCloud::DirectoryCloud(CloudId id, std::string name, std::string root)
    : id_(id), name_(std::move(name)), root_(std::move(root)) {
  // Non-throwing: a broken backing root (deleted, replaced by a file, mount
  // gone) must surface as per-request kUnavailable — the circuit breaker's
  // domain — not as an exception tearing down the process.
  std::error_code ec;
  fs::create_directories(root_, ec);
}

std::string DirectoryCloud::host_path(const std::string& cloud_path) const {
  // Cloud paths are normalized slash paths; they map 1:1 under the root.
  return root_ + normalize_path(cloud_path);
}

Status DirectoryCloud::upload(const std::string& path, ByteSpan data) {
  const std::string norm = normalize_path(path);
  if (norm == "/") {
    return make_error(ErrorCode::kInvalidArgument, "upload to root");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const fs::path host = host_path(norm);
  std::error_code ec;
  fs::create_directories(host.parent_path(), ec);
  // Write-then-rename gives atomic replace (a crashed upload never leaves a
  // torn object visible — matching real object stores).
  const fs::path tmp = host.string() + ".uploading";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return make_error(ErrorCode::kUnavailable,
                        "cannot open " + tmp.string());
    }
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out) {
      return make_error(ErrorCode::kUnavailable,
                        "short write " + tmp.string());
    }
  }
  fs::rename(tmp, host, ec);
  if (ec) return make_error(ErrorCode::kUnavailable, ec.message());
  return Status::ok();
}

Result<Bytes> DirectoryCloud::download(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ifstream in(host_path(path), std::ios::binary);
  if (!in) return make_error(ErrorCode::kNotFound, name_ + ": " + path);
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  return data;
}

Status DirectoryCloud::create_dir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::error_code ec;
  fs::create_directories(host_path(path), ec);
  return ec ? make_error(ErrorCode::kUnavailable, ec.message()) : Status::ok();
}

Result<std::vector<FileInfo>> DirectoryCloud::list(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FileInfo> out;
  std::error_code ec;
  const fs::path host = host_path(dir);
  if (!fs::exists(host, ec)) return out;  // empty dir == missing dir
  for (const auto& entry : fs::directory_iterator(host, ec)) {
    if (ec) break;
    if (!entry.is_regular_file(ec) || ec) continue;
    const std::string name = entry.path().filename().string();
    if (name.ends_with(".uploading")) continue;  // in-flight temp objects
    const auto size = entry.file_size(ec);
    if (ec) continue;
    out.push_back({name, static_cast<std::uint64_t>(size)});
  }
  std::sort(out.begin(), out.end(),
            [](const FileInfo& a, const FileInfo& b) { return a.name < b.name; });
  return out;
}

Status DirectoryCloud::remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::error_code ec;
  if (!fs::remove(host_path(path), ec) || ec) {
    return make_error(ErrorCode::kNotFound, name_ + ": " + path);
  }
  return Status::ok();
}

}  // namespace unidrive::cloud
