// QuotaCloud — enforces a storage quota, as consumer clouds do. Uploads
// that would exceed the quota fail with kQuotaExceeded; the scheduler then
// treats the cloud as unavailable for further over-provisioning (the paper
// notes a fast cloud becomes "unavailable" for upload once its quota fills).
#pragma once

#include <mutex>
#include <unordered_map>

#include "cloud/provider.h"

namespace unidrive::cloud {

class QuotaCloud final : public CloudProvider {
 public:
  QuotaCloud(CloudPtr inner, std::uint64_t quota_bytes)
      : inner_(std::move(inner)), quota_(quota_bytes) {}

  [[nodiscard]] CloudId id() const noexcept override { return inner_->id(); }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

  Status upload(const std::string& path, ByteSpan data) override;
  Result<Bytes> download(const std::string& path) override {
    return inner_->download(path);
  }
  Status create_dir(const std::string& path) override {
    return inner_->create_dir(path);
  }
  Result<std::vector<FileInfo>> list(const std::string& dir) override {
    return inner_->list(dir);
  }
  Status remove(const std::string& path) override;

  [[nodiscard]] std::uint64_t used_bytes() const;
  [[nodiscard]] std::uint64_t quota_bytes() const noexcept { return quota_; }

  // Quota bookkeeping, exposed so the async passthrough (cloud/async.h)
  // shares the same accounting as the blocking verbs. `normalized` must
  // already be normalize_path()ed.
  [[nodiscard]] Status check_quota(const std::string& normalized,
                                   std::size_t bytes) const;
  void record_upload(const std::string& normalized, std::size_t bytes);
  void record_remove(const std::string& normalized);

  [[nodiscard]] const CloudPtr& inner() const noexcept { return inner_; }

 private:
  CloudPtr inner_;
  std::uint64_t quota_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::uint64_t> sizes_;  // path -> bytes
};

}  // namespace unidrive::cloud
