#include "baselines/intuitive.h"

#include <map>

namespace unidrive::baselines {

IntuitiveResult intuitive_transfer_batch(
    sim::SimEnv& env, const sim::CloudSet& set,
    const std::vector<std::uint64_t>& file_sizes, bool download,
    double timeout) {
  IntuitiveResult result;
  result.file_done_time.assign(file_sizes.size(), -1.0);

  // One pipeline with per-cloud connection budgets equal to each vendor's
  // native app limit.
  std::map<sim::SimCloud*, std::size_t> connections;
  for (std::size_t i = 0; i < set.clouds.size(); ++i) {
    connections[set.clouds[i].get()] =
        native_app_spec(static_cast<sim::CloudKind>(i)).connections;
  }
  auto pipeline = std::make_shared<ChunkPipeline>(env, download, connections);

  std::size_t done = 0;
  bool all_ok = true;
  pipeline->on_file_done = [&](std::size_t file, bool ok) {
    result.file_done_time[file] = ok ? env.now() : -1.0;
    all_ok = all_ok && ok;
    ++done;
  };

  for (std::size_t i = 0; i < file_sizes.size(); ++i) {
    std::vector<ChunkTask> chunks;
    const double part =
        static_cast<double>(file_sizes[i]) /
        static_cast<double>(set.clouds.size());
    for (std::size_t c = 0; c < set.clouds.size(); ++c) {
      const auto spec = native_app_spec(static_cast<sim::CloudKind>(c));
      // Every native app pays its per-file fixed cost on its own part —
      // this is why the intuitive solution has the worst overhead (paper:
      // 14.93%, it "involves all the 5 CCSs for each file sync").
      chunks.push_back({i, set.clouds[c].get(),
                        part * (1.0 + spec.protocol_overhead) +
                            spec.per_file_fixed_bytes});
    }
    pipeline->add_file(i, chunks);
  }

  const double deadline = env.now() + timeout;
  while (done < file_sizes.size() && env.now() < deadline && env.step()) {
  }
  result.success = done == file_sizes.size() && all_ok;
  result.finish_time = env.now();
  return result;
}

double intuitive_upload_time(sim::SimEnv& env, const sim::CloudSet& set,
                             std::uint64_t bytes) {
  const double start = env.now();
  const IntuitiveResult r =
      intuitive_transfer_batch(env, set, {bytes}, /*download=*/false);
  return r.success ? r.finish_time - start : -1.0;
}

double intuitive_download_time(sim::SimEnv& env, const sim::CloudSet& set,
                               std::uint64_t bytes) {
  const double start = env.now();
  const IntuitiveResult r =
      intuitive_transfer_batch(env, set, {bytes}, /*download=*/true);
  return r.success ? r.finish_time - start : -1.0;
}

}  // namespace unidrive::baselines
