// Model of a vendor's native CCS client (the per-cloud comparison points in
// Figures 8-11): uploads/downloads a batch of files to ONE cloud, cutting
// files into 4 MB parts transferred over the vendor's concurrent-connection
// budget, with the vendor's measured protocol overhead added to every part.
#pragma once

#include <functional>
#include <vector>

#include "baselines/chunk_pipeline.h"
#include "sim/profiles.h"

namespace unidrive::baselines {

struct NativeBatchResult {
  bool success = false;
  double finish_time = 0;                 // absolute virtual time
  std::vector<double> file_done_time;     // absolute; -1 = failed/never
};

inline constexpr double kNativeChunkBytes = 4 << 20;

// Synchronous (drives env until the batch completes or `timeout` passes).
NativeBatchResult native_transfer_batch(
    sim::SimEnv& env, sim::SimCloud& cloud, sim::CloudKind kind,
    const std::vector<std::uint64_t>& file_sizes, bool download,
    double timeout = 24 * 3600);

// Convenience single-file wrappers returning the transfer duration in
// seconds (or a negative value on failure).
double native_upload_time(sim::SimEnv& env, sim::SimCloud& cloud,
                          sim::CloudKind kind, std::uint64_t bytes);
double native_download_time(sim::SimEnv& env, sim::SimCloud& cloud,
                            sim::CloudKind kind, std::uint64_t bytes);

}  // namespace unidrive::baselines
