#include "baselines/native_app.h"

namespace unidrive::baselines {

namespace {

std::vector<ChunkTask> make_chunks(std::size_t file, sim::SimCloud& cloud,
                                   std::uint64_t bytes,
                                   const sim::NativeAppSpec& spec) {
  std::vector<ChunkTask> chunks;
  std::uint64_t remaining = bytes;
  do {
    const std::uint64_t piece = std::min<std::uint64_t>(
        remaining, static_cast<std::uint64_t>(kNativeChunkBytes));
    chunks.push_back({file, &cloud,
                      static_cast<double>(piece) *
                          (1.0 + spec.protocol_overhead)});
    remaining -= piece;
  } while (remaining > 0);
  // Per-file fixed protocol cost (journal updates etc.) rides with the
  // first chunk.
  chunks.front().bytes += spec.per_file_fixed_bytes;
  return chunks;
}

}  // namespace

NativeBatchResult native_transfer_batch(
    sim::SimEnv& env, sim::SimCloud& cloud, sim::CloudKind kind,
    const std::vector<std::uint64_t>& file_sizes, bool download,
    double timeout) {
  const sim::NativeAppSpec spec = native_app_spec(kind);
  NativeBatchResult result;
  result.file_done_time.assign(file_sizes.size(), -1.0);

  auto pipeline = std::make_shared<ChunkPipeline>(
      env, download,
      std::map<sim::SimCloud*, std::size_t>{{&cloud, spec.connections}});
  std::size_t done = 0;
  bool all_ok = true;
  pipeline->on_file_done = [&](std::size_t file, bool ok) {
    result.file_done_time[file] = ok ? env.now() : -1.0;
    all_ok = all_ok && ok;
    ++done;
  };
  for (std::size_t i = 0; i < file_sizes.size(); ++i) {
    pipeline->add_file(i, make_chunks(i, cloud, file_sizes[i], spec));
  }

  const double deadline = env.now() + timeout;
  while (done < file_sizes.size() && env.now() < deadline && env.step()) {
  }
  result.success = done == file_sizes.size() && all_ok;
  result.finish_time = env.now();
  return result;
}

double native_upload_time(sim::SimEnv& env, sim::SimCloud& cloud,
                          sim::CloudKind kind, std::uint64_t bytes) {
  const double start = env.now();
  const NativeBatchResult r =
      native_transfer_batch(env, cloud, kind, {bytes}, /*download=*/false);
  return r.success ? r.finish_time - start : -1.0;
}

double native_download_time(sim::SimEnv& env, sim::SimCloud& cloud,
                            sim::CloudKind kind, std::uint64_t bytes) {
  const double start = env.now();
  const NativeBatchResult r =
      native_transfer_batch(env, cloud, kind, {bytes}, /*download=*/true);
  return r.success ? r.finish_time - start : -1.0;
}

}  // namespace unidrive::baselines
