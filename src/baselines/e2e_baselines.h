// End-to-end batch-sync simulations for the baseline systems (the
// comparison rows of Figures 11-12): an uploading device pushes a batch and
// downloading devices poll and pull, using the vendors' native sync logic —
// no erasure coding (native/intuitive), no over-provisioning, no dynamic
// scheduling.
#pragma once

#include <vector>

#include "baselines/intuitive.h"
#include "baselines/native_app.h"

namespace unidrive::baselines {

struct BaselineE2EConfig {
  std::size_t num_files = 100;
  std::uint64_t file_size = 1 << 20;
  double poll_interval = 5.0;
  double timeout = 24 * 3600;
};

struct BaselineE2EResult {
  bool success = false;
  double upload_complete = -1;  // relative to batch start
  // Per downloader, per file: sync time from batch start (-1 = never).
  std::vector<std::vector<double>> file_sync_time;
  double batch_sync_time = -1;  // all files on all downloaders
};

// Native single-cloud sync: uploader and downloaders all use cloud `kind`;
// each device sees the cloud through its own simulated link.
BaselineE2EResult native_e2e(sim::SimEnv& env, sim::SimCloud& uploader_cloud,
                             const std::vector<sim::SimCloud*>& downloader_clouds,
                             sim::CloudKind kind,
                             const BaselineE2EConfig& config);

// Intuitive multi-cloud: each file split into one part per cloud, moved by
// the five native apps; a file is synced when all parts arrived.
BaselineE2EResult intuitive_e2e(sim::SimEnv& env, const sim::CloudSet& uploader,
                                const std::vector<const sim::CloudSet*>& downloaders,
                                const BaselineE2EConfig& config);

}  // namespace unidrive::baselines
