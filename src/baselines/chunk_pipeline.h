// ChunkPipeline — a minimal virtual-time transfer engine for the baseline
// systems: a FIFO of (file, chunk, cloud) transfers served by a bounded
// number of connections per cloud, with per-chunk retries. Used to model
// native CCS apps (all chunks to one cloud) and the intuitive multi-cloud
// (chunks striped over the native apps). No erasure coding, no scheduling
// policy — that is the point of the baselines.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/retry.h"
#include "sim/sim_cloud.h"

namespace unidrive::baselines {

struct ChunkTask {
  std::size_t file = 0;
  sim::SimCloud* cloud = nullptr;
  double bytes = 0;
};

class ChunkPipeline
    : public std::enable_shared_from_this<ChunkPipeline> {
 public:
  // Per-chunk retries follow the unified RetryPolicy's attempt budget (the
  // backoff/deadline fields are ignored: the simulator's virtual-time
  // connection contention already spaces retries out).
  ChunkPipeline(sim::SimEnv& env, bool download,
                std::map<sim::SimCloud*, std::size_t> connections,
                RetryPolicy retry = {.max_attempts = 7})
      : env_(env),
        download_(download),
        free_slots_(std::move(connections)),
        retry_(retry) {}

  // Fires when the last chunk of a file completed (or was abandoned).
  std::function<void(std::size_t file, bool ok)> on_file_done;

  // Enqueue all chunks of a file; may be called while running.
  void add_file(std::size_t file, const std::vector<ChunkTask>& chunks);

  // Kick the engine (also implicitly kicked by add_file).
  void pump();

  [[nodiscard]] bool idle() const noexcept {
    return queue_.empty() && in_flight_ == 0;
  }

 private:
  struct Pending {
    ChunkTask task;
    int tries = 0;  // completed (failed) tries so far
  };

  void dispatch(Pending pending);
  void complete(Pending pending, bool ok);

  sim::SimEnv& env_;
  bool download_;
  std::map<sim::SimCloud*, std::size_t> free_slots_;
  RetryPolicy retry_;

  std::vector<Pending> queue_;  // FIFO (front = index 0)
  std::size_t in_flight_ = 0;
  std::map<std::size_t, std::size_t> remaining_chunks_;  // file -> count
  std::map<std::size_t, bool> file_ok_;
};

}  // namespace unidrive::baselines
