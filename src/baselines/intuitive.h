// The "intuitive multi-cloud" baseline (Section 7.1): a file is chunked into
// N equal parts and part i is dropped into cloud i's native app sync folder.
// Every cloud's own client then syncs its part with the vendor's own logic.
// A file is usable only when ALL parts arrived — so the slowest cloud
// dictates the sync time, which is exactly the weakness UniDrive's
// over-provisioning removes.
#pragma once

#include <vector>

#include "baselines/native_app.h"
#include "sim/profiles.h"

namespace unidrive::baselines {

struct IntuitiveResult {
  bool success = false;
  double finish_time = 0;              // absolute virtual time
  std::vector<double> file_done_time;  // absolute; -1 = failed
};

// Transfers a batch of files: each file becomes one part per cloud, moved by
// that cloud's native app model (connection limits, protocol overhead).
IntuitiveResult intuitive_transfer_batch(
    sim::SimEnv& env, const sim::CloudSet& set,
    const std::vector<std::uint64_t>& file_sizes, bool download,
    double timeout = 24 * 3600);

double intuitive_upload_time(sim::SimEnv& env, const sim::CloudSet& set,
                             std::uint64_t bytes);
double intuitive_download_time(sim::SimEnv& env, const sim::CloudSet& set,
                               std::uint64_t bytes);

}  // namespace unidrive::baselines
