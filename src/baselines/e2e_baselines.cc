#include "baselines/e2e_baselines.h"

#include <algorithm>
#include <memory>

namespace unidrive::baselines {

namespace {

// Shared by all scheduled events so nothing dangles even if stray events
// fire after the driving loop returned (the env outlives this call).
struct E2EContext : std::enable_shared_from_this<E2EContext> {
  sim::SimEnv& env;
  BaselineE2EConfig config;
  double start = 0;
  double deadline = 0;
  bool stopped = false;

  std::vector<double> upload_done_time;
  std::size_t uploaded = 0;
  std::shared_ptr<ChunkPipeline> up_pipeline;

  struct Device {
    std::shared_ptr<ChunkPipeline> pipeline;
    std::vector<bool> enqueued;
    std::function<std::vector<ChunkTask>(std::size_t)> make_chunks;
  };
  std::vector<Device> devices;
  std::vector<std::vector<double>> file_sync_time;
  std::size_t total_synced = 0;

  E2EContext(sim::SimEnv& env, const BaselineE2EConfig& config)
      : env(env), config(config) {}

  void poll(std::size_t d) {
    if (stopped || env.now() >= deadline) return;
    Device& device = devices[d];
    for (std::size_t f = 0; f < config.num_files; ++f) {
      if (!device.enqueued[f] && upload_done_time[f] >= 0 &&
          upload_done_time[f] <= env.now()) {
        device.enqueued[f] = true;
        device.pipeline->add_file(f, device.make_chunks(f));
      }
    }
    const bool all_enqueued =
        std::all_of(device.enqueued.begin(), device.enqueued.end(),
                    [](bool b) { return b; });
    if (!all_enqueued || !device.pipeline->idle()) {
      env.schedule(config.poll_interval,
                   [self = shared_from_this(), d] { self->poll(d); });
    }
  }
};

template <typename MakeUpChunks, typename MakeDownChunks>
BaselineE2EResult run_generic_e2e(
    sim::SimEnv& env, std::map<sim::SimCloud*, std::size_t> up_connections,
    std::vector<std::map<sim::SimCloud*, std::size_t>> down_connections,
    const BaselineE2EConfig& config, MakeUpChunks make_up_chunks,
    MakeDownChunks make_down_chunks) {
  auto ctx = std::make_shared<E2EContext>(env, config);
  ctx->start = env.now();
  ctx->deadline = ctx->start + config.timeout;
  ctx->upload_done_time.assign(config.num_files, -1.0);
  const std::size_t num_devices = down_connections.size();
  ctx->file_sync_time.assign(num_devices,
                             std::vector<double>(config.num_files, -1.0));

  // Uploader.
  ctx->up_pipeline = std::make_shared<ChunkPipeline>(
      env, /*download=*/false, std::move(up_connections));
  ctx->up_pipeline->on_file_done = [ctx](std::size_t file, bool ok) {
    if (ok) ctx->upload_done_time[file] = ctx->env.now();
    ++ctx->uploaded;
  };
  for (std::size_t f = 0; f < config.num_files; ++f) {
    ctx->up_pipeline->add_file(f, make_up_chunks(f));
  }

  // Downloaders.
  for (std::size_t d = 0; d < num_devices; ++d) {
    E2EContext::Device device;
    device.pipeline = std::make_shared<ChunkPipeline>(
        env, /*download=*/true, std::move(down_connections[d]));
    device.enqueued.assign(config.num_files, false);
    device.make_chunks = [make_down_chunks, d](std::size_t file) {
      return make_down_chunks(d, file);
    };
    device.pipeline->on_file_done = [ctx, d](std::size_t file, bool ok) {
      if (ok && ctx->file_sync_time[d][file] < 0) {
        ctx->file_sync_time[d][file] = ctx->env.now() - ctx->start;
        ++ctx->total_synced;
      }
    };
    ctx->devices.push_back(std::move(device));
    env.schedule(config.poll_interval,
                 [ctx, d] { ctx->poll(d); });
  }

  // Drive.
  const std::size_t want = num_devices * config.num_files;
  while (ctx->total_synced < want && env.now() < ctx->deadline && env.step()) {
  }
  ctx->stopped = true;

  // Collect.
  BaselineE2EResult result;
  result.file_sync_time = ctx->file_sync_time;
  result.upload_complete = -1;
  bool upload_all = true;
  for (const double t : ctx->upload_done_time) {
    if (t < 0) {
      upload_all = false;
      break;
    }
    result.upload_complete = std::max(result.upload_complete, t - ctx->start);
  }
  if (!upload_all) result.upload_complete = -1;
  result.success = ctx->total_synced == want;
  result.batch_sync_time = -1;
  if (result.success) {
    for (const auto& times : result.file_sync_time) {
      for (const double t : times) {
        result.batch_sync_time = std::max(result.batch_sync_time, t);
      }
    }
  }
  return result;
}

}  // namespace

BaselineE2EResult native_e2e(
    sim::SimEnv& env, sim::SimCloud& uploader_cloud,
    const std::vector<sim::SimCloud*>& downloader_clouds,
    sim::CloudKind kind, const BaselineE2EConfig& config) {
  const sim::NativeAppSpec spec = native_app_spec(kind);
  const std::uint64_t file_size = config.file_size;

  auto chunks_for = [file_size, spec](sim::SimCloud* cloud,
                                      std::size_t file) {
    std::vector<ChunkTask> chunks;
    std::uint64_t remaining = file_size;
    do {
      const std::uint64_t piece = std::min<std::uint64_t>(
          remaining, static_cast<std::uint64_t>(kNativeChunkBytes));
      chunks.push_back({file, cloud,
                        static_cast<double>(piece) *
                            (1.0 + spec.protocol_overhead)});
      remaining -= piece;
    } while (remaining > 0);
    chunks.front().bytes += spec.per_file_fixed_bytes;
    return chunks;
  };

  std::vector<std::map<sim::SimCloud*, std::size_t>> down_connections;
  down_connections.reserve(downloader_clouds.size());
  for (sim::SimCloud* c : downloader_clouds) {
    down_connections.push_back({{c, spec.connections}});
  }
  sim::SimCloud* up_cloud = &uploader_cloud;
  return run_generic_e2e(
      env, {{up_cloud, spec.connections}}, std::move(down_connections),
      config,
      [chunks_for, up_cloud](std::size_t file) {
        return chunks_for(up_cloud, file);
      },
      [chunks_for, downloader_clouds](std::size_t device, std::size_t file) {
        return chunks_for(downloader_clouds[device], file);
      });
}

BaselineE2EResult intuitive_e2e(
    sim::SimEnv& env, const sim::CloudSet& uploader,
    const std::vector<const sim::CloudSet*>& downloaders,
    const BaselineE2EConfig& config) {
  auto connections_for = [](const sim::CloudSet& set) {
    std::map<sim::SimCloud*, std::size_t> connections;
    for (std::size_t c = 0; c < set.clouds.size(); ++c) {
      connections[set.clouds[c].get()] =
          native_app_spec(static_cast<sim::CloudKind>(c)).connections;
    }
    return connections;
  };
  const std::uint64_t file_size = config.file_size;
  auto chunks_for = [file_size](const sim::CloudSet& set, std::size_t file) {
    std::vector<ChunkTask> chunks;
    const double part = static_cast<double>(file_size) /
                        static_cast<double>(set.clouds.size());
    for (std::size_t c = 0; c < set.clouds.size(); ++c) {
      const auto spec = native_app_spec(static_cast<sim::CloudKind>(c));
      chunks.push_back({file, set.clouds[c].get(),
                        part * (1.0 + spec.protocol_overhead) +
                            spec.per_file_fixed_bytes});
    }
    return chunks;
  };

  std::vector<std::map<sim::SimCloud*, std::size_t>> down_connections;
  down_connections.reserve(downloaders.size());
  for (const sim::CloudSet* set : downloaders) {
    down_connections.push_back(connections_for(*set));
  }
  const sim::CloudSet* up_set = &uploader;
  return run_generic_e2e(
      env, connections_for(uploader), std::move(down_connections), config,
      [chunks_for, up_set](std::size_t file) {
        return chunks_for(*up_set, file);
      },
      [chunks_for, downloaders](std::size_t device, std::size_t file) {
        return chunks_for(*downloaders[device], file);
      });
}

}  // namespace unidrive::baselines
