#include "baselines/chunk_pipeline.h"

#include <algorithm>

namespace unidrive::baselines {

void ChunkPipeline::add_file(std::size_t file,
                             const std::vector<ChunkTask>& chunks) {
  remaining_chunks_[file] += chunks.size();
  file_ok_.emplace(file, true);
  for (const ChunkTask& c : chunks) queue_.push_back({c, 0});
  if (chunks.empty()) {
    // Degenerate empty file: complete immediately (asynchronously).
    env_.schedule(0, [self = shared_from_this(), file] {
      if (self->remaining_chunks_[file] == 0 && self->on_file_done) {
        self->on_file_done(file, true);
      }
    });
  }
  pump();
}

void ChunkPipeline::pump() {
  bool dispatched = true;
  while (dispatched) {
    dispatched = false;
    for (auto& [cloud, free] : free_slots_) {
      if (free == 0) continue;
      // First queued chunk for this cloud (FIFO per cloud).
      const auto it = std::find_if(
          queue_.begin(), queue_.end(),
          [&](const Pending& p) { return p.task.cloud == cloud; });
      if (it == queue_.end()) continue;
      Pending pending = *it;
      queue_.erase(it);
      --free;
      ++in_flight_;
      dispatch(pending);
      dispatched = true;
    }
  }
}

void ChunkPipeline::dispatch(Pending pending) {
  auto completion = [self = shared_from_this(), pending](bool ok) mutable {
    self->complete(pending, ok);
  };
  if (download_) {
    pending.task.cloud->download(pending.task.bytes, std::move(completion));
  } else {
    pending.task.cloud->upload(pending.task.bytes, std::move(completion));
  }
}

void ChunkPipeline::complete(Pending pending, bool ok) {
  ++free_slots_[pending.task.cloud];
  --in_flight_;
  if (!ok && pending.tries + 1 < retry_.max_attempts) {
    ++pending.tries;
    queue_.push_back(pending);  // retry later
  } else {
    const std::size_t file = pending.task.file;
    if (!ok) file_ok_[file] = false;
    if (--remaining_chunks_[file] == 0 && on_file_done) {
      on_file_done(file, file_ok_[file]);
    }
  }
  pump();
}

}  // namespace unidrive::baselines
