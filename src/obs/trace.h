// Tracer / Span — lightweight structured timing for one sync round.
//
// Metrics aggregate; spans explain. A sync round is a short tree of
// operations (acquire lock → fetch metadata → upload blocks → commit), and
// when a round is slow the interesting question is WHICH edge of that tree
// ate the time. A Span is an RAII timer: started from a Tracer (or as a
// child of another span), it records {id, parent, name, start, end} into
// the tracer's bounded ring buffer when it ends. The clock is injected, so
// simulator/virtual-time tests get deterministic timestamps.
//
// Spans are move-only and single-threaded objects (one span lives on one
// thread's stack); the Tracer itself is thread-safe, so concurrent threads
// can each run their own span tree against the shared tracer. The ring
// buffer keeps the newest `capacity` finished spans and counts the rest in
// dropped() — tracing must never grow without bound in a long-lived daemon.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"

namespace unidrive::obs {

struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root span
  std::string name;
  TimePoint start = 0;
  TimePoint end = 0;
  [[nodiscard]] Duration duration() const noexcept { return end - start; }
};

class Tracer;

class Span {
 public:
  // A default-constructed span is inert: end() and child() are no-ops and
  // produce inert spans. Instrumented code paths hold an inert span when
  // observability is disabled, avoiding null checks at every timing point.
  Span() = default;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  ~Span();

  // Finishes the span now (idempotent; the destructor calls it too).
  void end();

  // A new span parented under this one, sharing the tracer.
  [[nodiscard]] Span child(const std::string& name);

  [[nodiscard]] bool active() const noexcept { return tracer_ != nullptr; }
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::uint64_t id, std::uint64_t parent,
       std::string name, TimePoint start)
      : tracer_(tracer),
        id_(id),
        parent_(parent),
        name_(std::move(name)),
        start_(start) {}

  Tracer* tracer_ = nullptr;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::string name_;
  TimePoint start_ = 0;
};

class Tracer {
 public:
  explicit Tracer(Clock& clock = RealClock::instance(),
                  std::size_t capacity = 1024)
      : clock_(&clock), capacity_(capacity) {}

  [[nodiscard]] Span start(const std::string& name, std::uint64_t parent = 0);

  // Finished spans, oldest first; at most capacity() of them.
  [[nodiscard]] std::vector<SpanRecord> finished() const;
  // The newest finished span with this name, if any.
  [[nodiscard]] std::optional<SpanRecord> find(std::string_view name) const;
  [[nodiscard]] std::size_t count(std::string_view name) const;

  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  void clear();

 private:
  friend class Span;
  void finish(Span& span);

  Clock* clock_;  // non-owning, never null
  std::size_t capacity_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mutex_;
  std::deque<SpanRecord> ring_;  // newest at the back
};

}  // namespace unidrive::obs
