// MetricsRegistry — the process-wide numbers behind every UniDrive claim.
//
// The paper's evaluation (§5–6) is entirely quantitative: per-cloud request
// latency and success counts, blocks placed per cloud by the
// availability-first scheduler, retry and breaker churn under failure
// injection. This header provides the three instrument kinds those
// measurements need:
//
//   Counter    monotonically increasing u64 (ops, bytes, retries).
//   Gauge      last-written double (payload sizes, ratios).
//   Histogram  fixed-bucket latency distribution with p50/p95/p99 readout.
//
// All instruments are lock-free on the hot path (plain atomics); the
// registry itself takes a mutex only to resolve a name to an instrument,
// and instruments are never destroyed while the registry lives, so callers
// may cache the returned references. snapshot() is a point-in-time copy
// safe to read while writers keep running (per-instrument values are
// individually atomic; the snapshot is not a cross-instrument barrier).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace unidrive::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

// Everything a snapshot keeps about one histogram. Quantiles are estimated
// by linear interpolation inside the bucket containing the target rank and
// clamped to the observed [min, max]; observations past the last bound
// report the observed max (the bucket has no upper edge to interpolate to).
struct HistogramStats {
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

class Histogram {
 public:
  // Bucket upper bounds, strictly increasing; one extra overflow bucket is
  // appended for observations past the last bound.
  explicit Histogram(std::vector<double> bounds);

  // The default bounds used for request latency: 1ms .. 2min, roughly
  // exponential — covers LAN-simulated clouds and the paper's multi-second
  // consumer-cloud stalls alike.
  [[nodiscard]] static std::vector<double> default_latency_bounds();

  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] HistogramStats stats() const;
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }

 private:
  std::vector<double> bounds_;
  // bounds_.size() + 1 buckets; bucket i counts v <= bounds_[i], the last
  // bucket counts v > bounds_.back().
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

// What MetricsRegistry::snapshot() returns: plain values keyed by name,
// cheap to copy into a SyncReport and trivial to serialise.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;

  // Lookup helpers returning a zero value for unknown names, so tests can
  // sum families of counters without existence checks.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  [[nodiscard]] double gauge_value(const std::string& name) const;
};

class MetricsRegistry {
 public:
  // Find-or-create by name. The returned reference stays valid for the
  // registry's lifetime; hot paths should call once and cache it.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace unidrive::obs
