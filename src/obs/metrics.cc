#include "obs/metrics.h"

#include <algorithm>

namespace unidrive::obs {

namespace {
// compare_exchange folding of an associative double update (add/min/max).
template <typename Fold>
void fold_atomic_double(std::atomic<double>& target, double v, Fold fold) {
  double cur = target.load(std::memory_order_relaxed);
  double next = fold(cur, v);
  while (!target.compare_exchange_weak(cur, next,
                                       std::memory_order_relaxed)) {
    next = fold(cur, v);
  }
}
}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

std::vector<double> Histogram::default_latency_bounds() {
  return {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
          0.5,   1.0,    2.5,   5.0,  10.0,  30.0, 60.0, 120.0};
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t seen = count_.fetch_add(1, std::memory_order_relaxed);
  fold_atomic_double(sum_, v, [](double a, double b) { return a + b; });
  if (seen == 0) {
    // First observation seeds min/max; racers that beat the seed fold below.
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  fold_atomic_double(min_, v, [](double a, double b) { return std::min(a, b); });
  fold_atomic_double(max_, v, [](double a, double b) { return std::max(a, b); });
}

double Histogram::quantile(double q) const {
  std::vector<std::uint64_t> counts(buckets_.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double lo = min_.load(std::memory_order_relaxed);
  const double hi = max_.load(std::memory_order_relaxed);
  if (q <= 0.0) return lo;
  if (q >= 1.0) return hi;
  const double target = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (static_cast<double>(cum + counts[i]) >= target) {
      if (i == bounds_.size()) return hi;  // overflow bucket: no upper edge
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(counts[i]);
      return std::clamp(lower + frac * (upper - lower), lo, hi);
    }
    cum += counts[i];
  }
  return hi;
}

HistogramStats Histogram::stats() const {
  HistogramStats s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  return s;
}

std::uint64_t MetricsSnapshot::counter_value(const std::string& name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

double MetricsSnapshot::gauge_value(const std::string& name) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histogram(name, Histogram::default_latency_bounds());
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->stats();
  return s;
}

}  // namespace unidrive::obs
