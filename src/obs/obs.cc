#include "obs/obs.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace unidrive::obs {

namespace {

void append_escaped(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void append_number(std::ostringstream& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out << buf;
}

void append_metrics(std::ostringstream& out, const MetricsSnapshot& m) {
  out << "\"counters\": {";
  bool first = true;
  for (const auto& [name, v] : m.counters) {
    if (!first) out << ", ";
    first = false;
    append_escaped(out, name);
    out << ": " << v;
  }
  out << "},\n\"gauges\": {";
  first = true;
  for (const auto& [name, v] : m.gauges) {
    if (!first) out << ", ";
    first = false;
    append_escaped(out, name);
    out << ": ";
    append_number(out, v);
  }
  out << "},\n\"histograms\": {";
  first = true;
  for (const auto& [name, h] : m.histograms) {
    if (!first) out << ", ";
    first = false;
    append_escaped(out, name);
    out << ": {\"count\": " << h.count << ", \"sum\": ";
    append_number(out, h.sum);
    out << ", \"min\": ";
    append_number(out, h.min);
    out << ", \"max\": ";
    append_number(out, h.max);
    out << ", \"mean\": ";
    append_number(out, h.mean());
    out << ", \"p50\": ";
    append_number(out, h.p50);
    out << ", \"p95\": ";
    append_number(out, h.p95);
    out << ", \"p99\": ";
    append_number(out, h.p99);
    out << "}";
  }
  out << "}";
}

}  // namespace

std::string DumpJson(const MetricsSnapshot& metrics) {
  std::ostringstream out;
  out << "{\n";
  append_metrics(out, metrics);
  out << "\n}\n";
  return out.str();
}

std::string DumpJson(const Observability& obs) {
  std::ostringstream out;
  out << "{\n";
  append_metrics(out, obs.metrics.snapshot());
  out << ",\n\"spans\": [";
  bool first = true;
  for (const SpanRecord& s : obs.tracer.finished()) {
    if (!first) out << ", ";
    first = false;
    out << "\n{\"id\": " << s.id << ", \"parent\": " << s.parent
        << ", \"name\": ";
    append_escaped(out, s.name);
    out << ", \"start\": ";
    append_number(out, s.start);
    out << ", \"end\": ";
    append_number(out, s.end);
    out << "}";
  }
  out << "],\n\"spans_dropped\": " << obs.tracer.dropped() << "\n}\n";
  return out.str();
}

Status WriteJsonFile(const Observability& obs, const std::string& path) {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      return make_error(ErrorCode::kInternal,
                        "cannot create " + parent.string() + ": " +
                            ec.message());
    }
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return make_error(ErrorCode::kInternal, "cannot open " + path);
  }
  out << DumpJson(obs);
  out.flush();
  if (!out) {
    return make_error(ErrorCode::kInternal, "short write to " + path);
  }
  return Status::ok();
}

}  // namespace unidrive::obs
