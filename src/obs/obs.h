// Observability — one bundle of MetricsRegistry + Tracer shared by every
// layer of a client, plus the JSON export the CLI/bench harness writes as
// metrics.json.
//
// A UniDriveClient owns one Observability instance and hands the same
// shared_ptr to its guarded clouds, health registry, quorum lock, metadata
// store and transfer drivers, so one snapshot shows a sync round end to
// end: per-cloud request counts under the retry layer, breaker
// transitions, lock rounds, blocks placed per cloud. Instrumented
// components treat a null Observability as "tracing off" — the
// add_counter()/observe()/start_span() helpers below are no-ops on null,
// so call sites stay branch-free.
#pragma once

#include <memory>
#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace unidrive::obs {

struct Observability {
  explicit Observability(Clock& clock = RealClock::instance(),
                         std::size_t span_capacity = 1024)
      : tracer(clock, span_capacity), clock_(&clock) {}

  MetricsRegistry metrics;
  Tracer tracer;

  [[nodiscard]] Clock& clock() const noexcept { return *clock_; }

 private:
  Clock* clock_;  // non-owning, never null
};

using ObsPtr = std::shared_ptr<Observability>;

// Null-tolerant instrumentation helpers.
[[nodiscard]] inline Span start_span(Observability* obs,
                                     const std::string& name) {
  return obs == nullptr ? Span() : obs->tracer.start(name);
}

inline void add_counter(Observability* obs, const std::string& name,
                        std::uint64_t n = 1) {
  if (obs != nullptr) obs->metrics.counter(name).add(n);
}

inline void observe(Observability* obs, const std::string& name, double v) {
  if (obs != nullptr) obs->metrics.histogram(name).observe(v);
}

inline void set_gauge(Observability* obs, const std::string& name, double v) {
  if (obs != nullptr) obs->metrics.gauge(name).set(v);
}

// The whole Observability as a JSON document:
//   {"counters": {...}, "gauges": {...},
//    "histograms": {"name": {"count":..,"sum":..,"min":..,"max":..,
//                            "mean":..,"p50":..,"p95":..,"p99":..}},
//    "spans": [{"id":..,"parent":..,"name":..,"start":..,"end":..}, ...],
//    "spans_dropped": n}
std::string DumpJson(const Observability& obs);
std::string DumpJson(const MetricsSnapshot& metrics);

// DumpJson() to a file, creating parent directories if needed.
Status WriteJsonFile(const Observability& obs, const std::string& path);

}  // namespace unidrive::obs
