#include "obs/trace.h"

#include <utility>

namespace unidrive::obs {

Span::Span(Span&& other) noexcept
    : tracer_(std::exchange(other.tracer_, nullptr)),
      id_(other.id_),
      parent_(other.parent_),
      name_(std::move(other.name_)),
      start_(other.start_) {}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = std::exchange(other.tracer_, nullptr);
    id_ = other.id_;
    parent_ = other.parent_;
    name_ = std::move(other.name_);
    start_ = other.start_;
  }
  return *this;
}

Span::~Span() { end(); }

void Span::end() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = std::exchange(tracer_, nullptr);
  tracer->finish(*this);
}

Span Span::child(const std::string& name) {
  if (tracer_ == nullptr) return Span();
  return tracer_->start(name, id_);
}

Span Tracer::start(const std::string& name, std::uint64_t parent) {
  return Span(this, next_id_.fetch_add(1, std::memory_order_relaxed), parent,
              name, clock_->now());
}

void Tracer::finish(Span& span) {
  SpanRecord rec;
  rec.id = span.id_;
  rec.parent = span.parent_;
  rec.name = std::move(span.name_);
  rec.start = span.start_;
  rec.end = clock_->now();
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.push_back(std::move(rec));
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<SpanRecord> Tracer::finished() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<SpanRecord>(ring_.begin(), ring_.end());
}

std::optional<SpanRecord> Tracer::find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (it->name == name) return *it;
  }
  return std::nullopt;
}

std::size_t Tracer::count(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const SpanRecord& rec : ring_) {
    if (rec.name == name) ++n;
  }
  return n;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace unidrive::obs
