// Content-defined chunking via a gear rolling hash (an LBFS-style scheme):
// a chunk boundary is declared wherever the rolling hash of the last bytes
// matches a mask. Because boundaries depend only on local content, an edit
// in the middle of a file disturbs only the chunks around the edit — the
// property UniDrive relies on to keep sync traffic proportional to the edit
// size rather than the file size.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace unidrive::chunker {

struct ChunkRef {
  std::size_t offset = 0;
  std::size_t length = 0;
};

struct CdcParams {
  std::size_t min_size = 64 << 10;        // never cut before this many bytes
  std::size_t target_size = 256 << 10;    // expected average chunk size
  std::size_t max_size = 1 << 20;         // always cut at this many bytes

  [[nodiscard]] bool valid() const noexcept {
    return min_size > 0 && min_size <= target_size && target_size <= max_size;
  }
};

// Split `data` into content-defined chunks. Offsets are contiguous and cover
// the whole input; the final chunk may be shorter than min_size.
std::vector<ChunkRef> cdc_split(ByteSpan data, const CdcParams& params);

}  // namespace unidrive::chunker
