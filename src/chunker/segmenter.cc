#include "chunker/segmenter.h"

#include <cassert>

#include "crypto/convergent.h"

namespace unidrive::chunker {

namespace {

// CDC parameters derived from theta: aim for chunks around theta so that the
// clamp rarely has to intervene, with enough slack for merging.
CdcParams cdc_params_for(const SegmenterParams& p) noexcept {
  CdcParams c;
  c.min_size = std::max<std::size_t>(1, p.theta / 4);
  c.target_size = std::max<std::size_t>(c.min_size, p.theta);
  c.max_size = std::max<std::size_t>(c.target_size, p.max_size());
  return c;
}

}  // namespace

std::vector<Segment> segment_file(ByteSpan content,
                                  const SegmenterParams& params) {
  std::vector<Segment> segments;
  if (content.empty()) return segments;

  const std::size_t min_size = params.min_size();
  const std::size_t max_size = params.max_size();

  // Pass 1: raw content-defined chunks.
  const std::vector<ChunkRef> raw = cdc_split(content, cdc_params_for(params));

  // Pass 2: clamp. Merge a too-small chunk into its successor; split a
  // too-large run into max_size pieces (still content-positioned because the
  // run starts at a content-defined boundary).
  std::vector<ChunkRef> clamped;
  std::size_t pending_off = raw.front().offset;
  std::size_t pending_len = 0;
  auto flush = [&](std::size_t off, std::size_t len) {
    // Split oversized runs into near-equal pieces so no remainder falls
    // under min_size: each piece is >= max_size / 2 > min_size.
    const std::size_t pieces = (len + max_size - 1) / max_size;
    const std::size_t base = len / pieces;
    std::size_t extra = len % pieces;  // distribute the remainder
    for (std::size_t i = 0; i < pieces; ++i) {
      const std::size_t piece = base + (extra > 0 ? 1 : 0);
      if (extra > 0) --extra;
      clamped.push_back({off, piece});
      off += piece;
    }
  };
  for (const ChunkRef& c : raw) {
    pending_len += c.length;
    if (pending_len >= min_size) {
      flush(pending_off, pending_len);
      pending_off += pending_len;
      pending_len = 0;
    }
  }
  if (pending_len > 0) {
    // Tail smaller than min_size: merge into the previous segment if that
    // stays under the cap, otherwise keep it as a short final segment.
    if (!clamped.empty() &&
        clamped.back().length + pending_len <= max_size) {
      clamped.back().length += pending_len;
    } else {
      clamped.push_back({pending_off, pending_len});
    }
  }

  segments.reserve(clamped.size());
  for (const ChunkRef& c : clamped) {
    Segment seg;
    seg.offset = c.offset;
    seg.length = c.length;
    seg.id = crypto::segment_id(content.subspan(c.offset, c.length));
    segments.push_back(std::move(seg));
  }
  return segments;
}

Bytes segment_bytes(ByteSpan content, const Segment& seg) {
  assert(seg.offset + seg.length <= content.size());
  const ByteSpan view = content.subspan(seg.offset, seg.length);
  return Bytes(view.begin(), view.end());
}

}  // namespace unidrive::chunker
