#include "chunker/cdc.h"

#include <array>
#include <bit>
#include <cassert>

#include "common/rng.h"

namespace unidrive::chunker {

namespace {

// Random per-byte gear table, fixed seed so chunk boundaries are stable
// across runs, machines, and versions (a requirement for dedup).
const std::array<std::uint64_t, 256>& gear_table() noexcept {
  static const std::array<std::uint64_t, 256> table = [] {
    std::array<std::uint64_t, 256> t{};
    Rng rng(0x756e696472697665ULL);  // "unidrive"
    for (auto& v : t) v = rng.next();
    return t;
  }();
  return table;
}

std::uint64_t mask_for_target(std::size_t target) noexcept {
  // Boundary when (hash & mask) == 0; expected chunk length is ~2^bits.
  const int bits = std::bit_width(target) - 1;
  return (bits >= 64) ? ~0ULL : ((1ULL << bits) - 1);
}

}  // namespace

std::vector<ChunkRef> cdc_split(ByteSpan data, const CdcParams& params) {
  assert(params.valid());
  std::vector<ChunkRef> chunks;
  if (data.empty()) return chunks;

  const auto& gear = gear_table();
  const std::uint64_t mask = mask_for_target(params.target_size);

  std::size_t start = 0;
  while (start < data.size()) {
    const std::size_t remaining = data.size() - start;
    if (remaining <= params.min_size) {
      chunks.push_back({start, remaining});
      break;
    }
    const std::size_t limit = std::min(remaining, params.max_size);
    std::uint64_t hash = 0;
    std::size_t len = limit;  // cut at max_size unless a boundary hits first
    // The gear hash has a window of ~64 bytes (bits shift out); skipping the
    // first min_size bytes both enforces the minimum and warms the window.
    for (std::size_t i = params.min_size; i < limit; ++i) {
      hash = (hash << 1) + gear[data[start + i]];
      if ((hash & mask) == 0) {
        len = i + 1;
        break;
      }
    }
    chunks.push_back({start, len});
    start += len;
  }
  return chunks;
}

}  // namespace unidrive::chunker
