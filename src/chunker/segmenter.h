// UniDrive segmenter: content-defined chunking followed by the paper's size
// clamp — final segments fall in (0.5*theta, 1.5*theta), achieved by merging
// small neighbouring chunks and splitting oversized ones. Each segment is
// identified by the SHA-256 of its content, enabling segment-level dedup
// (pre-upgrade images carry SHA-1 ids; see crypto/convergent.h).
#pragma once

#include <string>
#include <vector>

#include "chunker/cdc.h"
#include "common/bytes.h"

namespace unidrive::chunker {

struct Segment {
  std::string id;      // SHA-256 hex of the content (SHA-1 on legacy images)
  std::size_t offset = 0;
  std::size_t length = 0;
};

struct SegmenterParams {
  std::size_t theta = 4 << 20;  // target segment size (paper: 4 MB)

  [[nodiscard]] std::size_t min_size() const noexcept { return theta / 2 + 1; }
  [[nodiscard]] std::size_t max_size() const noexcept {
    return theta + theta / 2 - 1;
  }
};

// Split the file content into segments obeying the clamp. The concatenation
// of the segments always reproduces the input exactly. Files smaller than
// min_size() yield a single (short) segment.
std::vector<Segment> segment_file(ByteSpan content,
                                  const SegmenterParams& params);

// Extract a segment's bytes.
Bytes segment_bytes(ByteSpan content, const Segment& seg);

}  // namespace unidrive::chunker
