#include "metadata/store.h"

#include "metadata/version_file.h"

#include <algorithm>

#include "common/logging.h"

namespace unidrive::metadata {

// Transient REST failures are the norm (the paper measures 82.5%-99%
// per-request success), but the store does NOT retry: resilience lives one
// layer down, in cloud::RetryingCloud, which wraps every provider handed to
// the store. A failed upload here means the retry budget is already spent
// (or the cloud's circuit breaker is open), so the cloud is skipped for
// this publish and the majority rule decides the outcome.
Status MetaStore::publish(const SyncFolderImage& base, const DeltaLog& delta,
                          bool upload_base) {
  if (clouds_.empty()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "metadata publish with no clouds enrolled");
  }
  obs::Span span = obs::start_span(obs_.get(), "meta.publish");
  const Bytes version_bytes =
      serialize_version_file(delta.latest_version().value_or(base.version()));
  const Bytes delta_bytes = codec_.encode_delta(delta);
  Bytes base_bytes;
  if (upload_base) base_bytes = codec_.encode_image(base);
  if (obs_) {
    if (upload_base) {
      obs_->metrics.gauge("meta.base_bytes")
          .set(static_cast<double>(base_bytes.size()));
    }
    obs_->metrics.gauge("meta.delta_bytes")
        .set(static_cast<double>(delta_bytes.size()));
  }

  std::size_t successes = 0;
  for (const cloud::CloudPtr& c : clouds_) {
    bool ok = true;
    if (upload_base) {
      ok = c->upload(kBasePath, ByteSpan(base_bytes)).is_ok();
    }
    // Order matters: data (base/delta) must land before the version file
    // that advertises it, so a reader never sees a version it cannot fetch.
    ok = ok && c->upload(kDeltaPath, ByteSpan(delta_bytes)).is_ok();
    ok = ok && c->upload(kVersionPath, ByteSpan(version_bytes)).is_ok();
    if (ok) {
      ++successes;
    } else {
      UNI_LOG(kInfo) << "metadata publish failed on " << c->name();
    }
  }
  if (successes < majority()) {
    obs::add_counter(obs_.get(), "meta.publish.err");
    return make_error(ErrorCode::kUnavailable,
                      "metadata publish reached only " +
                          std::to_string(successes) + "/" +
                          std::to_string(clouds_.size()) + " clouds");
  }
  obs::add_counter(obs_.get(), "meta.publish.ok");
  return Status::ok();
}

Result<VersionStamp> MetaStore::fetch_remote_version() {
  if (clouds_.empty()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "metadata fetch with no clouds enrolled");
  }
  std::optional<VersionStamp> best;
  std::size_t responded = 0;
  for (const cloud::CloudPtr& c : clouds_) {
    auto data = c->download(kVersionPath);
    if (!data.is_ok()) {
      if (data.code() == ErrorCode::kNotFound) ++responded;
      continue;
    }
    ++responded;
    auto version = parse_version_file(ByteSpan(data.value()));
    if (!version.is_ok()) continue;
    if (!best.has_value() || *best < version.value()) {
      best = version.value();
    }
  }
  if (responded == 0) {
    return make_error(ErrorCode::kOutage, "no cloud reachable");
  }
  if (!best.has_value()) {
    return make_error(ErrorCode::kNotFound, "no metadata published yet");
  }
  return *best;
}

bool MetaStore::has_cloud_update(const VersionStamp& local) {
  auto remote = fetch_remote_version();
  return remote.is_ok() && local < remote.value();
}

Result<MetaStore::RawMetadata> MetaStore::fetch_raw() {
  obs::Span span = obs::start_span(obs_.get(), "meta.fetch_raw");
  auto fetched = fetch_latest();
  // fetch_latest validates base+delta consistency; re-derive the raw pair
  // from the same winning cloud by re-downloading. Cheaper: reconstruct from
  // the merged image is impossible (delta must be preserved verbatim), so we
  // re-fetch both files from whichever cloud can serve the newest version.
  if (!fetched.is_ok()) return fetched.status();
  const VersionStamp want = fetched.value().version;
  for (const cloud::CloudPtr& c : clouds_) {
    auto version_bytes = c->download(kVersionPath);
    if (!version_bytes.is_ok()) continue;
    auto version = parse_version_file(ByteSpan(version_bytes.value()));
    if (!version.is_ok() || version.value() < want) continue;
    auto base_bytes = c->download(kBasePath);
    if (!base_bytes.is_ok()) continue;
    auto base = codec_.decode_image(ByteSpan(base_bytes.value()));
    if (!base.is_ok()) continue;
    RawMetadata out;
    out.base = std::move(base).take();
    auto delta_bytes = c->download(kDeltaPath);
    if (delta_bytes.is_ok()) {
      auto delta = codec_.decode_delta(ByteSpan(delta_bytes.value()));
      if (delta.is_ok()) out.delta = std::move(delta).take();
    }
    return out;
  }
  return make_error(ErrorCode::kUnavailable, "no cloud served raw metadata");
}

Result<FetchedMetadata> MetaStore::fetch_latest() {
  if (clouds_.empty()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "metadata fetch with no clouds enrolled");
  }
  obs::Span span = obs::start_span(obs_.get(), "meta.fetch_latest");
  // Rank clouds by advertised version, newest first, then try to download
  // the full metadata from each until one succeeds.
  struct Candidate {
    VersionStamp version;
    cloud::CloudProvider* cloud;
  };
  std::vector<Candidate> candidates;
  std::size_t responded = 0;
  for (const cloud::CloudPtr& c : clouds_) {
    auto data = c->download(kVersionPath);
    if (!data.is_ok()) {
      if (data.code() == ErrorCode::kNotFound) ++responded;
      continue;
    }
    ++responded;
    auto version = parse_version_file(ByteSpan(data.value()));
    if (version.is_ok()) candidates.push_back(Candidate{version.value(), c.get()});
  }
  if (candidates.empty()) {
    obs::add_counter(obs_.get(), "meta.fetch.err");
    return make_error(responded == 0 ? ErrorCode::kOutage : ErrorCode::kNotFound,
                      "no metadata available");
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return b.version < a.version;  // newest first
                   });

  // Short-circuit: nothing newer than the last successful fetch is being
  // advertised, so the cached reconstruction IS the newest state (commits
  // are serialized by the quorum lock; versions only move forward).
  if (last_fetch_.has_value() &&
      !(last_fetch_->version < candidates.front().version)) {
    obs::add_counter(obs_.get(), "meta.fetch.short_circuit");
    obs::add_counter(obs_.get(), "meta.fetch.ok");
    return *last_fetch_;
  }

  for (const Candidate& cand : candidates) {
    auto base_bytes = cand.cloud->download(kBasePath);
    if (!base_bytes.is_ok()) continue;
    auto image = codec_.decode_image(ByteSpan(base_bytes.value()));
    if (!image.is_ok()) continue;

    FetchedMetadata out;
    out.image = std::move(image).take();
    auto delta_bytes = cand.cloud->download(kDeltaPath);
    if (delta_bytes.is_ok()) {
      auto delta = codec_.decode_delta(ByteSpan(delta_bytes.value()));
      if (delta.is_ok()) apply_delta(out.image, delta.value());
    }
    // The reconstructed state must reach the advertised version; otherwise
    // this cloud has a stale/torn base+delta pair — try the next one.
    if (out.image.version() < cand.version) continue;
    out.version = out.image.version();
    obs::add_counter(obs_.get(), "meta.fetch.ok");
    last_fetch_ = out;
    return out;
  }
  obs::add_counter(obs_.get(), "meta.fetch.err");
  return make_error(ErrorCode::kUnavailable,
                    "no cloud could supply consistent metadata");
}

}  // namespace unidrive::metadata
