#include "metadata/kv.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/serial.h"
#include "metadata/image.h"

namespace unidrive::metadata {

namespace {
constexpr std::uint32_t kRootMagic = 0x54524455;  // "UDRT"
}  // namespace

Bytes RootPointer::serialize() const {
  BinaryWriter w;
  w.put_u32(kRootMagic);
  serialize_version(w, version);
  w.put_string(manifest_key);
  return std::move(w).take();
}

Result<RootPointer> RootPointer::deserialize(ByteSpan data) {
  BinaryReader r(data);
  UNI_ASSIGN_OR_RETURN(const std::uint32_t magic, r.get_u32());
  if (magic != kRootMagic) {
    return make_error(ErrorCode::kCorrupt, "bad root pointer magic");
  }
  RootPointer p;
  UNI_ASSIGN_OR_RETURN(p.version, deserialize_version(r));
  UNI_ASSIGN_OR_RETURN(p.manifest_key, r.get_string());
  return p;
}

KvStore::KvStore(cloud::MultiCloud clouds, std::string dir, obs::ObsPtr obs)
    : clouds_(std::move(clouds)),
      dir_(std::move(dir)),
      root_path_(dir_ + "/root"),
      obs_(std::move(obs)) {}

Status KvStore::put(const std::string& key, ByteSpan value) {
  if (clouds_.empty()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "kv put with no clouds enrolled");
  }
  const std::string path = object_path(key);
  std::size_t successes = 0;
  for (const cloud::CloudPtr& c : clouds_) {
    if (c->upload(path, value).is_ok()) {
      ++successes;
    } else {
      UNI_LOG(kInfo) << "kv put " << key << " failed on " << c->name();
    }
  }
  if (successes < majority()) {
    obs::add_counter(obs_.get(), "meta.kv.put.err");
    return make_error(ErrorCode::kUnavailable,
                      "kv put " + key + " reached only " +
                          std::to_string(successes) + "/" +
                          std::to_string(clouds_.size()) + " clouds");
  }
  obs::add_counter(obs_.get(), "meta.kv.put.ok");
  return Status::ok();
}

Result<Bytes> KvStore::get(const std::string& key, const Validator& validate) {
  if (clouds_.empty()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "kv get with no clouds enrolled");
  }
  const std::string path = object_path(key);
  bool saw_copy = false;
  std::size_t responded = 0;
  for (const cloud::CloudPtr& c : clouds_) {
    auto data = c->download(path);
    if (!data.is_ok()) {
      if (data.code() == ErrorCode::kNotFound) ++responded;
      continue;
    }
    ++responded;
    saw_copy = true;
    if (!validate || validate(ByteSpan(data.value()))) {
      obs::add_counter(obs_.get(), "meta.kv.get.ok");
      return std::move(data).take();
    }
  }
  obs::add_counter(obs_.get(), "meta.kv.get.err");
  if (saw_copy) {
    return make_error(ErrorCode::kCorrupt,
                      "no valid copy of kv object " + key);
  }
  return make_error(responded == 0 ? ErrorCode::kOutage : ErrorCode::kNotFound,
                    "kv object " + key + " unavailable");
}

void KvStore::remove(const std::string& key) {
  const std::string path = object_path(key);
  for (const cloud::CloudPtr& c : clouds_) {
    (void)c->remove(path);
  }
}

Result<std::vector<std::string>> KvStore::list(const std::string& subdir) {
  if (clouds_.empty()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "kv list with no clouds enrolled");
  }
  const std::string path = subdir.empty() ? dir_ : dir_ + "/" + subdir;
  std::set<std::string> names;
  std::size_t responded = 0;
  for (const cloud::CloudPtr& c : clouds_) {
    auto listing = c->list(path);
    if (!listing.is_ok()) continue;
    ++responded;
    for (const cloud::FileInfo& f : listing.value()) names.insert(f.name);
  }
  if (responded == 0) {
    return make_error(ErrorCode::kOutage, "no cloud answered kv list");
  }
  return std::vector<std::string>(names.begin(), names.end());
}

Result<RootPointer> KvStore::fetch_root() {
  if (clouds_.empty()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "kv fetch_root with no clouds enrolled");
  }
  std::optional<RootPointer> best;
  std::size_t responded = 0;
  for (const cloud::CloudPtr& c : clouds_) {
    auto data = c->download(root_path_);
    if (!data.is_ok()) {
      if (data.code() == ErrorCode::kNotFound) ++responded;
      continue;
    }
    ++responded;
    auto root = RootPointer::deserialize(ByteSpan(data.value()));
    if (!root.is_ok()) continue;
    if (!best.has_value() || best->version < root.value().version) {
      best = std::move(root).take();
    }
  }
  if (responded == 0) {
    return make_error(ErrorCode::kOutage, "no cloud reachable for kv root");
  }
  if (!best.has_value()) {
    return make_error(ErrorCode::kNotFound, "no kv root published yet");
  }
  return *best;
}

Status KvStore::put_root(const RootPointer& root,
                         const std::optional<VersionStamp>& expected) {
  if (clouds_.empty()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "kv put_root with no clouds enrolled");
  }
  // Fence check (read-from-all): a newer root than the one we based this
  // commit on means a concurrent writer already moved past us.
  auto current = fetch_root();
  if (current.is_ok()) {
    const VersionStamp& seen = current.value().version;
    if (!expected.has_value() || *expected < seen) {
      obs::add_counter(obs_.get(), "meta.kv.root.fenced");
      return make_error(ErrorCode::kConflict,
                        "kv root moved to " + seen.to_string() +
                            " past the fenced version");
    }
  } else if (current.code() == ErrorCode::kOutage) {
    return current.status();
  }
  const Bytes bytes = root.serialize();
  std::size_t successes = 0;
  for (const cloud::CloudPtr& c : clouds_) {
    if (c->upload(root_path_, ByteSpan(bytes)).is_ok()) ++successes;
  }
  if (successes < majority()) {
    obs::add_counter(obs_.get(), "meta.kv.root.err");
    return make_error(ErrorCode::kUnavailable,
                      "kv root publish reached only " +
                          std::to_string(successes) + "/" +
                          std::to_string(clouds_.size()) + " clouds");
  }
  obs::add_counter(obs_.get(), "meta.kv.root.ok");
  return Status::ok();
}

}  // namespace unidrive::metadata
