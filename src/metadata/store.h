// MetaStore — replication of the (encrypted) metadata to every cloud and
// retrieval of the newest committed state.
//
// Writes happen only while the quorum lock is held, so at most one writer is
// publishing at any time; a publish succeeds when a majority of clouds
// accepted all three files (version, delta, and base when it changed). Reads
// consult the version files of all reachable clouds and download from any
// cloud advertising the newest version — replication to a majority plus
// read-from-all guarantees the newest committed version is found whenever a
// majority of clouds is reachable.
#pragma once

#include <algorithm>
#include <optional>

#include "cloud/provider.h"
#include "metadata/codec.h"
#include "obs/obs.h"

namespace unidrive::metadata {

struct FetchedMetadata {
  SyncFolderImage image;   // base with delta applied
  VersionStamp version;    // == image.version()
};

class MetaStore {
 public:
  // When `obs` is non-null, publish/fetch are traced ("meta.publish",
  // "meta.fetch_latest", "meta.fetch_raw" spans) and counted
  // (meta.publish.ok|err, meta.fetch.ok|err; meta.base_bytes /
  // meta.delta_bytes gauges track the last published payload sizes).
  MetaStore(cloud::MultiCloud clouds, const std::string& passphrase,
            obs::ObsPtr obs = nullptr,
            crypto::CipherKind cipher = crypto::CipherKind::kDes)
      : clouds_(std::move(clouds)),
        codec_(passphrase, cipher),
        obs_(std::move(obs)) {}

  // Pushes the current metadata state. `upload_base` controls Delta-sync:
  // false = delta + version only (the common, cheap case); true = the delta
  // was folded into the base, push all three.
  Status publish(const SyncFolderImage& base, const DeltaLog& delta,
                 bool upload_base);

  // Newest version advertised by any reachable cloud. kOutage when no cloud
  // responded; kNotFound when no metadata exists yet anywhere.
  Result<VersionStamp> fetch_remote_version();

  // True if a reachable cloud advertises a version newer than `local`.
  [[nodiscard]] bool has_cloud_update(const VersionStamp& local);

  // Downloads and reconstructs the newest metadata (base + delta replay).
  // Re-fetching while no cloud advertises anything newer than the last
  // successful fetch is answered from a local cache (meta.fetch.short_circuit
  // counter) instead of re-downloading and replaying base+delta — versions
  // advance monotonically under the quorum lock, so an equal advertised
  // version IS the cached state.
  Result<FetchedMetadata> fetch_latest();

  // Raw base + delta pair from the cloud advertising the newest version.
  // Used by committers (under the lock) to append to the shared delta log
  // rather than overwrite it.
  struct RawMetadata {
    SyncFolderImage base;
    DeltaLog delta;
  };
  Result<RawMetadata> fetch_raw();

  [[nodiscard]] const cloud::MultiCloud& clouds() const noexcept {
    return clouds_;
  }
  [[nodiscard]] std::size_t majority() const noexcept {
    // max() guards the degenerate empty multi-cloud: a majority of zero
    // clouds must be unreachable, not trivially reached. publish()/fetch
    // additionally refuse outright (kInvalidArgument) when no cloud is
    // enrolled.
    return std::max<std::size_t>(1, clouds_.size() / 2 + 1);
  }

 private:
  cloud::MultiCloud clouds_;
  MetadataCodec codec_;
  obs::ObsPtr obs_;
  // Version short-circuit cache: the last state fetch_latest() returned.
  std::optional<FetchedMetadata> last_fetch_;
};

}  // namespace unidrive::metadata
