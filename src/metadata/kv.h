// KvStore — the KV-style engine under the sharded metadata plane.
//
// Turns the five basic cloud file verbs into the storage contract the
// sharded store needs:
//
//   * put():   immutable-object write, replicated to every cloud, success
//              gated on a majority (write-to-majority).
//   * get():   read of an immutable object from ANY cloud whose copy passes
//              the caller's validator — objects are content-complete
//              (encrypted + integrity-checked one layer up), so the first
//              valid copy is THE object.
//   * root:    the single mutable record (the pointer to the current
//              manifest object). Written to a majority, read from ALL
//              reachable clouds taking the newest — the same
//              write-majority/read-all overlap argument as the monolithic
//              MetaStore's version file. put_root() is version-fenced: the
//              caller states the version it read, and the write is refused
//              (kConflict) if any cloud already advertises a newer root, so
//              a writer that lost the lock (or raced it) can never regress
//              the pointer.
//
// Atomic multi-key commits fall out of immutability: write every new object
// with put(), then flip the root with put_root(). A crash before the root
// flip leaves only unreferenced objects (garbage, collected by compaction);
// readers always see either the old complete object set or the new one.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cloud/provider.h"
#include "common/status.h"
#include "metadata/types.h"
#include "obs/obs.h"

namespace unidrive::metadata {

// The mutable root record: names the current manifest object.
struct RootPointer {
  VersionStamp version;      // == manifest version
  std::string manifest_key;

  [[nodiscard]] Bytes serialize() const;
  static Result<RootPointer> deserialize(ByteSpan data);

  friend bool operator==(const RootPointer& a, const RootPointer& b) noexcept {
    return a.version == b.version && a.manifest_key == b.manifest_key;
  }
};

class KvStore {
 public:
  // Object keys are slash-separated names relative to `dir` (conventionally
  // "/meta/kv"); the root record lives at `dir`/root.
  KvStore(cloud::MultiCloud clouds, std::string dir = "/meta/kv",
          obs::ObsPtr obs = nullptr);

  // Replicates the object to every cloud; OK when a majority accepted.
  Status put(const std::string& key, ByteSpan value);

  // First copy (in cloud order) that `validate` accepts. A null validator
  // accepts anything. kNotFound when no cloud has the key; kCorrupt when
  // copies exist but none validated.
  using Validator = std::function<bool(ByteSpan)>;
  Result<Bytes> get(const std::string& key, const Validator& validate = {});

  // Best-effort delete on every cloud (missing copies are fine). Used by
  // compaction to prune superseded objects; losing the race on some cloud
  // only leaves garbage, never corruption.
  void remove(const std::string& key);

  // Union of the object names under `subdir` across all reachable clouds
  // (an object put() to a majority may be missing from a minority).
  Result<std::vector<std::string>> list(const std::string& subdir);

  // Newest root advertised by any reachable cloud. kOutage when no cloud
  // responded; kNotFound when no root exists yet anywhere.
  Result<RootPointer> fetch_root();

  // Publishes `root` to a majority, fenced on `expected`: if any reachable
  // cloud already advertises a root newer than `expected` (nullopt = "I
  // believe none exists"), returns kConflict without writing. The fence is
  // advisory hardening on top of the root lock — it turns a lock-protocol
  // violation into a clean retry instead of a lost update.
  Status put_root(const RootPointer& root,
                  const std::optional<VersionStamp>& expected);

  [[nodiscard]] const cloud::MultiCloud& clouds() const noexcept {
    return clouds_;
  }
  [[nodiscard]] std::size_t majority() const noexcept {
    // max() guards the degenerate empty multi-cloud: majority of zero clouds
    // must be impossible to reach, not trivially reached.
    return std::max<std::size_t>(1, clouds_.size() / 2 + 1);
  }

 private:
  [[nodiscard]] std::string object_path(const std::string& key) const {
    return dir_ + "/" + key;
  }

  cloud::MultiCloud clouds_;
  std::string dir_;
  std::string root_path_;
  obs::ObsPtr obs_;
};

}  // namespace unidrive::metadata
