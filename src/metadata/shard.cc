#include "metadata/shard.h"

#include <algorithm>

#include "metadata/changelist.h"
#include "metadata/image.h"

namespace unidrive::metadata {

namespace {

constexpr std::uint32_t kManifestMagic = 0x464D4455;  // "UDMF"
constexpr std::uint8_t kManifestFormatVersion = 1;

// FNV-1a over the routing key: stable across platforms, good enough spread
// for directory names, and cheap (routing runs once per change).
std::uint32_t fnv1a(std::string_view s) {
  std::uint32_t h = 2166136261u;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

// "/docs/a/b.txt" -> "docs"; "/top.txt" -> "top.txt"; "" -> "".
std::string_view top_component(const std::string& path) {
  std::string_view v(path);
  if (!v.empty() && v.front() == '/') v.remove_prefix(1);
  const std::size_t slash = v.find('/');
  return slash == std::string_view::npos ? v : v.substr(0, slash);
}

}  // namespace

ShardId shard_of_path(const std::string& path, std::uint32_t num_shards) {
  if (num_shards <= 1) return 0;
  return fnv1a(top_component(path)) % num_shards;
}

ShardId shard_of_segment(const std::string& segment_id,
                         std::uint32_t num_shards) {
  if (num_shards <= 1) return 0;
  return fnv1a(segment_id) % num_shards;
}

ShardId shard_of_change(const Change& change, std::uint32_t num_shards) {
  switch (change.kind) {
    case ChangeKind::kUpsertSegment:
    case ChangeKind::kDropSegment:
      return shard_of_segment(change.path, num_shards);
    default:
      return shard_of_path(change.path, num_shards);
  }
}

std::vector<ShardSlice> split_changes_by_shard(
    const std::vector<Change>& changes, std::uint32_t num_shards) {
  std::vector<ShardSlice> slices;
  for (const Change& c : changes) {
    const ShardId id = shard_of_change(c, num_shards);
    auto it = std::find_if(slices.begin(), slices.end(),
                           [&](const ShardSlice& s) { return s.shard == id; });
    if (it == slices.end()) {
      slices.push_back(ShardSlice{id, {}});
      it = std::prev(slices.end());
    }
    it->changes.push_back(c);
  }
  std::sort(slices.begin(), slices.end(),
            [](const ShardSlice& a, const ShardSlice& b) {
              return a.shard < b.shard;
            });
  return slices;
}

// --- manifest --------------------------------------------------------------

const ShardEntry* ShardManifest::find(ShardId id) const {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), id,
      [](const ShardEntry& e, ShardId want) { return e.id < want; });
  return it != entries.end() && it->id == id ? &*it : nullptr;
}

ShardEntry* ShardManifest::find_mutable(ShardId id) {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), id,
      [](const ShardEntry& e, ShardId want) { return e.id < want; });
  return it != entries.end() && it->id == id ? &*it : nullptr;
}

void ShardManifest::upsert(ShardEntry entry) {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), entry.id,
      [](const ShardEntry& e, ShardId want) { return e.id < want; });
  if (it != entries.end() && it->id == entry.id) {
    *it = std::move(entry);
  } else {
    entries.insert(it, std::move(entry));
  }
}

Bytes ShardManifest::serialize() const {
  BinaryWriter w;
  w.put_u32(kManifestMagic);
  w.put_u8(kManifestFormatVersion);
  serialize_version(w, version);
  w.put_varint(num_shards);
  w.put_varint(entries.size());
  for (const ShardEntry& e : entries) {
    w.put_varint(e.id);
    serialize_version(w, e.version);
    w.put_string(e.base_key);
    w.put_varint(e.base_size);
    w.put_varint(e.deltas.size());
    for (const DeltaRef& d : e.deltas) {
      w.put_string(d.key);
      w.put_varint(d.size);
    }
  }
  return std::move(w).take();
}

Result<ShardManifest> ShardManifest::deserialize(ByteSpan data) {
  BinaryReader r(data);
  UNI_ASSIGN_OR_RETURN(const std::uint32_t magic, r.get_u32());
  if (magic != kManifestMagic) {
    return make_error(ErrorCode::kCorrupt, "bad manifest magic");
  }
  UNI_ASSIGN_OR_RETURN(const std::uint8_t fmt, r.get_u8());
  if (fmt != kManifestFormatVersion) {
    return make_error(ErrorCode::kCorrupt, "unsupported manifest version");
  }
  ShardManifest m;
  UNI_ASSIGN_OR_RETURN(m.version, deserialize_version(r));
  UNI_ASSIGN_OR_RETURN(const std::uint64_t shards, r.get_varint());
  m.num_shards = static_cast<std::uint32_t>(shards);
  if (m.num_shards == 0) {
    return make_error(ErrorCode::kCorrupt, "manifest with zero shards");
  }
  UNI_ASSIGN_OR_RETURN(const std::uint64_t n, r.get_varint());
  m.entries.reserve(std::min<std::uint64_t>(n, r.remaining()));
  ShardId prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    ShardEntry e;
    UNI_ASSIGN_OR_RETURN(const std::uint64_t id, r.get_varint());
    e.id = static_cast<ShardId>(id);
    if (e.id >= m.num_shards || (i > 0 && e.id <= prev)) {
      return make_error(ErrorCode::kCorrupt, "manifest entries unordered");
    }
    prev = e.id;
    UNI_ASSIGN_OR_RETURN(e.version, deserialize_version(r));
    UNI_ASSIGN_OR_RETURN(e.base_key, r.get_string());
    UNI_ASSIGN_OR_RETURN(e.base_size, r.get_varint());
    UNI_ASSIGN_OR_RETURN(const std::uint64_t nd, r.get_varint());
    e.deltas.reserve(std::min<std::uint64_t>(nd, r.remaining()));
    for (std::uint64_t j = 0; j < nd; ++j) {
      DeltaRef d;
      UNI_ASSIGN_OR_RETURN(d.key, r.get_string());
      UNI_ASSIGN_OR_RETURN(d.size, r.get_varint());
      e.deltas.push_back(std::move(d));
    }
    m.entries.push_back(std::move(e));
  }
  if (!r.at_end()) {
    return make_error(ErrorCode::kCorrupt, "trailing bytes after manifest");
  }
  return m;
}

// --- object keys -----------------------------------------------------------

namespace {
std::string stamp_tag(const VersionStamp& v) {
  return std::to_string(v.counter) + "_" + v.device;
}
}  // namespace

std::string shard_base_key(ShardId id, const VersionStamp& v) {
  return "b" + std::to_string(id) + "/" + stamp_tag(v);
}

std::string shard_delta_key(ShardId id, const VersionStamp& v) {
  return "d" + std::to_string(id) + "/" + stamp_tag(v);
}

std::string manifest_key(const VersionStamp& v) {
  return "m/" + stamp_tag(v);
}

}  // namespace unidrive::metadata
