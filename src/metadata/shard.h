// Sharding of the metadata plane: routing paths/segments to shards, and the
// root manifest that ties the per-shard state together.
//
// The monolithic SyncFolderImage made every commit O(folder): serialize the
// whole image, replicate it, replay it. At population scale (10^6+ files,
// thousands of writers per shared folder) that is fatal. The sharded design
// splits the image by subtree: each shard owns the files/dirs/segments that
// hash-route to it and carries its own quorum-replicated base object, delta
// objects and version stamp. One tiny root manifest — the only mutable
// record — names the current object set of every shard; flipping the root
// pointer commits all dirty shards atomically (Unity-style small versioned
// records instead of a monolith).
//
// Object naming: every base/delta/manifest object is immutable and
// content-unique (keyed by the committing version stamp), so writers never
// overwrite each other's data objects and a torn publish can never corrupt
// a previously committed state — crash consistency falls out of
// write-new-then-flip-pointer ordering.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/serial.h"
#include "metadata/types.h"

namespace unidrive::metadata {

using ShardId = std::uint32_t;

// --- routing ---------------------------------------------------------------

// Routes a normalized path ("/docs/a.txt") to its shard by hashing the top
// path component ("docs"). Whole subtrees land in one shard, so a commit
// touching one directory tree dirties exactly one shard; the root directory
// itself ("/x.txt" files) routes by the file name. FNV-1a keeps routing
// stable across processes and platforms (no std::hash).
ShardId shard_of_path(const std::string& path, std::uint32_t num_shards);

// Segments route by their content id so blocks referenced from several
// subtrees have exactly one owning shard.
ShardId shard_of_segment(const std::string& segment_id,
                         std::uint32_t num_shards);

// Shard of one committed Change (file/dir changes by path, segment changes
// by segment id).
ShardId shard_of_change(const struct Change& change, std::uint32_t num_shards);

// Groups a change list by shard, preserving per-shard order.
struct ShardSlice {
  ShardId shard = 0;
  std::vector<Change> changes;
};
std::vector<ShardSlice> split_changes_by_shard(
    const std::vector<Change>& changes, std::uint32_t num_shards);

// --- manifest --------------------------------------------------------------

// One immutable delta object appended by a commit.
struct DeltaRef {
  std::string key;            // KV object key
  std::uint64_t size = 0;     // encoded size (for λ merge decisions)

  friend bool operator==(const DeltaRef& a, const DeltaRef& b) noexcept {
    return a.key == b.key && a.size == b.size;
  }
};

// Current durable state of one shard: its base object plus the delta chain
// to replay on top, and the shard's own version stamp (advanced only by
// commits that touched this shard — clean shards keep their stamp, which is
// what makes "did this shard change since I last fetched it" a pure
// manifest-level comparison).
struct ShardEntry {
  ShardId id = 0;
  VersionStamp version;
  std::string base_key;        // empty until the first fold
  std::uint64_t base_size = 0;
  std::vector<DeltaRef> deltas;

  friend bool operator==(const ShardEntry& a, const ShardEntry& b) noexcept {
    return a.id == b.id && a.version == b.version &&
           a.base_key == b.base_key && a.base_size == b.base_size &&
           a.deltas == b.deltas;
  }
};

// The root manifest: the single mutable record of the sharded store. Tiny —
// O(num_shards) keys, no file metadata — so publishing it is O(1) in folder
// size. `version` is the global commit stamp (successor of every shard
// stamp inside).
struct ShardManifest {
  VersionStamp version;
  std::uint32_t num_shards = 0;
  std::vector<ShardEntry> entries;  // sorted by id, only non-empty shards

  [[nodiscard]] const ShardEntry* find(ShardId id) const;
  [[nodiscard]] ShardEntry* find_mutable(ShardId id);
  // Inserts or replaces the entry, keeping `entries` sorted by id.
  void upsert(ShardEntry entry);

  [[nodiscard]] Bytes serialize() const;
  static Result<ShardManifest> deserialize(ByteSpan data);

  friend bool operator==(const ShardManifest& a,
                         const ShardManifest& b) noexcept {
    return a.version == b.version && a.num_shards == b.num_shards &&
           a.entries == b.entries;
  }
};

// --- object keys -----------------------------------------------------------
// All sharded-store objects live under one KV directory per kind; the key
// embeds the committing version stamp so keys never collide or get reused.

std::string shard_base_key(ShardId id, const VersionStamp& v);
std::string shard_delta_key(ShardId id, const VersionStamp& v);
std::string manifest_key(const VersionStamp& v);

}  // namespace unidrive::metadata
