#include "metadata/image.h"

#include <algorithm>

namespace unidrive::metadata {

namespace {
constexpr std::uint32_t kImageMagic = 0x4D494455;  // "UDIM"
constexpr std::uint8_t kImageFormatVersion = 2;    // v2 added history
}  // namespace

void SyncFolderImage::add_refs(const FileSnapshot& snapshot, int delta) {
  for (const std::string& seg_id : snapshot.segment_ids) {
    auto it = segments_.find(seg_id);
    if (it == segments_.end()) {
      // Referencing a segment before it is registered: create a stub so the
      // refcount is not lost (block locations arrive with upsert_segment).
      SegmentInfo stub;
      stub.id = seg_id;
      it = segments_.emplace(seg_id, std::move(stub)).first;
    }
    const int next =
        static_cast<int>(it->second.refcount) + delta;
    it->second.refcount = next > 0 ? static_cast<std::uint32_t>(next) : 0;
  }
}

void SyncFolderImage::upsert_file(const FileSnapshot& snapshot) {
  auto it = files_.find(snapshot.path);
  if (it != files_.end()) {
    if (it->second == snapshot) return;  // no-op rewrite
    // Retire the superseded snapshot into the bounded history; it keeps its
    // segment references until it falls off the end.
    auto& hist = history_[snapshot.path];
    hist.insert(hist.begin(), it->second);
    while (hist.size() > kHistoryDepth) {
      add_refs(hist.back(), -1);
      hist.pop_back();
    }
    it->second = snapshot;
  } else {
    it = files_.emplace(snapshot.path, snapshot).first;
  }
  add_refs(snapshot, +1);
}

void SyncFolderImage::delete_file(const std::string& path) {
  const auto it = files_.find(path);
  if (it == files_.end()) return;
  add_refs(it->second, -1);
  files_.erase(it);
  const auto hist_it = history_.find(path);
  if (hist_it != history_.end()) {
    for (const FileSnapshot& old : hist_it->second) add_refs(old, -1);
    history_.erase(hist_it);
  }
}

std::vector<FileSnapshot> SyncFolderImage::history(
    const std::string& path) const {
  const auto it = history_.find(path);
  return it == history_.end() ? std::vector<FileSnapshot>{} : it->second;
}

const FileSnapshot* SyncFolderImage::find_file(const std::string& path) const {
  const auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

void SyncFolderImage::upsert_segment(const SegmentInfo& segment) {
  auto it = segments_.find(segment.id);
  if (it == segments_.end()) {
    segments_.emplace(segment.id, segment);
    return;
  }
  const std::uint32_t refs = it->second.refcount;
  it->second = segment;
  it->second.refcount = refs;
}

void SyncFolderImage::drop_segment(const std::string& id) {
  segments_.erase(id);
}

const SegmentInfo* SyncFolderImage::find_segment(const std::string& id) const {
  const auto it = segments_.find(id);
  return it == segments_.end() ? nullptr : &it->second;
}

SegmentInfo* SyncFolderImage::find_segment_mutable(const std::string& id) {
  const auto it = segments_.find(id);
  return it == segments_.end() ? nullptr : &it->second;
}

std::vector<std::string> SyncFolderImage::garbage_segments() const {
  std::vector<std::string> out;
  for (const auto& [id, info] : segments_) {
    if (info.refcount == 0) out.push_back(id);
  }
  return out;
}

void SyncFolderImage::rebuild_refcounts() {
  for (auto& [id, info] : segments_) info.refcount = 0;
  const auto count_snapshot = [&](const FileSnapshot& snapshot) {
    for (const std::string& seg_id : snapshot.segment_ids) {
      auto it = segments_.find(seg_id);
      if (it == segments_.end()) {
        SegmentInfo stub;
        stub.id = seg_id;
        it = segments_.emplace(seg_id, std::move(stub)).first;
      }
      ++it->second.refcount;
    }
  };
  for (const auto& [path, snapshot] : files_) count_snapshot(snapshot);
  for (const auto& [path, hist] : history_) {
    for (const FileSnapshot& old : hist) count_snapshot(old);
  }
}

void SyncFolderImage::prune_segment_stubs() {
  // Stubs (blockless, zero-size entries manufactured by add_refs for
  // cross-shard references) are per-shard bookkeeping, not real segments.
  // On an assembled image an unreferenced stub must not linger — it would
  // masquerade as garbage forever (the real entry lives, and is dropped,
  // in the segment's own shard). Referenced stubs are kept: they flag a
  // dangling cross-shard reference the materializer should surface.
  for (auto it = segments_.begin(); it != segments_.end();) {
    const bool stub = it->second.blocks.empty() && it->second.size == 0;
    if (stub && it->second.refcount == 0) {
      it = segments_.erase(it);
    } else {
      ++it;
    }
  }
}

void SyncFolderImage::absorb(const SyncFolderImage& other) {
  for (const std::string& d : other.dirs_) dirs_.insert(d);
  for (const auto& [path, snapshot] : other.files_) {
    files_[path] = snapshot;
  }
  for (const auto& [path, hist] : other.history_) {
    history_[path] = hist;
  }
  for (const auto& [id, info] : other.segments_) {
    auto it = segments_.find(id);
    if (it == segments_.end()) {
      segments_.emplace(id, info);
      continue;
    }
    // A record with blocks (or a size) is the owning shard's real entry; a
    // blockless zero-size record is a stub manufactured by add_refs for a
    // cross-shard reference. Real beats stub, whichever arrives second.
    const bool incoming_real = !info.blocks.empty() || info.size > 0;
    const bool existing_real =
        !it->second.blocks.empty() || it->second.size > 0;
    if (incoming_real || !existing_real) it->second = info;
  }
  if (version_ < other.version_) version_ = other.version_;
}

// --- serialization ----------------------------------------------------------

void serialize_version(BinaryWriter& w, const VersionStamp& v) {
  w.put_string(v.device);
  w.put_varint(v.counter);
  w.put_double(v.timestamp);
}

Result<VersionStamp> deserialize_version(BinaryReader& r) {
  VersionStamp v;
  UNI_ASSIGN_OR_RETURN(v.device, r.get_string());
  UNI_ASSIGN_OR_RETURN(v.counter, r.get_varint());
  UNI_ASSIGN_OR_RETURN(v.timestamp, r.get_double());
  return v;
}

void serialize_snapshot(BinaryWriter& w, const FileSnapshot& s) {
  w.put_string(s.path);
  w.put_double(s.mtime);
  w.put_varint(s.size);
  w.put_string(s.content_hash);
  w.put_varint(s.segment_ids.size());
  for (const std::string& id : s.segment_ids) w.put_string(id);
  w.put_string(s.origin_device);
}

Result<FileSnapshot> deserialize_snapshot(BinaryReader& r) {
  FileSnapshot s;
  UNI_ASSIGN_OR_RETURN(s.path, r.get_string());
  UNI_ASSIGN_OR_RETURN(s.mtime, r.get_double());
  UNI_ASSIGN_OR_RETURN(s.size, r.get_varint());
  UNI_ASSIGN_OR_RETURN(s.content_hash, r.get_string());
  UNI_ASSIGN_OR_RETURN(const std::uint64_t n, r.get_varint());
  // Counts come from untrusted bytes: never reserve more than the buffer
  // could possibly encode (>= 1 byte per element), or a hostile count
  // triggers a giant allocation before the first element read fails.
  s.segment_ids.reserve(std::min<std::uint64_t>(n, r.remaining()));
  for (std::uint64_t i = 0; i < n; ++i) {
    UNI_ASSIGN_OR_RETURN(std::string id, r.get_string());
    s.segment_ids.push_back(std::move(id));
  }
  UNI_ASSIGN_OR_RETURN(s.origin_device, r.get_string());
  return s;
}

void serialize_segment(BinaryWriter& w, const SegmentInfo& s) {
  w.put_string(s.id);
  w.put_varint(s.size);
  w.put_varint(s.refcount);
  w.put_varint(s.blocks.size());
  for (const BlockLocation& b : s.blocks) {
    w.put_varint(b.block_index);
    w.put_varint(b.cloud);
  }
}

Result<SegmentInfo> deserialize_segment(BinaryReader& r) {
  SegmentInfo s;
  UNI_ASSIGN_OR_RETURN(s.id, r.get_string());
  UNI_ASSIGN_OR_RETURN(s.size, r.get_varint());
  UNI_ASSIGN_OR_RETURN(const std::uint64_t refs, r.get_varint());
  s.refcount = static_cast<std::uint32_t>(refs);
  UNI_ASSIGN_OR_RETURN(const std::uint64_t n, r.get_varint());
  s.blocks.reserve(std::min<std::uint64_t>(n, r.remaining()));
  for (std::uint64_t i = 0; i < n; ++i) {
    BlockLocation b;
    UNI_ASSIGN_OR_RETURN(const std::uint64_t idx, r.get_varint());
    UNI_ASSIGN_OR_RETURN(const std::uint64_t cl, r.get_varint());
    b.block_index = static_cast<std::uint32_t>(idx);
    b.cloud = static_cast<cloud::CloudId>(cl);
    s.blocks.push_back(b);
  }
  return s;
}

Bytes SyncFolderImage::serialize() const {
  BinaryWriter w;
  w.put_u32(kImageMagic);
  w.put_u8(kImageFormatVersion);
  serialize_version(w, version_);
  w.put_varint(dirs_.size());
  for (const std::string& d : dirs_) w.put_string(d);
  w.put_varint(files_.size());
  for (const auto& [path, snapshot] : files_) serialize_snapshot(w, snapshot);
  w.put_varint(history_.size());
  for (const auto& [path, hist] : history_) {
    w.put_string(path);
    w.put_varint(hist.size());
    for (const FileSnapshot& old : hist) serialize_snapshot(w, old);
  }
  w.put_varint(segments_.size());
  for (const auto& [id, info] : segments_) serialize_segment(w, info);
  return std::move(w).take();
}

Result<SyncFolderImage> SyncFolderImage::deserialize(ByteSpan data) {
  BinaryReader r(data);
  UNI_ASSIGN_OR_RETURN(const std::uint32_t magic, r.get_u32());
  if (magic != kImageMagic) {
    return make_error(ErrorCode::kCorrupt, "bad image magic");
  }
  UNI_ASSIGN_OR_RETURN(const std::uint8_t fmt, r.get_u8());
  if (fmt != kImageFormatVersion) {
    return make_error(ErrorCode::kCorrupt, "unsupported image version");
  }
  SyncFolderImage image;
  UNI_ASSIGN_OR_RETURN(image.version_, deserialize_version(r));
  UNI_ASSIGN_OR_RETURN(const std::uint64_t ndirs, r.get_varint());
  for (std::uint64_t i = 0; i < ndirs; ++i) {
    UNI_ASSIGN_OR_RETURN(std::string d, r.get_string());
    image.dirs_.insert(std::move(d));
  }
  UNI_ASSIGN_OR_RETURN(const std::uint64_t nfiles, r.get_varint());
  for (std::uint64_t i = 0; i < nfiles; ++i) {
    UNI_ASSIGN_OR_RETURN(FileSnapshot s, deserialize_snapshot(r));
    image.files_.emplace(s.path, std::move(s));
  }
  UNI_ASSIGN_OR_RETURN(const std::uint64_t nhist, r.get_varint());
  for (std::uint64_t i = 0; i < nhist; ++i) {
    UNI_ASSIGN_OR_RETURN(std::string path, r.get_string());
    UNI_ASSIGN_OR_RETURN(const std::uint64_t count, r.get_varint());
    std::vector<FileSnapshot> hist;
    hist.reserve(std::min<std::uint64_t>(count, r.remaining()));
    for (std::uint64_t j = 0; j < count; ++j) {
      UNI_ASSIGN_OR_RETURN(FileSnapshot s, deserialize_snapshot(r));
      hist.push_back(std::move(s));
    }
    image.history_.emplace(std::move(path), std::move(hist));
  }
  UNI_ASSIGN_OR_RETURN(const std::uint64_t nsegs, r.get_varint());
  for (std::uint64_t i = 0; i < nsegs; ++i) {
    UNI_ASSIGN_OR_RETURN(SegmentInfo s, deserialize_segment(r));
    image.segments_.emplace(s.id, std::move(s));
  }
  // Refcounts are derived from the entries; recomputing here makes the
  // invariant hold regardless of what the serialized counts said.
  image.rebuild_refcounts();
  return image;
}

bool operator==(const SyncFolderImage& a, const SyncFolderImage& b) {
  return a.version_ == b.version_ && a.dirs_ == b.dirs_ &&
         a.files_ == b.files_ && a.history_ == b.history_ &&
         a.segments_ == b.segments_;
}

}  // namespace unidrive::metadata
