#include "metadata/version_file.h"
#include "metadata/image.h"

namespace unidrive::metadata {

namespace {
constexpr std::uint32_t kVersionMagic = 0x53564455;  // "UDVS"
}  // namespace

Bytes serialize_version_file(const VersionStamp& version) {
  BinaryWriter w;
  w.put_u32(kVersionMagic);
  serialize_version(w, version);
  return std::move(w).take();
}

Result<VersionStamp> parse_version_file(ByteSpan data) {
  BinaryReader r(data);
  UNI_ASSIGN_OR_RETURN(const std::uint32_t magic, r.get_u32());
  if (magic != kVersionMagic) {
    return make_error(ErrorCode::kCorrupt, "bad version-file magic");
  }
  return deserialize_version(r);
}

}  // namespace unidrive::metadata
