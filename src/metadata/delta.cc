#include "metadata/delta.h"

#include "crypto/crc32.h"

namespace unidrive::metadata {

namespace {
constexpr std::uint32_t kDeltaMagic = 0x474C4455;  // "UDLG"
}  // namespace

std::optional<VersionStamp> DeltaLog::latest_version() const {
  if (records_.empty()) return std::nullopt;
  return records_.back().version;
}

Bytes DeltaLog::serialize() const {
  BinaryWriter w;
  w.put_u32(kDeltaMagic);
  for (const CommitRecord& record : records_) {
    BinaryWriter body;
    serialize_version(body, record.version);
    body.put_varint(record.changes.size());
    for (const Change& c : record.changes) serialize_change(body, c);

    w.put_varint(body.size());
    w.put_u32(crypto::crc32c(ByteSpan(body.data())));
    w.put_raw(ByteSpan(body.data()));
  }
  return std::move(w).take();
}

Result<DeltaLog> DeltaLog::deserialize(ByteSpan data) {
  BinaryReader r(data);
  UNI_ASSIGN_OR_RETURN(const std::uint32_t magic, r.get_u32());
  if (magic != kDeltaMagic) {
    return make_error(ErrorCode::kCorrupt, "bad delta magic");
  }
  DeltaLog log;
  while (!r.at_end()) {
    auto len_result = r.get_varint();
    if (!len_result.is_ok()) break;  // torn tail: keep the valid prefix
    auto crc_result = r.get_u32();
    if (!crc_result.is_ok()) break;
    auto body_result = r.get_raw(len_result.value());
    if (!body_result.is_ok()) break;
    const Bytes body = std::move(body_result).take();
    if (crypto::crc32c(ByteSpan(body)) != crc_result.value()) break;

    BinaryReader body_reader{ByteSpan(body)};
    CommitRecord record;
    auto version_result = deserialize_version(body_reader);
    if (!version_result.is_ok()) break;
    record.version = std::move(version_result).take();
    auto count_result = body_reader.get_varint();
    if (!count_result.is_ok()) break;
    bool record_ok = true;
    for (std::uint64_t i = 0; i < count_result.value(); ++i) {
      auto change_result = deserialize_change(body_reader);
      if (!change_result.is_ok()) {
        record_ok = false;
        break;
      }
      record.changes.push_back(std::move(change_result).take());
    }
    if (!record_ok) break;
    log.append(std::move(record));
  }
  return log;
}

void apply_delta(SyncFolderImage& image, const DeltaLog& log) {
  for (const CommitRecord& record : log.records()) {
    if (!(image.version() < record.version)) continue;  // already applied
    for (const Change& c : record.changes) apply_change(image, c);
    image.set_version(record.version);
  }
}

}  // namespace unidrive::metadata
