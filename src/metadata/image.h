// SyncFolderImage — the single metadata file at the heart of UniDrive.
//
// Unlike per-file metadata designs (DepSky, MetaSync), UniDrive captures the
// complete sync-folder state in one image: the directory hierarchy, a
// snapshot per file, and the segment pool mapping content-addressed segments
// to erasure-coded block locations. Replicating this one file to all clouds
// (instead of thousands of tiny ones) is what keeps metadata overhead ~1%.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/serial.h"
#include "metadata/types.h"

namespace unidrive::metadata {

class SyncFolderImage {
 public:
  // How many superseded snapshots are retained per file ("each entry
  // contains the snapshots of the corresponding file" — the history is what
  // makes later conflict resolution and version restore possible).
  static constexpr std::size_t kHistoryDepth = 3;

  // --- files -------------------------------------------------------------
  // Sets the current snapshot for the file (creates or replaces the entry)
  // and adjusts segment refcounts. The superseded snapshot is pushed onto
  // the file's history (bounded by kHistoryDepth), which keeps its segments
  // referenced so old versions stay restorable.
  void upsert_file(const FileSnapshot& snapshot);

  // Removes the file entry (current + history); decrements refcounts of its
  // segments. Segments whose refcount drops to zero stay in the pool
  // flagged for GC (their blocks must be deleted from the clouds before
  // dropping them).
  void delete_file(const std::string& path);

  [[nodiscard]] const FileSnapshot* find_file(const std::string& path) const;
  [[nodiscard]] const std::map<std::string, FileSnapshot>& files() const noexcept {
    return files_;
  }

  // Superseded snapshots of a file, most recent first. Empty when the file
  // never changed (or does not exist).
  [[nodiscard]] std::vector<FileSnapshot> history(const std::string& path) const;

  // --- directories ---------------------------------------------------------
  void add_dir(const std::string& path) { dirs_.insert(path); }
  void delete_dir(const std::string& path) { dirs_.erase(path); }
  [[nodiscard]] const std::set<std::string>& dirs() const noexcept {
    return dirs_;
  }

  // --- segment pool --------------------------------------------------------
  // Registers or replaces a segment record (block locations update as upload
  // callbacks land). Refcount is managed by upsert_file/delete_file;
  // upsert_segment preserves the existing refcount when replacing.
  void upsert_segment(const SegmentInfo& segment);
  void drop_segment(const std::string& id);
  [[nodiscard]] const SegmentInfo* find_segment(const std::string& id) const;
  [[nodiscard]] SegmentInfo* find_segment_mutable(const std::string& id);
  [[nodiscard]] const std::map<std::string, SegmentInfo>& segments() const noexcept {
    return segments_;
  }

  // Segments with refcount zero: candidates for block deletion + drop.
  [[nodiscard]] std::vector<std::string> garbage_segments() const;

  // Recomputes every segment refcount from the file entries. Invariant used
  // by property tests: rebuild is a no-op on a consistent image.
  void rebuild_refcounts();

  // Drops unreferenced blockless stub entries (per-shard refcount
  // bookkeeping). Run after rebuild_refcounts() when assembling the full
  // image from shards, so stubs never masquerade as garbage segments.
  void prune_segment_stubs();

  // --- sharding ------------------------------------------------------------
  // Copies the subset of this image selected by the predicates into a new
  // image: files (with their history) whose path satisfies `keep_path`, dirs
  // likewise, segments whose id satisfies `keep_segment`. Refcounts are NOT
  // recomputed — the extracted shard keeps each segment's pool-wide count so
  // reassembly (absorb + rebuild_refcounts) round-trips. Cross-shard
  // references (a kept file referencing a segment routed elsewhere) are left
  // dangling here; absorb() resolves them when shards are reassembled.
  template <typename PathPred, typename SegPred>
  [[nodiscard]] SyncFolderImage extract(PathPred keep_path,
                                        SegPred keep_segment) const {
    SyncFolderImage out;
    out.version_ = version_;
    for (const std::string& d : dirs_) {
      if (keep_path(d)) out.dirs_.insert(d);
    }
    for (const auto& [path, snapshot] : files_) {
      if (keep_path(path)) out.files_.emplace(path, snapshot);
    }
    for (const auto& [path, hist] : history_) {
      if (keep_path(path)) out.history_.emplace(path, hist);
    }
    for (const auto& [id, info] : segments_) {
      if (keep_segment(id)) out.segments_.emplace(id, info);
    }
    return out;
  }

  // Unions `other` into this image (shard reassembly). Entries are disjoint
  // by construction (each path/segment routes to exactly one shard), but a
  // real segment record always beats a refcount stub left by a foreign
  // shard's dangling reference. Call rebuild_refcounts() once after the last
  // absorb to restore pool-wide counts.
  void absorb(const SyncFolderImage& other);

  // --- version -------------------------------------------------------------
  [[nodiscard]] const VersionStamp& version() const noexcept { return version_; }
  void set_version(VersionStamp v) { version_ = std::move(v); }

  // --- serialization ---------------------------------------------------------
  [[nodiscard]] Bytes serialize() const;
  static Result<SyncFolderImage> deserialize(ByteSpan data);

  friend bool operator==(const SyncFolderImage& a, const SyncFolderImage& b);

 private:
  void add_refs(const FileSnapshot& snapshot, int delta);

  std::map<std::string, FileSnapshot> files_;   // path -> current snapshot
  // path -> superseded snapshots, most recent first, <= kHistoryDepth.
  // History snapshots hold segment references (so their data is not GC'd).
  std::map<std::string, std::vector<FileSnapshot>> history_;
  std::set<std::string> dirs_;
  std::map<std::string, SegmentInfo> segments_; // id -> info
  VersionStamp version_;
};

void serialize_snapshot(BinaryWriter& w, const FileSnapshot& s);
Result<FileSnapshot> deserialize_snapshot(BinaryReader& r);
void serialize_segment(BinaryWriter& w, const SegmentInfo& s);
Result<SegmentInfo> deserialize_segment(BinaryReader& r);
void serialize_version(BinaryWriter& w, const VersionStamp& v);
Result<VersionStamp> deserialize_version(BinaryReader& r);

}  // namespace unidrive::metadata
