#include "metadata/codec.h"

#include <algorithm>

#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace unidrive::metadata {

namespace {
// DES-CBC provides confidentiality but no integrity; a flipped ciphertext
// bit garbles one block and can still deserialize into a plausible-looking
// image. The envelope carries a SHA-256 of the payload INSIDE the
// encryption, so any tampering (or a wrong key) is detected before the
// plaintext is trusted.
constexpr std::uint32_t kEnvelopeMagic = 0x31454455;  // "UDE1"
}  // namespace

Bytes MetadataCodec::encrypt(ByteSpan plain) const {
  BinaryWriter envelope;
  envelope.put_u32(kEnvelopeMagic);
  envelope.put_raw(plain);
  const auto digest = crypto::Sha256::hash(plain);
  envelope.put_raw(ByteSpan(digest.data(), digest.size()));

  const auto iv_digest = crypto::Sha1::hash(plain);
  crypto::Des::Block iv;
  std::copy_n(iv_digest.begin(), iv.size(), iv.begin());
  return crypto::des_cbc_encrypt(key_, ByteSpan(envelope.data()), iv);
}

Result<Bytes> MetadataCodec::decrypt(ByteSpan cipher) const {
  UNI_ASSIGN_OR_RETURN(const Bytes envelope,
                       crypto::des_cbc_decrypt(key_, cipher));
  if (envelope.size() < 4 + crypto::Sha256::kDigestSize) {
    return make_error(ErrorCode::kCorrupt, "metadata envelope too short");
  }
  BinaryReader r{ByteSpan(envelope)};
  UNI_ASSIGN_OR_RETURN(const std::uint32_t magic, r.get_u32());
  if (magic != kEnvelopeMagic) {
    return make_error(ErrorCode::kCorrupt, "bad metadata envelope magic");
  }
  const std::size_t payload_size =
      envelope.size() - 4 - crypto::Sha256::kDigestSize;
  UNI_ASSIGN_OR_RETURN(Bytes payload, r.get_raw(payload_size));
  UNI_ASSIGN_OR_RETURN(const Bytes digest,
                       r.get_raw(crypto::Sha256::kDigestSize));
  const auto expected = crypto::Sha256::hash(ByteSpan(payload));
  if (!std::equal(expected.begin(), expected.end(), digest.begin())) {
    return make_error(ErrorCode::kCorrupt,
                      "metadata failed integrity verification");
  }
  return payload;
}

Bytes MetadataCodec::encode_image(const SyncFolderImage& image) const {
  return encrypt(ByteSpan(image.serialize()));
}

Result<SyncFolderImage> MetadataCodec::decode_image(ByteSpan data) const {
  UNI_ASSIGN_OR_RETURN(const Bytes plain, decrypt(data));
  return SyncFolderImage::deserialize(ByteSpan(plain));
}

Bytes MetadataCodec::encode_delta(const DeltaLog& log) const {
  return encrypt(ByteSpan(log.serialize()));
}

Result<DeltaLog> MetadataCodec::decode_delta(ByteSpan data) const {
  UNI_ASSIGN_OR_RETURN(const Bytes plain, decrypt(data));
  return DeltaLog::deserialize(ByteSpan(plain));
}

}  // namespace unidrive::metadata
