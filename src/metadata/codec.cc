#include "metadata/codec.h"

#include <algorithm>

#include "crypto/crc32.h"
#include "crypto/sha256.h"

namespace unidrive::metadata {

namespace {
// Stream/CBC ciphers provide confidentiality but no integrity; a flipped
// ciphertext bit flips the same plaintext bit (CTR) or garbles a block (CBC)
// and can still deserialize into a plausible-looking image. The envelope
// carries both a CRC-32C and a SHA-256 of the payload INSIDE the encryption:
// the CRC is a near-free hardware screen that rejects ordinary corruption
// (torn writes, bit rot, wrong key) before the full cryptographic hash is
// computed, and the SHA-256 backstops deliberate tampering.
constexpr std::uint32_t kEnvelopeMagic = 0x32454455;  // "UDE2"
}  // namespace

Bytes MetadataCodec::encrypt(ByteSpan plain) const {
  BinaryWriter envelope;
  envelope.put_u32(kEnvelopeMagic);
  envelope.put_u32(crypto::crc32c(plain));
  envelope.put_raw(plain);
  const auto digest = crypto::Sha256::hash(plain);
  envelope.put_raw(ByteSpan(digest.data(), digest.size()));
  return cipher_.encrypt(ByteSpan(envelope.data()));
}

Result<Bytes> MetadataCodec::decrypt(ByteSpan cipher) const {
  UNI_ASSIGN_OR_RETURN(const Bytes envelope, cipher_.decrypt(cipher));
  if (envelope.size() < 8 + crypto::Sha256::kDigestSize) {
    return make_error(ErrorCode::kCorrupt, "metadata envelope too short");
  }
  BinaryReader r{ByteSpan(envelope)};
  UNI_ASSIGN_OR_RETURN(const std::uint32_t magic, r.get_u32());
  if (magic != kEnvelopeMagic) {
    return make_error(ErrorCode::kCorrupt, "bad metadata envelope magic");
  }
  UNI_ASSIGN_OR_RETURN(const std::uint32_t crc, r.get_u32());
  const std::size_t payload_size =
      envelope.size() - 8 - crypto::Sha256::kDigestSize;
  UNI_ASSIGN_OR_RETURN(Bytes payload, r.get_raw(payload_size));
  if (crypto::crc32c(ByteSpan(payload)) != crc) {
    return make_error(ErrorCode::kCorrupt,
                      "metadata failed crc32c pre-check");
  }
  UNI_ASSIGN_OR_RETURN(const Bytes digest,
                       r.get_raw(crypto::Sha256::kDigestSize));
  const auto expected = crypto::Sha256::hash(ByteSpan(payload));
  if (!std::equal(expected.begin(), expected.end(), digest.begin())) {
    return make_error(ErrorCode::kCorrupt,
                      "metadata failed integrity verification");
  }
  return payload;
}

Bytes MetadataCodec::encode_image(const SyncFolderImage& image) const {
  return encrypt(ByteSpan(image.serialize()));
}

Result<SyncFolderImage> MetadataCodec::decode_image(ByteSpan data) const {
  UNI_ASSIGN_OR_RETURN(const Bytes plain, decrypt(data));
  return SyncFolderImage::deserialize(ByteSpan(plain));
}

Bytes MetadataCodec::encode_delta(const DeltaLog& log) const {
  return encrypt(ByteSpan(log.serialize()));
}

Result<DeltaLog> MetadataCodec::decode_delta(ByteSpan data) const {
  UNI_ASSIGN_OR_RETURN(const Bytes plain, decrypt(data));
  return DeltaLog::deserialize(ByteSpan(plain));
}

}  // namespace unidrive::metadata
