// ChangedFileList — the record of everything that happened in the local sync
// folder since the last successful synchronization. A non-empty list signals
// a pending *local update*; committing applies the changes to the image and
// clears the list. Also doubles as the operation set of the delta log.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/serial.h"
#include "metadata/types.h"

namespace unidrive::metadata {

enum class ChangeKind : std::uint8_t {
  kUpsertFile = 0,   // add or edit; carries the new snapshot
  kDeleteFile = 1,
  kAddDir = 2,
  kDeleteDir = 3,
  kUpsertSegment = 4,  // register segment / update block locations
  kDropSegment = 5,    // segment garbage-collected
};

struct Change {
  ChangeKind kind = ChangeKind::kUpsertFile;
  std::string path;                     // file/dir path or segment id
  std::optional<FileSnapshot> snapshot; // for kUpsertFile
  std::optional<SegmentInfo> segment;   // for kUpsertSegment

  static Change upsert_file(FileSnapshot s);
  static Change delete_file(std::string path);
  static Change add_dir(std::string path);
  static Change delete_dir(std::string path);
  static Change upsert_segment(SegmentInfo s);
  static Change drop_segment(std::string id);
};

class ChangedFileList {
 public:
  void record(Change change) { changes_.push_back(std::move(change)); }
  void clear() { changes_.clear(); }
  [[nodiscard]] bool empty() const noexcept { return changes_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return changes_.size(); }
  [[nodiscard]] const std::vector<Change>& changes() const noexcept {
    return changes_;
  }

  // Collapses redundant operations (multiple edits of one path keep only the
  // last; add-then-delete cancels) so a burst of edits commits as one change.
  [[nodiscard]] std::vector<Change> aggregated() const;

 private:
  std::vector<Change> changes_;
};

void serialize_change(BinaryWriter& w, const Change& c);
Result<Change> deserialize_change(BinaryReader& r);

// Applies one committed change to an image (the delta-log replay step).
void apply_change(class SyncFolderImage& image, const Change& c);

}  // namespace unidrive::metadata
