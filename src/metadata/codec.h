// Encrypted metadata codec: what actually travels to the clouds.
//
// The paper DES-encrypts the metadata before replication so that no single
// provider can read the folder image (file names, hierarchy, block map).
// The cipher is now config-selectable (crypto::CipherKind): DES for paper
// fidelity, AES-128-CTR or ChaCha20 for hardware speed. Nonces/IVs derive
// deterministically from the plaintext digest so identical states serialize
// identically (helps dedup and testing); this is acceptable because each
// commit produces a distinct plaintext. Decode reads the frame's kind tag,
// so changing the configured cipher never orphans previously written data.
#pragma once

#include <string>

#include "crypto/cipher.h"
#include "metadata/delta.h"
#include "metadata/image.h"

namespace unidrive::metadata {

class MetadataCodec {
 public:
  explicit MetadataCodec(const std::string& passphrase,
                         crypto::CipherKind kind = crypto::CipherKind::kDes)
      : cipher_(kind, passphrase) {}

  [[nodiscard]] Bytes encode_image(const SyncFolderImage& image) const;
  [[nodiscard]] Result<SyncFolderImage> decode_image(ByteSpan data) const;

  [[nodiscard]] Bytes encode_delta(const DeltaLog& log) const;
  [[nodiscard]] Result<DeltaLog> decode_delta(ByteSpan data) const;

  // Opaque pre-serialized payloads (shard manifests, per-shard bases and
  // delta objects of the sharded store) travel through the same encrypt +
  // integrity envelope as the monolithic files.
  [[nodiscard]] Bytes encode_blob(ByteSpan plain) const { return encrypt(plain); }
  [[nodiscard]] Result<Bytes> decode_blob(ByteSpan cipher) const {
    return decrypt(cipher);
  }

 private:
  [[nodiscard]] Bytes encrypt(ByteSpan plain) const;
  [[nodiscard]] Result<Bytes> decrypt(ByteSpan cipher) const;

  crypto::Cipher cipher_;
};

}  // namespace unidrive::metadata
