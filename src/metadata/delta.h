// Delta-sync: the base + delta representation of the metadata.
//
// The base file is a full snapshot of the SyncFolderImage at some committed
// version; the delta file is a log of commits since then. Normally only the
// (small) delta travels to the clouds; when the delta outgrows the threshold
// λ = max(ratio * base_size, floor), the committing client folds it into a
// new base. Each log record is length-prefixed and CRC-guarded so a torn
// upload only loses the tail.
#pragma once

#include <vector>

#include "metadata/changelist.h"
#include "metadata/image.h"

namespace unidrive::metadata {

struct CommitRecord {
  VersionStamp version;          // version after this commit
  std::vector<Change> changes;   // operations of this commit
};

class DeltaLog {
 public:
  void append(CommitRecord record) { records_.push_back(std::move(record)); }
  void clear() { records_.clear(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] const std::vector<CommitRecord>& records() const noexcept {
    return records_;
  }

  // Latest version in the log, or nullopt when empty.
  [[nodiscard]] std::optional<VersionStamp> latest_version() const;

  [[nodiscard]] Bytes serialize() const;
  // Tolerates a truncated/corrupt tail: returns the valid prefix.
  static Result<DeltaLog> deserialize(ByteSpan data);

 private:
  std::vector<CommitRecord> records_;
};

// Replays every record newer than the image's version onto the image.
void apply_delta(SyncFolderImage& image, const DeltaLog& log);

struct DeltaPolicy {
  double merge_ratio = 0.25;        // λ as a fraction of base size
  std::size_t merge_floor = 10 << 10;  // ...but at least this many bytes

  [[nodiscard]] bool should_merge(std::size_t base_size,
                                  std::size_t delta_size) const noexcept {
    const auto threshold = static_cast<std::size_t>(
        merge_ratio * static_cast<double>(base_size));
    return delta_size >= std::max(threshold, merge_floor);
  }
};

}  // namespace unidrive::metadata
