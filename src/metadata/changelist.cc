#include "metadata/changelist.h"

#include <map>

#include "metadata/image.h"

namespace unidrive::metadata {

Change Change::upsert_file(FileSnapshot s) {
  Change c;
  c.kind = ChangeKind::kUpsertFile;
  c.path = s.path;
  c.snapshot = std::move(s);
  return c;
}

Change Change::delete_file(std::string path) {
  Change c;
  c.kind = ChangeKind::kDeleteFile;
  c.path = std::move(path);
  return c;
}

Change Change::add_dir(std::string path) {
  Change c;
  c.kind = ChangeKind::kAddDir;
  c.path = std::move(path);
  return c;
}

Change Change::delete_dir(std::string path) {
  Change c;
  c.kind = ChangeKind::kDeleteDir;
  c.path = std::move(path);
  return c;
}

Change Change::upsert_segment(SegmentInfo s) {
  Change c;
  c.kind = ChangeKind::kUpsertSegment;
  c.path = s.id;
  // Refcounts are DERIVED state (recomputed from the file entries that
  // reference a segment); shipping a committer's count would double-count
  // on replay, so records always carry zero.
  s.refcount = 0;
  c.segment = std::move(s);
  return c;
}

Change Change::drop_segment(std::string id) {
  Change c;
  c.kind = ChangeKind::kDropSegment;
  c.path = std::move(id);
  return c;
}

std::vector<Change> ChangedFileList::aggregated() const {
  // Later operations on the same (kind-class, path) win. File ops and
  // segment ops live in separate keyspaces (paths vs segment ids).
  std::map<std::string, const Change*> file_ops;   // "/path" -> last op
  std::map<std::string, const Change*> dir_ops;
  std::map<std::string, const Change*> seg_ops;
  for (const Change& c : changes_) {
    switch (c.kind) {
      case ChangeKind::kUpsertFile:
      case ChangeKind::kDeleteFile:
        file_ops[c.path] = &c;
        break;
      case ChangeKind::kAddDir:
      case ChangeKind::kDeleteDir:
        dir_ops[c.path] = &c;
        break;
      case ChangeKind::kUpsertSegment:
      case ChangeKind::kDropSegment:
        seg_ops[c.path] = &c;
        break;
    }
  }
  std::vector<Change> out;
  out.reserve(seg_ops.size() + dir_ops.size() + file_ops.size());
  // Segments first so file snapshots never reference unknown segments when
  // the aggregate is replayed.
  for (const auto& [path, c] : seg_ops) out.push_back(*c);
  for (const auto& [path, c] : dir_ops) out.push_back(*c);
  for (const auto& [path, c] : file_ops) out.push_back(*c);
  return out;
}

void serialize_change(BinaryWriter& w, const Change& c) {
  w.put_u8(static_cast<std::uint8_t>(c.kind));
  w.put_string(c.path);
  switch (c.kind) {
    case ChangeKind::kUpsertFile:
      serialize_snapshot(w, *c.snapshot);
      break;
    case ChangeKind::kUpsertSegment:
      serialize_segment(w, *c.segment);
      break;
    default:
      break;
  }
}

Result<Change> deserialize_change(BinaryReader& r) {
  Change c;
  UNI_ASSIGN_OR_RETURN(const std::uint8_t kind, r.get_u8());
  if (kind > static_cast<std::uint8_t>(ChangeKind::kDropSegment)) {
    return make_error(ErrorCode::kCorrupt, "bad change kind");
  }
  c.kind = static_cast<ChangeKind>(kind);
  UNI_ASSIGN_OR_RETURN(c.path, r.get_string());
  switch (c.kind) {
    case ChangeKind::kUpsertFile: {
      UNI_ASSIGN_OR_RETURN(FileSnapshot s, deserialize_snapshot(r));
      c.snapshot = std::move(s);
      break;
    }
    case ChangeKind::kUpsertSegment: {
      UNI_ASSIGN_OR_RETURN(SegmentInfo s, deserialize_segment(r));
      c.segment = std::move(s);
      break;
    }
    default:
      break;
  }
  return c;
}

void apply_change(SyncFolderImage& image, const Change& c) {
  switch (c.kind) {
    case ChangeKind::kUpsertFile:
      image.upsert_file(*c.snapshot);
      break;
    case ChangeKind::kDeleteFile:
      image.delete_file(c.path);
      break;
    case ChangeKind::kAddDir:
      image.add_dir(c.path);
      break;
    case ChangeKind::kDeleteDir:
      image.delete_dir(c.path);
      break;
    case ChangeKind::kUpsertSegment:
      image.upsert_segment(*c.segment);
      break;
    case ChangeKind::kDropSegment:
      image.drop_segment(c.path);
      break;
  }
}

}  // namespace unidrive::metadata
