// ShardedMetaStore — the transactional, shard-granular metadata plane.
//
// State model (all objects immutable, all written through KvStore):
//
//   root pointer  ->  manifest object  ->  per-shard { base object,
//                                                      delta objects... }
//
// A commit touching changes C:
//   1. (shard scopes held) For each dirty shard, publish_shard() writes ONE
//      new delta object carrying C's slice — or, when the shard's delta
//      chain outgrew λ, folds chain+slice into a new base object
//      (compaction). Cost: O(slice), or amortized O(shard) on folds. The
//      staged ShardEntry is returned, referencing the new objects.
//   2. (root scope held) commit_manifest() re-reads the current manifest,
//      verifies each dirty shard is unchanged since the fenced basis
//      (optimistic concurrency: a mismatch is kConflict, retry from fresh
//      state), splices the staged entries in, writes the new manifest
//      object and flips the root pointer — the atomic commit point for ALL
//      dirty shards at once. Superseded objects are pruned only after the
//      flip, so a crash at any step leaves either the old root with its
//      complete object set, or the new one (plus harmless garbage).
//
// Reads: fetch_manifest() is O(1) in folder size; fetch_shard() replays one
// shard's base+deltas, served incrementally from a per-shard cache (a
// re-fetch at an unchanged shard version is free; a shard that advanced by
// k deltas replays exactly k). fetch_latest() assembles the full image only
// for callers that genuinely need all shards.
//
// Write-to-majority / read-from-all is inherited from KvStore for every
// object and the root pointer, so the recovery guarantees of the monolithic
// MetaStore carry over shard by shard.
#pragma once

#include <map>
#include <optional>

#include "metadata/codec.h"
#include "metadata/kv.h"
#include "metadata/shard.h"
#include "metadata/store.h"

namespace unidrive::metadata {

struct ShardConfig {
  std::uint32_t num_shards = 16;
  // Fold a shard's chain into a new base when it exceeds this many delta
  // objects, regardless of byte-size λ — bounds replay depth (and the
  // first-seen window for pruned-object retries).
  std::size_t max_delta_objects = 32;
  // Per-shard fetch cache: remembers each shard's last reconstruction and
  // replays only the delta suffix on re-fetch. Costs O(folder) resident
  // memory on readers that touch every shard; population-scale simulations
  // with many idle clients may turn it off.
  bool cache = true;
};

class ShardedMetaStore {
 public:
  ShardedMetaStore(cloud::MultiCloud clouds, const std::string& passphrase,
                   ShardConfig config, obs::ObsPtr obs = nullptr,
                   crypto::CipherKind cipher = crypto::CipherKind::kDes);

  // --- reads ---------------------------------------------------------------

  // Version of the current root (the global commit stamp). kNotFound when
  // nothing was ever committed; kOutage when no cloud answered.
  Result<VersionStamp> fetch_remote_version();
  [[nodiscard]] bool has_cloud_update(const VersionStamp& local);

  // The current manifest. kNotFound before the first commit.
  Result<ShardManifest> fetch_manifest();

  // One shard's image (base + delta replay), served from the per-shard
  // cache when the entry is unchanged. The returned image's version is the
  // shard's own stamp. Segment refcounts are shard-local artifacts; callers
  // assembling multiple shards must rebuild_refcounts() at the end.
  Result<SyncFolderImage> fetch_shard(const ShardEntry& entry);

  // Full image: every shard fetched and absorbed, refcounts rebuilt,
  // version = manifest version. Retries once from a fresh root when a
  // concurrent compaction pruned an object under us.
  Result<FetchedMetadata> fetch_latest();

  // --- writes --------------------------------------------------------------

  // Stages one dirty shard: writes the new delta object (or folded base)
  // and returns the ShardEntry to splice into the manifest. `current` is
  // the shard's entry in the fenced manifest (nullptr for a brand-new
  // shard); `full_next` is the post-commit full image, used only as the
  // fold source when the shard cache cannot supply the shard state.
  // `stamp` becomes the shard's new version. No root/manifest mutation
  // happens here — a crash strands unreferenced objects at worst.
  Result<ShardEntry> publish_shard(ShardId id, const ShardEntry* current,
                                   const std::vector<Change>& changes,
                                   const SyncFolderImage& full_next,
                                   const VersionStamp& stamp,
                                   const DeltaPolicy& policy);

  // The atomic commit: splices `dirty` into the CURRENT manifest (re-read
  // under the held root scope), writes the new manifest object and flips
  // the root, fenced on `fenced.version`. kConflict when any dirty shard
  // moved past its fenced entry (caller must restage from fresh state).
  // Returns the manifest actually committed — its non-dirty entries may be
  // newer than `fenced`'s (foreign commits that landed in between), which
  // the caller is expected to absorb.
  Result<ShardManifest> commit_manifest(const std::vector<ShardEntry>& dirty,
                                        const ShardManifest& fenced,
                                        const VersionStamp& stamp);

  // --- misc ----------------------------------------------------------------

  [[nodiscard]] std::uint32_t num_shards() const noexcept {
    return config_.num_shards;
  }
  [[nodiscard]] const cloud::MultiCloud& clouds() const noexcept {
    return kv_.clouds();
  }
  [[nodiscard]] KvStore& kv() noexcept { return kv_; }

  // Drops the per-shard caches (tests; memory-pressure hooks).
  void clear_cache();

 private:
  Result<ShardManifest> decode_manifest(const std::string& key);
  // Shard state WITHOUT consulting the cache beyond incremental replay.
  Result<SyncFolderImage> load_shard(const ShardEntry& entry);
  // Best-effort removal of objects superseded by a committed fold, plus
  // manifest objects older than the previous generation.
  void prune_superseded(const std::vector<ShardEntry>& dirty,
                        const ShardManifest& fenced);

  KvStore kv_;
  MetadataCodec codec_;
  ShardConfig config_;
  obs::ObsPtr obs_;

  struct CachedShard {
    ShardEntry entry;
    SyncFolderImage image;
  };
  std::map<ShardId, CachedShard> cache_;
};

}  // namespace unidrive::metadata
