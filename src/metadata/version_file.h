// The tiny version file: the paper's cheap cloud-update signal.
//
// Instead of downloading metadata to learn whether anything changed, clients
// periodically fetch this ~tens-of-bytes file. It holds only the committing
// device name and version counter — if it differs from the local copy, a
// cloud update is pending. No global clock synchronization is required.
#pragma once

#include "common/serial.h"
#include "metadata/types.h"

namespace unidrive::metadata {

Bytes serialize_version_file(const VersionStamp& version);
Result<VersionStamp> parse_version_file(ByteSpan data);

}  // namespace unidrive::metadata
