#include "metadata/sharded_store.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"

namespace unidrive::metadata {

namespace {

// True when `prefix` is a prefix of `chain` (delta-chain incremental replay).
bool is_prefix(const std::vector<DeltaRef>& prefix,
               const std::vector<DeltaRef>& chain) {
  if (prefix.size() > chain.size()) return false;
  return std::equal(prefix.begin(), prefix.end(), chain.begin());
}

}  // namespace

ShardedMetaStore::ShardedMetaStore(cloud::MultiCloud clouds,
                                   const std::string& passphrase,
                                   ShardConfig config, obs::ObsPtr obs,
                                   crypto::CipherKind cipher)
    : kv_(std::move(clouds), "/meta/kv", obs),
      codec_(passphrase, cipher),
      config_(config),
      obs_(std::move(obs)) {
  if (config_.num_shards == 0) config_.num_shards = 1;
}

void ShardedMetaStore::clear_cache() { cache_.clear(); }

Result<VersionStamp> ShardedMetaStore::fetch_remote_version() {
  UNI_ASSIGN_OR_RETURN(const RootPointer root, kv_.fetch_root());
  return root.version;
}

bool ShardedMetaStore::has_cloud_update(const VersionStamp& local) {
  auto remote = fetch_remote_version();
  return remote.is_ok() && local < remote.value();
}

Result<ShardManifest> ShardedMetaStore::decode_manifest(
    const std::string& key) {
  // Validate on the way in so a torn/corrupt minority copy is skipped in
  // favor of the next cloud's.
  auto bytes = kv_.get(key, [this](ByteSpan b) {
    auto plain = codec_.decode_blob(b);
    return plain.is_ok() &&
           ShardManifest::deserialize(ByteSpan(plain.value())).is_ok();
  });
  if (!bytes.is_ok()) return bytes.status();
  UNI_ASSIGN_OR_RETURN(const Bytes plain,
                       codec_.decode_blob(ByteSpan(bytes.value())));
  return ShardManifest::deserialize(ByteSpan(plain));
}

Result<ShardManifest> ShardedMetaStore::fetch_manifest() {
  UNI_ASSIGN_OR_RETURN(const RootPointer root, kv_.fetch_root());
  auto manifest = decode_manifest(root.manifest_key);
  if (manifest.is_ok() && manifest.value().num_shards != config_.num_shards) {
    // The committed shard count is authoritative (chosen by whoever
    // initialized the store): adopt it so every writer routes identically.
    config_.num_shards = manifest.value().num_shards;
    cache_.clear();
  }
  return manifest;
}

Result<SyncFolderImage> ShardedMetaStore::load_shard(const ShardEntry& entry) {
  const auto cached = cache_.find(entry.id);
  if (cached != cache_.end() && cached->second.entry == entry) {
    obs::add_counter(obs_.get(), "meta.shard.fetch.short_circuit");
    return cached->second.image;
  }

  SyncFolderImage image;
  std::size_t replay_from = 0;
  if (cached != cache_.end() &&
      cached->second.entry.base_key == entry.base_key &&
      is_prefix(cached->second.entry.deltas, entry.deltas)) {
    // Incremental: the cached reconstruction is a committed prefix of this
    // entry; replay only the delta suffix.
    image = cached->second.image;
    replay_from = cached->second.entry.deltas.size();
  } else if (!entry.base_key.empty()) {
    auto bytes = kv_.get(entry.base_key, [this](ByteSpan b) {
      return codec_.decode_image(b).is_ok();
    });
    if (!bytes.is_ok()) return bytes.status();
    UNI_ASSIGN_OR_RETURN(image, codec_.decode_image(ByteSpan(bytes.value())));
  }

  for (std::size_t i = replay_from; i < entry.deltas.size(); ++i) {
    auto bytes = kv_.get(entry.deltas[i].key, [this](ByteSpan b) {
      return codec_.decode_delta(b).is_ok();
    });
    if (!bytes.is_ok()) return bytes.status();
    UNI_ASSIGN_OR_RETURN(const DeltaLog log,
                         codec_.decode_delta(ByteSpan(bytes.value())));
    apply_delta(image, log);
  }
  if (image.version() < entry.version) {
    // The reconstruction never reached the advertised shard stamp: the
    // chain is inconsistent (should be impossible given immutable keys).
    return make_error(ErrorCode::kCorrupt,
                      "shard " + std::to_string(entry.id) +
                          " replay stopped at " +
                          image.version().to_string() + " short of " +
                          entry.version.to_string());
  }
  if (config_.cache) {
    cache_[entry.id] = CachedShard{entry, image};
  }
  return image;
}

Result<SyncFolderImage> ShardedMetaStore::fetch_shard(
    const ShardEntry& entry) {
  return load_shard(entry);
}

Result<FetchedMetadata> ShardedMetaStore::fetch_latest() {
  obs::Span span = obs::start_span(obs_.get(), "meta.fetch_latest");
  Status last_error = Status::ok();
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto manifest = fetch_manifest();
    if (!manifest.is_ok()) return manifest.status();

    FetchedMetadata out;
    bool pruned_under_us = false;
    for (const ShardEntry& entry : manifest.value().entries) {
      auto shard = fetch_shard(entry);
      if (!shard.is_ok()) {
        // A concurrent compaction may have pruned this object after we read
        // the (now stale) root: drop the shard cache and retry once from a
        // fresh root before giving up.
        last_error = shard.status();
        cache_.erase(entry.id);
        pruned_under_us = true;
        break;
      }
      out.image.absorb(shard.value());
    }
    if (pruned_under_us) continue;
    out.image.rebuild_refcounts();
    out.image.prune_segment_stubs();
    out.image.set_version(manifest.value().version);
    out.version = manifest.value().version;
    obs::add_counter(obs_.get(), "meta.fetch.ok");
    return out;
  }
  obs::add_counter(obs_.get(), "meta.fetch.err");
  return last_error;
}

Result<ShardEntry> ShardedMetaStore::publish_shard(
    ShardId id, const ShardEntry* current, const std::vector<Change>& changes,
    const SyncFolderImage& full_next, const VersionStamp& stamp,
    const DeltaPolicy& policy) {
  obs::Span span = obs::start_span(obs_.get(), "meta.shard.publish");

  // The staged delta object for this commit.
  DeltaLog log;
  log.append(CommitRecord{stamp, changes});
  const Bytes delta_bytes = codec_.encode_delta(log);

  ShardEntry next;
  next.id = id;
  next.version = stamp;
  std::uint64_t chain_bytes = delta_bytes.size();
  if (current != nullptr) {
    next.base_key = current->base_key;
    next.base_size = current->base_size;
    next.deltas = current->deltas;
    for (const DeltaRef& d : current->deltas) chain_bytes += d.size;
  }

  const bool fold = policy.should_merge(next.base_size, chain_bytes) ||
                    next.deltas.size() + 1 > config_.max_delta_objects;
  if (!fold) {
    DeltaRef ref;
    ref.key = shard_delta_key(id, stamp);
    ref.size = delta_bytes.size();
    UNI_RETURN_IF_ERROR(kv_.put(ref.key, ByteSpan(delta_bytes)));
    next.deltas.push_back(std::move(ref));

    // Keep the shard cache current without touching the full image: apply
    // this commit's slice onto the cached reconstruction when it matches
    // the fenced entry, otherwise just invalidate.
    const auto cached = cache_.find(id);
    if (config_.cache && cached != cache_.end() && current != nullptr &&
        cached->second.entry == *current) {
      for (const Change& c : changes) apply_change(cached->second.image, c);
      cached->second.image.set_version(stamp);
      cached->second.entry = next;
    } else if (config_.cache && cached == cache_.end() &&
               current == nullptr) {
      // Brand-new shard: its whole state IS this commit's slice.
      SyncFolderImage fresh;
      for (const Change& c : changes) apply_change(fresh, c);
      fresh.set_version(stamp);
      cache_[id] = CachedShard{next, std::move(fresh)};
    } else {
      cache_.erase(id);
    }
    return next;
  }

  // Compaction (λ): fold chain + this commit into one new base object.
  // Prefer the cached reconstruction (O(shard) CPU, no I/O, no full-image
  // scan); fall back to extracting this shard's subtree from `full_next`.
  SyncFolderImage folded;
  const auto cached = cache_.find(id);
  if (cached != cache_.end() && current != nullptr &&
      cached->second.entry == *current) {
    folded = cached->second.image;
    for (const Change& c : changes) apply_change(folded, c);
  } else {
    const std::uint32_t shards = config_.num_shards;
    folded = full_next.extract(
        [&](const std::string& path) {
          return shard_of_path(path, shards) == id;
        },
        [&](const std::string& seg) {
          return shard_of_segment(seg, shards) == id;
        });
  }
  folded.set_version(stamp);

  const Bytes base_bytes = codec_.encode_image(folded);
  next.base_key = shard_base_key(id, stamp);
  next.base_size = base_bytes.size();
  next.deltas.clear();
  UNI_RETURN_IF_ERROR(kv_.put(next.base_key, ByteSpan(base_bytes)));
  obs::add_counter(obs_.get(), "meta.shard.compactions");
  if (config_.cache) {
    cache_[id] = CachedShard{next, std::move(folded)};
  } else {
    cache_.erase(id);
  }
  return next;
}

Result<ShardManifest> ShardedMetaStore::commit_manifest(
    const std::vector<ShardEntry>& dirty, const ShardManifest& fenced,
    const VersionStamp& stamp) {
  // "meta.publish" is the span name every dashboard and test knows for "the
  // metadata commit point"; the sharded flip keeps it.
  obs::Span span = obs::start_span(obs_.get(), "meta.publish");
  const double started =
      obs_ != nullptr ? obs_->clock().now() : 0.0;

  // Re-read the authoritative manifest under the held root scope.
  ShardManifest current;
  std::optional<VersionStamp> fence_version;
  auto root = kv_.fetch_root();
  if (root.is_ok()) {
    UNI_ASSIGN_OR_RETURN(current, decode_manifest(root.value().manifest_key));
    fence_version = root.value().version;
  } else if (root.code() == ErrorCode::kNotFound) {
    current.num_shards = config_.num_shards;
  } else {
    return root.status();
  }

  // Optimistic concurrency: every dirty shard must still be at the version
  // our staging was based on. With per-shard locks held this always holds;
  // without them (lock-free optimistic mode) a loss here is a clean retry.
  for (const ShardEntry& d : dirty) {
    const ShardEntry* now = current.find(d.id);
    const ShardEntry* was = fenced.find(d.id);
    const bool unchanged =
        (now == nullptr && was == nullptr) ||
        (now != nullptr && was != nullptr && now->version == was->version);
    if (!unchanged) {
      obs::add_counter(obs_.get(), "meta.shard.commit.conflict");
      return make_error(ErrorCode::kConflict,
                        "shard " + std::to_string(d.id) +
                            " advanced past the fenced version");
    }
  }

  ShardManifest next = current;
  if (next.num_shards == 0) next.num_shards = config_.num_shards;
  for (const ShardEntry& d : dirty) next.upsert(d);
  // The manifest stamp must dominate every root version ever published —
  // foreign commits may have advanced the root past the caller's basis.
  VersionStamp final_stamp = stamp;
  final_stamp.counter = std::max(final_stamp.counter,
                                 current.version.counter + 1);
  next.version = final_stamp;

  const Bytes manifest_bytes = codec_.encode_blob(ByteSpan(next.serialize()));
  const std::string key = manifest_key(final_stamp);
  UNI_RETURN_IF_ERROR(kv_.put(key, ByteSpan(manifest_bytes)));

  RootPointer root_next;
  root_next.version = final_stamp;
  root_next.manifest_key = key;
  UNI_RETURN_IF_ERROR(kv_.put_root(root_next, fence_version));

  // Only AFTER the flip is it safe to prune: until then the old root must
  // remain fully readable.
  prune_superseded(dirty, fenced);

  obs::add_counter(obs_.get(), "meta.shard.commits");
  obs::observe(obs_.get(), "meta.shard.dirty", static_cast<double>(dirty.size()));
  obs::set_gauge(obs_.get(), "meta.shard.entries",
                 static_cast<double>(next.entries.size()));
  obs::set_gauge(obs_.get(), "meta.shard.manifest_bytes",
                 static_cast<double>(manifest_bytes.size()));
  if (obs_ != nullptr) {
    obs::observe(obs_.get(), "meta.shard.commit.latency",
                 obs_->clock().now() - started);
  }
  return next;
}

void ShardedMetaStore::prune_superseded(const std::vector<ShardEntry>& dirty,
                                        const ShardManifest& fenced) {
  std::size_t pruned = 0;
  for (const ShardEntry& d : dirty) {
    const ShardEntry* was = fenced.find(d.id);
    if (was == nullptr || was->base_key == d.base_key) continue;
    // This commit folded the shard: the fenced base and every delta folded
    // into the new one are superseded.
    if (!was->base_key.empty()) {
      kv_.remove(was->base_key);
      ++pruned;
    }
    for (const DeltaRef& ref : was->deltas) {
      kv_.remove(ref.key);
      ++pruned;
    }
  }
  // Manifest GC: generations older than the fenced one can no longer win a
  // read-from-all (the new root shadows them on a majority); the fenced
  // generation itself is kept for readers mid-flight on the old root.
  if (fenced.version.counter > 0) {
    auto names = kv_.list("m");
    if (names.is_ok()) {
      for (const std::string& name : names.value()) {
        const std::uint64_t counter =
            std::strtoull(name.c_str(), nullptr, 10);
        if (counter != 0 && counter < fenced.version.counter) {
          kv_.remove("m/" + name);
          ++pruned;
        }
      }
    }
  }
  obs::add_counter(obs_.get(), "meta.shard.pruned", pruned);
}

}  // namespace unidrive::metadata
