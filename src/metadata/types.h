// Core metadata value types shared by the whole control plane.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/provider.h"
#include "crypto/convergent.h"

namespace unidrive::metadata {

// Identifies one committed metadata state. Commits are serialized by the
// quorum lock, so `counter` increases monotonically across the multi-cloud;
// `device`/`timestamp` identify the committer (no global clock is assumed —
// timestamps are informational only, never compared across devices).
struct VersionStamp {
  std::string device;
  std::uint64_t counter = 0;
  double timestamp = 0.0;

  friend bool operator==(const VersionStamp& a, const VersionStamp& b) noexcept {
    return a.counter == b.counter && a.device == b.device;
  }
  // Total order used for "newer metadata" decisions.
  friend bool operator<(const VersionStamp& a, const VersionStamp& b) noexcept {
    if (a.counter != b.counter) return a.counter < b.counter;
    return a.device < b.device;
  }

  [[nodiscard]] std::string to_string() const {
    return device + "#" + std::to_string(counter);
  }
};

// Immutable description of one version of a file. `segment_ids` point into
// the image's segment pool; the file content is the concatenation of those
// segments in order.
struct FileSnapshot {
  std::string path;              // normalized "/docs/a.txt"
  double mtime = 0.0;            // local modification time (informational)
  std::uint64_t size = 0;        // total file size in bytes
  std::string content_hash;      // SHA-1 hex of the whole file
  std::vector<std::string> segment_ids;
  std::string origin_device;     // device that produced this snapshot

  friend bool operator==(const FileSnapshot& a, const FileSnapshot& b) noexcept {
    return a.path == b.path && a.size == b.size &&
           a.content_hash == b.content_hash && a.segment_ids == b.segment_ids;
  }
};

// Where one erasure-coded block of a segment lives.
// block_index is the row of the RS encode matrix in [0, n); cloud is the
// provider holding the block. Set via upload callbacks (the paper mandates
// blocks are uploaded before the metadata referencing them is committed).
struct BlockLocation {
  std::uint32_t block_index = 0;
  cloud::CloudId cloud = 0;

  friend bool operator==(const BlockLocation& a, const BlockLocation& b) noexcept {
    return a.block_index == b.block_index && a.cloud == b.cloud;
  }
};

// Segment pool entry: content-addressed, reference-counted (dedup), with the
// full block map. Blocks are immutable; over-provisioned blocks may later be
// garbage-collected, which only shrinks `blocks`.
struct SegmentInfo {
  std::string id;             // content hash hex: SHA-256; 40-hex = legacy SHA-1
  std::uint64_t size = 0;     // plaintext segment size
  std::uint32_t refcount = 0; // number of snapshots referencing it
  std::vector<BlockLocation> blocks;

  friend bool operator==(const SegmentInfo& a, const SegmentInfo& b) noexcept {
    return a.id == b.id && a.size == b.size && a.refcount == b.refcount &&
           a.blocks == b.blocks;
  }
};

// Conventional cloud-side layout.
inline constexpr const char* kDataDir = "/data";
inline constexpr const char* kMetaDir = "/meta";
inline constexpr const char* kLockDir = "/lock";
inline constexpr const char* kBasePath = "/meta/base";
inline constexpr const char* kDeltaPath = "/meta/delta";
inline constexpr const char* kVersionPath = "/meta/version";

// Cloud filename of a block: "<storage-address>_<block-index>". The address
// is crypto::storage_address(segment_id) — a one-way fingerprint of the id,
// NOT the id itself: the convergent key is derived from the id's leading
// bytes, so publishing the id in a shared-plane filename would hand the
// decryption key to anyone who can list the pool. Legacy SHA-1 ids map to
// themselves, so pre-upgrade blocks keep their paths.
inline std::string block_name(const std::string& segment_id,
                              std::uint32_t block_index) {
  return crypto::storage_address(segment_id) + "_" +
         std::to_string(block_index);
}
inline std::string block_path(const std::string& segment_id,
                              std::uint32_t block_index) {
  return std::string(kDataDir) + "/" + block_name(segment_id, block_index);
}

}  // namespace unidrive::metadata
