// Tree diff and three-way merge of SyncFolderImages.
//
// Implements the paper's conflict handling: with original metadata v_o,
// local v_l and cloud v_c, compute deltas ΔL = diff(v_o, v_l) and
// ΔC = diff(v_o, v_c); entries touched by only one side merge directly;
// entries touched by both with different outcomes are conflicts — the merged
// image keeps *both* versions (the local one is renamed to a conflict copy,
// mirroring SVN/Git keep-both resolution) and the user is notified.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "metadata/image.h"

namespace unidrive::metadata {

enum class EntryChangeKind : std::uint8_t { kAdded, kModified, kDeleted };

struct EntryChange {
  EntryChangeKind kind = EntryChangeKind::kAdded;
  std::string path;
  // Snapshot after the change (empty for deletions).
  std::optional<FileSnapshot> snapshot;
};

// File-level difference `from` -> `to` (directories diffed separately).
struct ImageDiff {
  std::map<std::string, EntryChange> files;
  std::vector<std::string> added_dirs;
  std::vector<std::string> removed_dirs;

  [[nodiscard]] bool empty() const noexcept {
    return files.empty() && added_dirs.empty() && removed_dirs.empty();
  }
};

ImageDiff diff_images(const SyncFolderImage& from, const SyncFolderImage& to);

struct ConflictRecord {
  std::string path;           // original path both sides touched
  std::string conflict_copy;  // where the losing (local) version was kept,
                              // empty if the conflict needed no copy
};

struct MergeResult {
  SyncFolderImage merged;
  std::vector<ConflictRecord> conflicts;
};

// Three-way merge. `local_device` names this device (used for conflict-copy
// paths, "<path>.conflict-<device>"). Cloud wins at the original path;
// the local version is preserved at the conflict-copy path so no data is
// ever lost. Segment pools are unioned and refcounts rebuilt.
MergeResult merge_images(const SyncFolderImage& base,
                         const SyncFolderImage& local,
                         const SyncFolderImage& cloud,
                         const std::string& local_device);

}  // namespace unidrive::metadata
