#include "metadata/diff.h"

#include <algorithm>

namespace unidrive::metadata {

ImageDiff diff_images(const SyncFolderImage& from, const SyncFolderImage& to) {
  ImageDiff out;
  // Files.
  for (const auto& [path, snap] : to.files()) {
    const FileSnapshot* old_snap = from.find_file(path);
    if (old_snap == nullptr) {
      out.files[path] = {EntryChangeKind::kAdded, path, snap};
    } else if (!(*old_snap == snap)) {
      out.files[path] = {EntryChangeKind::kModified, path, snap};
    }
  }
  for (const auto& [path, snap] : from.files()) {
    if (to.find_file(path) == nullptr) {
      out.files[path] = {EntryChangeKind::kDeleted, path, std::nullopt};
    }
  }
  // Directories.
  std::set_difference(to.dirs().begin(), to.dirs().end(), from.dirs().begin(),
                      from.dirs().end(), std::back_inserter(out.added_dirs));
  std::set_difference(from.dirs().begin(), from.dirs().end(), to.dirs().begin(),
                      to.dirs().end(), std::back_inserter(out.removed_dirs));
  return out;
}

namespace {

std::string conflict_copy_path(const std::string& path,
                               const std::string& device) {
  return path + ".conflict-" + device;
}

void apply_entry_change(SyncFolderImage& image, const EntryChange& change) {
  switch (change.kind) {
    case EntryChangeKind::kAdded:
    case EntryChangeKind::kModified:
      image.upsert_file(*change.snapshot);
      break;
    case EntryChangeKind::kDeleted:
      image.delete_file(change.path);
      break;
  }
}

// Two changes coincide (no conflict) if they delete together or produce the
// same snapshot.
bool changes_agree(const EntryChange& a, const EntryChange& b) {
  if (a.kind == EntryChangeKind::kDeleted &&
      b.kind == EntryChangeKind::kDeleted) {
    return true;
  }
  return a.snapshot.has_value() && b.snapshot.has_value() &&
         *a.snapshot == *b.snapshot;
}

}  // namespace

MergeResult merge_images(const SyncFolderImage& base,
                         const SyncFolderImage& local,
                         const SyncFolderImage& cloud,
                         const std::string& local_device) {
  const ImageDiff delta_local = diff_images(base, local);
  const ImageDiff delta_cloud = diff_images(base, cloud);

  MergeResult result;
  // Start from the cloud image: it already contains ΔC applied to base and
  // carries the authoritative segment pool of committed uploads.
  result.merged = cloud;

  // Directories: union of both sides' additions, minus unilateral removals.
  for (const std::string& d : delta_local.added_dirs) result.merged.add_dir(d);
  for (const std::string& d : delta_local.removed_dirs) {
    // Keep the dir if the cloud also created content there; removal only
    // applies if the cloud side did not touch it.
    const bool cloud_added =
        std::find(delta_cloud.added_dirs.begin(), delta_cloud.added_dirs.end(),
                  d) != delta_cloud.added_dirs.end();
    if (!cloud_added) result.merged.delete_dir(d);
  }

  // Union the local segment pool so local snapshots keep valid references.
  for (const auto& [id, info] : local.segments()) {
    if (result.merged.find_segment(id) == nullptr) {
      result.merged.upsert_segment(info);
    } else {
      // Both sides know the segment: merge block location sets (callbacks
      // may have landed on either side).
      SegmentInfo* dst = result.merged.find_segment_mutable(id);
      for (const BlockLocation& b : info.blocks) {
        if (std::find(dst->blocks.begin(), dst->blocks.end(), b) ==
            dst->blocks.end()) {
          dst->blocks.push_back(b);
        }
      }
    }
  }

  // Apply ΔL, detecting coincidental updates.
  for (const auto& [path, local_change] : delta_local.files) {
    const auto cloud_it = delta_cloud.files.find(path);
    if (cloud_it == delta_cloud.files.end()) {
      apply_entry_change(result.merged, local_change);
      continue;
    }
    const EntryChange& cloud_change = cloud_it->second;
    if (changes_agree(local_change, cloud_change)) continue;

    // Conflict. Cloud version stays at `path` (already in merged); the local
    // version, if it still has content, is kept as a conflict copy.
    ConflictRecord record;
    record.path = path;
    if (local_change.snapshot.has_value()) {
      FileSnapshot copy = *local_change.snapshot;
      copy.path = conflict_copy_path(path, local_device);
      record.conflict_copy = copy.path;
      result.merged.upsert_file(copy);
    }
    result.conflicts.push_back(std::move(record));
  }

  result.merged.rebuild_refcounts();
  return result;
}

}  // namespace unidrive::metadata
