#include "lock/quorum_lock.h"

#include <algorithm>

#include "cloud/path.h"
#include "common/logging.h"

namespace unidrive::lock {

QuorumLock::QuorumLock(cloud::MultiCloud clouds, std::string device,
                       LockConfig config, Clock& clock, Rng rng, SleepFn sleep,
                       obs::ObsPtr obs)
    : clouds_(std::move(clouds)),
      device_(std::move(device)),
      config_(std::move(config)),
      clock_(&clock),
      rng_(rng),
      sleep_(std::move(sleep)),
      obs_(std::move(obs)) {}

std::string QuorumLock::make_lock_name() {
  // "lock_<device>_<t>" — t is a purely local stamp; it only needs to make
  // successive names from the same device distinct (clock + counter).
  ++stamp_counter_;
  return "lock_" + device_ + "_" +
         std::to_string(static_cast<long long>(clock_->now() * 1000)) + "_" +
         std::to_string(stamp_counter_);
}

void QuorumLock::break_stale_locks(
    cloud::CloudProvider& cloud, const std::vector<cloud::FileInfo>& listing) {
  const TimePoint now = clock_->now();
  for (const cloud::FileInfo& f : listing) {
    const auto key = std::make_pair(cloud.id(), f.name);
    const auto it = first_seen_.find(key);
    if (it == first_seen_.end()) {
      first_seen_.emplace(key, now);
      continue;
    }
    if (now - it->second > config_.stale_after) {
      // Lock file visible for too long: the holder crashed or lost
      // connectivity. Any client may delete it (lock breaking).
      UNI_LOG(kInfo) << device_ << " breaks stale lock " << f.name << " on "
                     << cloud.name();
      {
        obs::Span span = obs::start_span(obs_.get(), "lock.break_stale");
        (void)cloud.remove(cloud::join_path(config_.lock_dir, f.name));
      }
      obs::add_counter(obs_.get(), "lock.stale_broken");
      first_seen_.erase(it);
    }
  }
  // Drop registry entries for files that disappeared from this cloud.
  for (auto it = first_seen_.begin(); it != first_seen_.end();) {
    if (it->first.first != cloud.id()) {
      ++it;
      continue;
    }
    const bool still_listed =
        std::any_of(listing.begin(), listing.end(),
                    [&](const cloud::FileInfo& f) { return f.name == it->first.second; });
    it = still_listed ? std::next(it) : first_seen_.erase(it);
  }
}

QuorumLock::RoundOutcome QuorumLock::attempt_round(
    const std::string& lock_name) {
  // Phase 1: plant our lock file everywhere (best effort).
  const Bytes empty;
  for (const cloud::CloudPtr& c : clouds_) {
    (void)c->upload(cloud::join_path(config_.lock_dir, lock_name),
                    ByteSpan(empty));
  }
  // Phase 2: list each lock dir; we hold a cloud iff our file is the only
  // lock file there.
  RoundOutcome outcome;
  for (const cloud::CloudPtr& c : clouds_) {
    auto listing = c->list(config_.lock_dir);
    if (!listing.is_ok()) continue;
    ++outcome.responded;
    break_stale_locks(*c, listing.value());
    // Count *after* breaking: a stale lock we just deleted no longer blocks.
    auto remaining = c->list(config_.lock_dir);
    const auto& files = remaining.is_ok() ? remaining.value() : listing.value();
    const bool ours_present =
        std::any_of(files.begin(), files.end(), [&](const cloud::FileInfo& f) {
          return f.name == lock_name;
        });
    const bool alone = ours_present && files.size() == 1;
    if (alone) ++outcome.exclusive;
  }
  return outcome;
}

void QuorumLock::delete_own_locks() {
  for (const cloud::CloudPtr& c : clouds_) {
    auto listing = c->list(config_.lock_dir);
    if (!listing.is_ok()) continue;
    for (const cloud::FileInfo& f : listing.value()) {
      if (f.name.rfind("lock_" + device_ + "_", 0) == 0) {
        (void)c->remove(cloud::join_path(config_.lock_dir, f.name));
      }
    }
  }
}

Status QuorumLock::acquire() {
  if (clouds_.empty()) {
    // A majority of zero clouds must never be "held" — refuse outright.
    return make_error(ErrorCode::kInvalidArgument,
                      "lock: no clouds enrolled");
  }
  if (held_) return Status::ok();
  const RetryPolicy& policy = config_.retry;
  BackoffState backoff(policy);
  const TimePoint started = clock_->now();
  std::size_t rounds_without_quorum_response = 0;
  obs::Span acquire_span = obs::start_span(obs_.get(), "lock.acquire");

  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    obs::add_counter(obs_.get(), "lock.rounds");
    const std::string lock_name = make_lock_name();
    RoundOutcome outcome;
    {
      obs::Span round_span = acquire_span.child("lock.round");
      outcome = attempt_round(lock_name);
    }

    if (outcome.exclusive >= majority()) {
      held_ = true;
      current_lock_name_ = lock_name;
      obs::add_counter(obs_.get(), "lock.acquired");
      obs::observe(obs_.get(), "lock.acquire.latency",
                   clock_->now() - started);
      return Status::ok();
    }
    // Withdraw (the paper: failed attempts must delete their lock files so
    // they do not block other contenders) and back off randomly.
    delete_own_locks();

    if (outcome.responded < majority()) {
      if (++rounds_without_quorum_response >= 3) {
        obs::add_counter(obs_.get(), "lock.outage");
        return make_error(ErrorCode::kOutage,
                          "lock: majority of clouds unreachable");
      }
    } else {
      rounds_without_quorum_response = 0;
    }

    // Decorrelated-jitter pause between rounds; give up early rather than
    // sleep past the acquisition's total time budget.
    const Duration pause = backoff.next(rng_);
    if (policy.total_deadline > 0 &&
        clock_->now() - started + pause > policy.total_deadline) {
      return make_error(ErrorCode::kTimeout,
                        "lock: acquisition budget exhausted");
    }
    obs::add_counter(obs_.get(), "lock.backoffs");
    sleep_(pause);
  }
  obs::add_counter(obs_.get(), "lock.contention");
  return make_error(ErrorCode::kLockContention,
                    "lock: exhausted acquisition attempts");
}

Status QuorumLock::refresh() {
  if (!held_) {
    return make_error(ErrorCode::kInternal, "refresh without holding lock");
  }
  // Upload a fresh-named lock file first, then remove the old one. At every
  // instant a file of ours is present, so no gap opens for a contender; the
  // new name resets other clients' first-seen timers.
  obs::Span span = obs::start_span(obs_.get(), "lock.refresh");
  const std::string fresh = make_lock_name();
  std::size_t planted = 0;
  for (const cloud::CloudPtr& c : clouds_) {
    const Bytes empty;
    if (c->upload(cloud::join_path(config_.lock_dir, fresh), ByteSpan(empty))
            .is_ok()) {
      ++planted;
    }
  }
  for (const cloud::CloudPtr& c : clouds_) {
    (void)c->remove(cloud::join_path(config_.lock_dir, current_lock_name_));
  }
  current_lock_name_ = fresh;
  if (planted < majority()) {
    // We could not re-stamp a majority: treat the lock as lost.
    held_ = false;
    delete_own_locks();
    return make_error(ErrorCode::kOutage, "lock refresh lost majority");
  }
  return Status::ok();
}

void QuorumLock::release() {
  if (!held_ && current_lock_name_.empty()) return;
  delete_own_locks();
  held_ = false;
  current_lock_name_.clear();
}

}  // namespace unidrive::lock
