// LockManager — quorum locks generalized to scopes for the sharded
// metadata plane.
//
// The monolithic design held ONE quorum lock around every commit; with the
// image split into shards, writers touching disjoint shards must be able to
// commit concurrently. Each scope (one shard, or the root manifest) gets its
// own lock directory on every cloud — the same file-based quorum protocol,
// just namespaced — so holding shard 3 never contends with shard 7:
//
//   root scope    -> <lock_dir>            (the pre-shard directory, so a
//                                           crashed pre-refactor holder is
//                                           still seen and broken)
//   shard scope s -> <lock_dir>/s<id>
//
// Deadlock freedom: acquire_all() sorts scopes canonically (shards by id
// ascending, root last) and acquires in that order, releasing everything on
// the first failure (all-or-nothing). Every multi-scope holder therefore
// climbs the same ladder, and the root — the global choke point — is held
// for the shortest possible window (manifest flip only).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lock/quorum_lock.h"

namespace unidrive::lock {

struct Scope {
  enum class Kind : std::uint8_t { kShard = 0, kRoot = 1 };
  Kind kind = Kind::kRoot;
  std::uint32_t shard = 0;  // meaningful only for kShard

  static Scope root() { return Scope{Kind::kRoot, 0}; }
  static Scope of_shard(std::uint32_t id) { return Scope{Kind::kShard, id}; }

  friend bool operator==(const Scope& a, const Scope& b) noexcept {
    return a.kind == b.kind && (a.kind == Kind::kRoot || a.shard == b.shard);
  }
  // Canonical acquisition order: shards ascending, root last.
  friend bool operator<(const Scope& a, const Scope& b) noexcept {
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.kind == Kind::kShard && a.shard < b.shard;
  }

  [[nodiscard]] std::string to_string() const {
    return kind == Kind::kRoot ? "root" : "s" + std::to_string(shard);
  }
};

class LockManager {
 public:
  // `config.lock_dir` is the base directory; per-shard scopes nest under it
  // (cloud list() returns immediate children only, so nested scope dirs
  // never pollute the root scope's listing).
  LockManager(cloud::MultiCloud clouds, std::string device, LockConfig config,
              Clock& clock, Rng rng, SleepFn sleep = real_sleep(),
              obs::ObsPtr obs = nullptr);

  // Acquires one scope (idempotent while held).
  Status acquire(const Scope& scope);

  // Acquires every scope in canonical order; on any failure releases the
  // scopes already taken and returns the error (all-or-nothing, so two
  // multi-scope writers can never hold fragments of each other's set).
  Status acquire_all(std::vector<Scope> scopes);

  void release(const Scope& scope);
  void release_all();

  [[nodiscard]] bool held(const Scope& scope) const;

 private:
  QuorumLock& lock_for(const Scope& scope);
  [[nodiscard]] std::string dir_for(const Scope& scope) const;

  cloud::MultiCloud clouds_;
  std::string device_;
  LockConfig config_;
  Clock* clock_;
  Rng rng_;
  SleepFn sleep_;
  obs::ObsPtr obs_;
  // Scope -> its QuorumLock, created lazily on first acquire. std::map keeps
  // references stable across inserts.
  std::map<Scope, QuorumLock> locks_;
};

}  // namespace unidrive::lock
