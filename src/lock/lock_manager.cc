#include "lock/lock_manager.h"

#include <algorithm>

namespace unidrive::lock {

LockManager::LockManager(cloud::MultiCloud clouds, std::string device,
                         LockConfig config, Clock& clock, Rng rng,
                         SleepFn sleep, obs::ObsPtr obs)
    : clouds_(std::move(clouds)),
      device_(std::move(device)),
      config_(std::move(config)),
      clock_(&clock),
      rng_(rng),
      sleep_(std::move(sleep)),
      obs_(std::move(obs)) {}

std::string LockManager::dir_for(const Scope& scope) const {
  if (scope.kind == Scope::Kind::kRoot) return config_.lock_dir;
  return config_.lock_dir + "/s" + std::to_string(scope.shard);
}

QuorumLock& LockManager::lock_for(const Scope& scope) {
  auto it = locks_.find(scope);
  if (it == locks_.end()) {
    LockConfig scoped = config_;
    scoped.lock_dir = dir_for(scope);
    it = locks_
             .emplace(scope, QuorumLock(clouds_, device_, std::move(scoped),
                                        *clock_, rng_.fork(), sleep_, obs_))
             .first;
  }
  return it->second;
}

Status LockManager::acquire(const Scope& scope) {
  return lock_for(scope).acquire();
}

Status LockManager::acquire_all(std::vector<Scope> scopes) {
  std::sort(scopes.begin(), scopes.end());
  scopes.erase(std::unique(scopes.begin(), scopes.end()), scopes.end());
  for (std::size_t i = 0; i < scopes.size(); ++i) {
    const Status s = acquire(scopes[i]);
    if (!s.is_ok()) {
      for (std::size_t j = 0; j < i; ++j) release(scopes[j]);
      return s;
    }
  }
  return Status::ok();
}

void LockManager::release(const Scope& scope) {
  const auto it = locks_.find(scope);
  if (it != locks_.end()) it->second.release();
}

void LockManager::release_all() {
  // Reverse canonical order (root first, then shards descending) so the
  // global choke point frees up before the fine-grained scopes.
  for (auto it = locks_.rbegin(); it != locks_.rend(); ++it) {
    it->second.release();
  }
}

bool LockManager::held(const Scope& scope) const {
  const auto it = locks_.find(scope);
  return it != locks_.end() && it->second.held();
}

}  // namespace unidrive::lock
